//! The NECTAR protocol node (Algorithm 1).
//!
//! Lifecycle, following the paper exactly:
//!
//! 1. **Initialization** (ll. 1–4): the node's adjacency knowledge `G_i`
//!    starts with its own neighborhood proofs.
//! 2. **Edge propagation** (ll. 5–15): `n − 1` synchronous rounds. Round 1
//!    announces the node's signed neighborhood; subsequent rounds relay,
//!    with one more chain signature, every edge newly learned in the
//!    previous round, to all neighbors except the one it came from. A chain
//!    accepted at round `R` must be valid, carry exactly `R` signatures
//!    (stale-replay defence), start at an endpoint of the claimed edge, end
//!    at the delivering neighbor, and edges already known are neither stored
//!    nor re-forwarded (flooding suppression, l. 14).
//! 3. **Decision** (ll. 16–23): with `r` the number of reachable nodes in
//!    `G_i` and `k` its vertex connectivity, decide NOT_PARTITIONABLE iff
//!    `k > t ∧ r = n`, PARTITIONABLE otherwise, with `confirmed = (r ≠ n)`.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use nectar_crypto::{NeighborhoodProof, SignatureChain, Signer, Verifier};
use nectar_graph::{connectivity, traversal, ConnectivityOracle, Fingerprint, Graph};
use nectar_net::{NodeId, Outgoing, Process};

use crate::config::{Decision, NectarConfig};
use crate::message::{NectarMsg, RelayedEdge};

/// Reasons a relayed edge can be rejected, counted for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RejectReason {
    /// Chain length differs from the current round (Alg. 1 l. 14).
    WrongChainLength,
    /// The outermost signature is not from the delivering neighbor.
    OutermostNotSender,
    /// The innermost signature is not from an endpoint of the claimed edge.
    InnermostNotEndpoint,
    /// A signer appears twice in the chain.
    DuplicateSigner,
    /// The neighborhood proof does not verify.
    BadProof,
    /// A chain signature does not verify.
    BadChain,
}

/// A correct NECTAR participant.
#[derive(Debug)]
pub struct NectarNode {
    id: NodeId,
    config: NectarConfig,
    signer: Signer,
    verifier: Verifier,
    neighbors: Vec<NodeId>,
    /// `G_i`: every proof discovered so far, keyed by normalized endpoints.
    /// Values are the shared-ownership payloads the relay fan-out copies by
    /// pointer — a proof relayed along k paths is one allocation, not k.
    discovered: BTreeMap<(u16, u16), Arc<NeighborhoodProof>>,
    /// Rolling digest of [`discovered_graph`](Self::discovered_graph),
    /// toggled on every view mutation so the decision phase reads view
    /// identity in O(1) instead of walking O(m_view) edge keys.
    view_fingerprint: Fingerprint,
    /// Edges accepted in the previous round, to relay this round
    /// (`to_be_sent_R`), with the neighbors to skip.
    pending: Vec<PendingRelay>,
    /// Digests of proofs whose signatures already verified — a proof
    /// re-delivered along another path (or re-presented after its chain was
    /// rejected) skips the two signature checks. Sound because
    /// [`NeighborhoodProof::digest`] covers the full proof content
    /// (statement, signer ids, signature tags), so equal digests mean equal
    /// proofs up to a SHA-256 collision; only *successes* are memoized, so
    /// a hit can never flip a verdict.
    verified_proofs: BTreeSet<[u8; 32]>,
    /// `(proof digest, chain content key)` pairs whose chain signatures
    /// already verified — the chain-side analogue of `verified_proofs`,
    /// for chains replayed verbatim (same payload, same links).
    verified_chains: BTreeSet<([u8; 32], u64)>,
    /// Rejected-message diagnostics.
    rejections: BTreeMap<RejectReason, u64>,
}

#[derive(Debug, Clone)]
struct PendingRelay {
    proof: Arc<NeighborhoodProof>,
    chain: Arc<SignatureChain>,
    exclude: BTreeSet<NodeId>,
}

/// A 64-bit content key for a signature chain: an FNV-1a fold of every
/// link's signer id and tag. Distinct chains collide with probability
/// ~2⁻⁶⁴ — the same class as the view [`Fingerprint`] — and the key only
/// memoizes *successful* verifications, so a collision could at worst skip
/// a re-verification that would also have succeeded on the colliding
/// chain's first delivery.
fn chain_content_key(chain: &SignatureChain) -> u64 {
    let mut acc = 0xcbf2_9ce4_8422_2325u64;
    for link in chain.links() {
        for b in link.signer().to_be_bytes().into_iter().chain(link.tag().iter().copied()) {
            acc = (acc ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    acc
}

impl NectarNode {
    /// Creates a correct node from its neighborhood proofs (one per
    /// neighbor, as provided at set-up per §II).
    ///
    /// # Panics
    ///
    /// Panics if a proof does not involve this node or duplicates a
    /// neighbor, or if the signer identity differs from `id`.
    pub fn new(
        id: NodeId,
        config: NectarConfig,
        signer: Signer,
        verifier: Verifier,
        neighbor_proofs: BTreeMap<NodeId, NeighborhoodProof>,
    ) -> Self {
        assert_eq!(signer.id() as usize, id, "signer identity must match node id");
        let n = config.n;
        let mut node = NectarNode {
            id,
            config,
            signer,
            verifier,
            neighbors: neighbor_proofs.keys().copied().collect(),
            discovered: BTreeMap::new(),
            view_fingerprint: Fingerprint::empty(n),
            pending: Vec::new(),
            verified_proofs: BTreeSet::new(),
            verified_chains: BTreeSet::new(),
            rejections: BTreeMap::new(),
        };
        for (nbr, proof) in neighbor_proofs {
            let (a, b) = proof.endpoints();
            assert!(
                (a as usize == id && b as usize == nbr) || (b as usize == id && a as usize == nbr),
                "proof endpoints ({a},{b}) must join node {id} and neighbor {nbr}"
            );
            let proof = Arc::new(proof);
            if node.discovered.insert(proof.endpoints(), proof.clone()).is_none() {
                node.toggle_view_edge(proof.endpoints());
            }
            // Own edges are announced in round 1 with an empty exclusion set
            // (Alg. 1 ll. 6–8 send the full neighborhood to every neighbor).
            node.pending.push(PendingRelay {
                proof,
                chain: Arc::new(SignatureChain::new()),
                exclude: BTreeSet::new(),
            });
        }
        node
    }

    /// Folds `key` into the rolling view digest iff
    /// [`discovered_graph`](Self::discovered_graph) keeps the edge
    /// (in-range, non-loop), preserving the invariant
    /// `self.view_fingerprint == Fingerprint::of(&self.discovered_graph())`
    /// across every view mutation (a property test pins it).
    fn toggle_view_edge(&mut self, key: (u16, u16)) {
        let (u, v) = (key.0 as usize, key.1 as usize);
        if u < self.config.n && v < self.config.n && u != v {
            self.view_fingerprint.toggle_edge(u, v);
        }
    }

    /// Adds an extra proof to announce in round 1 *as if* it were a real
    /// edge. Correct nodes never need this; it is the entry point for the
    /// Byzantine fictitious-edge behaviour (§IV, "pairs of Byzantine nodes
    /// that declare fictitious edges").
    pub fn announce_extra_proof(&mut self, proof: NeighborhoodProof) {
        let proof = Arc::new(proof);
        // Re-announcing known endpoints replaces the stored proof without
        // changing the edge set, so the digest only moves on a fresh key.
        if self.discovered.insert(proof.endpoints(), proof.clone()).is_none() {
            self.toggle_view_edge(proof.endpoints());
        }
        self.pending.push(PendingRelay {
            proof,
            chain: Arc::new(SignatureChain::new()),
            exclude: BTreeSet::new(),
        });
    }

    /// Removes the proof (and pending announcement) for edge to `neighbor`,
    /// while keeping the channel usable. Entry point for the Byzantine
    /// edge-hiding behaviour.
    pub fn hide_edge_to(&mut self, neighbor: NodeId) {
        let id = self.id as u16;
        let nbr = neighbor as u16;
        let key = (id.min(nbr), id.max(nbr));
        if self.discovered.remove(&key).is_some() {
            self.toggle_view_edge(key);
        }
        self.pending.retain(|p| p.proof.endpoints() != key);
    }

    /// This node's id.
    pub fn node_id(&self) -> NodeId {
        self.id
    }

    /// The protocol configuration.
    pub fn config(&self) -> &NectarConfig {
        &self.config
    }

    /// Neighbors (ascending order).
    pub fn neighbors(&self) -> &[NodeId] {
        &self.neighbors
    }

    /// Number of distinct edges currently known.
    pub fn known_edge_count(&self) -> usize {
        self.discovered.len()
    }

    /// The discovered graph `G_i` as a [`Graph`] over the `n` system nodes.
    /// Endpoints outside `0..n` (only possible in forged proofs that failed
    /// verification anyway) are ignored.
    pub fn discovered_graph(&self) -> Graph {
        let mut g = Graph::empty(self.config.n);
        for &(u, v) in self.discovered.keys() {
            if (u as usize) < self.config.n && (v as usize) < self.config.n {
                g.add_edge(u as usize, v as usize).expect("bounded endpoints, no self-loops");
            }
        }
        g
    }

    /// Per-reason counters of rejected relayed edges.
    pub fn rejections(&self) -> &BTreeMap<RejectReason, u64> {
        &self.rejections
    }

    /// The decision phase (Alg. 1 ll. 16–23). Callable once the propagation
    /// rounds have run; pure, so callers may invoke it repeatedly.
    ///
    /// This is the *reference* path: it computes the exact vertex
    /// connectivity of `G_i`. Production callers that re-run the decision
    /// phase repeatedly should prefer [`decide_with`](Self::decide_with),
    /// which answers the same `κ > t` question through the
    /// [`ConnectivityOracle`]'s bounded fast path.
    pub fn decide(&self) -> Decision {
        let g = self.discovered_graph();
        self.decide_given_connectivity(connectivity::vertex_connectivity(&g))
    }

    /// The decision phase answered through a [`ConnectivityOracle`].
    ///
    /// Corollary 1 only needs the decision bit `κ(G_i) ≤ t`, so the oracle
    /// can stop each max-flow after `t + 1` disjoint paths and reuse cached
    /// verdicts when `G_i` did not change since the last call (or matches
    /// another node's identical view, per Lemma 2). The verdict and
    /// `confirmed` flag are identical to [`decide`](Self::decide); the
    /// reported [`Decision::connectivity`] is the oracle's witness bound
    /// rather than the exact `κ` — the bound sits on the same side of `t`
    /// as the exact value by construction, so the shared rule in
    /// [`Decision::from_view`] yields the same verdict.
    pub fn decide_with(&self, oracle: &mut ConnectivityOracle) -> Decision {
        let g = self.discovered_graph();
        let answer = oracle.answer(&g, self.config.t);
        let reachable = traversal::reachable_count(&g, self.id);
        Decision::from_view(self.config.n, self.config.t, reachable, answer.kappa.report())
    }

    /// The decision phase with an externally computed vertex connectivity of
    /// [`discovered_graph`](Self::discovered_graph). All correct nodes end up
    /// with identical `G_i` (Lemma 2), so batch runners compute κ once per
    /// distinct discovered graph and reuse it here.
    pub fn decide_given_connectivity(&self, connectivity: usize) -> Decision {
        let g = self.discovered_graph();
        let reachable = traversal::reachable_count(&g, self.id);
        Decision::from_view(self.config.n, self.config.t, reachable, connectivity)
    }

    /// Canonical key of the discovered edge set (for decision caching across
    /// nodes with identical views).
    pub fn discovered_edge_key(&self) -> Vec<(u16, u16)> {
        self.discovered.keys().copied().collect()
    }

    /// The rolling digest of [`discovered_graph`](Self::discovered_graph),
    /// maintained incrementally in O(1) per view mutation and always equal
    /// to `Fingerprint::of(&self.discovered_graph())`. The decision phase
    /// groups identical views (Lemma 2) by this digest without walking any
    /// edge key.
    pub fn view_fingerprint(&self) -> Fingerprint {
        self.view_fingerprint
    }

    fn reject(&mut self, reason: RejectReason) {
        *self.rejections.entry(reason).or_insert(0) += 1;
    }

    /// Validates a relayed edge per Alg. 1 l. 14 plus the signature rules of
    /// §II. Returns `None` if the edge passes, `Some(reason)` otherwise.
    ///
    /// The two signature checks run behind the node's verification memos: a
    /// proof (or verbatim chain) this node already verified successfully is
    /// admitted without re-running the crypto. Failures are never memoized,
    /// so the rejection behaviour — and every counter derived from it — is
    /// bit-identical to always re-verifying.
    fn validate(&mut self, round: usize, from: NodeId, edge: &RelayedEdge) -> Option<RejectReason> {
        let chain = &edge.chain;
        if self.config.check_chain_length && chain.len() != round {
            return Some(RejectReason::WrongChainLength);
        }
        if chain.outermost_signer() != Some(from as u16) {
            return Some(RejectReason::OutermostNotSender);
        }
        let (u, v) = edge.proof.endpoints();
        match chain.innermost_signer() {
            Some(inner) if inner == u || inner == v => {}
            _ => return Some(RejectReason::InnermostNotEndpoint),
        }
        if self.config.require_distinct_signers && !chain.signers_distinct() {
            return Some(RejectReason::DuplicateSigner);
        }
        let digest = edge.proof.digest();
        if !self.verified_proofs.contains(&digest) {
            if !edge.proof.verify(&self.verifier) {
                return Some(RejectReason::BadProof);
            }
            self.verified_proofs.insert(digest);
        }
        let chain_key = (digest, chain_content_key(chain));
        if !self.verified_chains.contains(&chain_key) {
            if !chain.verify(&self.verifier, &digest) {
                return Some(RejectReason::BadChain);
            }
            self.verified_chains.insert(chain_key);
        }
        None
    }
}

impl Process for NectarNode {
    type Msg = NectarMsg;

    fn id(&self) -> NodeId {
        self.id
    }

    fn send(&mut self, _round: usize) -> Vec<Outgoing<NectarMsg>> {
        let pending = std::mem::take(&mut self.pending);
        if pending.is_empty() {
            return Vec::new();
        }
        // Extend each chain once with our signature (σ_i(msg)), then fan the
        // edge out to every neighbor not excluded — each copy is two pointer
        // bumps (shared proof, shared extended chain), not a signature
        // buffer.
        let mut per_dest: BTreeMap<NodeId, Vec<RelayedEdge>> = BTreeMap::new();
        for item in pending {
            let chain = Arc::new(item.chain.extend(&self.signer, &item.proof.digest()));
            for &nbr in &self.neighbors {
                if item.exclude.contains(&nbr) {
                    continue;
                }
                per_dest
                    .entry(nbr)
                    .or_default()
                    .push(RelayedEdge { proof: item.proof.clone(), chain: chain.clone() });
            }
        }
        per_dest
            .into_iter()
            .map(|(to, edges)| {
                Outgoing::new(to, NectarMsg { edges, format: self.config.wire_format })
            })
            .collect()
    }

    fn receive(&mut self, round: usize, from: NodeId, msg: NectarMsg) {
        for edge in msg.edges {
            let key = edge.proof.endpoints();
            // Flooding suppression first (l. 14): known edges are ignored
            // without paying signature verification.
            if self.discovered.contains_key(&key) {
                continue;
            }
            match self.validate(round, from, &edge) {
                Some(reason) => self.reject(reason),
                None => {
                    self.discovered.insert(key, edge.proof.clone());
                    self.toggle_view_edge(key);
                    self.pending.push(PendingRelay {
                        proof: edge.proof,
                        chain: edge.chain,
                        exclude: [from].into_iter().collect(),
                    });
                }
            }
        }
    }

    fn quiescent(&self) -> bool {
        // Alg. 1 is purely reactive: `to_be_sent` only refills on receive,
        // so an empty relay queue means silence until the next delivery.
        self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Verdict;
    use crate::message::WireFormat;
    use nectar_crypto::KeyStore;

    /// Builds proofs for every edge of `g` and returns correct nodes for all
    /// of them.
    fn build_nodes(g: &Graph, t: usize) -> Vec<NectarNode> {
        let n = g.node_count();
        let ks = KeyStore::generate(n, 7);
        (0..n)
            .map(|i| {
                let proofs: BTreeMap<NodeId, NeighborhoodProof> = g
                    .neighbors(i)
                    .map(|j| {
                        (j, NeighborhoodProof::new(&ks.signer(i as u16), &ks.signer(j as u16)))
                    })
                    .collect();
                NectarNode::new(
                    i,
                    NectarConfig::new(n, t),
                    ks.signer(i as u16),
                    ks.verifier(),
                    proofs,
                )
            })
            .collect()
    }

    fn run(g: &Graph, t: usize) -> Vec<NectarNode> {
        let nodes = build_nodes(g, t);
        let rounds = g.node_count() - 1;
        let mut net = nectar_net::SyncNetwork::new(nodes, g.clone());
        net.run_rounds(rounds);
        let (nodes, _) = net.into_parts();
        nodes
    }

    #[test]
    fn all_correct_nodes_discover_the_full_graph() {
        let g = nectar_graph::gen::cycle(6);
        for node in run(&g, 1) {
            assert_eq!(node.known_edge_count(), 6);
            assert_eq!(node.discovered_graph(), g);
        }
    }

    #[test]
    fn ring_with_t1_is_not_partitionable() {
        // κ(C_6) = 2 > t = 1, all reachable: NOT_PARTITIONABLE (case 1,
        // κ = 2t).
        let g = nectar_graph::gen::cycle(6);
        for node in run(&g, 1) {
            let d = node.decide();
            assert_eq!(d.verdict, Verdict::NotPartitionable);
            assert!(!d.confirmed);
            assert_eq!(d.reachable, 6);
            assert_eq!(d.connectivity, 2);
        }
    }

    #[test]
    fn star_with_t1_is_partitionable() {
        // κ(star) = 1 ≤ t: PARTITIONABLE, not confirmed (everyone
        // reachable).
        let g = nectar_graph::gen::star(6);
        for node in run(&g, 1) {
            let d = node.decide();
            assert_eq!(d.verdict, Verdict::Partitionable);
            assert!(!d.confirmed);
        }
    }

    #[test]
    fn partitioned_graph_is_confirmed() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)]).unwrap();
        for node in run(&g, 1) {
            let d = node.decide();
            assert_eq!(d.verdict, Verdict::Partitionable);
            assert!(d.confirmed);
            assert_eq!(d.reachable, 3);
        }
    }

    #[test]
    fn no_duplicate_forwarding() {
        // Each edge is relayed at most once per node: on the complete graph
        // K_4 every node sends round-1 announcements (3 edges × 3 dests) and
        // each received edge is forwarded at most once afterwards.
        let g = nectar_graph::gen::complete(4);
        let nodes = build_nodes(&g, 1);
        let mut net = nectar_net::SyncNetwork::new(nodes, g.clone());
        net.run_rounds(3);
        // Total distinct edges = 6. A node learns 3 initially and 3 from
        // round 1; each of those 3 is forwarded once to 2 neighbors in round
        // 2. Nothing remains for round 3.
        let round3 = net.metrics().bytes_per_round().get(2).copied().unwrap_or(0);
        assert_eq!(round3, 0, "round 3 must be silent");
        let (nodes, _) = net.into_parts();
        for node in nodes {
            assert_eq!(node.known_edge_count(), 6);
        }
    }

    #[test]
    fn late_chain_is_rejected() {
        let g = nectar_graph::gen::path(3);
        let ks = KeyStore::generate(3, 7);
        let mut nodes = build_nodes(&g, 1);
        // Hand-deliver node 0's announcement of edge (0,1) to node 1 at
        // round 2 with a length-1 chain: must be rejected for length.
        let proof = NeighborhoodProof::new(&ks.signer(0), &ks.signer(1));
        let chain = SignatureChain::new().extend(&ks.signer(0), &proof.digest());
        // Use an edge unknown to node 2: (0,1) is not adjacent to node 2's
        // initial knowledge.
        let msg = NectarMsg {
            edges: vec![RelayedEdge::new(proof, chain)],
            format: WireFormat::PerEdgeChains,
        };
        nodes[2].receive(2, 1, msg);
        assert_eq!(nodes[2].rejections()[&RejectReason::WrongChainLength], 1);
        assert_eq!(nodes[2].known_edge_count(), 1);
    }

    #[test]
    fn outermost_must_be_sender() {
        let g = nectar_graph::gen::path(3);
        let ks = KeyStore::generate(3, 7);
        let mut nodes = build_nodes(&g, 1);
        let proof = NeighborhoodProof::new(&ks.signer(0), &ks.signer(1));
        let chain = SignatureChain::new().extend(&ks.signer(0), &proof.digest());
        // Node 2 receives from node 1 a chain whose outermost signer is 0.
        let msg = NectarMsg {
            edges: vec![RelayedEdge::new(proof, chain)],
            format: WireFormat::PerEdgeChains,
        };
        nodes[2].receive(1, 1, msg);
        assert_eq!(nodes[2].rejections()[&RejectReason::OutermostNotSender], 1);
    }

    #[test]
    fn innermost_must_be_an_endpoint() {
        let g = nectar_graph::gen::path(3);
        let ks = KeyStore::generate(3, 7);
        let mut nodes = build_nodes(&g, 1);
        // Node 1 announces edge (0,2) that it is not part of.
        let proof = NeighborhoodProof::new(&ks.signer(0), &ks.signer(2));
        let chain = SignatureChain::new().extend(&ks.signer(1), &proof.digest());
        let msg = NectarMsg {
            edges: vec![RelayedEdge::new(proof, chain)],
            format: WireFormat::PerEdgeChains,
        };
        nodes[2].receive(1, 1, msg);
        assert_eq!(nodes[2].rejections()[&RejectReason::InnermostNotEndpoint], 1);
    }

    #[test]
    fn forged_proof_is_rejected() {
        let g = nectar_graph::gen::path(3);
        let ks = KeyStore::generate(3, 7);
        let mut nodes = build_nodes(&g, 1);
        // Node 1 forges a proof for edge (1, 2)... with both signatures its
        // own. Wait — (1,2) is a real edge; use a forged (0,2) claim signed
        // only by 1's key under 0's and 2's identities.
        let stmt = NeighborhoodProof::statement(0, 2);
        let bogus_sig = ks.signer(1).sign(&stmt);
        let forged = NeighborhoodProof::from_parts(
            0,
            2,
            nectar_crypto::Signature::from_parts(0, *bogus_sig.tag()),
            nectar_crypto::Signature::from_parts(2, *bogus_sig.tag()),
        );
        let chain = SignatureChain::new().extend(&ks.signer(2), &forged.digest());
        let msg = NectarMsg {
            edges: vec![RelayedEdge::new(forged, chain)],
            format: WireFormat::PerEdgeChains,
        };
        nodes[1].receive(1, 2, msg);
        assert_eq!(nodes[1].rejections()[&RejectReason::BadProof], 1);
    }

    #[test]
    fn duplicate_signers_are_rejected() {
        let g = nectar_graph::gen::path(4);
        let ks = KeyStore::generate(4, 7);
        let mut nodes = build_nodes(&g, 1);
        let proof = NeighborhoodProof::new(&ks.signer(2), &ks.signer(3));
        let digest = proof.digest();
        let chain =
            SignatureChain::new().extend(&ks.signer(2), &digest).extend(&ks.signer(2), &digest);
        let msg = NectarMsg {
            edges: vec![RelayedEdge::new(proof, chain)],
            format: WireFormat::PerEdgeChains,
        };
        nodes[1].receive(2, 2, msg);
        assert_eq!(nodes[1].rejections()[&RejectReason::DuplicateSigner], 1);
    }

    #[test]
    fn hidden_edge_is_not_announced() {
        let g = nectar_graph::gen::cycle(5);
        let mut nodes = build_nodes(&g, 1);
        nodes[0].hide_edge_to(1);
        let mut net = nectar_net::SyncNetwork::new(nodes, g.clone());
        net.run_rounds(4);
        // Node 1 still announces (0,1) itself — the proof is held by both
        // endpoints — so everyone still learns the edge.
        let (nodes, _) = net.into_parts();
        for node in &nodes[1..] {
            assert_eq!(node.known_edge_count(), 5);
        }
        // But if both endpoints hide it, the edge disappears from view:
        let g2 = nectar_graph::gen::cycle(5);
        let mut nodes2 = build_nodes(&g2, 1);
        nodes2[0].hide_edge_to(1);
        nodes2[1].hide_edge_to(0);
        let mut net2 = nectar_net::SyncNetwork::new(nodes2, g2);
        net2.run_rounds(4);
        let (nodes2, _) = net2.into_parts();
        assert_eq!(nodes2[3].known_edge_count(), 4);
    }

    #[test]
    fn decision_is_pure_and_repeatable() {
        let g = nectar_graph::gen::cycle(4);
        let nodes = run(&g, 1);
        let d1 = nodes[0].decide();
        let d2 = nodes[0].decide();
        assert_eq!(d1, d2);
    }

    #[test]
    fn oracle_decision_agrees_with_the_reference_path() {
        // Verdict, confirmed flag and reachable count must match decide()
        // exactly; only the connectivity report may differ (bound vs exact).
        for (g, t) in [
            (nectar_graph::gen::cycle(6), 1),
            (nectar_graph::gen::star(6), 1),
            (nectar_graph::gen::harary(4, 8).unwrap(), 2),
            (Graph::from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)]).unwrap(), 1),
        ] {
            let mut oracle = ConnectivityOracle::new();
            for node in run(&g, t) {
                let exact = node.decide();
                let fast = node.decide_with(&mut oracle);
                assert_eq!(fast.verdict, exact.verdict, "graph {g:?}");
                assert_eq!(fast.confirmed, exact.confirmed);
                assert_eq!(fast.reachable, exact.reachable);
                // The oracle's bound brackets the verdict threshold like κ.
                assert_eq!(fast.connectivity > t, exact.connectivity > t);
            }
        }
    }

    #[test]
    fn identical_views_share_one_oracle_verdict() {
        // All 6 correct nodes of a clean run converge to the same G_i
        // (Lemma 2): with a shared oracle, 5 of the 6 decisions are cache
        // hits and only the first runs any flow.
        let g = nectar_graph::gen::cycle(6);
        let nodes = run(&g, 1);
        let mut oracle = ConnectivityOracle::new();
        for node in &nodes {
            node.decide_with(&mut oracle);
        }
        assert_eq!(oracle.stats().queries, 6);
        assert_eq!(oracle.stats().cache_hits, 5);
    }
}

#[cfg(test)]
mod config_knob_tests {
    use super::*;
    use crate::config::Verdict;
    use crate::message::WireFormat;
    use crate::runner::Scenario;
    use nectar_graph::gen;

    #[test]
    fn wire_format_changes_bytes_but_not_decisions() {
        let g = gen::harary(4, 12).unwrap();
        let per_edge = Scenario::new(g.clone(), 2)
            .with_config(NectarConfig::new(12, 2).with_wire_format(WireFormat::PerEdgeChains))
            .sim()
            .run();
        let batched = Scenario::new(g, 2)
            .with_config(NectarConfig::new(12, 2).with_wire_format(WireFormat::BatchedChain))
            .sim()
            .run();
        assert_eq!(per_edge.decisions(), batched.decisions());
        assert!(
            batched.metrics().total_bytes_sent() < per_edge.metrics().total_bytes_sent(),
            "batched chains must be cheaper"
        );
        // Message counts are identical: only the accounting differs.
        assert_eq!(per_edge.metrics().msgs_sent(), batched.metrics().msgs_sent());
    }

    #[test]
    fn disabling_the_length_check_admits_stale_chains() {
        // The unsafe ablation knob: with check_chain_length = false, a
        // stale (length 1) chain delivered at round 2 is accepted.
        let _g = gen::path(3);
        let ks = nectar_crypto::KeyStore::generate(3, 7);
        let mut cfg = NectarConfig::new(3, 1);
        cfg.check_chain_length = false;
        let proofs: BTreeMap<NodeId, NeighborhoodProof> =
            [(1usize, NeighborhoodProof::new(&ks.signer(2), &ks.signer(1)))].into_iter().collect();
        let mut node = NectarNode::new(2, cfg, ks.signer(2), ks.verifier(), proofs);
        let proof = NeighborhoodProof::new(&ks.signer(0), &ks.signer(1));
        let chain = SignatureChain::new().extend(&ks.signer(1), &proof.digest());
        let msg = NectarMsg {
            edges: vec![RelayedEdge::new(proof, chain)],
            format: crate::message::WireFormat::PerEdgeChains,
        };
        node.receive(2, 1, msg);
        assert_eq!(node.known_edge_count(), 2, "stale chain accepted without the check");
        assert!(node.rejections().is_empty());
    }

    #[test]
    fn fewer_rounds_than_diameter_can_break_the_view_but_not_agreement_on_connected_graphs() {
        // A ring of 8 (diameter 4) run for only 2 rounds: views are
        // incomplete and decisions become conservative (PARTITIONABLE), but
        // symmetric topologies still agree. This is why the paper insists
        // on R = n − 1 for unknown topologies.
        let g = gen::cycle(8);
        let out =
            Scenario::new(g, 1).with_config(NectarConfig::new(8, 1).with_rounds(2)).sim().run();
        assert!(out.agreement());
        assert_eq!(out.unanimous_verdict(), Some(Verdict::Partitionable));
        assert!(out.decisions().values().all(|d| d.reachable < 8));
    }
}
