//! Byzantine NECTAR participants.
//!
//! §IV ("Impact of Byzantine deviations") and §V-D describe what Byzantine
//! nodes can attempt against NECTAR: stay silent, behave correctly toward
//! one side of the network and crashed toward the other, hide their own
//! edges, declare fictitious edges among themselves, or withhold signed
//! material to replay it later. This module implements all of them as
//! [`Participant`] variants that plug into the same runtimes as correct
//! nodes.

use std::collections::BTreeSet;
use std::fmt;

use nectar_crypto::{NeighborhoodProof, SignatureChain, Signer};
use nectar_net::{Crash, Faulty, NodeId, Outgoing, Process, TwoFaced};

use crate::message::{NectarMsg, RelayedEdge};
use crate::node::NectarNode;

/// Declarative description of a Byzantine node's strategy, consumed by the
/// scenario [`runner`](crate::runner).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ByzantineBehavior {
    /// Never sends anything (crash from round 1). Indistinguishable from a
    /// crashed node.
    Silent,
    /// Behaves correctly until `round`, silent afterwards.
    CrashAfter {
        /// First silent round.
        round: usize,
    },
    /// The bridge attack of §V-D: acts correctly toward every node *not* in
    /// the set, and as a crashed node toward the set (drops both incoming
    /// and outgoing traffic with them).
    TwoFaced {
        /// Nodes toward which this node plays dead.
        silent_toward: BTreeSet<NodeId>,
    },
    /// Omits its own edges toward the listed neighbors from its
    /// announcements (the edges can still be announced by the other — if
    /// correct — endpoint).
    HideEdges {
        /// Neighbors whose shared edge is concealed.
        toward: BTreeSet<NodeId>,
    },
    /// Declares fictitious edges with the listed partners. Only effective
    /// when the partners are Byzantine too (§II: proofs involving a correct
    /// node cannot be forged) — the runner enforces this.
    FictitiousEdges {
        /// Colluding partners for fake edges.
        partners: Vec<NodeId>,
    },
    /// Dolev–Strong-style late reveal: conceals the real edge shared with
    /// `partner`, then injects it at round `1 + others.len() + 1` inside a
    /// chain pre-signed by the colluders. Correct nodes accept it (the
    /// length matches) and still reach agreement — the scenario the paper's
    /// Lemma 2 covers.
    LateReveal {
        /// The other endpoint of the concealed edge (must be Byzantine).
        partner: NodeId,
        /// Additional colluding signers between `partner` and this node.
        others: Vec<NodeId>,
    },
    /// Sends different round-1 neighborhoods to different neighbors: nodes
    /// in `victims` only see the single edge they share with this node.
    Equivocate {
        /// Neighbors receiving the impoverished view.
        victims: BTreeSet<NodeId>,
    },
    /// Byzantine *data falsification* in the sense of Kailkhura et al.
    /// (distributed detection with falsified measurements): the node keeps
    /// honest transport and relays but lies about its own neighborhood
    /// measurement, behind its own perfectly valid signatures. Each real
    /// incident edge is independently reported "down" (suppressed from the
    /// round-1 announcement toward *every* neighbor — a consistent lie, not
    /// an equivocation) with probability `flips_per_mille / 1000`, and each
    /// absent edge toward a colluding `partner` is reported "up" with the
    /// same probability (§II: only forgeable because the partner — which
    /// the runner checks is Byzantine — co-signs the fictitious proof).
    /// Flips are pure functions of `(seed, node, other)`, so a cast is
    /// bit-identical across runtimes, worker counts and epochs.
    FalsifyData {
        /// Per-measurement flip probability in per-mille (0 ..= 1000).
        flips_per_mille: u16,
        /// Seed of the falsifier's private coin stream.
        seed: u64,
        /// Colluding partners for fabricated "up" measurements (may be
        /// empty; every listed partner must be Byzantine).
        partners: Vec<NodeId>,
    },
}

/// One Bernoulli draw of the [`FalsifyData`](ByzantineBehavior::FalsifyData)
/// coin stream: a splitmix64 finalizer over the `(seed, node, other)` key,
/// so each measurement's flip is an independent pure function — no RNG
/// state to order across nodes, which keeps parallel participant
/// construction and the cross-runtime equivalence suite trivially
/// deterministic.
pub(crate) fn falsify_flips(seed: u64, node: NodeId, other: NodeId, per_mille: u16) -> bool {
    let mut z = seed
        ^ (node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (other as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % 1000) < per_mille as u64
}

/// A protocol participant: a correct node or one of the Byzantine variants.
///
/// Using an enum keeps heterogeneous systems in one `Vec<Participant>` that
/// both runtimes can execute without dynamic dispatch.
#[derive(Debug)]
pub enum Participant {
    /// A correct NECTAR node.
    Correct(NectarNode),
    /// A node whose traffic is distorted by a [`nectar_net::FaultModel`]
    /// (silent, crash-after, two-faced).
    TrafficFault(Faulty<NectarNode>),
    /// The late-reveal colluder.
    LateReveal(LateRevealNode),
    /// The equivocating announcer.
    Equivocator(EquivocatorNode),
    /// The measurement falsifier.
    Falsifier(FalsifierNode),
}

impl Participant {
    /// The underlying NECTAR state (every variant wraps one).
    pub fn nectar(&self) -> &NectarNode {
        match self {
            Participant::Correct(n) => n,
            Participant::TrafficFault(f) => f.inner(),
            Participant::LateReveal(l) => &l.inner,
            Participant::Equivocator(e) => &e.inner,
            Participant::Falsifier(d) => &d.inner,
        }
    }

    /// Whether this participant runs the unmodified protocol.
    pub fn is_correct(&self) -> bool {
        matches!(self, Participant::Correct(_))
    }
}

impl Process for Participant {
    type Msg = NectarMsg;

    fn id(&self) -> NodeId {
        match self {
            Participant::Correct(n) => n.id(),
            Participant::TrafficFault(f) => f.id(),
            Participant::LateReveal(l) => l.id(),
            Participant::Equivocator(e) => e.id(),
            Participant::Falsifier(d) => d.id(),
        }
    }

    fn send(&mut self, round: usize) -> Vec<Outgoing<NectarMsg>> {
        match self {
            Participant::Correct(n) => n.send(round),
            Participant::TrafficFault(f) => f.send(round),
            Participant::LateReveal(l) => l.send(round),
            Participant::Equivocator(e) => e.send(round),
            Participant::Falsifier(d) => d.send(round),
        }
    }

    fn receive(&mut self, round: usize, from: NodeId, msg: NectarMsg) {
        match self {
            Participant::Correct(n) => n.receive(round, from, msg),
            Participant::TrafficFault(f) => f.receive(round, from, msg),
            Participant::LateReveal(l) => l.receive(round, from, msg),
            Participant::Equivocator(e) => e.receive(round, from, msg),
            Participant::Falsifier(d) => d.receive(round, from, msg),
        }
    }

    fn quiescent(&self) -> bool {
        match self {
            Participant::Correct(n) => n.quiescent(),
            // `Faulty` keeps the conservative default (see `nectar-net`).
            Participant::TrafficFault(f) => f.quiescent(),
            Participant::LateReveal(l) => l.quiescent(),
            Participant::Equivocator(e) => e.quiescent(),
            Participant::Falsifier(d) => d.quiescent(),
        }
    }

    fn link_changed(&mut self, round: usize, peer: NodeId, up: bool) {
        // NECTAR nodes ignore the notification (mid-epoch re-announcement
        // is blocked by the chain-length rule), but forwarding keeps any
        // wrapper stack — auditors, fault models — fully informed.
        match self {
            Participant::Correct(n) => n.link_changed(round, peer, up),
            Participant::TrafficFault(f) => f.link_changed(round, peer, up),
            Participant::LateReveal(l) => l.inner.link_changed(round, peer, up),
            Participant::Equivocator(e) => e.inner.link_changed(round, peer, up),
            Participant::Falsifier(d) => d.inner.link_changed(round, peer, up),
        }
    }
}

/// Wraps a correct node with a traffic fault model chosen by `behavior`.
pub(crate) fn wrap_traffic_fault(node: NectarNode, behavior: &ByzantineBehavior) -> Participant {
    match behavior {
        ByzantineBehavior::Silent => {
            Participant::TrafficFault(Faulty::new(node, Box::new(Crash { from_round: 1 })))
        }
        ByzantineBehavior::CrashAfter { round } => {
            Participant::TrafficFault(Faulty::new(node, Box::new(Crash { from_round: *round })))
        }
        ByzantineBehavior::TwoFaced { silent_toward } => Participant::TrafficFault(Faulty::new(
            node,
            Box::new(TwoFaced::new(silent_toward.iter().copied())),
        )),
        other => unreachable!("not a traffic fault: {other:?}"),
    }
}

/// The late-reveal Byzantine node: hides one real edge, then injects it with
/// a pre-signed colluder chain at exactly the round matching the chain
/// length.
pub struct LateRevealNode {
    pub(crate) inner: NectarNode,
    reveal_round: usize,
    payload: RelayedEdge,
    revealed: bool,
}

impl fmt::Debug for LateRevealNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LateRevealNode")
            .field("id", &self.inner.node_id())
            .field("reveal_round", &self.reveal_round)
            .field("revealed", &self.revealed)
            .finish()
    }
}

impl LateRevealNode {
    /// Builds the colluder: `chain_signers` are the signing keys of the
    /// colluding path (innermost first; the innermost **must** be an
    /// endpoint of `proof` and the outermost must be this node).
    ///
    /// # Panics
    ///
    /// Panics if the signer ordering violates the two constraints above
    /// (the attack would be rejected by every correct node otherwise).
    pub fn new(mut inner: NectarNode, proof: NeighborhoodProof, chain_signers: &[&Signer]) -> Self {
        let (u, v) = proof.endpoints();
        let first = chain_signers.first().expect("chain needs at least one signer").id();
        assert!(first == u || first == v, "innermost colluder must be an edge endpoint");
        let last = chain_signers.last().expect("non-empty").id() as usize;
        assert_eq!(last, inner.node_id(), "outermost colluder must be the revealing node");
        let digest = proof.digest();
        let mut chain = SignatureChain::new();
        for signer in chain_signers {
            chain = chain.extend(signer, &digest);
        }
        let reveal_round = chain.len();
        // Conceal the edge from the initial announcements.
        let other = if u as usize == inner.node_id() { v } else { u };
        inner.hide_edge_to(other as usize);
        LateRevealNode {
            inner,
            reveal_round,
            payload: RelayedEdge::new(proof, chain),
            revealed: false,
        }
    }
}

impl Process for LateRevealNode {
    type Msg = NectarMsg;

    fn id(&self) -> NodeId {
        self.inner.id()
    }

    fn send(&mut self, round: usize) -> Vec<Outgoing<NectarMsg>> {
        let mut out = self.inner.send(round);
        if round == self.reveal_round && !self.revealed {
            self.revealed = true;
            let format = self.inner.config().wire_format;
            for &nbr in self.inner.neighbors().to_vec().iter() {
                if let Some(msg) = out.iter_mut().find(|o| o.to == nbr) {
                    msg.msg.edges.push(self.payload.clone());
                } else {
                    out.push(Outgoing::new(
                        nbr,
                        NectarMsg { edges: vec![self.payload.clone()], format },
                    ));
                }
            }
        }
        out
    }

    fn receive(&mut self, round: usize, from: NodeId, msg: NectarMsg) {
        self.inner.receive(round, from, msg);
    }

    fn quiescent(&self) -> bool {
        // The reveal is a *spontaneous* send: until it has fired, this node
        // must keep receiving round ticks even with an empty relay queue.
        self.revealed && self.inner.quiescent()
    }
}

/// The equivocating Byzantine node: victims only ever see the one edge they
/// share with it in round 1.
#[derive(Debug)]
pub struct EquivocatorNode {
    pub(crate) inner: NectarNode,
    victims: BTreeSet<NodeId>,
}

impl EquivocatorNode {
    /// Wraps `inner`, impoverishing round-1 announcements toward `victims`.
    pub fn new(inner: NectarNode, victims: BTreeSet<NodeId>) -> Self {
        EquivocatorNode { inner, victims }
    }
}

impl Process for EquivocatorNode {
    type Msg = NectarMsg;

    fn id(&self) -> NodeId {
        self.inner.id()
    }

    fn send(&mut self, round: usize) -> Vec<Outgoing<NectarMsg>> {
        let mut out = self.inner.send(round);
        if round == 1 {
            let me = self.inner.node_id() as u16;
            for o in &mut out {
                if self.victims.contains(&o.to) {
                    let victim = o.to as u16;
                    o.msg.edges.retain(|e| {
                        let (u, v) = e.proof.endpoints();
                        (u == me && v == victim) || (v == me && u == victim)
                    });
                }
            }
        }
        out
    }

    fn receive(&mut self, round: usize, from: NodeId, msg: NectarMsg) {
        self.inner.receive(round, from, msg);
    }

    fn quiescent(&self) -> bool {
        // Equivocation only *rewrites* round-1 announcements (which the
        // inner node always has pending at round 1); it never adds sends.
        self.inner.quiescent()
    }
}

/// The data-falsifying Byzantine node: announces a fabricated neighborhood
/// measurement while *privately* keeping the true view — the Kailkhura-style
/// sensor that lies in its reports, not in its state. Suppression happens at
/// send time, so unlike [`ByzantineBehavior::HideEdges`] the falsifier still
/// knows the suppressed edges (it never re-relays them as "news", and its
/// own — irrelevant — verdict is computed over the truth). Fabricated "up"
/// measurements toward colluding partners are injected at build time via
/// [`NectarNode::announce_extra_proof`], exactly like
/// [`ByzantineBehavior::FictitiousEdges`].
#[derive(Debug)]
pub struct FalsifierNode {
    pub(crate) inner: NectarNode,
    /// Normalized endpoint keys of real incident edges reported "down".
    suppressed: BTreeSet<(u16, u16)>,
}

impl FalsifierNode {
    /// Wraps `inner`, flipping each real incident edge to "down" with
    /// probability `flips_per_mille / 1000` on the coin stream of `seed`
    /// (one pure draw per `(seed, node, neighbor)` key). Fabricated partner
    /// edges, if any, must already be announced on `inner`.
    pub fn new(inner: NectarNode, flips_per_mille: u16, seed: u64) -> Self {
        let me = inner.node_id();
        let suppressed = inner
            .neighbors()
            .iter()
            .filter(|&&nbr| falsify_flips(seed, me, nbr, flips_per_mille))
            .map(|&nbr| {
                let (a, b) = (me as u16, nbr as u16);
                (a.min(b), a.max(b))
            })
            .collect();
        FalsifierNode { inner, suppressed }
    }

    /// The edges this falsifier reports "down" (normalized endpoint pairs).
    pub fn suppressed(&self) -> &BTreeSet<(u16, u16)> {
        &self.suppressed
    }
}

impl Process for FalsifierNode {
    type Msg = NectarMsg;

    fn id(&self) -> NodeId {
        self.inner.id()
    }

    fn send(&mut self, round: usize) -> Vec<Outgoing<NectarMsg>> {
        let mut out = self.inner.send(round);
        // Round 1 carries exactly the node's own neighborhood announcement;
        // the flipped-down edges are cut from every copy (a consistent lie).
        // Later rounds relay other nodes' proofs and pass through honestly.
        if round == 1 && !self.suppressed.is_empty() {
            for o in &mut out {
                o.msg.edges.retain(|e| !self.suppressed.contains(&e.proof.endpoints()));
            }
            out.retain(|o| !o.msg.edges.is_empty());
        }
        out
    }

    fn receive(&mut self, round: usize, from: NodeId, msg: NectarMsg) {
        self.inner.receive(round, from, msg);
    }

    fn quiescent(&self) -> bool {
        // Falsification only *removes* from round-1 announcements (always
        // pending on the inner node at round 1); it never adds a
        // spontaneous send, so the inner hint stays sound as-is.
        self.inner.quiescent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NectarConfig, Verdict};
    use crate::runner::Scenario;
    use nectar_crypto::KeyStore;
    use nectar_graph::gen;
    use std::collections::BTreeMap;

    fn correct_node(id: usize, g: &nectar_graph::Graph, ks: &KeyStore, t: usize) -> NectarNode {
        let proofs: BTreeMap<usize, NeighborhoodProof> = g
            .neighbors(id)
            .map(|j| (j, NeighborhoodProof::new(&ks.signer(id as u16), &ks.signer(j as u16))))
            .collect();
        NectarNode::new(
            id,
            NectarConfig::new(g.node_count(), t),
            ks.signer(id as u16),
            ks.verifier(),
            proofs,
        )
    }

    #[test]
    fn late_reveal_injects_at_exactly_the_chain_length_round() {
        // Ring of 6; nodes 0 and 1 collude: edge (0,1) is concealed, then
        // node 1 reveals it at round 2 with the chain [σ_0, σ_1].
        let g = gen::cycle(6);
        let ks = KeyStore::generate(6, 3);
        let inner = correct_node(1, &g, &ks, 1);
        let proof = NeighborhoodProof::new(&ks.signer(0), &ks.signer(1));
        let s0 = ks.signer(0);
        let s1 = ks.signer(1);
        let mut node = LateRevealNode::new(inner, proof, &[&s0, &s1]);

        // Round 1: the concealed edge is absent from announcements.
        let out1 = node.send(1);
        for o in &out1 {
            assert!(o.msg.edges.iter().all(|e| e.proof.endpoints() != (0, 1)), "edge leaked early");
        }
        // Round 2: the reveal goes to every neighbor with a length-2 chain.
        let out2 = node.send(2);
        let reveals: Vec<_> = out2
            .iter()
            .flat_map(|o| o.msg.edges.iter().map(move |e| (o.to, e)))
            .filter(|(_, e)| e.proof.endpoints() == (0, 1))
            .collect();
        assert_eq!(reveals.len(), 2, "one reveal per ring neighbor");
        for (_, e) in reveals {
            assert_eq!(e.chain.len(), 2);
            assert_eq!(e.chain.outermost_signer(), Some(1));
        }
        // Round 3: nothing further.
        let out3 = node.send(3);
        assert!(out3.iter().all(|o| o.msg.edges.iter().all(|e| e.proof.endpoints() != (0, 1))));
    }

    #[test]
    #[should_panic(expected = "innermost colluder must be an edge endpoint")]
    fn late_reveal_rejects_non_endpoint_chain_start() {
        let g = gen::cycle(6);
        let ks = KeyStore::generate(6, 3);
        let inner = correct_node(1, &g, &ks, 1);
        let proof = NeighborhoodProof::new(&ks.signer(0), &ks.signer(1));
        let s3 = ks.signer(3);
        let s1 = ks.signer(1);
        let _ = LateRevealNode::new(inner, proof, &[&s3, &s1]);
    }

    #[test]
    fn late_reveal_preserves_agreement_end_to_end() {
        // The Dolev–Strong scenario Lemma 2 covers: the late edge is
        // accepted by everyone (length matches), and all correct nodes
        // still agree.
        let g = gen::cycle(7);
        let out = Scenario::new(g, 2)
            .with_byzantine(0, ByzantineBehavior::LateReveal { partner: 1, others: vec![] })
            .with_byzantine(1, ByzantineBehavior::Silent)
            .sim()
            .run();
        assert!(out.agreement());
        // Every correct node ends up seeing the late edge (0,1): their
        // discovered graphs all contain 7 edges.
        let participants = Scenario::new(gen::cycle(7), 2)
            .with_byzantine(0, ByzantineBehavior::LateReveal { partner: 1, others: vec![] })
            .with_byzantine(1, ByzantineBehavior::Silent)
            .sim()
            .participants();
        for p in participants.iter().filter(|p| p.is_correct()) {
            assert_eq!(p.nectar().known_edge_count(), 7, "node {}", p.nectar().node_id());
        }
    }

    #[test]
    fn equivocator_shows_victims_only_the_shared_edge() {
        let g = gen::complete(4);
        let ks = KeyStore::generate(4, 5);
        let inner = correct_node(0, &g, &ks, 1);
        let mut node = EquivocatorNode::new(inner, [2].into());
        let out = node.send(1);
        let to_victim = out.iter().find(|o| o.to == 2).expect("message to victim");
        assert_eq!(to_victim.msg.edges.len(), 1);
        assert_eq!(to_victim.msg.edges[0].proof.endpoints(), (0, 2));
        let to_other = out.iter().find(|o| o.to == 1).expect("message to non-victim");
        assert_eq!(to_other.msg.edges.len(), 3, "non-victims get the full neighborhood");
    }

    #[test]
    fn equivocation_cannot_break_agreement() {
        // The victims re-learn the withheld edges from their correct
        // endpoints, so every correct node converges to the same view.
        let g = gen::complete(5);
        let out = Scenario::new(g, 1)
            .with_byzantine(0, ByzantineBehavior::Equivocate { victims: [1, 2].into() })
            .sim()
            .run();
        assert!(out.agreement());
        assert_eq!(out.unanimous_verdict(), Some(Verdict::NotPartitionable));
    }

    #[test]
    fn falsifier_suppresses_the_same_edges_toward_every_neighbor() {
        // flips_per_mille = 1000: every incident edge is reported "down".
        let g = gen::complete(4);
        let ks = KeyStore::generate(4, 5);
        let inner = correct_node(0, &g, &ks, 1);
        let mut node = FalsifierNode::new(inner, 1000, 7);
        assert_eq!(node.suppressed().len(), 3, "all three incident edges flip at p = 1");
        let out = node.send(1);
        // Own edges are cut everywhere; empty messages are dropped whole.
        for o in &out {
            for e in &o.msg.edges {
                let (u, v) = e.proof.endpoints();
                assert!(u != 0 && v != 0, "own edge ({u}, {v}) leaked to {}", o.to);
            }
        }
        assert!(out.is_empty(), "node 0 had only own edges to announce");
    }

    #[test]
    fn falsifier_keeps_the_truth_in_its_private_view() {
        let g = gen::cycle(5);
        let ks = KeyStore::generate(5, 5);
        let inner = correct_node(2, &g, &ks, 1);
        let node = FalsifierNode::new(inner, 1000, 3);
        // The lie is in the reports only: the discovered view still holds
        // both real incident edges.
        assert_eq!(node.inner.known_edge_count(), 2);
    }

    #[test]
    fn falsifier_coin_stream_is_a_pure_function_of_the_key() {
        for (seed, node, other) in [(0u64, 1usize, 2usize), (9, 4, 0), (1234, 7, 7)] {
            assert_eq!(
                falsify_flips(seed, node, other, 500),
                falsify_flips(seed, node, other, 500),
            );
        }
        // The per-mille bounds are sharp: 0 never flips, 1000 always does.
        for other in 0..50 {
            assert!(!falsify_flips(42, 3, other, 0));
            assert!(falsify_flips(42, 3, other, 1000));
        }
        // A fair-ish coin actually varies across the key space.
        let flips = (0..200).filter(|&other| falsify_flips(42, 3, other, 500)).count();
        assert!((50..150).contains(&flips), "500‰ flipped {flips}/200 measurements");
    }

    #[test]
    fn falsification_cannot_break_agreement_or_verification() {
        // Correct endpoints re-announce every suppressed edge, so the view
        // converges and all signatures verify (the falsifier's own chains
        // are genuine).
        let g = gen::harary(4, 10).unwrap();
        let report = Scenario::new(g, 2)
            .with_byzantine(
                3,
                ByzantineBehavior::FalsifyData {
                    flips_per_mille: 1000,
                    seed: 11,
                    partners: vec![],
                },
            )
            .sim()
            .run();
        assert!(report.agreement());
        assert_eq!(report.unanimous_verdict(), Some(Verdict::NotPartitionable));
    }

    #[test]
    fn falsifier_fabricates_edges_only_toward_byzantine_partners() {
        // Nodes 0 and 2 collude on a cycle (no real 0-2 edge); at p = 1 the
        // fabricated edge is announced and reaches every correct node.
        let g = gen::cycle(6);
        let participants = Scenario::new(g, 2)
            .with_byzantine(
                0,
                ByzantineBehavior::FalsifyData {
                    flips_per_mille: 1000,
                    seed: 5,
                    partners: vec![2],
                },
            )
            .with_byzantine(2, ByzantineBehavior::Silent)
            .sim()
            .participants();
        for p in participants.iter().filter(|p| p.is_correct()) {
            let view = p.nectar().discovered_graph();
            assert!(
                view.has_edge(0, 2),
                "node {} missed the fabricated edge",
                p.nectar().node_id()
            );
        }
    }

    #[test]
    #[should_panic(expected = "must be Byzantine")]
    fn falsifier_rejects_correct_partners() {
        let _ = Scenario::new(gen::cycle(6), 1)
            .with_byzantine(
                0,
                ByzantineBehavior::FalsifyData {
                    flips_per_mille: 1000,
                    seed: 5,
                    partners: vec![3],
                },
            )
            .build_participants();
    }

    #[test]
    fn participant_enum_dispatches_ids() {
        let g = gen::cycle(4);
        let ks = KeyStore::generate(4, 5);
        let correct = Participant::Correct(correct_node(2, &g, &ks, 1));
        assert_eq!(correct.id(), 2);
        assert!(correct.is_correct());
        let faulty = wrap_traffic_fault(correct_node(3, &g, &ks, 1), &ByzantineBehavior::Silent);
        assert_eq!(faulty.id(), 3);
        assert!(!faulty.is_correct());
        assert_eq!(faulty.nectar().node_id(), 3);
    }

    #[test]
    fn silent_fault_sends_nothing_ever() {
        let g = gen::cycle(4);
        let ks = KeyStore::generate(4, 5);
        let mut faulty =
            wrap_traffic_fault(correct_node(0, &g, &ks, 1), &ByzantineBehavior::Silent);
        for round in 1..4 {
            assert!(faulty.send(round).is_empty(), "round {round}");
        }
    }
}
