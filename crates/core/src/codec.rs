//! Binary wire codec for [`NectarMsg`]: the serialization a production
//! deployment would put on the TCP stream, matching the byte accounting of
//! [`crate::message`] exactly in [`WireFormat::PerEdgeChains`] mode.
//!
//! Frame layout:
//!
//! ```text
//! header   : u16 version | u16 format | u32 edge count      (8 bytes)
//! per edge : proof frame | chain frame                       (crypto codec)
//! ```

use bytes::{Buf, BufMut, BytesMut};

use nectar_crypto::codec::{CodecError, Decode, Encode, MAX_COLLECTION_LEN};
use nectar_crypto::{NeighborhoodProof, SignatureChain};

use crate::message::{NectarMsg, RelayedEdge, WireFormat, MSG_HEADER_BYTES};

/// Codec version tag (bumped on incompatible frame changes).
pub const CODEC_VERSION: u16 = 1;

fn format_tag(format: WireFormat) -> u16 {
    match format {
        WireFormat::PerEdgeChains => 0,
        WireFormat::BatchedChain => 1,
    }
}

fn format_from_tag(tag: u16) -> Result<WireFormat, CodecError> {
    match tag {
        0 => Ok(WireFormat::PerEdgeChains),
        1 => Ok(WireFormat::BatchedChain),
        _ => Err(CodecError::LengthOutOfBounds { decoding: "wire format tag", len: tag as usize }),
    }
}

impl Encode for RelayedEdge {
    fn encode(&self, buf: &mut BytesMut) {
        self.proof.encode(buf);
        self.chain.encode(buf);
    }

    fn encoded_len(&self) -> usize {
        self.proof.encoded_len() + self.chain.encoded_len()
    }
}

impl Decode for RelayedEdge {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let proof = NeighborhoodProof::decode(buf)?;
        let chain = SignatureChain::decode(buf)?;
        // A decoded edge starts a fresh sharing group: interning is an
        // in-process optimization, never a wire-visible property.
        Ok(RelayedEdge::new(proof, chain))
    }
}

impl Encode for NectarMsg {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u16(CODEC_VERSION);
        buf.put_u16(format_tag(self.format));
        buf.put_u32(self.edges.len() as u32);
        for edge in &self.edges {
            edge.encode(buf);
        }
    }

    fn encoded_len(&self) -> usize {
        MSG_HEADER_BYTES + self.edges.iter().map(Encode::encoded_len).sum::<usize>()
    }
}

impl Decode for NectarMsg {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        if buf.len() < MSG_HEADER_BYTES {
            return Err(CodecError::UnexpectedEnd { decoding: "NectarMsg header" });
        }
        let mut head = &buf[..MSG_HEADER_BYTES];
        *buf = &buf[MSG_HEADER_BYTES..];
        let version = head.get_u16();
        if version != CODEC_VERSION {
            return Err(CodecError::LengthOutOfBounds {
                decoding: "NectarMsg version",
                len: version as usize,
            });
        }
        let format = format_from_tag(head.get_u16())?;
        let count = head.get_u32() as usize;
        if count > MAX_COLLECTION_LEN {
            return Err(CodecError::LengthOutOfBounds { decoding: "NectarMsg edges", len: count });
        }
        let mut edges = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            edges.push(RelayedEdge::decode(buf)?);
        }
        Ok(NectarMsg { edges, format })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nectar_crypto::KeyStore;
    use nectar_net::WireSized;

    fn sample_msg(format: WireFormat) -> (KeyStore, NectarMsg) {
        let ks = KeyStore::generate(8, 5);
        let edges = [(0u16, 1u16), (1, 2), (2, 3)]
            .into_iter()
            .map(|(a, b)| {
                let proof = NeighborhoodProof::new(&ks.signer(a), &ks.signer(b));
                let digest = proof.digest();
                let chain = SignatureChain::new()
                    .extend(&ks.signer(a), &digest)
                    .extend(&ks.signer(4), &digest);
                RelayedEdge::new(proof, chain)
            })
            .collect();
        (ks, NectarMsg { edges, format })
    }

    #[test]
    fn round_trip_preserves_everything() {
        for format in [WireFormat::PerEdgeChains, WireFormat::BatchedChain] {
            let (ks, msg) = sample_msg(format);
            let bytes = msg.to_wire_bytes();
            let mut slice = bytes.as_slice();
            let decoded = NectarMsg::decode(&mut slice).expect("decodes");
            assert!(slice.is_empty());
            assert_eq!(decoded, msg);
            // Decoded material still verifies cryptographically.
            for edge in &decoded.edges {
                assert!(edge.proof.verify(&ks.verifier()));
                assert!(edge.chain.verify(&ks.verifier(), &edge.proof.digest()));
            }
        }
    }

    #[test]
    fn encoded_len_matches_actual_bytes() {
        let (_, msg) = sample_msg(WireFormat::PerEdgeChains);
        assert_eq!(msg.to_wire_bytes().len(), msg.encoded_len());
    }

    #[test]
    fn per_edge_accounting_matches_the_codec_exactly() {
        // The WireSized accounting used by the metrics equals the real
        // serialized size in per-edge mode, minus only the per-signature
        // signer-id duplication the minimal accounting omits inside proofs.
        let (_, msg) = sample_msg(WireFormat::PerEdgeChains);
        let accounted = msg.wire_bytes();
        let encoded = msg.encoded_len();
        // Each edge frame carries 2 extra signer ids inside the proof
        // (2 bytes each) plus the chain's 2-byte length prefix.
        assert_eq!(encoded, accounted + msg.edges.len() * 6);
    }

    #[test]
    fn wrong_version_is_rejected() {
        let (_, msg) = sample_msg(WireFormat::PerEdgeChains);
        let mut bytes = msg.to_wire_bytes();
        bytes[0] = 0xff;
        let mut slice = bytes.as_slice();
        assert!(NectarMsg::decode(&mut slice).is_err());
    }

    #[test]
    fn unknown_format_tag_is_rejected() {
        let (_, msg) = sample_msg(WireFormat::PerEdgeChains);
        let mut bytes = msg.to_wire_bytes();
        bytes[3] = 9;
        let mut slice = bytes.as_slice();
        assert!(NectarMsg::decode(&mut slice).is_err());
    }

    #[test]
    fn truncated_frames_error_cleanly() {
        let (_, msg) = sample_msg(WireFormat::PerEdgeChains);
        let bytes = msg.to_wire_bytes();
        for cut in [0, 4, MSG_HEADER_BYTES, MSG_HEADER_BYTES + 10, bytes.len() - 1] {
            let mut slice = &bytes[..cut];
            assert!(NectarMsg::decode(&mut slice).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn empty_message_round_trips() {
        let msg = NectarMsg { edges: Vec::new(), format: WireFormat::BatchedChain };
        let bytes = msg.to_wire_bytes();
        assert_eq!(bytes.len(), MSG_HEADER_BYTES);
        let mut slice = bytes.as_slice();
        assert_eq!(NectarMsg::decode(&mut slice).unwrap(), msg);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use nectar_crypto::KeyStore;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn arbitrary_messages_round_trip(
            edge_spec in proptest::collection::vec((0u16..6, 0u16..6, 0usize..4), 0..6),
        ) {
            let ks = KeyStore::generate(8, 3);
            let edges: Vec<RelayedEdge> = edge_spec
                .into_iter()
                .filter(|(a, b, _)| a != b)
                .map(|(a, b, hops)| {
                    let proof = NeighborhoodProof::new(&ks.signer(a), &ks.signer(b));
                    let digest = proof.digest();
                    let mut chain = SignatureChain::new();
                    for h in 0..hops {
                        chain = chain.extend(&ks.signer(h as u16), &digest);
                    }
                    RelayedEdge::new(proof, chain)
                })
                .collect();
            let msg = NectarMsg { edges, format: WireFormat::PerEdgeChains };
            let bytes = msg.to_wire_bytes();
            let mut slice = bytes.as_slice();
            prop_assert_eq!(NectarMsg::decode(&mut slice).unwrap(), msg);
            prop_assert!(slice.is_empty());
        }

        #[test]
        fn random_bytes_never_panic(bytes in proptest::collection::vec(proptest::num::u8::ANY, 0..400)) {
            let mut slice = bytes.as_slice();
            let _ = NectarMsg::decode(&mut slice);
        }
    }
}
