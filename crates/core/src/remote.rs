//! Running one scenario node over a real [`Transport`], and the portable
//! report it emits.
//!
//! A multi-process fleet (`nectar-cli node`) cannot hand `Decision`
//! structs across address spaces, so each node serializes a
//! [`NodeReport`] — verdict, accepted edges, traffic counters and the
//! node's delivered-message log — as versioned, line-oriented text on
//! stdout. The conformance harness unions the fleet's reports and
//! compares them against [`sync_fleet_reports`], the same scenario run on
//! the deterministic sync engine with the [`Recorded`] capture layer; per
//! `docs/DETERMINISM.md` the socket path is pinned by delivered-message
//! equivalence, not bit-identity.

use std::collections::BTreeMap;

use nectar_net::transport::{DeliveryLog, NodeDriver, Recorded, Transport, TransportError};
use nectar_net::{NodeId, SyncNetwork};

use crate::byzantine::Participant;
use crate::config::Decision;
use crate::runner::Scenario;

/// One node's portable summary of a detection run: everything the
/// conformance contract compares, in plain-old-data form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeReport {
    /// The reporting node.
    pub node: NodeId,
    /// Its decision (exact-connectivity path, [`decide`]).
    ///
    /// [`decide`]: crate::node::NectarNode::decide
    pub decision: Decision,
    /// The edges its discovered graph accepted, ascending.
    pub accepted_edges: Vec<(u16, u16)>,
    /// Bytes charged to this node's sends (accounting wire size).
    pub bytes_sent: u64,
    /// Messages this node sent.
    pub msgs_sent: u64,
    /// The `(from, to, digest)` triples delivered *to* this node.
    pub deliveries: DeliveryLog,
}

fn hex64(digest: &[u8; 32]) -> String {
    let mut s = String::with_capacity(64);
    for b in digest {
        use std::fmt::Write;
        let _ = write!(s, "{b:02x}");
    }
    s
}

fn unhex64(s: &str) -> Result<[u8; 32], String> {
    let bytes = s.as_bytes();
    if bytes.len() != 64 {
        return Err(format!("digest must be 64 hex chars, got {}", bytes.len()));
    }
    let nibble = |c: u8| -> Result<u8, String> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            _ => Err(format!("bad hex digit {:?}", c as char)),
        }
    };
    let mut out = [0u8; 32];
    for (i, pair) in bytes.chunks_exact(2).enumerate() {
        out[i] = (nibble(pair[0])? << 4) | nibble(pair[1])?;
    }
    Ok(out)
}

impl NodeReport {
    /// Serializes to the versioned line format (`nectar-node-report v1`
    /// ... `end`), self-delimiting so it can share a stream with other
    /// output.
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "nectar-node-report v1");
        let _ = writeln!(s, "node {}", self.node);
        let _ = writeln!(s, "verdict {}", self.decision.verdict);
        let _ = writeln!(s, "confirmed {}", self.decision.confirmed);
        let _ = writeln!(s, "reachable {}", self.decision.reachable);
        let _ = writeln!(s, "connectivity {}", self.decision.connectivity);
        let _ = writeln!(s, "bytes-sent {}", self.bytes_sent);
        let _ = writeln!(s, "msgs-sent {}", self.msgs_sent);
        let _ = writeln!(s, "edges {}", self.accepted_edges.len());
        for (a, b) in &self.accepted_edges {
            let _ = writeln!(s, "edge {a} {b}");
        }
        let _ = writeln!(s, "deliveries {}", self.deliveries.len());
        for (from, to, digest) in self.deliveries.entries() {
            let _ = writeln!(s, "delivery {from} {to} {}", hex64(digest));
        }
        let _ = writeln!(s, "end");
        s
    }

    /// Parses the first `nectar-node-report` block found in `text`
    /// (surrounding output is ignored).
    ///
    /// # Errors
    ///
    /// A description of the first malformed or missing line.
    pub fn parse(text: &str) -> Result<NodeReport, String> {
        let mut lines = text.lines().map(str::trim).skip_while(|l| *l != "nectar-node-report v1");
        match lines.next() {
            Some(_) => {}
            None => return Err("no `nectar-node-report v1` header found".into()),
        }
        let mut next_field = |key: &str| -> Result<String, String> {
            let line = lines.next().ok_or_else(|| format!("report ended before `{key}`"))?;
            line.strip_prefix(key)
                .and_then(|rest| rest.strip_prefix(' '))
                .map(str::to_owned)
                .ok_or_else(|| format!("expected `{key} ...`, got `{line}`"))
        };
        let parse_num = |key: &str, value: &str| -> Result<usize, String> {
            value.parse().map_err(|_| format!("bad {key} `{value}`"))
        };
        let node = parse_num("node", &next_field("node")?)?;
        let verdict = next_field("verdict")?.parse()?;
        let confirmed = match next_field("confirmed")?.as_str() {
            "true" => true,
            "false" => false,
            other => return Err(format!("bad confirmed `{other}`")),
        };
        let reachable = parse_num("reachable", &next_field("reachable")?)?;
        let connectivity = parse_num("connectivity", &next_field("connectivity")?)?;
        let bytes_sent = parse_num("bytes-sent", &next_field("bytes-sent")?)? as u64;
        let msgs_sent = parse_num("msgs-sent", &next_field("msgs-sent")?)? as u64;
        let edge_count = parse_num("edges", &next_field("edges")?)?;
        let mut accepted_edges = Vec::with_capacity(edge_count);
        for _ in 0..edge_count {
            let value = next_field("edge")?;
            let mut parts = value.split(' ');
            let a = parts
                .next()
                .and_then(|p| p.parse().ok())
                .ok_or_else(|| format!("bad edge `{value}`"))?;
            let b = parts
                .next()
                .and_then(|p| p.parse().ok())
                .ok_or_else(|| format!("bad edge `{value}`"))?;
            if parts.next().is_some() {
                return Err(format!("bad edge `{value}`"));
            }
            accepted_edges.push((a, b));
        }
        let delivery_count = parse_num("deliveries", &next_field("deliveries")?)?;
        let mut deliveries = DeliveryLog::new();
        for _ in 0..delivery_count {
            let value = next_field("delivery")?;
            let mut parts = value.split(' ');
            let mut field = |what: &str| {
                parts.next().ok_or_else(|| format!("delivery missing {what}: `{value}`"))
            };
            let from = parse_num("delivery from", field("from")?)?;
            let to = parse_num("delivery to", field("to")?)?;
            let digest = unhex64(field("digest")?)?;
            deliveries.record(from, to, digest);
        }
        match lines.next() {
            Some("end") => {}
            other => return Err(format!("expected `end`, got {other:?}")),
        }
        Ok(NodeReport {
            node,
            decision: Decision { verdict, confirmed, reachable, connectivity },
            accepted_edges,
            bytes_sent,
            msgs_sent,
            deliveries,
        })
    }
}

fn report_for(participant: &Participant, deliveries: DeliveryLog, sent: (u64, u64)) -> NodeReport {
    let nectar = participant.nectar();
    NodeReport {
        node: nectar.node_id(),
        decision: nectar.decide(),
        accepted_edges: nectar.discovered_edge_key(),
        bytes_sent: sent.0,
        msgs_sent: sent.1,
        deliveries,
    }
}

/// Runs node `node` of `scenario` over `transport` — the body of
/// `nectar-cli node`. Builds the full participant cast locally (the key
/// universe is a pure function of `n` and the key seed, so every process
/// derives identical keys), drives this node's participant for the
/// scenario's round count, then decides.
///
/// # Errors
///
/// The first transport, codec or protocol failure.
///
/// # Panics
///
/// Panics if `node` is out of range or the transport's peer list does not
/// match the topology neighborhood.
pub fn run_scenario_node<T: Transport>(
    scenario: &Scenario,
    node: NodeId,
    transport: T,
) -> Result<NodeReport, TransportError> {
    let n = scenario.topology().node_count();
    assert!(node < n, "node {node} out of range for n = {n}");
    let mut expected = scenario.topology().neighborhood(node);
    expected.sort_unstable();
    assert_eq!(
        transport.peers(),
        expected.as_slice(),
        "transport peers must be node {node}'s topology neighborhood"
    );
    let participant =
        scenario.build_participants().into_iter().nth(node).expect("participant for every node");
    let mut driver = NodeDriver::new(participant, transport);
    driver.run(scenario.config().effective_rounds())?;
    let (participant, log, sent, _illegal) = driver.into_parts();
    let bytes: u64 = sent.iter().map(|r| r.wire_bytes as u64).sum();
    let msgs = sent.len() as u64;
    Ok(report_for(&participant, log, (bytes, msgs)))
}

/// The reference side of the conformance contract: runs `scenario` on the
/// deterministic sync engine with every participant behind the
/// [`Recorded`] capture layer, and summarizes each node as the
/// [`NodeReport`] a socket fleet member would emit. Also returns the
/// fleet-wide delivery log (the union of the per-node logs).
pub fn sync_fleet_reports(scenario: &Scenario) -> (BTreeMap<NodeId, NodeReport>, DeliveryLog) {
    let recorded: Vec<Recorded<Participant>> =
        scenario.build_participants().into_iter().map(Recorded::new).collect();
    let mut net = SyncNetwork::new(recorded, scenario.topology().clone());
    net.run_rounds(scenario.config().effective_rounds());
    let (recorded, metrics) = net.into_parts();
    let mut fleet_log = DeliveryLog::new();
    let mut reports = BTreeMap::new();
    for (i, wrapped) in recorded.into_iter().enumerate() {
        let (participant, log) = wrapped.into_parts();
        fleet_log.merge(&log);
        let sent = (metrics.bytes_sent()[i], metrics.msgs_sent()[i]);
        reports.insert(i, report_for(&participant, log, sent));
    }
    (reports, fleet_log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::byzantine::ByzantineBehavior;
    use crate::config::Verdict;
    use nectar_graph::gen;

    fn cut_scenario() -> Scenario {
        // A 6-cycle with t = 2: κ = 2 ≤ t, so PARTITIONABLE everywhere.
        Scenario::new(gen::cycle(6), 2).with_key_seed(9)
    }

    #[test]
    fn report_text_round_trips() {
        let (reports, _) = sync_fleet_reports(&cut_scenario());
        for report in reports.values() {
            let text = report.to_text();
            assert_eq!(&NodeReport::parse(&text).unwrap(), report);
            // Self-delimiting: survives surrounding stream noise.
            let noisy = format!("starting up...\n{text}exiting\n");
            assert_eq!(&NodeReport::parse(&noisy).unwrap(), report);
        }
    }

    #[test]
    fn parse_rejects_malformed_reports() {
        let report = sync_fleet_reports(&cut_scenario()).0.remove(&0).unwrap();
        let text = report.to_text();
        assert!(NodeReport::parse("no header here").is_err());
        assert!(NodeReport::parse(&text.replace("verdict", "verdiet")).is_err());
        assert!(NodeReport::parse(&text.replace("confirmed false", "confirmed ?")).is_err());
        assert!(NodeReport::parse(text.strip_suffix("end\n").unwrap()).is_err());
        // A corrupted digest character.
        let bad = text.replacen("delivery 1 0 ", "delivery 1 0 zz", 1);
        assert!(NodeReport::parse(&bad).is_err());
    }

    #[test]
    fn sync_fleet_agrees_with_the_simulation() {
        let scenario = cut_scenario();
        let (reports, fleet_log) = sync_fleet_reports(&scenario);
        assert_eq!(reports.len(), 6);
        assert!(!fleet_log.is_empty());
        for report in reports.values() {
            assert_eq!(report.decision.verdict, Verdict::Partitionable);
            assert!(!report.decision.confirmed);
            assert_eq!(report.decision.reachable, 6);
        }
        // The fleet log is exactly the union of the per-node logs, and
        // every per-node log only contains deliveries to that node.
        let mut union = DeliveryLog::new();
        for (node, report) in &reports {
            assert!(report.deliveries.entries().all(|(_, to, _)| to == node));
            union.merge(&report.deliveries);
        }
        assert_eq!(union, fleet_log);
    }

    #[test]
    fn loopback_node_matches_the_sync_reference() {
        use nectar_net::transport::LoopbackHub;

        let scenario = cut_scenario().with_byzantine(1, ByzantineBehavior::Silent).with_byzantine(
            4,
            ByzantineBehavior::TwoFaced { silent_toward: [3].into_iter().collect() },
        );
        let (reference, reference_log) = sync_fleet_reports(&scenario);
        let g = scenario.topology().clone();
        let hub = LoopbackHub::new(g.node_count());
        let mut drivers: Vec<_> = scenario
            .build_participants()
            .into_iter()
            .enumerate()
            .map(|(i, p)| NodeDriver::new(p, hub.transport(i, g.neighborhood(i))))
            .collect();
        for round in 1..=scenario.config().effective_rounds() {
            for d in drivers.iter_mut() {
                d.begin_round(round).unwrap();
            }
            for d in drivers.iter_mut() {
                d.finish_round(round).unwrap();
            }
        }
        let mut fleet_log = DeliveryLog::new();
        for (i, driver) in drivers.into_iter().enumerate() {
            let (participant, log, sent, _) = driver.into_parts();
            fleet_log.merge(&log);
            let bytes: u64 = sent.iter().map(|r| r.wire_bytes as u64).sum();
            let report = report_for(&participant, log, (bytes, sent.len() as u64));
            assert_eq!(&report, &reference[&i], "node {i}");
        }
        assert_eq!(fleet_log, reference_log);
    }
}
