//! Scenario builder and runner: NECTAR over any topology with any Byzantine
//! cast, on any of the four runtimes — the execution harness behind the
//! paper's evaluation campaigns (§V).
//!
//! This is the entry point the experiments, examples and integration tests
//! share. A [`Scenario`] owns the topology, the protocol parameters and the
//! Byzantine assignment; [`Scenario::sim`] starts the
//! [`Simulation`](crate::sim::Simulation) builder that executes the
//! propagation rounds and collects every correct node's decision plus
//! traffic metrics into a [`RunReport`](crate::report::RunReport). The
//! [`Runtime`] enum selects the execution engine — deterministic sync,
//! thread-per-node, the event-driven loop that hosts 10k+-node topologies,
//! or the work-stealing parallel engine that spreads those topologies over
//! every core — and all four produce bit-identical results (enforced by
//! the cross-runtime equivalence property suite; the contract lives in
//! `docs/DETERMINISM.md`). The eleven legacy `run_*` methods remain as
//! `#[deprecated]` shims over the builder, returning the legacy
//! [`Outcome`] shape.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;
use std::time::Instant;

use nectar_crypto::{KeyStore, NeighborhoodProof, Verifier};
use nectar_graph::{connectivity, traversal, ConnectivityOracle, Fingerprint, Graph, OracleStats};
use nectar_net::{
    parallel_map, CompiledSchedule, Metrics, NodeId, PhaseProfile, Process, RoundSink, Scheduled,
    SyncNetwork,
};

use crate::byzantine::{
    falsify_flips, wrap_traffic_fault, ByzantineBehavior, EquivocatorNode, FalsifierNode,
    LateRevealNode, Participant,
};
use crate::config::{Decision, NectarConfig, Verdict};
use crate::node::NectarNode;

/// Which engine executes a scenario's propagation rounds. All four run the
/// same [`Participant`] code and produce bit-identical [`Outcome`]s; they
/// differ only in scheduling:
///
/// * [`Sync`](Runtime::Sync) polls every node every round — the simple
///   deterministic baseline for tests and small sweeps;
/// * [`Threaded`](Runtime::Threaded) gives every node an OS thread (the
///   paper's one-container-per-process flavour; practical to a few hundred
///   nodes);
/// * [`Event`](Runtime::Event) multiplexes all nodes on a binary-heap
///   event loop with `O(active events)` scheduling — hosting 10 000+-node
///   topologies in one process;
/// * [`Parallel`](Runtime::Parallel) keeps the event runtime's active-set
///   scheduling and fans each round's polls and committed deliveries out
///   across work-stealing workers (see `docs/DETERMINISM.md` for why the
///   per-round commit keeps this bit-identical). The worker count never
///   affects results, only wall-clock; the decision phase also fans its
///   per-view-class stages across the same number of workers (each
///   fan-out spawns a fresh scoped crew — there is no persistent pool).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Runtime {
    /// Deterministic single-threaded round engine.
    #[default]
    Sync,
    /// One OS thread per node, barrier-aligned rounds.
    Threaded,
    /// Single-threaded event loop over a binary-heap event queue.
    Event,
    /// Work-stealing worker pool over round-committed execution.
    Parallel {
        /// Worker threads; `0` means "match the machine"
        /// (see [`nectar_net::resolve_workers`]).
        workers: usize,
    },
}

impl Runtime {
    /// [`Parallel`](Runtime::Parallel) with the worker count matched to the
    /// machine.
    pub fn parallel() -> Runtime {
        Runtime::Parallel { workers: 0 }
    }

    /// Worker threads available to the decision phase under this runtime
    /// (1 = run it inline, as the single-threaded runtimes do).
    pub(crate) fn decision_workers(self) -> usize {
        match self {
            Runtime::Parallel { workers } => nectar_net::resolve_workers(workers),
            _ => 1,
        }
    }
}

impl std::fmt::Display for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Runtime::Sync => f.write_str("sync"),
            Runtime::Threaded => f.write_str("threaded"),
            Runtime::Event => f.write_str("event"),
            // An explicit worker count is part of the runtime's identity,
            // so it must survive the Display/FromStr round trip; the
            // match-the-machine default stays plain "parallel".
            Runtime::Parallel { workers: 0 } => f.write_str("parallel"),
            Runtime::Parallel { workers } => write!(f, "parallel:{workers}"),
        }
    }
}

impl std::str::FromStr for Runtime {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sync" => Ok(Runtime::Sync),
            "threaded" => Ok(Runtime::Threaded),
            "event" => Ok(Runtime::Event),
            "parallel" => Ok(Runtime::parallel()),
            other => match other.strip_prefix("parallel:") {
                Some(count) => match count.parse() {
                    Ok(workers) => Ok(Runtime::Parallel { workers }),
                    Err(_) => Err(format!("bad parallel worker count {count:?}")),
                },
                None => Err(format!(
                    "unknown runtime {other}; expected sync, threaded, event, parallel \
                     or parallel:<workers>"
                )),
            },
        }
    }
}

/// A fully described NECTAR execution: topology, parameters, Byzantine cast.
#[derive(Debug, Clone)]
pub struct Scenario {
    topology: Graph,
    config: NectarConfig,
    byzantine: BTreeMap<NodeId, ByzantineBehavior>,
    key_seed: u64,
}

impl Scenario {
    /// A scenario over `topology` tolerating up to `t` Byzantine nodes,
    /// with paper-default parameters.
    pub fn new(topology: Graph, t: usize) -> Self {
        let config = NectarConfig::new(topology.node_count(), t);
        Scenario { topology, config, byzantine: BTreeMap::new(), key_seed: 0x4E45_4354 }
    }

    /// Replaces the protocol configuration (its `n` must match the
    /// topology).
    ///
    /// # Panics
    ///
    /// Panics if `config.n` differs from the topology size.
    pub fn with_config(mut self, config: NectarConfig) -> Self {
        assert_eq!(config.n, self.topology.node_count(), "config.n must match the topology");
        self.config = config;
        self
    }

    /// Seeds the key universe (runs with equal seeds are bit-identical).
    pub fn with_key_seed(mut self, seed: u64) -> Self {
        self.key_seed = seed;
        self
    }

    /// Casts `node` as Byzantine with the given behaviour.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range, or if a `FictitiousEdges` /
    /// `LateReveal` behaviour names non-Byzantine accomplices at
    /// [`run`](Self::run) time.
    pub fn with_byzantine(mut self, node: NodeId, behavior: ByzantineBehavior) -> Self {
        assert!(node < self.topology.node_count(), "byzantine node {node} out of range");
        self.byzantine.insert(node, behavior);
        self
    }

    /// The Byzantine node set.
    pub fn byzantine_nodes(&self) -> BTreeSet<NodeId> {
        self.byzantine.keys().copied().collect()
    }

    /// The scenario's topology.
    pub fn topology(&self) -> &Graph {
        &self.topology
    }

    /// The protocol configuration.
    pub fn config(&self) -> &NectarConfig {
        &self.config
    }

    /// Builds the participant for every node — the exact processes a
    /// runtime executes, Byzantine wrappers included. Public so harnesses
    /// (custom runtimes, the quiescence-soundness audit suite) can drive
    /// them directly; any runtime that delivers messages in the canonical
    /// order of `docs/DETERMINISM.md` reproduces [`run`](Self::run)'s
    /// outcome bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if a `FictitiousEdges` / `LateReveal` behaviour names
    /// non-Byzantine accomplices.
    pub fn build_participants(&self) -> Vec<Participant> {
        self.build_participants_with(1)
    }

    /// [`build_participants`](Self::build_participants) with the per-node
    /// construction — neighborhood-proof signing plus Byzantine wrapping,
    /// ~20% of a large-n run — fanned over `workers` work-stealing workers
    /// (`0` = match the machine, `1` = inline). The key-universe derivation
    /// stays sequential (it is one seeded stream shared by every node), and
    /// [`parallel_map`] preserves node order, so the returned participants
    /// are bit-identical at any worker count (a determinism test enforces
    /// this). [`Simulation`](crate::sim::Simulation) selects this path
    /// automatically under [`Runtime::Parallel`].
    ///
    /// # Panics
    ///
    /// Panics if a `FictitiousEdges` / `LateReveal` behaviour names
    /// non-Byzantine accomplices.
    pub fn build_participants_with(&self, workers: usize) -> Vec<Participant> {
        let n = self.topology.node_count();
        let keys = KeyStore::generate(n, self.key_seed);
        let verifier = keys.verifier();
        parallel_map((0..n).collect(), workers, |i| self.build_participant(i, &keys, &verifier))
    }

    /// Builds the participant for node `i` — the per-node body of
    /// [`build_participants_with`], independent across nodes.
    fn build_participant(&self, i: NodeId, keys: &KeyStore, verifier: &Verifier) -> Participant {
        let proofs: BTreeMap<NodeId, NeighborhoodProof> = self
            .topology
            .neighbors(i)
            .map(|j| (j, NeighborhoodProof::new(&keys.signer(i as u16), &keys.signer(j as u16))))
            .collect();
        let mut node = NectarNode::new(
            i,
            self.config.clone(),
            keys.signer(i as u16),
            verifier.clone(),
            proofs,
        );
        match self.byzantine.get(&i) {
            None => Participant::Correct(node),
            Some(
                b @ (ByzantineBehavior::Silent
                | ByzantineBehavior::CrashAfter { .. }
                | ByzantineBehavior::TwoFaced { .. }),
            ) => wrap_traffic_fault(node, b),
            Some(ByzantineBehavior::HideEdges { toward }) => {
                for &v in toward {
                    node.hide_edge_to(v);
                }
                Participant::Correct(node)
            }
            Some(ByzantineBehavior::FictitiousEdges { partners }) => {
                for &p in partners {
                    assert!(
                        self.byzantine.contains_key(&p),
                        "fictitious edge partner {p} must be Byzantine (§II: proofs \
                         involving a correct node cannot be forged)"
                    );
                    if p != i && !self.topology.has_edge(i, p) {
                        node.announce_extra_proof(NeighborhoodProof::new(
                            &keys.signer(i as u16),
                            &keys.signer(p as u16),
                        ));
                    }
                }
                Participant::Correct(node)
            }
            Some(ByzantineBehavior::LateReveal { partner, others }) => {
                assert!(
                    self.byzantine.contains_key(partner),
                    "late-reveal partner {partner} must be Byzantine"
                );
                for o in others {
                    assert!(
                        self.byzantine.contains_key(o),
                        "late-reveal accomplice {o} must be Byzantine"
                    );
                }
                let proof =
                    NeighborhoodProof::new(&keys.signer(i as u16), &keys.signer(*partner as u16));
                let partner_signer = keys.signer(*partner as u16);
                let other_signers: Vec<_> = others.iter().map(|&o| keys.signer(o as u16)).collect();
                let self_signer = keys.signer(i as u16);
                let mut chain_signers = vec![&partner_signer];
                chain_signers.extend(other_signers.iter());
                chain_signers.push(&self_signer);
                Participant::LateReveal(LateRevealNode::new(node, proof, &chain_signers))
            }
            Some(ByzantineBehavior::Equivocate { victims }) => {
                Participant::Equivocator(EquivocatorNode::new(node, victims.clone()))
            }
            Some(ByzantineBehavior::FalsifyData { flips_per_mille, seed, partners }) => {
                // Fabricated "up" measurements first (they ride the normal
                // announcement machinery), then the send-time "down" flips.
                for &p in partners {
                    assert!(
                        self.byzantine.contains_key(&p),
                        "falsified measurement partner {p} must be Byzantine (§II: proofs \
                         involving a correct node cannot be forged)"
                    );
                    if p != i
                        && !self.topology.has_edge(i, p)
                        && falsify_flips(*seed, i, p, *flips_per_mille)
                    {
                        node.announce_extra_proof(NeighborhoodProof::new(
                            &keys.signer(i as u16),
                            &keys.signer(p as u16),
                        ));
                    }
                }
                Participant::Falsifier(FalsifierNode::new(node, *flips_per_mille, *seed))
            }
        }
    }

    /// The scenario's key-universe seed.
    pub(crate) fn key_seed(&self) -> u64 {
        self.key_seed
    }

    /// In-place seed override — lets a multi-epoch simulation re-seed one
    /// working clone per session instead of deep-cloning the topology and
    /// cast every epoch.
    pub(crate) fn set_key_seed(&mut self, seed: u64) {
        self.key_seed = seed;
    }

    /// Executes the propagation rounds on the chosen runtime, returning the
    /// final participants and traffic metrics — the one place all runtime
    /// dispatch happens. Every committed round is reported to `sink`, in
    /// the canonical order of `docs/DETERMINISM.md`, identically on all
    /// four engines.
    pub(crate) fn propagate(
        &self,
        runtime: Runtime,
        schedule: Option<&Arc<CompiledSchedule>>,
        sink: &mut dyn RoundSink,
    ) -> (Vec<Participant>, Metrics) {
        let participants = self.build_participants_with(runtime.decision_workers());
        let rounds = self.config.effective_rounds();
        match schedule {
            None => dispatch(runtime, participants, &self.topology, rounds, sink),
            Some(compiled) => {
                // Same dispatch, with every participant behind the schedule
                // wrapper; the wrappers are pure functions of the shared
                // compiled schedule, so engine equivalence is untouched.
                let wrapped = Scheduled::wrap_all(participants, compiled);
                let (wrapped, mut metrics) =
                    dispatch(runtime, wrapped, &self.topology, rounds, sink);
                let drops = wrapped.iter().map(Scheduled::drops).sum();
                metrics.record_schedule_drops(drops);
                (wrapped.into_iter().map(Scheduled::into_inner).collect(), metrics)
            }
        }
    }

    /// Runs the scenario on the deterministic synchronous engine.
    #[deprecated(note = "use `scenario.sim().run()` — see docs/DETERMINISM.md for the migration")]
    pub fn run(&self) -> Outcome {
        self.sim().run().into_outcome()
    }

    /// Runs the scenario with a caller-supplied [`ConnectivityOracle`], so
    /// repeated executions — epoch monitoring, experiment sweeps over the
    /// same topology — share cached verdicts across runs. The returned
    /// [`Outcome::oracle`] counters cover this run only.
    #[deprecated(note = "use `scenario.sim().oracle(&mut oracle).run()`")]
    pub fn run_with_oracle(&self, oracle: &mut ConnectivityOracle) -> Outcome {
        self.sim().oracle(oracle).run().into_outcome()
    }

    /// Runs the scenario on the named [`Runtime`].
    #[deprecated(note = "use `scenario.sim().runtime(runtime).run()`")]
    pub fn run_on(&self, runtime: Runtime) -> Outcome {
        self.sim().runtime(runtime).run().into_outcome()
    }

    /// [`run_on`](Self::run_on) with a caller-supplied oracle.
    #[deprecated(note = "use `scenario.sim().runtime(runtime).oracle(&mut oracle).run()`")]
    pub fn run_on_with_oracle(&self, runtime: Runtime, oracle: &mut ConnectivityOracle) -> Outcome {
        self.sim().runtime(runtime).oracle(oracle).run().into_outcome()
    }

    /// Runs the scenario and returns only the traffic metrics, skipping the
    /// decision phase.
    #[deprecated(note = "use `scenario.sim().metrics_only().run()`")]
    pub fn run_metrics_only(&self) -> Metrics {
        self.sim().metrics_only().run().into_metrics()
    }

    /// [`run_metrics_only`](Self::run_metrics_only) on the named runtime.
    #[deprecated(note = "use `scenario.sim().runtime(runtime).metrics_only().run()`")]
    pub fn run_metrics_only_on(&self, runtime: Runtime) -> Metrics {
        self.sim().runtime(runtime).metrics_only().run().into_metrics()
    }

    /// Runs the scenario and returns the raw participants (with their full
    /// protocol state) instead of summarized decisions.
    #[deprecated(note = "use `scenario.sim().participants()`")]
    pub fn run_participants(&self) -> Vec<Participant> {
        self.sim().participants()
    }

    /// Runs the scenario on the thread-per-node runtime (same results, real
    /// concurrency).
    #[deprecated(note = "use `scenario.sim().runtime(Runtime::Threaded).run()`")]
    pub fn run_threaded(&self) -> Outcome {
        self.sim().runtime(Runtime::Threaded).run().into_outcome()
    }

    /// [`run_threaded`](Self::run_threaded) with a caller-supplied oracle.
    #[deprecated(
        note = "use `scenario.sim().runtime(Runtime::Threaded).oracle(&mut oracle).run()`"
    )]
    pub fn run_threaded_with_oracle(&self, oracle: &mut ConnectivityOracle) -> Outcome {
        self.sim().runtime(Runtime::Threaded).oracle(oracle).run().into_outcome()
    }

    /// Runs the scenario on the event-driven runtime — the engine for
    /// topologies far beyond thread-per-node scale (10k+ nodes in one
    /// process), with outcomes bit-identical to the sync engine's.
    #[deprecated(note = "use `scenario.sim().runtime(Runtime::Event).run()`")]
    pub fn run_event_driven(&self) -> Outcome {
        self.sim().runtime(Runtime::Event).run().into_outcome()
    }

    /// [`run_event_driven`](Self::run_event_driven) with a caller-supplied
    /// oracle.
    #[deprecated(note = "use `scenario.sim().runtime(Runtime::Event).oracle(&mut oracle).run()`")]
    pub fn run_event_driven_with_oracle(&self, oracle: &mut ConnectivityOracle) -> Outcome {
        self.sim().runtime(Runtime::Event).oracle(oracle).run().into_outcome()
    }

    /// The decision phase as a standalone, repeatable pass over borrowed
    /// participants: groups their views into classes, answers each class's
    /// `κ ≤ t` question through `oracle`, and returns every correct node's
    /// decision plus this pass's share of the oracle counters — identical
    /// decisions and counters to the decision phase of a full
    /// [`Simulation::run`](crate::sim::Simulation::run) over the same
    /// participants. Public so steady-state consumers — epoch monitors
    /// re-deciding an unchanged fleet, the `collect_scaling` bench — can
    /// re-run decisions without re-running dissemination. `workers` fans
    /// the per-class stages over that many work-stealing workers (`1` =
    /// inline, the non-parallel runtimes' setting).
    pub fn collect_decisions(
        &self,
        participants: &[Participant],
        oracle: &mut ConnectivityOracle,
        workers: usize,
    ) -> (BTreeMap<NodeId, Decision>, OracleStats) {
        self.collect(participants, oracle, workers, None, |_, _| {})
    }

    /// The decision phase: groups the surviving participants' views into
    /// classes (Lemma 2), answers each class's `κ ≤ t` question through the
    /// oracle, and emits every correct node's decision — in ascending node
    /// order, reporting each to `on_decided` as it commits (the per-node
    /// stream behind [`RunObserver::node_decided`](crate::sim::RunObserver)).
    /// Returns the decisions plus this run's share of the oracle counters.
    /// When `profile` is supplied, the four stage timings are written into
    /// it (wall clock — nondeterministic, never part of the canonical
    /// outputs).
    pub(crate) fn collect(
        &self,
        participants: &[Participant],
        oracle: &mut ConnectivityOracle,
        workers: usize,
        mut profile: Option<&mut PhaseProfile>,
        mut on_decided: impl FnMut(NodeId, &Decision),
    ) -> (BTreeMap<NodeId, Decision>, OracleStats) {
        let mut stage_start = Instant::now();
        let lap = |stage_start: &mut Instant| -> u64 {
            let now = Instant::now();
            let micros = now.duration_since(*stage_start).as_micros() as u64;
            *stage_start = now;
            micros
        };
        let byzantine = self.byzantine_nodes();
        let before = *oracle.stats();
        let n = self.config.n;
        let t = self.config.t;
        // Correct nodes that ended up with identical G_i (the common case,
        // per Lemma 2) form one *view class*: the view's fingerprint and
        // component sizes are derived once per class from the edge key
        // alone, in O(m_view), and every member's decision follows —
        // `reachable` is the size of the member's component, the `κ ≤ t`
        // answer comes from the shared oracle. Lemma 2 also makes classes
        // *independent* of each other, so everything per-class — the edge
        // keys, the fingerprint + component derivation, and the view-graph
        // materializations — fans out over [`parallel_map`]'s work-stealing
        // pool when the executing runtime brought workers along
        // (`workers > 1`, i.e. [`Runtime::Parallel`]); the single-threaded
        // runtimes run the identical code inline.
        //
        // Only the oracle interaction itself stays sequential: each member
        // still issues its own query in node order (the first of a class
        // pays, the rest hit the verdict cache), so the per-node oracle
        // counters are identical to calling [`NectarNode::decide_with`]
        // node by node — but a 10 000 node fleet no longer pays 10 000
        // full-graph constructions and BFS passes: a view graph is only
        // materialized when the oracle cannot answer its fingerprint from
        // cache (probed up front via the non-counting
        // [`ConnectivityOracle::peek`]).
        let correct: Vec<&crate::node::NectarNode> = participants
            .iter()
            .filter(|p| !byzantine.contains(&p.nectar().node_id()))
            .map(|p| p.nectar())
            .collect();
        // Stages 1+2 (sequential, O(n) total): group nodes into view
        // classes by their *incrementally maintained* fingerprints
        // ([`NectarNode::view_fingerprint`], kept current by every view
        // mutation), in first-seen node order. This is the read that used
        // to dominate the phase: previously every node materialized its
        // O(m_view) canonical edge key just so identical views could be
        // deduplicated, an O(n · m) sweep on a converged fleet. Now
        // classification reads one 8-byte digest per node. Grouping by
        // fingerprint rather than exact edge key folds in two extra
        // equivalences, both observationally pure: views differing only in
        // filtered-out edges (out-of-range endpoints, self-loops) share a
        // class — every decision input (component sizes, the oracle's
        // fingerprint-keyed answer) already ignored those edges — and a
        // 2⁻⁶⁴ XOR collision could merge distinct views, the same accepted
        // failure class the fingerprint-keyed oracle cache has always had
        // (see `Fingerprint`'s docs and docs/DETERMINISM.md §7).
        let mut class_index: HashMap<Fingerprint, usize> = HashMap::new();
        let mut class_reps: Vec<&crate::node::NectarNode> = Vec::new();
        let mut node_class: Vec<usize> = Vec::with_capacity(correct.len());
        for node in &correct {
            let idx = *class_index.entry(node.view_fingerprint()).or_insert_with(|| {
                class_reps.push(node);
                class_reps.len() - 1
            });
            node_class.push(idx);
        }
        if let Some(p) = profile.as_deref_mut() {
            p.classify_micros = lap(&mut stage_start);
        }
        // Stage 3 (parallel): per-class edge key + component sizes, derived
        // once from each class's *representative* (its first member in node
        // order — any member works, they share the view). The edge key is
        // retained so any later materialization planning is per class by
        // construction: stage 4 and the stage-5 fallback both read
        // `class_keys[c]`, so a class's view graph is built at most once no
        // matter how many members or retries touch it.
        struct ViewClass {
            fingerprint: Fingerprint,
            /// Materialized only for oracle cache misses (stage 4).
            graph: Option<Graph>,
            /// Component size per vertex named by the view's edges;
            /// unnamed vertices are implicit singletons.
            component_size: BTreeMap<NodeId, usize>,
        }
        let (class_keys, mut classes): (Vec<Vec<(u16, u16)>>, Vec<ViewClass>) =
            parallel_map(class_reps, workers, |node| {
                let key = node.discovered_edge_key();
                let component_size = view_component_sizes(&key, n);
                let class =
                    ViewClass { fingerprint: node.view_fingerprint(), graph: None, component_size };
                (key, class)
            })
            .into_iter()
            .unzip();
        if let Some(p) = profile.as_deref_mut() {
            p.derive_micros = lap(&mut stage_start);
        }
        // Stage 4 (parallel): pre-materialize the view graphs the oracle
        // cannot answer from cache. `peek` records nothing — the counted
        // queries replay per node in stage 5.
        let misses: Vec<usize> = (0..classes.len())
            .filter(|&c| oracle.peek(classes[c].fingerprint, t).is_none())
            .collect();
        let graphs = parallel_map(
            misses.iter().map(|&c| &class_keys[c]).collect(),
            workers,
            |key: &Vec<(u16, u16)>| view_graph(key, n),
        );
        for (&c, graph) in misses.iter().zip(graphs) {
            classes[c].graph = Some(graph);
        }
        if let Some(p) = profile.as_deref_mut() {
            p.materialize_micros = lap(&mut stage_start);
        }
        // Stage 5 (sequential): per-node decisions in node order, each
        // issuing its own oracle query. The lazy fallback covers the rare
        // case where the bounded verdict cache flushed between the stage-4
        // peek and this query. This per-node order is the canonical
        // decision-commit order every observer stream reproduces.
        let mut decisions = BTreeMap::new();
        for (node, &c) in correct.iter().zip(&node_class) {
            let class = &mut classes[c];
            let answer = match oracle.cached_answer(class.fingerprint, t) {
                Some(answer) => answer,
                None => {
                    let graph = class.graph.get_or_insert_with(|| view_graph(&class_keys[c], n));
                    oracle.answer_fingerprinted(class.fingerprint, graph, t)
                }
            };
            let reachable = class.component_size.get(&node.node_id()).copied().unwrap_or(1);
            let decision = Decision::from_view(n, t, reachable, answer.kappa.report());
            on_decided(node.node_id(), &decision);
            decisions.insert(node.node_id(), decision);
        }
        if let Some(p) = profile.as_deref_mut() {
            p.decide_micros = lap(&mut stage_start);
        }
        (decisions, oracle.stats().since(&before))
    }
}

/// Materializes a view's [`Graph`] from its canonical edge key — exactly
/// the graph `NectarNode::discovered_graph` builds (same edge set, same
/// insertion order), without needing the node in hand.
fn view_graph(key: &[(u16, u16)], n: usize) -> Graph {
    let mut g = Graph::empty(n);
    for (u, v) in view_edges(key, n) {
        g.add_edge(u, v).expect("bounded endpoints, no self-loops");
    }
    g
}

/// The in-range, non-loop edges of a discovered-view edge key — exactly the
/// edges `NectarNode::discovered_graph` would keep.
fn view_edges(key: &[(u16, u16)], n: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
    key.iter()
        .map(|&(u, v)| (u as usize, v as usize))
        .filter(move |&(u, v)| u < n && v < n && u != v)
}

/// Component sizes of the subgraph induced by a view's edges, keyed by
/// vertex, via union-find over only the vertices the edges name — O(m α)
/// regardless of `n`. Vertices absent from the map are isolated (size 1).
fn view_component_sizes(key: &[(u16, u16)], n: usize) -> BTreeMap<NodeId, usize> {
    let mut index: BTreeMap<NodeId, usize> = BTreeMap::new();
    let mut parent: Vec<usize> = Vec::new();
    fn find(parent: &mut Vec<usize>, mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]]; // path halving
            x = parent[x];
        }
        x
    }
    let slot = |v: usize, parent: &mut Vec<usize>, index: &mut BTreeMap<NodeId, usize>| {
        *index.entry(v).or_insert_with(|| {
            parent.push(parent.len());
            parent.len() - 1
        })
    };
    for (u, v) in view_edges(key, n) {
        let a = slot(u, &mut parent, &mut index);
        let b = slot(v, &mut parent, &mut index);
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        parent[ra] = rb;
    }
    let mut root_size = vec![0usize; parent.len()];
    for &i in index.values() {
        root_size[find(&mut parent, i)] += 1;
    }
    index.iter().map(|(&v, &i)| (v, root_size[find(&mut parent, i)])).collect()
}

/// Runs `procs` for `rounds` on the chosen engine — the single runtime
/// dispatch shared by scheduled (wrapper-clad) and plain executions.
fn dispatch<P>(
    runtime: Runtime,
    procs: Vec<P>,
    topology: &Graph,
    rounds: usize,
    sink: &mut dyn RoundSink,
) -> (Vec<P>, Metrics)
where
    P: Process + Send + 'static,
    P::Msg: Send + 'static,
{
    match runtime {
        Runtime::Sync => {
            let mut net = SyncNetwork::new(procs, topology.clone());
            net.run_rounds_with(rounds, sink);
            net.into_parts()
        }
        Runtime::Threaded => nectar_net::run_threaded_with(procs, topology, rounds, sink),
        Runtime::Event => nectar_net::run_event_driven_with(procs, topology, rounds, sink),
        Runtime::Parallel { workers } => {
            nectar_net::run_parallel_with(procs, topology, rounds, workers, sink)
        }
    }
}

/// Everything observable after a scenario execution.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Each correct node's decision.
    pub decisions: BTreeMap<NodeId, Decision>,
    /// Traffic counters (all nodes, Byzantine included).
    pub metrics: Metrics,
    /// The Byzantine cast.
    pub byzantine: BTreeSet<NodeId>,
    /// The ground-truth topology (for property checks).
    pub topology: Graph,
    /// Connectivity-oracle counters for this run's decision phase (cache
    /// hits across identical views, bounded-flow early exits, …).
    pub oracle: OracleStats,
}

impl Outcome {
    /// Whether all correct nodes decided the same verdict (the Agreement
    /// property of Definition 3).
    pub fn agreement(&self) -> bool {
        let mut verdicts = self.decisions.values().map(|d| d.verdict);
        match verdicts.next() {
            None => true,
            Some(first) => verdicts.all(|v| v == first),
        }
    }

    /// The common verdict if Agreement holds.
    pub fn unanimous_verdict(&self) -> Option<Verdict> {
        self.agreement().then(|| self.decisions.values().next().map(|d| d.verdict)).flatten()
    }

    /// Ground truth: is the Byzantine cast a vertex cut of the topology
    /// (i.e. is the subgraph of correct nodes partitioned)?
    pub fn byzantine_cast_is_vertex_cut(&self) -> bool {
        let cut: Vec<NodeId> = self.byzantine.iter().copied().collect();
        traversal::is_partitioned_without(&self.topology, &cut)
    }

    /// Ground truth for the Validity property: does *some subset* of the
    /// Byzantine cast form a vertex cut of `G`? This is the reading of
    /// Theorem 2's proof: when a Byzantine node `b0` has no correct
    /// neighbor, `V_b \ {b0}` is a vertex cut separating `b0`, even though
    /// removing all of `V_b` leaves the correct nodes connected. Any subset
    /// cut either separates two correct nodes (then the full cast does too)
    /// or cuts a Byzantine node off the correct component (then the cast
    /// minus that node does), so checking those t + 1 candidates is
    /// exhaustive.
    pub fn byzantine_cast_can_cut(&self) -> bool {
        if self.byzantine_cast_is_vertex_cut() {
            return true;
        }
        let cast: Vec<NodeId> = self.byzantine.iter().copied().collect();
        cast.iter().any(|&b| {
            let others: Vec<NodeId> = cast.iter().copied().filter(|&x| x != b).collect();
            traversal::is_partitioned_without(&self.topology, &others)
        })
    }

    /// Ground truth: the topology's real vertex connectivity.
    pub fn true_connectivity(&self) -> usize {
        connectivity::vertex_connectivity(&self.topology)
    }

    /// Fraction of correct nodes whose verdict matches `expected` — the
    /// "decision success rate" of Fig. 8.
    pub fn success_rate(&self, expected: Verdict) -> f64 {
        if self.decisions.is_empty() {
            return 1.0;
        }
        let ok = self.decisions.values().filter(|d| d.verdict == expected).count();
        ok as f64 / self.decisions.len() as f64
    }

    /// Mean bytes sent per node — the y-axis of Figs. 3–7.
    pub fn mean_kb_sent_per_node(&self) -> f64 {
        self.metrics.mean_bytes_sent_per_node() / 1024.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nectar_graph::gen;

    #[test]
    fn clean_ring_reaches_unanimous_not_partitionable() {
        let out = Scenario::new(gen::cycle(6), 1).sim().run();
        assert!(out.agreement());
        assert_eq!(out.unanimous_verdict(), Some(Verdict::NotPartitionable));
        assert_eq!(out.decisions().len(), 6);
    }

    #[test]
    fn threaded_run_matches_sync_run() {
        let scenario = Scenario::new(gen::harary(4, 10).unwrap(), 2).with_key_seed(5);
        let a = scenario.sim().run();
        let b = scenario.sim().runtime(Runtime::Threaded).run();
        assert_eq!(a.decisions(), b.decisions());
        assert_eq!(a.metrics(), b.metrics());
    }

    #[test]
    fn event_driven_run_matches_sync_run() {
        let scenario = Scenario::new(gen::harary(4, 10).unwrap(), 2).with_key_seed(5);
        let a = scenario.sim().run();
        let b = scenario.sim().runtime(Runtime::Event).run();
        assert_eq!(a.decisions(), b.decisions());
        assert_eq!(a.metrics(), b.metrics());
        assert_eq!(a.oracle(), b.oracle());
    }

    #[test]
    fn event_driven_run_matches_sync_under_spontaneous_byzantine_sends() {
        // LateReveal sends *without* receiving first: the quiescence hints
        // must keep it scheduled or the reveal is lost on the event loop.
        let build = || {
            Scenario::new(gen::cycle(7), 2)
                .with_byzantine(0, ByzantineBehavior::LateReveal { partner: 1, others: vec![] })
                .with_byzantine(1, ByzantineBehavior::Silent)
                .with_key_seed(9)
        };
        let a = build().sim().run();
        let b = build().sim().runtime(Runtime::Event).run();
        assert_eq!(a.decisions(), b.decisions());
        assert_eq!(a.metrics(), b.metrics());
    }

    #[test]
    fn runtime_names_round_trip() {
        for rt in [
            Runtime::Sync,
            Runtime::Threaded,
            Runtime::Event,
            Runtime::parallel(),
            Runtime::Parallel { workers: 7 },
        ] {
            assert_eq!(rt.to_string().parse::<Runtime>().unwrap(), rt);
        }
        // An explicit worker count is carried in the name; the
        // match-the-machine default keeps the historical plain form.
        assert_eq!(Runtime::Parallel { workers: 7 }.to_string(), "parallel:7");
        assert_eq!(Runtime::parallel().to_string(), "parallel");
        assert!("warp".parse::<Runtime>().is_err());
        assert!("parallel:".parse::<Runtime>().is_err());
        assert!("parallel:x".parse::<Runtime>().is_err());
        assert_eq!(Runtime::default(), Runtime::Sync);
    }

    #[test]
    fn parallel_run_matches_sync_run_at_any_worker_count() {
        let scenario = Scenario::new(gen::harary(4, 12).unwrap(), 2)
            .with_byzantine(2, ByzantineBehavior::TwoFaced { silent_toward: [7, 8].into() })
            .with_key_seed(5);
        let a = scenario.sim().run();
        for workers in [0, 1, 2, 5] {
            let b = scenario.sim().workers(workers).run();
            assert_eq!(a.decisions(), b.decisions(), "{workers} workers");
            assert_eq!(a.metrics(), b.metrics(), "{workers} workers");
            assert_eq!(a.oracle(), b.oracle(), "{workers} workers");
        }
    }

    #[test]
    fn parallel_run_matches_sync_under_spontaneous_byzantine_sends() {
        // LateReveal sends *without* receiving first: the quiescence hints
        // must keep it scheduled or the reveal is lost on the parallel
        // engine's active-set schedule.
        let build = || {
            Scenario::new(gen::cycle(7), 2)
                .with_byzantine(0, ByzantineBehavior::LateReveal { partner: 1, others: vec![] })
                .with_byzantine(1, ByzantineBehavior::Silent)
                .with_key_seed(9)
        };
        let a = build().sim().run();
        let b = build().sim().workers(3).run();
        assert_eq!(a.decisions(), b.decisions());
        assert_eq!(a.metrics(), b.metrics());
    }

    #[test]
    fn participants_are_bit_identical_at_any_build_worker_count() {
        // build_participants_with fans proof signing across the pool; the
        // fan-out must never change what is built. Debug formatting covers
        // every field of every participant (keys, proofs, wrappers), so
        // equal strings mean bit-identical construction.
        let scenario = Scenario::new(gen::harary(4, 40).unwrap(), 2)
            .with_byzantine(2, ByzantineBehavior::TwoFaced { silent_toward: [7, 8].into() })
            .with_byzantine(9, ByzantineBehavior::LateReveal { partner: 2, others: vec![] })
            .with_key_seed(11);
        let reference: Vec<String> =
            scenario.build_participants().iter().map(|p| format!("{p:?}")).collect();
        assert_eq!(reference.len(), 40);
        for workers in [0, 2, 3, 7] {
            let built: Vec<String> = scenario
                .build_participants_with(workers)
                .iter()
                .map(|p| format!("{p:?}"))
                .collect();
            assert_eq!(built, reference, "{workers} workers");
        }
    }

    #[test]
    fn silent_byzantine_cannot_fake_a_partition_in_a_2t_connected_graph() {
        // κ(H_{4,10}) = 4 = 2t with t = 2: Lemma 1 says everyone decides
        // NOT_PARTITIONABLE no matter what the Byzantine nodes do.
        let g = gen::harary(4, 10).unwrap();
        let out = Scenario::new(g, 2)
            .with_byzantine(3, ByzantineBehavior::Silent)
            .with_byzantine(7, ByzantineBehavior::Silent)
            .sim()
            .run();
        assert!(out.agreement());
        assert_eq!(out.unanimous_verdict(), Some(Verdict::NotPartitionable));
    }

    #[test]
    fn star_hub_byzantine_is_detected_as_partitionable() {
        // Fig. 1b: the hub is a cut vertex; κ = 1 ≤ t.
        let out =
            Scenario::new(gen::star(6), 1).with_byzantine(0, ByzantineBehavior::Silent).sim().run();
        assert!(out.agreement());
        assert_eq!(out.unanimous_verdict(), Some(Verdict::Partitionable));
        // The hub's silence means leaves saw nothing beyond themselves:
        // everyone confirms a real partition.
        assert!(out.decisions().values().all(|d| d.confirmed));
        assert!(out.byzantine_cast_is_vertex_cut());
    }

    #[test]
    fn batched_view_class_decisions_match_per_node_decide_with() {
        // collect() groups identical views (Lemma 2) and derives each
        // decision from the class's shared graph/components; the result
        // must equal node-by-node decide_with, oracle counters included.
        let scenario = Scenario::new(gen::harary(4, 12).unwrap(), 2)
            .with_byzantine(2, ByzantineBehavior::TwoFaced { silent_toward: [7, 8].into() })
            .with_byzantine(9, ByzantineBehavior::Silent)
            .with_key_seed(3);
        let out = scenario.sim().run();
        let participants = scenario.sim().participants();
        let mut oracle = ConnectivityOracle::new();
        for p in participants.iter().filter(|p| p.is_correct()) {
            let expected = p.nectar().decide_with(&mut oracle);
            assert_eq!(out.decisions()[&p.nectar().node_id()], expected);
        }
        assert_eq!(out.oracle().queries, oracle.stats().queries);
        assert_eq!(out.oracle().cache_hits, oracle.stats().cache_hits);
    }

    #[test]
    fn outcome_reports_oracle_cache_sharing_across_identical_views() {
        // Clean ring: all 6 correct views are identical (Lemma 2), so the
        // decision phase pays for one connectivity query and hits the cache
        // five times.
        let out = Scenario::new(gen::cycle(6), 1).sim().run();
        assert_eq!(out.oracle().queries, 6);
        assert_eq!(out.oracle().cache_hits, 5);
    }

    #[test]
    fn success_rate_counts_expected_verdicts() {
        let out = Scenario::new(gen::cycle(5), 1).sim().run();
        assert_eq!(out.success_rate(Verdict::NotPartitionable), 1.0);
        assert_eq!(out.success_rate(Verdict::Partitionable), 0.0);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_still_reproduce_the_builder() {
        // The legacy run_* surface survives one release as thin shims; each
        // must keep returning exactly what the builder produces.
        let scenario = Scenario::new(gen::harary(4, 10).unwrap(), 2)
            .with_byzantine(3, ByzantineBehavior::Silent)
            .with_key_seed(5);
        let reference = scenario.sim().run();
        let legacy = scenario.run();
        assert_eq!(&legacy.decisions, reference.decisions());
        assert_eq!(&legacy.metrics, reference.metrics());
        assert_eq!(&legacy.oracle, reference.oracle());
        assert_eq!(legacy.byzantine, reference.byzantine);
        let threaded = scenario.run_threaded();
        assert_eq!(&threaded.decisions, reference.decisions());
        let metrics = scenario.run_metrics_only();
        assert_eq!(&metrics, reference.metrics());
        let mut oracle = ConnectivityOracle::new();
        let with_oracle = scenario.run_with_oracle(&mut oracle);
        assert_eq!(&with_oracle.decisions, reference.decisions());
        assert_eq!(scenario.run_participants().len(), 10);
    }

    #[test]
    #[should_panic(expected = "must be Byzantine")]
    fn fictitious_edges_require_byzantine_partner() {
        let _ = Scenario::new(gen::cycle(5), 1)
            .with_byzantine(0, ByzantineBehavior::FictitiousEdges { partners: vec![2] })
            .sim()
            .run();
    }
}
