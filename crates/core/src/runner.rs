//! Scenario builder and runner: NECTAR over any topology with any Byzantine
//! cast, on either runtime — the execution harness behind the paper's
//! evaluation campaigns (§V).
//!
//! This is the entry point the experiments, examples and integration tests
//! share. A [`Scenario`] owns the topology, the protocol parameters and the
//! Byzantine assignment; [`Scenario::run`] executes the propagation rounds
//! and collects every correct node's decision plus traffic metrics.

use std::collections::{BTreeMap, BTreeSet};

use nectar_crypto::{KeyStore, NeighborhoodProof};
use nectar_graph::{connectivity, traversal, ConnectivityOracle, Graph, OracleStats};
use nectar_net::{Metrics, NodeId, SyncNetwork};

use crate::byzantine::{
    wrap_traffic_fault, ByzantineBehavior, EquivocatorNode, LateRevealNode, Participant,
};
use crate::config::{Decision, NectarConfig, Verdict};
use crate::node::NectarNode;

/// A fully described NECTAR execution: topology, parameters, Byzantine cast.
#[derive(Debug, Clone)]
pub struct Scenario {
    topology: Graph,
    config: NectarConfig,
    byzantine: BTreeMap<NodeId, ByzantineBehavior>,
    key_seed: u64,
}

impl Scenario {
    /// A scenario over `topology` tolerating up to `t` Byzantine nodes,
    /// with paper-default parameters.
    pub fn new(topology: Graph, t: usize) -> Self {
        let config = NectarConfig::new(topology.node_count(), t);
        Scenario { topology, config, byzantine: BTreeMap::new(), key_seed: 0x4E45_4354 }
    }

    /// Replaces the protocol configuration (its `n` must match the
    /// topology).
    ///
    /// # Panics
    ///
    /// Panics if `config.n` differs from the topology size.
    pub fn with_config(mut self, config: NectarConfig) -> Self {
        assert_eq!(config.n, self.topology.node_count(), "config.n must match the topology");
        self.config = config;
        self
    }

    /// Seeds the key universe (runs with equal seeds are bit-identical).
    pub fn with_key_seed(mut self, seed: u64) -> Self {
        self.key_seed = seed;
        self
    }

    /// Casts `node` as Byzantine with the given behaviour.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range, or if a `FictitiousEdges` /
    /// `LateReveal` behaviour names non-Byzantine accomplices at
    /// [`run`](Self::run) time.
    pub fn with_byzantine(mut self, node: NodeId, behavior: ByzantineBehavior) -> Self {
        assert!(node < self.topology.node_count(), "byzantine node {node} out of range");
        self.byzantine.insert(node, behavior);
        self
    }

    /// The Byzantine node set.
    pub fn byzantine_nodes(&self) -> BTreeSet<NodeId> {
        self.byzantine.keys().copied().collect()
    }

    /// The scenario's topology.
    pub fn topology(&self) -> &Graph {
        &self.topology
    }

    /// The protocol configuration.
    pub fn config(&self) -> &NectarConfig {
        &self.config
    }

    /// Builds the participant for every node.
    fn build_participants(&self) -> Vec<Participant> {
        let n = self.topology.node_count();
        let keys = KeyStore::generate(n, self.key_seed);
        let verifier = keys.verifier();
        (0..n)
            .map(|i| {
                let proofs: BTreeMap<NodeId, NeighborhoodProof> = self
                    .topology
                    .neighbors(i)
                    .map(|j| {
                        (j, NeighborhoodProof::new(&keys.signer(i as u16), &keys.signer(j as u16)))
                    })
                    .collect();
                let mut node = NectarNode::new(
                    i,
                    self.config.clone(),
                    keys.signer(i as u16),
                    verifier.clone(),
                    proofs,
                );
                match self.byzantine.get(&i) {
                    None => Participant::Correct(node),
                    Some(
                        b @ (ByzantineBehavior::Silent
                        | ByzantineBehavior::CrashAfter { .. }
                        | ByzantineBehavior::TwoFaced { .. }),
                    ) => wrap_traffic_fault(node, b),
                    Some(ByzantineBehavior::HideEdges { toward }) => {
                        for &v in toward {
                            node.hide_edge_to(v);
                        }
                        Participant::Correct(node)
                    }
                    Some(ByzantineBehavior::FictitiousEdges { partners }) => {
                        for &p in partners {
                            assert!(
                                self.byzantine.contains_key(&p),
                                "fictitious edge partner {p} must be Byzantine (§II: proofs \
                                 involving a correct node cannot be forged)"
                            );
                            if p != i && !self.topology.has_edge(i, p) {
                                node.announce_extra_proof(NeighborhoodProof::new(
                                    &keys.signer(i as u16),
                                    &keys.signer(p as u16),
                                ));
                            }
                        }
                        Participant::Correct(node)
                    }
                    Some(ByzantineBehavior::LateReveal { partner, others }) => {
                        assert!(
                            self.byzantine.contains_key(partner),
                            "late-reveal partner {partner} must be Byzantine"
                        );
                        for o in others {
                            assert!(
                                self.byzantine.contains_key(o),
                                "late-reveal accomplice {o} must be Byzantine"
                            );
                        }
                        let proof = NeighborhoodProof::new(
                            &keys.signer(i as u16),
                            &keys.signer(*partner as u16),
                        );
                        let partner_signer = keys.signer(*partner as u16);
                        let other_signers: Vec<_> =
                            others.iter().map(|&o| keys.signer(o as u16)).collect();
                        let self_signer = keys.signer(i as u16);
                        let mut chain_signers = vec![&partner_signer];
                        chain_signers.extend(other_signers.iter());
                        chain_signers.push(&self_signer);
                        Participant::LateReveal(LateRevealNode::new(node, proof, &chain_signers))
                    }
                    Some(ByzantineBehavior::Equivocate { victims }) => {
                        Participant::Equivocator(EquivocatorNode::new(node, victims.clone()))
                    }
                }
            })
            .collect()
    }

    /// Runs the scenario on the deterministic synchronous engine.
    pub fn run(&self) -> Outcome {
        self.run_with_oracle(&mut ConnectivityOracle::new())
    }

    /// Runs the scenario with a caller-supplied [`ConnectivityOracle`], so
    /// repeated executions — epoch monitoring, experiment sweeps over the
    /// same topology — share cached verdicts across runs. The returned
    /// [`Outcome::oracle`] counters cover this run only.
    pub fn run_with_oracle(&self, oracle: &mut ConnectivityOracle) -> Outcome {
        let participants = self.build_participants();
        let rounds = self.config.effective_rounds();
        let mut net = SyncNetwork::new(participants, self.topology.clone());
        net.run_rounds(rounds);
        let (participants, metrics) = net.into_parts();
        self.collect(participants, metrics, oracle)
    }

    /// Runs the scenario and returns only the traffic metrics, skipping the
    /// decision phase. The cost figures (Figs. 3–7) measure dissemination
    /// traffic only, and skipping `n` vertex-connectivity computations keeps
    /// large sweeps fast.
    pub fn run_metrics_only(&self) -> Metrics {
        let participants = self.build_participants();
        let rounds = self.config.effective_rounds();
        let mut net = SyncNetwork::new(participants, self.topology.clone());
        net.run_rounds(rounds);
        net.into_parts().1
    }

    /// Runs the scenario and returns the raw participants (with their full
    /// protocol state) instead of summarized decisions — for tests and
    /// experiments that inspect per-node views.
    pub fn run_participants(&self) -> Vec<Participant> {
        let participants = self.build_participants();
        let rounds = self.config.effective_rounds();
        let mut net = SyncNetwork::new(participants, self.topology.clone());
        net.run_rounds(rounds);
        net.into_parts().0
    }

    /// Runs the scenario on the thread-per-node runtime (same results, real
    /// concurrency).
    pub fn run_threaded(&self) -> Outcome {
        self.run_threaded_with_oracle(&mut ConnectivityOracle::new())
    }

    /// [`run_threaded`](Self::run_threaded) with a caller-supplied oracle.
    pub fn run_threaded_with_oracle(&self, oracle: &mut ConnectivityOracle) -> Outcome {
        let participants = self.build_participants();
        let rounds = self.config.effective_rounds();
        let (participants, metrics) =
            nectar_net::run_threaded(participants, &self.topology, rounds);
        self.collect(participants, metrics, oracle)
    }

    fn collect(
        &self,
        participants: Vec<Participant>,
        metrics: Metrics,
        oracle: &mut ConnectivityOracle,
    ) -> Outcome {
        let byzantine = self.byzantine_nodes();
        let before = *oracle.stats();
        // Correct nodes that ended up with identical G_i (the common case,
        // per Lemma 2) share one cached oracle verdict: the fingerprint
        // cache plays the role the old per-run κ memo table used to.
        let decisions = participants
            .iter()
            .filter(|p| !byzantine.contains(&p.nectar().node_id()))
            .map(|p| {
                let node = p.nectar();
                (node.node_id(), node.decide_with(oracle))
            })
            .collect();
        Outcome {
            decisions,
            metrics,
            byzantine,
            topology: self.topology.clone(),
            oracle: oracle.stats().since(&before),
        }
    }
}

/// Everything observable after a scenario execution.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Each correct node's decision.
    pub decisions: BTreeMap<NodeId, Decision>,
    /// Traffic counters (all nodes, Byzantine included).
    pub metrics: Metrics,
    /// The Byzantine cast.
    pub byzantine: BTreeSet<NodeId>,
    /// The ground-truth topology (for property checks).
    pub topology: Graph,
    /// Connectivity-oracle counters for this run's decision phase (cache
    /// hits across identical views, bounded-flow early exits, …).
    pub oracle: OracleStats,
}

impl Outcome {
    /// Whether all correct nodes decided the same verdict (the Agreement
    /// property of Definition 3).
    pub fn agreement(&self) -> bool {
        let mut verdicts = self.decisions.values().map(|d| d.verdict);
        match verdicts.next() {
            None => true,
            Some(first) => verdicts.all(|v| v == first),
        }
    }

    /// The common verdict if Agreement holds.
    pub fn unanimous_verdict(&self) -> Option<Verdict> {
        self.agreement().then(|| self.decisions.values().next().map(|d| d.verdict)).flatten()
    }

    /// Ground truth: is the Byzantine cast a vertex cut of the topology
    /// (i.e. is the subgraph of correct nodes partitioned)?
    pub fn byzantine_cast_is_vertex_cut(&self) -> bool {
        let cut: Vec<NodeId> = self.byzantine.iter().copied().collect();
        traversal::is_partitioned_without(&self.topology, &cut)
    }

    /// Ground truth for the Validity property: does *some subset* of the
    /// Byzantine cast form a vertex cut of `G`? This is the reading of
    /// Theorem 2's proof: when a Byzantine node `b0` has no correct
    /// neighbor, `V_b \ {b0}` is a vertex cut separating `b0`, even though
    /// removing all of `V_b` leaves the correct nodes connected. Any subset
    /// cut either separates two correct nodes (then the full cast does too)
    /// or cuts a Byzantine node off the correct component (then the cast
    /// minus that node does), so checking those t + 1 candidates is
    /// exhaustive.
    pub fn byzantine_cast_can_cut(&self) -> bool {
        if self.byzantine_cast_is_vertex_cut() {
            return true;
        }
        let cast: Vec<NodeId> = self.byzantine.iter().copied().collect();
        cast.iter().any(|&b| {
            let others: Vec<NodeId> = cast.iter().copied().filter(|&x| x != b).collect();
            traversal::is_partitioned_without(&self.topology, &others)
        })
    }

    /// Ground truth: the topology's real vertex connectivity.
    pub fn true_connectivity(&self) -> usize {
        connectivity::vertex_connectivity(&self.topology)
    }

    /// Fraction of correct nodes whose verdict matches `expected` — the
    /// "decision success rate" of Fig. 8.
    pub fn success_rate(&self, expected: Verdict) -> f64 {
        if self.decisions.is_empty() {
            return 1.0;
        }
        let ok = self.decisions.values().filter(|d| d.verdict == expected).count();
        ok as f64 / self.decisions.len() as f64
    }

    /// Mean bytes sent per node — the y-axis of Figs. 3–7.
    pub fn mean_kb_sent_per_node(&self) -> f64 {
        self.metrics.mean_bytes_sent_per_node() / 1024.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nectar_graph::gen;

    #[test]
    fn clean_ring_reaches_unanimous_not_partitionable() {
        let out = Scenario::new(gen::cycle(6), 1).run();
        assert!(out.agreement());
        assert_eq!(out.unanimous_verdict(), Some(Verdict::NotPartitionable));
        assert_eq!(out.decisions.len(), 6);
    }

    #[test]
    fn threaded_run_matches_sync_run() {
        let scenario = Scenario::new(gen::harary(4, 10).unwrap(), 2).with_key_seed(5);
        let a = scenario.run();
        let b = scenario.run_threaded();
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn silent_byzantine_cannot_fake_a_partition_in_a_2t_connected_graph() {
        // κ(H_{4,10}) = 4 = 2t with t = 2: Lemma 1 says everyone decides
        // NOT_PARTITIONABLE no matter what the Byzantine nodes do.
        let g = gen::harary(4, 10).unwrap();
        let out = Scenario::new(g, 2)
            .with_byzantine(3, ByzantineBehavior::Silent)
            .with_byzantine(7, ByzantineBehavior::Silent)
            .run();
        assert!(out.agreement());
        assert_eq!(out.unanimous_verdict(), Some(Verdict::NotPartitionable));
    }

    #[test]
    fn star_hub_byzantine_is_detected_as_partitionable() {
        // Fig. 1b: the hub is a cut vertex; κ = 1 ≤ t.
        let out = Scenario::new(gen::star(6), 1).with_byzantine(0, ByzantineBehavior::Silent).run();
        assert!(out.agreement());
        assert_eq!(out.unanimous_verdict(), Some(Verdict::Partitionable));
        // The hub's silence means leaves saw nothing beyond themselves:
        // everyone confirms a real partition.
        assert!(out.decisions.values().all(|d| d.confirmed));
        assert!(out.byzantine_cast_is_vertex_cut());
    }

    #[test]
    fn outcome_reports_oracle_cache_sharing_across_identical_views() {
        // Clean ring: all 6 correct views are identical (Lemma 2), so the
        // decision phase pays for one connectivity query and hits the cache
        // five times.
        let out = Scenario::new(gen::cycle(6), 1).run();
        assert_eq!(out.oracle.queries, 6);
        assert_eq!(out.oracle.cache_hits, 5);
    }

    #[test]
    fn shared_oracle_carries_verdicts_across_runs() {
        let scenario = Scenario::new(gen::cycle(6), 1);
        let mut oracle = nectar_graph::ConnectivityOracle::new();
        let first = scenario.run_with_oracle(&mut oracle);
        let second = scenario.run_with_oracle(&mut oracle);
        assert_eq!(first.decisions, second.decisions);
        // Per-run deltas: the second run answers every query from cache.
        assert_eq!(second.oracle.cache_hits, second.oracle.queries);
        assert_eq!(second.oracle.bounded_flows, 0);
    }

    #[test]
    fn success_rate_counts_expected_verdicts() {
        let out = Scenario::new(gen::cycle(5), 1).run();
        assert_eq!(out.success_rate(Verdict::NotPartitionable), 1.0);
        assert_eq!(out.success_rate(Verdict::Partitionable), 0.0);
    }

    #[test]
    #[should_panic(expected = "must be Byzantine")]
    fn fictitious_edges_require_byzantine_partner() {
        let _ = Scenario::new(gen::cycle(5), 1)
            .with_byzantine(0, ByzantineBehavior::FictitiousEdges { partners: vec![2] })
            .run();
    }
}
