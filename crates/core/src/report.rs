//! Persisted run reports: the session result of
//! [`Simulation::run`](crate::sim::Simulation::run).
//!
//! A [`RunReport`] supersedes the old `Outcome`-plus-`Metrics` pair as the
//! thing a run hands back: scenario parameters, the ground-truth topology,
//! the Byzantine cast, and one [`EpochOutcome`] per monitoring epoch
//! (decisions, traffic counters, oracle counters). Unlike those ancestors
//! it *persists*: a hand-rolled serializer — extending the binary codec of
//! `nectar_crypto::codec` with [`Encode`]/[`Decode`] impls, plus JSON and
//! CSV text forms — writes results out without touching the decorative
//! serde shim:
//!
//! * **binary** ([`Encode::to_wire_bytes`] / [`Decode::decode`]) — compact,
//!   loss-free, versioned ([`REPORT_CODEC_VERSION`]);
//! * **JSON** ([`RunReport::to_json`] / [`RunReport::from_json`]) —
//!   loss-free and human-greppable, the format behind `nectar-cli detect
//!   --report <path>`;
//! * **CSV** ([`RunReport::to_csv`] / [`RunReport::decisions_from_csv`]) —
//!   the per-node decision stream (`epoch,node,verdict,confirmed,
//!   reachable,connectivity`), the machine-readable per-node granularity
//!   the evaluation analyses consume. CSV carries decisions only, by
//!   design; use JSON or the binary codec for full-fidelity persistence.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use bytes::{Buf, BufMut, BytesMut};

use nectar_crypto::codec::{CodecError, Decode, Encode};
use nectar_graph::{connectivity, traversal, Graph, OracleStats};
use nectar_net::{Metrics, NodeId, PhaseProfile};

use crate::config::{Decision, Verdict};
use crate::runner::{Outcome, Runtime};

/// Version tag of the persisted report formats (bumped on incompatible
/// changes; both the binary and JSON forms carry it). Version 2 added the
/// applied topology schedule and the `schedule_drops` metrics counter;
/// version 3 added the optional per-phase wall-clock profile.
pub const REPORT_CODEC_VERSION: u16 = 3;

/// Sanity cap on decoded collection lengths (nodes, edges, rounds): far
/// above any supported system size, low enough that corrupt length
/// prefixes cannot trigger huge allocations.
const MAX_REPORT_ITEMS: usize = 1 << 26;

/// Header of the per-node decision CSV stream — the single definition
/// shared by [`RunReport::to_csv`], [`RunReport::decisions_from_csv`] and
/// `nectar-cli detect --per-node --csv`.
pub const DECISIONS_CSV_HEADER: &str = "epoch,node,verdict,confirmed,reachable,connectivity";

/// One row of the per-node decision CSV stream (no trailing newline),
/// matching [`DECISIONS_CSV_HEADER`]'s columns.
pub fn decision_csv_row(epoch: usize, node: NodeId, d: &Decision) -> String {
    format!("{epoch},{node},{},{},{},{}", d.verdict, d.confirmed, d.reachable, d.connectivity)
}

/// The topology schedule a session ran under, as persisted in its
/// [`RunReport`]: the script itself (re-parseable with
/// `TopologySchedule::parse`) plus the compiled per-event timing — every
/// edge transition the schedule actually produced, in the order it took
/// effect. The same schedule re-applies identically in every epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleRecord {
    /// The schedule in its text format (`TopologySchedule::to_script`).
    pub script: String,
    /// Resolved edge transitions `(round, u, v, up)` with `u < v`, in
    /// (round, edge) order — the compiled ground truth of when each link
    /// actually changed state.
    pub transitions: Vec<(usize, NodeId, NodeId, bool)>,
}

/// Everything observable from one epoch of a simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochOutcome {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// The key-universe seed this epoch ran with (`base + epoch`).
    pub key_seed: u64,
    /// Each correct node's decision (empty on metrics-only runs).
    pub decisions: BTreeMap<NodeId, Decision>,
    /// Traffic counters (all nodes, Byzantine included).
    pub metrics: Metrics,
    /// Connectivity-oracle counters for this epoch's decision phase.
    pub oracle: OracleStats,
    /// Per-phase wall-clock breakdown, present only when the session opted
    /// in (`Simulation::profile()` / CLI `--profile`). Wall clock is
    /// nondeterministic, so profiled epochs are never compared bit-for-bit
    /// across runtimes; everything else in the outcome stays canonical.
    pub profile: Option<PhaseProfile>,
}

impl EpochOutcome {
    /// Whether all correct nodes decided the same verdict (the Agreement
    /// property of Definition 3). Vacuously true on metrics-only epochs.
    pub fn agreement(&self) -> bool {
        let mut verdicts = self.decisions.values().map(|d| d.verdict);
        match verdicts.next() {
            None => true,
            Some(first) => verdicts.all(|v| v == first),
        }
    }

    /// The common verdict if Agreement holds.
    pub fn unanimous_verdict(&self) -> Option<Verdict> {
        self.agreement().then(|| self.decisions.values().next().map(|d| d.verdict)).flatten()
    }

    /// Whether any correct node observed an actual partition.
    pub fn any_confirmed(&self) -> bool {
        self.decisions.values().any(|d| d.confirmed)
    }

    /// Fraction of correct nodes whose verdict matches `expected` — the
    /// "decision success rate" of Fig. 8.
    pub fn success_rate(&self, expected: Verdict) -> f64 {
        if self.decisions.is_empty() {
            return 1.0;
        }
        let ok = self.decisions.values().filter(|d| d.verdict == expected).count();
        ok as f64 / self.decisions.len() as f64
    }

    /// Mean kilobytes sent per node — the y-axis of Figs. 3–7.
    pub fn mean_kb_sent_per_node(&self) -> f64 {
        self.metrics.mean_bytes_sent_per_node() / 1024.0
    }
}

/// The persisted result of one simulation session: parameters, ground
/// truth, and one [`EpochOutcome`] per epoch (at least one). The
/// convenience accessors ([`decisions`](RunReport::decisions),
/// [`agreement`](RunReport::agreement), …) read the **last** epoch — the
/// current state of a monitoring session; multi-epoch analyses walk
/// [`epochs`](RunReport::epochs) directly.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// The engine that executed the session.
    pub runtime: Runtime,
    /// System size (`n`).
    pub n: usize,
    /// Byzantine budget (`t`).
    pub t: usize,
    /// Base key seed (epoch `e` ran with `key_seed + e`).
    pub key_seed: u64,
    /// The Byzantine cast.
    pub byzantine: BTreeSet<NodeId>,
    /// The ground-truth topology (for property checks).
    pub topology: Graph,
    /// The topology schedule the session ran under, if any (applied
    /// identically in every epoch).
    pub schedule: Option<ScheduleRecord>,
    /// Per-epoch outcomes, in epoch order.
    pub epochs: Vec<EpochOutcome>,
}

impl RunReport {
    /// The last epoch's outcome.
    ///
    /// # Panics
    ///
    /// Panics on a report with no epochs (a run always produces at least
    /// one; only hand-built reports can be empty).
    pub fn last(&self) -> &EpochOutcome {
        self.epochs.last().expect("a run report holds at least one epoch")
    }

    /// The last epoch's decisions.
    pub fn decisions(&self) -> &BTreeMap<NodeId, Decision> {
        &self.last().decisions
    }

    /// The last epoch's traffic counters.
    pub fn metrics(&self) -> &Metrics {
        &self.last().metrics
    }

    /// The last epoch's oracle counters.
    pub fn oracle(&self) -> &OracleStats {
        &self.last().oracle
    }

    /// [`EpochOutcome::agreement`] of the last epoch.
    pub fn agreement(&self) -> bool {
        self.last().agreement()
    }

    /// [`EpochOutcome::unanimous_verdict`] of the last epoch.
    pub fn unanimous_verdict(&self) -> Option<Verdict> {
        self.last().unanimous_verdict()
    }

    /// [`EpochOutcome::success_rate`] of the last epoch.
    pub fn success_rate(&self, expected: Verdict) -> f64 {
        self.last().success_rate(expected)
    }

    /// [`EpochOutcome::mean_kb_sent_per_node`] of the last epoch.
    pub fn mean_kb_sent_per_node(&self) -> f64 {
        self.last().mean_kb_sent_per_node()
    }

    /// Ground truth: is the Byzantine cast a vertex cut of the topology
    /// (i.e. is the subgraph of correct nodes partitioned)?
    pub fn byzantine_cast_is_vertex_cut(&self) -> bool {
        let cut: Vec<NodeId> = self.byzantine.iter().copied().collect();
        traversal::is_partitioned_without(&self.topology, &cut)
    }

    /// Ground truth for the Validity property: does *some subset* of the
    /// Byzantine cast form a vertex cut of `G`? (See
    /// [`Outcome::byzantine_cast_can_cut`] for the Theorem 2 reading.)
    pub fn byzantine_cast_can_cut(&self) -> bool {
        if self.byzantine_cast_is_vertex_cut() {
            return true;
        }
        let cast: Vec<NodeId> = self.byzantine.iter().copied().collect();
        cast.iter().any(|&b| {
            let others: Vec<NodeId> = cast.iter().copied().filter(|&x| x != b).collect();
            traversal::is_partitioned_without(&self.topology, &others)
        })
    }

    /// Ground truth: the topology's real vertex connectivity.
    pub fn true_connectivity(&self) -> usize {
        connectivity::vertex_connectivity(&self.topology)
    }

    /// Collapses the report into the legacy [`Outcome`] of its last epoch —
    /// the compatibility bridge behind the deprecated `run_*` shims.
    ///
    /// # Panics
    ///
    /// Panics on a report with no epochs.
    pub fn into_outcome(mut self) -> Outcome {
        let last = self.epochs.pop().expect("a run report holds at least one epoch");
        Outcome {
            decisions: last.decisions,
            metrics: last.metrics,
            byzantine: self.byzantine,
            topology: self.topology,
            oracle: last.oracle,
        }
    }

    /// Extracts the last epoch's traffic counters — the compatibility
    /// bridge behind the deprecated `run_metrics_only*` shims.
    ///
    /// # Panics
    ///
    /// Panics on a report with no epochs.
    pub fn into_metrics(mut self) -> Metrics {
        self.epochs.pop().expect("a run report holds at least one epoch").metrics
    }

    // ---- JSON ----------------------------------------------------------

    /// Serializes the full report as a JSON document (loss-free; parsed
    /// back by [`from_json`](Self::from_json)).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let w = &mut out;
        writeln!(w, "{{").expect("writing to String cannot fail");
        writeln!(w, "  \"version\": {REPORT_CODEC_VERSION},").expect("infallible");
        let workers = match self.runtime {
            Runtime::Parallel { workers } => workers,
            _ => 0,
        };
        writeln!(w, "  \"runtime\": \"{}\", \"workers\": {workers},", self.runtime)
            .expect("infallible");
        writeln!(w, "  \"n\": {}, \"t\": {}, \"key_seed\": {},", self.n, self.t, self.key_seed)
            .expect("infallible");
        writeln!(w, "  \"byzantine\": {},", json_usize_array(self.byzantine.iter().copied()))
            .expect("infallible");
        let edges = self
            .topology
            .edges()
            .map(|(u, v)| format!("[{u}, {v}]"))
            .collect::<Vec<_>>()
            .join(", ");
        writeln!(
            w,
            "  \"topology\": {{\"n\": {}, \"edges\": [{edges}]}},",
            self.topology.node_count()
        )
        .expect("infallible");
        match &self.schedule {
            None => writeln!(w, "  \"schedule\": null,").expect("infallible"),
            Some(s) => {
                let transitions = s
                    .transitions
                    .iter()
                    .map(|&(r, u, v, up)| format!("[{r}, {u}, {v}, {up}]"))
                    .collect::<Vec<_>>()
                    .join(", ");
                writeln!(
                    w,
                    "  \"schedule\": {{\"script\": \"{}\", \"transitions\": [{transitions}]}},",
                    json_escape(&s.script)
                )
                .expect("infallible");
            }
        }
        writeln!(w, "  \"epochs\": [").expect("infallible");
        for (i, e) in self.epochs.iter().enumerate() {
            let sep = if i + 1 == self.epochs.len() { "" } else { "," };
            writeln!(w, "    {{\"epoch\": {}, \"key_seed\": {},", e.epoch, e.key_seed)
                .expect("infallible");
            let decisions = e
                .decisions
                .iter()
                .map(|(node, d)| {
                    format!(
                        "{{\"node\": {node}, \"verdict\": \"{}\", \"confirmed\": {}, \
                         \"reachable\": {}, \"connectivity\": {}}}",
                        d.verdict, d.confirmed, d.reachable, d.connectivity
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            writeln!(w, "     \"decisions\": [{decisions}],").expect("infallible");
            let m = &e.metrics;
            writeln!(
                w,
                "     \"metrics\": {{\"bytes_sent\": {}, \"msgs_sent\": {}, \
                 \"bytes_received\": {}, \"msgs_received\": {}, \"bytes_per_round\": {}, \
                 \"illegal_sends\": {}, \"schedule_drops\": {}}},",
                json_u64_array(m.bytes_sent()),
                json_u64_array(m.msgs_sent()),
                json_u64_array(m.bytes_received()),
                json_u64_array(m.msgs_received()),
                json_u64_array(m.bytes_per_round()),
                m.illegal_sends(),
                m.schedule_drops()
            )
            .expect("infallible");
            let s = &e.oracle;
            writeln!(
                w,
                "     \"oracle\": {{\"queries\": {}, \"cache_hits\": {}, \
                 \"structure_shortcuts\": {}, \"min_degree_shortcuts\": {}, \
                 \"bounded_flows\": {}, \"early_exits\": {}}},",
                s.queries,
                s.cache_hits,
                s.structure_shortcuts,
                s.min_degree_shortcuts,
                s.bounded_flows,
                s.early_exits
            )
            .expect("infallible");
            match &e.profile {
                None => writeln!(w, "     \"profile\": null}}{sep}").expect("infallible"),
                Some(p) => writeln!(
                    w,
                    "     \"profile\": {{\"disseminate_micros\": {}, \
                     \"classify_micros\": {}, \"derive_micros\": {}, \
                     \"materialize_micros\": {}, \"decide_micros\": {}}}}}{sep}",
                    p.disseminate_micros,
                    p.classify_micros,
                    p.derive_micros,
                    p.materialize_micros,
                    p.decide_micros
                )
                .expect("infallible"),
            }
        }
        writeln!(w, "  ]").expect("infallible");
        writeln!(w, "}}").expect("infallible");
        out
    }

    /// Parses a report back from [`to_json`](Self::to_json) output.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on malformed or version-skewed
    /// input.
    pub fn from_json(input: &str) -> Result<RunReport, String> {
        let value = json::parse(input)?;
        let obj = value.as_obj("report")?;
        let version = obj.field("version")?.as_u64("version")?;
        if version != REPORT_CODEC_VERSION as u64 {
            return Err(format!("unsupported report version {version}"));
        }
        let workers = obj.field("workers")?.as_u64("workers")? as usize;
        let runtime = match obj.field("runtime")?.as_str("runtime")? {
            "parallel" => Runtime::Parallel { workers },
            name => name.parse::<Runtime>()?,
        };
        let n = obj.field("n")?.as_u64("n")? as usize;
        let t = obj.field("t")?.as_u64("t")? as usize;
        let key_seed = obj.field("key_seed")?.as_u64("key_seed")?;
        let byzantine: BTreeSet<NodeId> = obj
            .field("byzantine")?
            .as_arr("byzantine")?
            .iter()
            .map(|v| v.as_u64("byzantine node").map(|x| x as usize))
            .collect::<Result<_, _>>()?;
        let topo = obj.field("topology")?.as_obj("topology")?;
        let topo_n = topo.field("n")?.as_u64("topology.n")? as usize;
        let mut edges = Vec::new();
        for e in topo.field("edges")?.as_arr("topology.edges")? {
            let pair = e.as_arr("edge")?;
            if pair.len() != 2 {
                return Err("edge must be a [u, v] pair".into());
            }
            edges.push((
                pair[0].as_u64("edge endpoint")? as usize,
                pair[1].as_u64("edge endpoint")? as usize,
            ));
        }
        let topology = Graph::from_edges(topo_n, edges).map_err(|e| e.to_string())?;
        let schedule = match obj.field("schedule")? {
            json::Value::Null => None,
            value => {
                let s = value.as_obj("schedule")?;
                let script = s.field("script")?.as_str("schedule.script")?.to_string();
                let mut transitions = Vec::new();
                for t in s.field("transitions")?.as_arr("schedule.transitions")? {
                    let quad = t.as_arr("transition")?;
                    if quad.len() != 4 {
                        return Err("transition must be a [round, u, v, up] quad".into());
                    }
                    transitions.push((
                        quad[0].as_u64("transition round")? as usize,
                        quad[1].as_u64("transition endpoint")? as usize,
                        quad[2].as_u64("transition endpoint")? as usize,
                        quad[3].as_bool("transition up")?,
                    ));
                }
                Some(ScheduleRecord { script, transitions })
            }
        };
        let mut epochs = Vec::new();
        for e in obj.field("epochs")?.as_arr("epochs")? {
            let e = e.as_obj("epoch")?;
            let mut decisions = BTreeMap::new();
            for d in e.field("decisions")?.as_arr("decisions")? {
                let d = d.as_obj("decision")?;
                decisions.insert(
                    d.field("node")?.as_u64("node")? as usize,
                    Decision {
                        verdict: d.field("verdict")?.as_str("verdict")?.parse()?,
                        confirmed: d.field("confirmed")?.as_bool("confirmed")?,
                        reachable: d.field("reachable")?.as_u64("reachable")? as usize,
                        connectivity: d.field("connectivity")?.as_u64("connectivity")? as usize,
                    },
                );
            }
            let m = e.field("metrics")?.as_obj("metrics")?;
            let u64s = |key: &str| -> Result<Vec<u64>, String> {
                m.field(key)?.as_arr(key)?.iter().map(|v| v.as_u64(key)).collect()
            };
            let metrics = Metrics::from_parts(
                u64s("bytes_sent")?,
                u64s("msgs_sent")?,
                u64s("bytes_received")?,
                u64s("msgs_received")?,
                u64s("bytes_per_round")?,
                m.field("illegal_sends")?.as_u64("illegal_sends")?,
                m.field("schedule_drops")?.as_u64("schedule_drops")?,
            );
            let o = e.field("oracle")?.as_obj("oracle")?;
            let stat = |key: &str| -> Result<u64, String> { o.field(key)?.as_u64(key) };
            let profile = match e.field("profile")? {
                json::Value::Null => None,
                value => {
                    let p = value.as_obj("profile")?;
                    let micros = |key: &str| -> Result<u64, String> { p.field(key)?.as_u64(key) };
                    Some(PhaseProfile {
                        disseminate_micros: micros("disseminate_micros")?,
                        classify_micros: micros("classify_micros")?,
                        derive_micros: micros("derive_micros")?,
                        materialize_micros: micros("materialize_micros")?,
                        decide_micros: micros("decide_micros")?,
                    })
                }
            };
            epochs.push(EpochOutcome {
                epoch: e.field("epoch")?.as_u64("epoch")? as usize,
                key_seed: e.field("key_seed")?.as_u64("key_seed")?,
                decisions,
                metrics,
                oracle: OracleStats {
                    queries: stat("queries")?,
                    cache_hits: stat("cache_hits")?,
                    structure_shortcuts: stat("structure_shortcuts")?,
                    min_degree_shortcuts: stat("min_degree_shortcuts")?,
                    bounded_flows: stat("bounded_flows")?,
                    early_exits: stat("early_exits")?,
                },
                profile,
            });
        }
        Ok(RunReport { runtime, n, t, key_seed, byzantine, topology, schedule, epochs })
    }

    /// Writes [`to_json`](Self::to_json) to `path` — the persistence hook
    /// behind `nectar-cli detect --report <path>`.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error.
    pub fn save_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Reads a report persisted by [`save_json`](Self::save_json).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on I/O or parse failure.
    pub fn load_json(path: impl AsRef<std::path::Path>) -> Result<RunReport, String> {
        let text = std::fs::read_to_string(path.as_ref())
            .map_err(|e| format!("reading {}: {e}", path.as_ref().display()))?;
        Self::from_json(&text)
    }

    // ---- CSV -----------------------------------------------------------

    /// The per-node decision stream as CSV: header
    /// `epoch,node,verdict,confirmed,reachable,connectivity`, one row per
    /// correct node per epoch, in (epoch, node) order. Carries decisions
    /// only — metrics and ground truth live in the JSON / binary forms.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(DECISIONS_CSV_HEADER);
        out.push('\n');
        for e in &self.epochs {
            for (node, d) in &e.decisions {
                writeln!(out, "{}", decision_csv_row(e.epoch, *node, d))
                    .expect("writing to String cannot fail");
            }
        }
        out
    }

    /// Parses the per-node decisions back out of [`to_csv`](Self::to_csv)
    /// output: a map from epoch index to that epoch's per-node decisions.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on malformed rows.
    pub fn decisions_from_csv(
        csv: &str,
    ) -> Result<BTreeMap<usize, BTreeMap<NodeId, Decision>>, String> {
        let mut lines = csv.lines();
        match lines.next() {
            Some(header) if header == DECISIONS_CSV_HEADER => {}
            other => return Err(format!("bad CSV header: {other:?}")),
        }
        let mut epochs: BTreeMap<usize, BTreeMap<NodeId, Decision>> = BTreeMap::new();
        for line in lines {
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != 6 {
                return Err(format!("bad CSV row (expected 6 fields): {line}"));
            }
            let num =
                |s: &str| s.parse::<usize>().map_err(|_| format!("bad number {s} in row {line}"));
            let epoch = num(fields[0])?;
            let node = num(fields[1])?;
            let decision = Decision {
                verdict: fields[2].parse()?,
                confirmed: fields[3]
                    .parse::<bool>()
                    .map_err(|_| format!("bad bool {} in row {line}", fields[3]))?,
                reachable: num(fields[4])?,
                connectivity: num(fields[5])?,
            };
            epochs.entry(epoch).or_default().insert(node, decision);
        }
        Ok(epochs)
    }
}

/// Escapes a string for the JSON subset the reader below understands
/// (backslash, quote and newline — all the schedule script format needs).
fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn json_u64_array(values: &[u64]) -> String {
    let body = values.iter().map(u64::to_string).collect::<Vec<_>>().join(", ");
    format!("[{body}]")
}

fn json_usize_array(values: impl Iterator<Item = usize>) -> String {
    let body = values.map(|v| v.to_string()).collect::<Vec<_>>().join(", ");
    format!("[{body}]")
}

// ---- binary codec ------------------------------------------------------

fn runtime_tag(runtime: Runtime) -> (u8, u32) {
    match runtime {
        Runtime::Sync => (0, 0),
        Runtime::Threaded => (1, 0),
        Runtime::Event => (2, 0),
        Runtime::Parallel { workers } => (3, workers as u32),
    }
}

fn runtime_from_tag(tag: u8, workers: u32) -> Result<Runtime, CodecError> {
    match tag {
        0 => Ok(Runtime::Sync),
        1 => Ok(Runtime::Threaded),
        2 => Ok(Runtime::Event),
        3 => Ok(Runtime::Parallel { workers: workers as usize }),
        _ => Err(CodecError::LengthOutOfBounds { decoding: "runtime tag", len: tag as usize }),
    }
}

fn verdict_tag(verdict: Verdict) -> u8 {
    match verdict {
        Verdict::NotPartitionable => 0,
        Verdict::Partitionable => 1,
    }
}

fn verdict_from_tag(tag: u8) -> Result<Verdict, CodecError> {
    match tag {
        0 => Ok(Verdict::NotPartitionable),
        1 => Ok(Verdict::Partitionable),
        _ => Err(CodecError::LengthOutOfBounds { decoding: "verdict tag", len: tag as usize }),
    }
}

fn take<'a>(buf: &mut &'a [u8], n: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
    if buf.len() < n {
        return Err(CodecError::UnexpectedEnd { decoding: what });
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

fn take_len(buf: &mut &[u8], what: &'static str) -> Result<usize, CodecError> {
    let len = take(buf, 4, what)?.get_u32() as usize;
    if len > MAX_REPORT_ITEMS {
        return Err(CodecError::LengthOutOfBounds { decoding: what, len });
    }
    Ok(len)
}

fn put_u64s(buf: &mut BytesMut, values: &[u64]) {
    buf.put_u32(values.len() as u32);
    for &v in values {
        buf.put_u64(v);
    }
}

fn take_u64s(buf: &mut &[u8], what: &'static str) -> Result<Vec<u64>, CodecError> {
    let len = take_len(buf, what)?;
    let mut head = take(buf, 8 * len, what)?;
    Ok((0..len).map(|_| head.get_u64()).collect())
}

impl Encode for RunReport {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u16(REPORT_CODEC_VERSION);
        let (tag, workers) = runtime_tag(self.runtime);
        buf.put_u8(tag);
        buf.put_u32(workers);
        buf.put_u32(self.n as u32);
        buf.put_u32(self.t as u32);
        buf.put_u64(self.key_seed);
        buf.put_u32(self.byzantine.len() as u32);
        for &b in &self.byzantine {
            buf.put_u32(b as u32);
        }
        buf.put_u32(self.topology.node_count() as u32);
        buf.put_u32(self.topology.edge_count() as u32);
        for (u, v) in self.topology.edges() {
            buf.put_u32(u as u32);
            buf.put_u32(v as u32);
        }
        match &self.schedule {
            None => buf.put_u8(0),
            Some(s) => {
                buf.put_u8(1);
                buf.put_u32(s.script.len() as u32);
                buf.put_slice(s.script.as_bytes());
                buf.put_u32(s.transitions.len() as u32);
                for &(round, u, v, up) in &s.transitions {
                    buf.put_u32(round as u32);
                    buf.put_u32(u as u32);
                    buf.put_u32(v as u32);
                    buf.put_u8(up as u8);
                }
            }
        }
        buf.put_u32(self.epochs.len() as u32);
        for e in &self.epochs {
            buf.put_u32(e.epoch as u32);
            buf.put_u64(e.key_seed);
            buf.put_u32(e.decisions.len() as u32);
            for (&node, d) in &e.decisions {
                buf.put_u32(node as u32);
                buf.put_u8(verdict_tag(d.verdict));
                buf.put_u8(d.confirmed as u8);
                buf.put_u32(d.reachable as u32);
                buf.put_u32(d.connectivity as u32);
            }
            put_u64s(buf, e.metrics.bytes_sent());
            put_u64s(buf, e.metrics.msgs_sent());
            put_u64s(buf, e.metrics.bytes_received());
            put_u64s(buf, e.metrics.msgs_received());
            put_u64s(buf, e.metrics.bytes_per_round());
            buf.put_u64(e.metrics.illegal_sends());
            buf.put_u64(e.metrics.schedule_drops());
            for stat in [
                e.oracle.queries,
                e.oracle.cache_hits,
                e.oracle.structure_shortcuts,
                e.oracle.min_degree_shortcuts,
                e.oracle.bounded_flows,
                e.oracle.early_exits,
            ] {
                buf.put_u64(stat);
            }
            match &e.profile {
                None => buf.put_u8(0),
                Some(p) => {
                    buf.put_u8(1);
                    for micros in [
                        p.disseminate_micros,
                        p.classify_micros,
                        p.derive_micros,
                        p.materialize_micros,
                        p.decide_micros,
                    ] {
                        buf.put_u64(micros);
                    }
                }
            }
        }
    }

    fn encoded_len(&self) -> usize {
        let header = 2 + 1 + 4 + 4 + 4 + 8;
        let byzantine = 4 + 4 * self.byzantine.len();
        let topology = 4 + 4 + 8 * self.topology.edge_count();
        let schedule = 1 + self
            .schedule
            .as_ref()
            .map(|s| 4 + s.script.len() + 4 + 13 * s.transitions.len())
            .unwrap_or(0);
        let epochs: usize = self
            .epochs
            .iter()
            .map(|e| {
                let metrics_nodes = e.metrics.bytes_sent().len();
                4 + 8
                    + 4
                    + 14 * e.decisions.len()
                    + 4 * (4 + 8 * metrics_nodes)
                    + (4 + 8 * e.metrics.bytes_per_round().len())
                    + 8
                    + 8
                    + 6 * 8
                    + 1
                    + e.profile.map_or(0, |_| 5 * 8)
            })
            .sum();
        header + byzantine + topology + schedule + 4 + epochs
    }
}

impl Decode for RunReport {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let mut head = take(buf, 2 + 1 + 4 + 4 + 4 + 8, "report header")?;
        let version = head.get_u16();
        if version != REPORT_CODEC_VERSION {
            return Err(CodecError::LengthOutOfBounds {
                decoding: "report version",
                len: version as usize,
            });
        }
        let tag = head.get_u8();
        let workers = head.get_u32();
        let runtime = runtime_from_tag(tag, workers)?;
        let n = head.get_u32() as usize;
        let t = head.get_u32() as usize;
        let key_seed = head.get_u64();
        let byz_len = take_len(buf, "byzantine set")?;
        let mut byz_head = take(buf, 4 * byz_len, "byzantine set")?;
        let byzantine: BTreeSet<NodeId> =
            (0..byz_len).map(|_| byz_head.get_u32() as usize).collect();
        let topo_n = take_len(buf, "topology size")?;
        let edge_count = take_len(buf, "topology edges")?;
        let mut edge_head = take(buf, 8 * edge_count, "topology edges")?;
        let edges: Vec<(usize, usize)> = (0..edge_count)
            .map(|_| (edge_head.get_u32() as usize, edge_head.get_u32() as usize))
            .collect();
        let topology = Graph::from_edges(topo_n, edges).map_err(|_| {
            CodecError::LengthOutOfBounds { decoding: "topology edge", len: topo_n }
        })?;
        let schedule = match take(buf, 1, "schedule flag")?[0] {
            0 => None,
            1 => {
                let script_len = take_len(buf, "schedule script")?;
                let script = std::str::from_utf8(take(buf, script_len, "schedule script")?)
                    .map_err(|_| CodecError::LengthOutOfBounds {
                        decoding: "schedule script",
                        len: script_len,
                    })?
                    .to_string();
                let count = take_len(buf, "schedule transitions")?;
                let mut head = take(buf, 13 * count, "schedule transitions")?;
                let transitions = (0..count)
                    .map(|_| {
                        let round = head.get_u32() as usize;
                        let u = head.get_u32() as usize;
                        let v = head.get_u32() as usize;
                        (round, u, v, head.get_u8() != 0)
                    })
                    .collect();
                Some(ScheduleRecord { script, transitions })
            }
            other => {
                return Err(CodecError::LengthOutOfBounds {
                    decoding: "schedule flag",
                    len: other as usize,
                })
            }
        };
        let epoch_count = take_len(buf, "epoch count")?;
        let mut epochs = Vec::with_capacity(epoch_count.min(1024));
        for _ in 0..epoch_count {
            let mut head = take(buf, 4 + 8, "epoch header")?;
            let epoch = head.get_u32() as usize;
            let epoch_seed = head.get_u64();
            let decision_count = take_len(buf, "decision count")?;
            let mut decisions = BTreeMap::new();
            for _ in 0..decision_count {
                let mut d = take(buf, 14, "decision")?;
                let node = d.get_u32() as usize;
                let verdict = verdict_from_tag(d.get_u8())?;
                let confirmed = match d.get_u8() {
                    0 => false,
                    1 => true,
                    other => {
                        return Err(CodecError::LengthOutOfBounds {
                            decoding: "confirmed flag",
                            len: other as usize,
                        })
                    }
                };
                let reachable = d.get_u32() as usize;
                let connectivity = d.get_u32() as usize;
                decisions.insert(node, Decision { verdict, confirmed, reachable, connectivity });
            }
            let bytes_sent = take_u64s(buf, "metrics bytes_sent")?;
            let msgs_sent = take_u64s(buf, "metrics msgs_sent")?;
            let bytes_received = take_u64s(buf, "metrics bytes_received")?;
            let msgs_received = take_u64s(buf, "metrics msgs_received")?;
            let bytes_per_round = take_u64s(buf, "metrics bytes_per_round")?;
            if msgs_sent.len() != bytes_sent.len()
                || bytes_received.len() != bytes_sent.len()
                || msgs_received.len() != bytes_sent.len()
            {
                return Err(CodecError::LengthOutOfBounds {
                    decoding: "metrics vectors",
                    len: msgs_sent.len(),
                });
            }
            let mut tail = take(buf, 8 + 8 + 6 * 8, "metrics/oracle tail")?;
            let illegal_sends = tail.get_u64();
            let schedule_drops = tail.get_u64();
            let metrics = Metrics::from_parts(
                bytes_sent,
                msgs_sent,
                bytes_received,
                msgs_received,
                bytes_per_round,
                illegal_sends,
                schedule_drops,
            );
            let oracle = OracleStats {
                queries: tail.get_u64(),
                cache_hits: tail.get_u64(),
                structure_shortcuts: tail.get_u64(),
                min_degree_shortcuts: tail.get_u64(),
                bounded_flows: tail.get_u64(),
                early_exits: tail.get_u64(),
            };
            let profile = match take(buf, 1, "profile flag")?[0] {
                0 => None,
                1 => {
                    let mut head = take(buf, 5 * 8, "phase profile")?;
                    Some(PhaseProfile {
                        disseminate_micros: head.get_u64(),
                        classify_micros: head.get_u64(),
                        derive_micros: head.get_u64(),
                        materialize_micros: head.get_u64(),
                        decide_micros: head.get_u64(),
                    })
                }
                other => {
                    return Err(CodecError::LengthOutOfBounds {
                        decoding: "profile flag",
                        len: other as usize,
                    })
                }
            };
            epochs.push(EpochOutcome {
                epoch,
                key_seed: epoch_seed,
                decisions,
                metrics,
                oracle,
                profile,
            });
        }
        Ok(RunReport { runtime, n, t, key_seed, byzantine, topology, schedule, epochs })
    }
}

// ---- minimal JSON reader -----------------------------------------------

/// A tiny recursive-descent JSON reader covering exactly the grammar
/// [`RunReport::to_json`] emits (objects, arrays, strings without exotic
/// escapes, unsigned integers, booleans, null) — enough to round-trip
/// persisted reports without a serde dependency. Public so sibling crates
/// persisting in the same idiom (the experiment matrix's `MatrixReport`)
/// parse with the one shared grammar instead of a second hand-rolled
/// reader.
pub mod json {
    use std::collections::BTreeMap;

    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Num(u64),
        Str(String),
        Arr(Vec<Value>),
        Obj(BTreeMap<String, Value>),
    }

    impl Value {
        pub fn as_obj(&self, what: &str) -> Result<&BTreeMap<String, Value>, String> {
            match self {
                Value::Obj(map) => Ok(map),
                other => Err(format!("{what}: expected object, got {other:?}")),
            }
        }

        pub fn as_arr(&self, what: &str) -> Result<&[Value], String> {
            match self {
                Value::Arr(items) => Ok(items),
                other => Err(format!("{what}: expected array, got {other:?}")),
            }
        }

        pub fn as_u64(&self, what: &str) -> Result<u64, String> {
            match self {
                Value::Num(n) => Ok(*n),
                other => Err(format!("{what}: expected number, got {other:?}")),
            }
        }

        pub fn as_bool(&self, what: &str) -> Result<bool, String> {
            match self {
                Value::Bool(b) => Ok(*b),
                other => Err(format!("{what}: expected bool, got {other:?}")),
            }
        }

        pub fn as_str(&self, what: &str) -> Result<&str, String> {
            match self {
                Value::Str(s) => Ok(s),
                other => Err(format!("{what}: expected string, got {other:?}")),
            }
        }
    }

    /// Field lookup on parsed objects.
    pub trait Fields {
        /// The value under `key`.
        ///
        /// # Errors
        ///
        /// Errors when the key is absent.
        fn field(&self, key: &str) -> Result<&Value, String>;
    }

    impl Fields for BTreeMap<String, Value> {
        fn field(&self, key: &str) -> Result<&Value, String> {
            self.get(key).ok_or_else(|| format!("missing field {key}"))
        }
    }

    /// Parses one JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending byte offset.
    pub fn parse(input: &str) -> Result<Value, String> {
        let mut p = Parser { bytes: input.as_bytes(), at: 0 };
        let value = p.value()?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.at));
        }
        Ok(value)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        at: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while self.at < self.bytes.len()
                && matches!(self.bytes[self.at], b' ' | b'\t' | b'\n' | b'\r')
            {
                self.at += 1;
            }
        }

        fn peek(&mut self) -> Result<u8, String> {
            self.skip_ws();
            self.bytes.get(self.at).copied().ok_or_else(|| "unexpected end of input".to_string())
        }

        fn expect(&mut self, byte: u8) -> Result<(), String> {
            let got = self.peek()?;
            if got != byte {
                return Err(format!(
                    "expected {:?} at byte {}, got {:?}",
                    byte as char, self.at, got as char
                ));
            }
            self.at += 1;
            Ok(())
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek()? {
                b'{' => self.object(),
                b'[' => self.array(),
                b'"' => Ok(Value::Str(self.string()?)),
                b'0'..=b'9' => self.number(),
                b't' => self.keyword("true", Value::Bool(true)),
                b'f' => self.keyword("false", Value::Bool(false)),
                b'n' => self.keyword("null", Value::Null),
                other => Err(format!("unexpected {:?} at byte {}", other as char, self.at)),
            }
        }

        fn keyword(&mut self, word: &str, value: Value) -> Result<Value, String> {
            self.skip_ws();
            if self.bytes[self.at..].starts_with(word.as_bytes()) {
                self.at += word.len();
                Ok(value)
            } else {
                Err(format!("bad keyword at byte {}", self.at))
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            self.skip_ws();
            let start = self.at;
            while self.at < self.bytes.len() && self.bytes[self.at].is_ascii_digit() {
                self.at += 1;
            }
            let text = std::str::from_utf8(&self.bytes[start..self.at]).expect("ascii digits");
            text.parse::<u64>().map(Value::Num).map_err(|_| format!("bad number {text}"))
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                let Some(&b) = self.bytes.get(self.at) else {
                    return Err("unterminated string".into());
                };
                self.at += 1;
                match b {
                    b'"' => return Ok(out),
                    b'\\' => {
                        let Some(&esc) = self.bytes.get(self.at) else {
                            return Err("unterminated escape".into());
                        };
                        self.at += 1;
                        match esc {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'n' => out.push('\n'),
                            other => return Err(format!("unsupported escape \\{}", other as char)),
                        }
                    }
                    other => out.push(other as char),
                }
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut map = BTreeMap::new();
            if self.peek()? == b'}' {
                self.at += 1;
                return Ok(Value::Obj(map));
            }
            loop {
                let key = self.string()?;
                self.expect(b':')?;
                map.insert(key, self.value()?);
                match self.peek()? {
                    b',' => self.at += 1,
                    b'}' => {
                        self.at += 1;
                        return Ok(Value::Obj(map));
                    }
                    other => {
                        return Err(format!("expected , or }} got {:?}", other as char));
                    }
                }
                self.skip_ws();
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            if self.peek()? == b']' {
                self.at += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(self.value()?);
                match self.peek()? {
                    b',' => self.at += 1,
                    b']' => {
                        self.at += 1;
                        return Ok(Value::Arr(items));
                    }
                    other => {
                        return Err(format!("expected , or ] got {:?}", other as char));
                    }
                }
            }
        }
    }
}

use json::Fields as _;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::byzantine::ByzantineBehavior;
    use crate::runner::Scenario;
    use nectar_graph::gen;

    fn sample_report() -> RunReport {
        Scenario::new(gen::harary(4, 10).unwrap(), 2)
            .with_byzantine(3, ByzantineBehavior::Silent)
            .with_key_seed(9)
            .sim()
            .epochs(2)
            .run()
    }

    #[test]
    fn json_round_trips_losslessly() {
        let report = sample_report();
        let json = report.to_json();
        let parsed = RunReport::from_json(&json).expect("parses");
        assert_eq!(parsed, report);
    }

    #[test]
    fn json_round_trips_metrics_only_and_parallel_runtime() {
        let report = Scenario::new(gen::cycle(6), 1).sim().workers(3).metrics_only().run();
        let parsed = RunReport::from_json(&report.to_json()).expect("parses");
        assert_eq!(parsed, report);
        assert_eq!(parsed.runtime, Runtime::Parallel { workers: 3 });
    }

    #[test]
    fn json_rejects_version_skew_and_garbage() {
        let report = sample_report();
        let skewed = report.to_json().replace("\"version\": 3", "\"version\": 99");
        assert!(RunReport::from_json(&skewed).is_err());
        assert!(RunReport::from_json("").is_err());
        assert!(RunReport::from_json("{\"version\": 3}").is_err());
        assert!(RunReport::from_json("nonsense").is_err());
    }

    #[test]
    fn profiled_reports_round_trip_on_both_codecs() {
        let report = Scenario::new(gen::cycle(8), 1).sim().epochs(2).profile().run();
        for e in &report.epochs {
            let p = e.profile.expect("profiled run records a breakdown per epoch");
            // Every phase actually executed; the non-trivial ones take
            // measurable time, and the totals are self-consistent.
            assert_eq!(
                p.total_micros(),
                p.disseminate_micros + p.collect_micros(),
                "phase totals must add up"
            );
        }
        let parsed = RunReport::from_json(&report.to_json()).expect("parses");
        assert_eq!(parsed, report);
        let bytes = report.to_wire_bytes();
        assert_eq!(bytes.len(), report.encoded_len());
        let mut slice = bytes.as_slice();
        let decoded = RunReport::decode(&mut slice).expect("decodes");
        assert!(slice.is_empty());
        assert_eq!(decoded, report);
        // Unprofiled runs keep the field absent in both forms.
        let plain = sample_report();
        assert!(plain.epochs.iter().all(|e| e.profile.is_none()));
        assert!(plain.to_json().contains("\"profile\": null"));
    }

    #[test]
    fn binary_codec_round_trips_losslessly() {
        let report = sample_report();
        let bytes = report.to_wire_bytes();
        assert_eq!(bytes.len(), report.encoded_len());
        let mut slice = bytes.as_slice();
        let decoded = RunReport::decode(&mut slice).expect("decodes");
        assert!(slice.is_empty());
        assert_eq!(decoded, report);
    }

    #[test]
    fn binary_codec_rejects_truncation_without_panicking() {
        let report = sample_report();
        let bytes = report.to_wire_bytes();
        for cut in [0, 1, 2, 10, 40, bytes.len() / 2, bytes.len() - 1] {
            let mut slice = &bytes[..cut];
            assert!(RunReport::decode(&mut slice).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn csv_carries_the_per_node_decision_stream() {
        let report = sample_report();
        let csv = report.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "epoch,node,verdict,confirmed,reachable,connectivity");
        // 9 correct nodes × 2 epochs.
        assert_eq!(lines.len(), 1 + 9 * 2);
        let parsed = RunReport::decisions_from_csv(&csv).expect("parses");
        assert_eq!(parsed.len(), 2);
        for e in &report.epochs {
            assert_eq!(parsed[&e.epoch], e.decisions);
        }
    }

    #[test]
    fn csv_rejects_malformed_rows() {
        assert!(RunReport::decisions_from_csv("wrong,header\n").is_err());
        let csv = "epoch,node,verdict,confirmed,reachable,connectivity\n0,1,WARP,true,5,2\n";
        assert!(RunReport::decisions_from_csv(csv).is_err());
        let csv = "epoch,node,verdict,confirmed,reachable,connectivity\n0,1\n";
        assert!(RunReport::decisions_from_csv(csv).is_err());
    }

    #[test]
    fn save_and_load_json_persist_to_disk() {
        let report = sample_report();
        let path = std::env::temp_dir().join("nectar-report-roundtrip.json");
        report.save_json(&path).expect("writes");
        let loaded = RunReport::load_json(&path).expect("loads");
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded, report);
    }

    #[test]
    fn into_outcome_bridges_to_the_legacy_shape() {
        let report = sample_report();
        let decisions = report.decisions().clone();
        let outcome = report.into_outcome();
        assert_eq!(outcome.decisions, decisions);
        assert_eq!(outcome.byzantine, [3].into());
    }
}
