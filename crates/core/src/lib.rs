//! NECTAR — *Neighbors Exploring Connections Toward Adversary Resilience*.
//!
//! A from-scratch Rust implementation of the Byzantine-resilient network
//! partition detection algorithm of Bromberg, Decouchant, Sourisseau and
//! Taïani, *Partition Detection in Byzantine Networks* (ICDCS 2024).
//!
//! **Place in the runtime stack:** the protocol layer. [`NectarNode`]
//! implements `nectar_net::Process`, so the same node code executes on any
//! of the four runtimes — deterministic sync, thread-per-node, the
//! event-driven loop that hosts 10k+-node fleets, or the work-stealing
//! parallel engine that spreads them over every core — selected via
//! [`runner::Runtime`]; [`Scenario`] describes a scenario, and
//! [`Scenario::sim`] starts the [`Simulation`] builder every experiment,
//! example and test drives (runtime, workers, shared oracle, epochs,
//! streaming [`RunObserver`]s), finishing in a persisted [`RunReport`].
//! The decision phase answers `κ ≤ t` through `nectar_graph`'s
//! `ConnectivityOracle`.
//!
//! NECTAR solves **t-Byzantine-resilient, 2t-sensitive network partition
//! detection** (Definition 3) on arbitrary graphs: after `n − 1` synchronous
//! rounds of signed edge dissemination, every correct node decides either
//! `NOT_PARTITIONABLE` (no placement of `t` Byzantine nodes can disconnect
//! correct nodes) or `PARTITIONABLE`, together with a `confirmed` flag that
//! indicates an actual observed partition. The algorithm guarantees:
//!
//! * **Termination** — bounded by network synchrony,
//! * **Agreement** — all correct nodes decide the same value,
//! * **Safety** — if the Byzantine nodes form a vertex cut, no correct node
//!   decides NOT_PARTITIONABLE,
//! * **2t-Sensitivity** — if the graph is 2t-connected, all correct nodes
//!   decide NOT_PARTITIONABLE,
//! * **Validity** — `confirmed = true` only if the Byzantine nodes really
//!   form a vertex cut.
//!
//! # Quick start
//!
//! ```
//! use nectar_protocol::{ByzantineBehavior, Scenario, Verdict};
//!
//! // A 4-regular, 4-connected graph tolerating t = 2 Byzantine nodes:
//! // connectivity 4 = 2t, so NECTAR must report NOT_PARTITIONABLE even
//! // with two silent Byzantine participants (Lemma 1).
//! let graph = nectar_graph::gen::harary(4, 10)?;
//! let report = Scenario::new(graph, 2)
//!     .with_byzantine(3, ByzantineBehavior::Silent)
//!     .with_byzantine(7, ByzantineBehavior::Silent)
//!     .sim()
//!     .run();
//! assert!(report.agreement());
//! assert_eq!(report.unanimous_verdict(), Some(Verdict::NotPartitionable));
//! # Ok::<(), nectar_graph::GraphError>(())
//! ```

#![forbid(unsafe_code)]

pub mod byzantine;
pub mod codec;
pub mod config;
pub mod epochs;
pub mod message;
pub mod node;
pub mod remote;
pub mod report;
pub mod runner;
pub mod sim;

pub use byzantine::{ByzantineBehavior, Participant};
pub use config::{Decision, NectarConfig, Verdict};
pub use epochs::{EpochMonitor, EpochReport};
pub use message::{NectarMsg, RelayedEdge, WireFormat};
pub use nectar_graph::{ConnectivityOracle, OracleStats};
pub use nectar_net::{ScheduleError, TopologySchedule};
pub use node::{NectarNode, RejectReason};
pub use remote::{run_scenario_node, sync_fleet_reports, NodeReport};
pub use report::{decision_csv_row, EpochOutcome, RunReport, ScheduleRecord, DECISIONS_CSV_HEADER};
pub use runner::{Outcome, Runtime, Scenario};
pub use sim::{RunObserver, Simulation};
