//! The one way to execute a scenario: the [`Simulation`] builder.
//!
//! Eleven `run_*` entry points used to cover the runtime × oracle ×
//! metrics-only surface of [`Scenario`]; every new execution axis (worker
//! pools, epochs, future sharding) multiplied that surface again. The
//! builder collapses them into a single session API:
//!
//! ```
//! use nectar_protocol::{Runtime, Scenario};
//!
//! let report = Scenario::new(nectar_graph::gen::cycle(8), 1)
//!     .sim()
//!     .runtime(Runtime::Event)
//!     .epochs(2)
//!     .run();
//! assert!(report.agreement());
//! assert_eq!(report.epochs.len(), 2);
//! ```
//!
//! [`Simulation::run`] finishes in a [`RunReport`] — the persisted session
//! result, serializable to JSON, CSV and the binary codec (see
//! [`crate::report`]). A [`RunObserver`] can watch the execution *stream*:
//! every committed round, every per-node verdict and every closed epoch, in
//! the canonical commit order of `docs/DETERMINISM.md`, identically on all
//! four engines — the per-node decision granularity distributed-detection
//! analyses (Kailkhura et al.) treat as the primary experimental output.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use nectar_graph::{ConnectivityOracle, OracleStats};
use nectar_net::{CompiledSchedule, NodeId, PhaseProfile, RoundSink, TopologySchedule};

use crate::byzantine::Participant;
use crate::config::Decision;
use crate::report::{EpochOutcome, RunReport, ScheduleRecord};
use crate::runner::{Runtime, Scenario};

/// Streaming hooks fed from every engine while a [`Simulation`] runs.
///
/// All hooks fire in the canonical commit order of `docs/DETERMINISM.md`,
/// so the observed stream is bit-identical across the four runtimes and any
/// worker count: per epoch, `round_committed` fires once per round of the
/// horizon in ascending round order (rounds an engine skipped as provably
/// silent included), then `node_decided` fires once per correct node in
/// ascending node order, then `epoch_closed` fires once. Every hook
/// defaults to a no-op, so an observer implements only what it watches.
pub trait RunObserver {
    /// Round `round` (1-based) of epoch `epoch` committed, carrying `bytes`
    /// of traffic.
    fn round_committed(&mut self, epoch: usize, round: usize, bytes: u64) {
        let _ = (epoch, round, bytes);
    }

    /// Correct node `node` decided `decision` during epoch `epoch` (never
    /// fires on metrics-only runs).
    fn node_decided(&mut self, epoch: usize, node: NodeId, decision: &Decision) {
        let _ = (epoch, node, decision);
    }

    /// Epoch `epoch` finished with `outcome` (fired before the outcome is
    /// folded into the final [`RunReport`]).
    fn epoch_closed(&mut self, epoch: usize, outcome: &EpochOutcome) {
        let _ = (epoch, outcome);
    }
}

/// Adapts the engines' [`RoundSink`] barrier stream to a [`RunObserver`],
/// stamping the current epoch onto each committed round.
struct EpochSink<'s, 'a> {
    observer: &'s mut Option<&'a mut dyn RunObserver>,
    epoch: usize,
}

impl RoundSink for EpochSink<'_, '_> {
    fn round_committed(&mut self, round: usize, bytes: u64) {
        if let Some(observer) = self.observer.as_deref_mut() {
            observer.round_committed(self.epoch, round, bytes);
        }
    }
}

/// A configured-but-not-yet-executed session over one [`Scenario`]:
/// runtime, worker pool, shared oracle, epoch count, observers. Finish with
/// [`run`](Simulation::run) (→ [`RunReport`]) or
/// [`participants`](Simulation::participants) (→ raw protocol state).
///
/// This builder is the seam every future execution axis plugs into
/// (`docs/DETERMINISM.md` has the new-axis checklist): an axis becomes one
/// method here instead of another `run_*` generation.
pub struct Simulation<'a> {
    scenario: &'a Scenario,
    runtime: Runtime,
    oracle: Option<&'a mut ConnectivityOracle>,
    metrics_only: bool,
    epochs: usize,
    observer: Option<&'a mut dyn RunObserver>,
    schedule: Option<TopologySchedule>,
    profile: bool,
}

impl Scenario {
    /// Starts a [`Simulation`] over this scenario: sync runtime, private
    /// oracle, one epoch, full decision phase, no observer, no profiling.
    pub fn sim(&self) -> Simulation<'_> {
        Simulation {
            scenario: self,
            runtime: Runtime::Sync,
            oracle: None,
            metrics_only: false,
            epochs: 1,
            observer: None,
            schedule: None,
            profile: false,
        }
    }
}

impl<'a> Simulation<'a> {
    /// Selects the engine executing the propagation rounds (default
    /// [`Runtime::Sync`]). Results are bit-identical on all four; only
    /// wall-clock differs.
    pub fn runtime(mut self, runtime: Runtime) -> Self {
        self.runtime = runtime;
        self
    }

    /// Shorthand for [`runtime`](Self::runtime)`(Runtime::Parallel {
    /// workers })`: the work-stealing engine with a pool of `workers`
    /// threads (`0` = match the machine). The worker count never affects
    /// results.
    pub fn workers(mut self, workers: usize) -> Self {
        self.runtime = Runtime::Parallel { workers };
        self
    }

    /// Shares a caller-supplied [`ConnectivityOracle`], so repeated
    /// sessions over the same topology — epoch monitoring, experiment
    /// sweeps — answer their decision phases from cached verdicts. The
    /// per-epoch [`EpochOutcome::oracle`] counters cover each epoch only.
    pub fn oracle(mut self, oracle: &'a mut ConnectivityOracle) -> Self {
        self.oracle = Some(oracle);
        self
    }

    /// Skips the decision phase: the report carries traffic metrics only
    /// (empty decisions, zero oracle counters). The cost figures
    /// (Figs. 3–7) measure dissemination traffic alone, and skipping the
    /// per-view connectivity work keeps large sweeps fast.
    pub fn metrics_only(mut self) -> Self {
        self.metrics_only = true;
        self
    }

    /// Runs `epochs` monitoring epochs over the same topology: epoch `e`
    /// uses key seed `base + e` (fresh keys per epoch, the
    /// footnote-2 deployment pattern), and all epochs share one oracle so
    /// unchanged topologies decide from cache.
    ///
    /// # Panics
    ///
    /// Panics if `epochs` is zero.
    pub fn epochs(mut self, epochs: usize) -> Self {
        assert!(epochs >= 1, "a simulation runs at least one epoch");
        self.epochs = epochs;
        self
    }

    /// Streams the execution through `observer` (see [`RunObserver`] for
    /// the hook order contract).
    pub fn observe(mut self, observer: &'a mut dyn RunObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Runs the session under a [`TopologySchedule`]: scripted edge
    /// drops/heals, node churn, partitions and per-link loss/delay windows
    /// applied at the round-commit barrier, bit-identically on every
    /// runtime at any worker count (the schedule axis of
    /// `docs/DETERMINISM.md` §4). The schedule re-applies identically in
    /// each epoch, and the report records the applied script plus every
    /// resolved edge transition.
    ///
    /// The schedule is validated against the scenario topology when the
    /// session executes; [`run`](Self::run) /
    /// [`participants`](Self::participants) panic on an inconsistent
    /// schedule (an unknown edge, a heal without a drop, an out-of-range
    /// probability). Callers with untrusted input validate first via
    /// `TopologySchedule::compile`.
    pub fn schedule(mut self, schedule: TopologySchedule) -> Self {
        self.schedule = Some(schedule);
        self
    }

    /// Records a per-phase wall-clock breakdown
    /// ([`PhaseProfile`]: dissemination, then the four decision stages)
    /// into each epoch's [`EpochOutcome::profile`]. Off by default — the
    /// timings are wall clock and therefore nondeterministic, so profiled
    /// reports are excluded from bit-identical cross-runtime comparison;
    /// everything else in the report (decisions, metrics, oracle counters)
    /// stays canonical. The CLI exposes this as `--profile`.
    pub fn profile(mut self) -> Self {
        self.profile = true;
        self
    }

    /// Executes the session and returns its [`RunReport`].
    ///
    /// # Panics
    ///
    /// Panics if a `FictitiousEdges` / `LateReveal` behaviour names
    /// non-Byzantine accomplices.
    pub fn run(self) -> RunReport {
        let Simulation {
            scenario,
            runtime,
            oracle,
            metrics_only,
            epochs,
            mut observer,
            schedule,
            profile,
        } = self;
        let compiled = compile_schedule(schedule.as_ref(), scenario);
        let mut own_oracle = ConnectivityOracle::new();
        let oracle = match oracle {
            Some(shared) => shared,
            None => &mut own_oracle,
        };
        let base_seed = scenario.key_seed();
        let mut epoch_outcomes = Vec::with_capacity(epochs);
        // One working clone serves every epoch after the first (re-seeded
        // in place): epochs differ only in their key seed, and a deep
        // topology + cast clone per epoch would be pure waste at fleet
        // sizes.
        let mut reseeded: Option<Scenario> = None;
        for epoch in 0..epochs {
            let key_seed = base_seed + epoch as u64;
            let sc: &Scenario = if epoch == 0 {
                scenario
            } else {
                let working = reseeded.get_or_insert_with(|| scenario.clone());
                working.set_key_seed(key_seed);
                working
            };
            let mut sink = EpochSink { observer: &mut observer, epoch };
            let mut phase_profile = profile.then(PhaseProfile::default);
            let disseminate_start = Instant::now();
            let (participants, metrics) = sc.propagate(runtime, compiled.as_ref(), &mut sink);
            if let Some(p) = phase_profile.as_mut() {
                p.disseminate_micros = disseminate_start.elapsed().as_micros() as u64;
            }
            let (decisions, oracle_stats) = if metrics_only {
                (BTreeMap::new(), OracleStats::default())
            } else {
                let decided = &mut observer;
                sc.collect(
                    &participants,
                    oracle,
                    runtime.decision_workers(),
                    phase_profile.as_mut(),
                    |node, decision| {
                        if let Some(observer) = decided.as_deref_mut() {
                            observer.node_decided(epoch, node, decision);
                        }
                    },
                )
            };
            let outcome = EpochOutcome {
                epoch,
                key_seed,
                decisions,
                metrics,
                oracle: oracle_stats,
                profile: phase_profile,
            };
            if let Some(observer) = observer.as_deref_mut() {
                observer.epoch_closed(epoch, &outcome);
            }
            epoch_outcomes.push(outcome);
        }
        RunReport {
            runtime,
            n: scenario.config().n,
            t: scenario.config().t,
            key_seed: base_seed,
            byzantine: scenario.byzantine_nodes(),
            // Cloned even for metrics-only sessions, so every report is
            // self-contained (ground-truth helpers, full-fidelity
            // persistence). One O(n + m) clone per session; measured
            // invisible next to the run itself even on the 50 000-node
            // bench tiers.
            topology: scenario.topology().clone(),
            schedule: schedule.as_ref().zip(compiled.as_ref()).map(|(s, c)| ScheduleRecord {
                script: s.to_script(),
                transitions: c
                    .transition_rounds()
                    .flat_map(|r| c.transitions_at(r).iter().map(move |&(u, v, up)| (r, u, v, up)))
                    .collect(),
            }),
            epochs: epoch_outcomes,
        }
    }

    /// Executes the propagation rounds only and returns the raw
    /// participants (full protocol state, in node order) — for tests and
    /// experiments that inspect per-node views. Honors the configured
    /// runtime and observer (`round_committed` fires; there is no decision
    /// phase); the oracle, epoch count and metrics-only settings do not
    /// apply.
    ///
    /// # Panics
    ///
    /// Panics if a `FictitiousEdges` / `LateReveal` behaviour names
    /// non-Byzantine accomplices.
    pub fn participants(self) -> Vec<Participant> {
        let compiled = compile_schedule(self.schedule.as_ref(), self.scenario);
        let mut observer = self.observer;
        let mut sink = EpochSink { observer: &mut observer, epoch: 0 };
        self.scenario.propagate(self.runtime, compiled.as_ref(), &mut sink).0
    }
}

/// Compiles the session schedule against the scenario topology, panicking
/// with the validation message on an inconsistent schedule (the documented
/// behaviour of [`Simulation::schedule`]).
fn compile_schedule(
    schedule: Option<&TopologySchedule>,
    scenario: &Scenario,
) -> Option<Arc<CompiledSchedule>> {
    schedule.map(|s| {
        Arc::new(
            s.compile(scenario.topology()).unwrap_or_else(|e| panic!("schedule rejected: {e}")),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::byzantine::ByzantineBehavior;
    use crate::config::Verdict;
    use nectar_graph::gen;

    #[test]
    fn builder_defaults_match_the_sync_engine() {
        let report = Scenario::new(gen::cycle(6), 1).sim().run();
        assert_eq!(report.runtime, Runtime::Sync);
        assert_eq!(report.epochs.len(), 1);
        assert_eq!(report.decisions().len(), 6);
        assert!(report.agreement());
        assert_eq!(report.unanimous_verdict(), Some(Verdict::NotPartitionable));
    }

    #[test]
    fn builder_reports_byzantine_cast_and_ground_truth() {
        let report =
            Scenario::new(gen::star(6), 1).with_byzantine(0, ByzantineBehavior::Silent).sim().run();
        assert_eq!(report.unanimous_verdict(), Some(Verdict::Partitionable));
        assert!(report.byzantine.contains(&0));
        assert!(report.byzantine_cast_is_vertex_cut());
        assert_eq!(report.true_connectivity(), 1);
    }

    #[test]
    fn metrics_only_skips_the_decision_phase() {
        let report = Scenario::new(gen::cycle(6), 1).sim().metrics_only().run();
        assert!(report.decisions().is_empty());
        assert_eq!(report.oracle().queries, 0);
        assert!(report.metrics().total_bytes_sent() > 0);
    }

    #[test]
    fn epochs_share_the_session_oracle() {
        let report = Scenario::new(gen::cycle(8), 1).sim().epochs(3).run();
        assert_eq!(report.epochs.len(), 3);
        // Epoch 0 pays the one real query; later epochs decide from cache.
        assert_eq!(report.epochs[0].oracle.cache_hits, 7);
        for epoch in &report.epochs[1..] {
            assert_eq!(epoch.oracle.cache_hits, epoch.oracle.queries);
            assert_eq!(epoch.oracle.bounded_flows, 0);
        }
        // Fresh keys per epoch: seeds advance from the scenario's base.
        assert_eq!(report.epochs[2].key_seed, report.key_seed + 2);
    }

    #[test]
    fn external_oracle_carries_verdicts_across_sessions() {
        let scenario = Scenario::new(gen::cycle(6), 1);
        let mut oracle = ConnectivityOracle::new();
        let first = scenario.sim().oracle(&mut oracle).run();
        let second = scenario.sim().oracle(&mut oracle).run();
        assert_eq!(first.decisions(), second.decisions());
        assert_eq!(second.oracle().cache_hits, second.oracle().queries);
    }

    #[test]
    fn workers_shorthand_selects_the_parallel_engine() {
        let report = Scenario::new(gen::cycle(6), 1).sim().workers(2).run();
        assert_eq!(report.runtime, Runtime::Parallel { workers: 2 });
        let sync = Scenario::new(gen::cycle(6), 1).sim().run();
        assert_eq!(report.decisions(), sync.decisions());
        assert_eq!(report.metrics(), sync.metrics());
    }

    #[test]
    fn participants_expose_raw_protocol_state() {
        let participants = Scenario::new(gen::cycle(5), 1).sim().participants();
        assert_eq!(participants.len(), 5);
        for (i, p) in participants.iter().enumerate() {
            assert_eq!(p.nectar().node_id(), i);
        }
    }

    #[test]
    #[should_panic(expected = "at least one epoch")]
    fn zero_epochs_is_rejected() {
        let _ = Scenario::new(gen::cycle(4), 1).sim().epochs(0);
    }

    /// Observer recording every hook invocation in order.
    #[derive(Default)]
    struct Recorder {
        events: Vec<String>,
    }

    impl RunObserver for Recorder {
        fn round_committed(&mut self, epoch: usize, round: usize, bytes: u64) {
            self.events.push(format!("round {epoch}/{round}/{bytes}"));
        }
        fn node_decided(&mut self, epoch: usize, node: NodeId, decision: &Decision) {
            self.events.push(format!("node {epoch}/{node}/{}", decision.verdict));
        }
        fn epoch_closed(&mut self, epoch: usize, outcome: &EpochOutcome) {
            self.events.push(format!("epoch {epoch}/{}", outcome.decisions.len()));
        }
    }

    #[test]
    fn observer_sees_rounds_then_decisions_then_epoch_close() {
        let mut recorder = Recorder::default();
        let scenario = Scenario::new(gen::cycle(5), 1);
        let report = scenario.sim().observe(&mut recorder).run();
        let rounds = scenario.config().effective_rounds();
        assert_eq!(recorder.events.len(), rounds + 5 + 1);
        for (r, event) in recorder.events[..rounds].iter().enumerate() {
            assert!(event.starts_with(&format!("round 0/{}/", r + 1)), "{event}");
        }
        for (i, event) in recorder.events[rounds..rounds + 5].iter().enumerate() {
            assert_eq!(event, &format!("node 0/{i}/NOT_PARTITIONABLE"));
        }
        assert_eq!(recorder.events.last().unwrap(), "epoch 0/5");
        // The streamed bytes add up to the report's total traffic.
        let streamed: u64 = recorder.events[..rounds]
            .iter()
            .map(|e| e.rsplit('/').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(streamed, report.metrics().total_bytes_sent());
    }

    #[test]
    fn observer_streams_are_identical_across_runtimes() {
        let scenario = Scenario::new(gen::harary(4, 10).unwrap(), 2)
            .with_byzantine(3, ByzantineBehavior::Silent)
            .with_key_seed(7);
        let record = |runtime: Runtime| {
            let mut recorder = Recorder::default();
            scenario.sim().runtime(runtime).observe(&mut recorder).run();
            recorder.events
        };
        let reference = record(Runtime::Sync);
        for runtime in [Runtime::Threaded, Runtime::Event, Runtime::Parallel { workers: 3 }] {
            assert_eq!(record(runtime), reference, "{runtime} stream drifted");
        }
    }
}
