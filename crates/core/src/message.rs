//! NECTAR's wire messages.
//!
//! During the edge-propagation phase every node transmits *relayed edges*:
//! a neighborhood proof wrapped in a signature chain
//! `σ_k(σ_x(…σ_u(proof_{u,v})))` whose length must equal the round in which
//! the message travels (Alg. 1 ll. 5–15). A node batches everything due to
//! one neighbor in one [`NectarMsg`] per round.

use std::sync::Arc;

use nectar_crypto::wire;
use nectar_crypto::{NeighborhoodProof, SignatureChain};
use nectar_net::WireSized;

/// How message bytes are accounted (and how a production deployment would
/// serialize them). See DESIGN.md §4.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireFormat {
    /// Faithful per-edge chains: every relayed edge carries its own chain of
    /// `R` signatures at round `R`.
    #[default]
    PerEdgeChains,
    /// Batched chains: all edges relayed in the same round share one chain
    /// of `R` signatures over the batch digest (sound, since every edge
    /// forwarded at round `R` carries a chain of exactly length `R`); the
    /// cheaper format the paper's ~500 KB worst case suggests.
    BatchedChain,
}

/// One discovered edge in transit: the proof plus its relay chain.
///
/// Both payloads sit behind shared ownership: a node fanning one edge out
/// to its whole neighborhood copies two pointers per copy, not a signature
/// buffer, and a proof relayed along k paths is one allocation process-wide
/// on the in-memory runtimes. The wire codec still serializes full
/// contents, so the interning is invisible at the codec boundary — a
/// deserialized edge simply starts a fresh sharing group. `Arc` (not `Rc`)
/// because messages cross engine worker threads. Equality and `Debug` see
/// through the pointers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelayedEdge {
    /// The both-endpoint-signed edge declaration.
    pub proof: Arc<NeighborhoodProof>,
    /// The signature chain accumulated along the relay path; its length is
    /// the paper's `lengthSign(msg)`.
    pub chain: Arc<SignatureChain>,
}

impl RelayedEdge {
    /// Wraps freshly built payloads in the shared-ownership envelope the
    /// relay fan-out copies by pointer.
    pub fn new(proof: NeighborhoodProof, chain: SignatureChain) -> Self {
        RelayedEdge { proof: Arc::new(proof), chain: Arc::new(chain) }
    }

    /// Wire size of this edge under the given format (chain excluded in
    /// batched mode — it is charged once per message).
    fn wire_bytes(&self, format: WireFormat) -> usize {
        match format {
            WireFormat::PerEdgeChains => wire::relayed_proof_bytes(&self.proof, &self.chain),
            WireFormat::BatchedChain => wire::neighborhood_proof_bytes(),
        }
    }
}

/// A round's batch of relayed edges from one node to one neighbor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NectarMsg {
    /// Edges relayed in this message.
    pub edges: Vec<RelayedEdge>,
    /// Wire format used for byte accounting.
    pub format: WireFormat,
}

/// Fixed per-message framing overhead (sender id + round + count).
pub const MSG_HEADER_BYTES: usize = 8;

impl WireSized for NectarMsg {
    fn wire_bytes(&self) -> usize {
        let edges: usize = self.edges.iter().map(|e| e.wire_bytes(self.format)).sum();
        let shared_chain = match self.format {
            WireFormat::PerEdgeChains => 0,
            WireFormat::BatchedChain => {
                // One chain for the whole batch; every edge in a round-R
                // batch has a length-R chain, so take the longest present.
                self.edges.iter().map(|e| wire::chain_bytes(&e.chain)).max().unwrap_or(0)
            }
        };
        MSG_HEADER_BYTES + edges + shared_chain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nectar_crypto::KeyStore;

    fn relayed(ks: &KeyStore, a: u16, b: u16, hops: &[u16]) -> RelayedEdge {
        let proof = NeighborhoodProof::new(&ks.signer(a), &ks.signer(b));
        let digest = proof.digest();
        let mut chain = SignatureChain::new();
        for &h in hops {
            chain = chain.extend(&ks.signer(h), &digest);
        }
        RelayedEdge::new(proof, chain)
    }

    #[test]
    fn per_edge_format_charges_each_chain() {
        let ks = KeyStore::generate(6, 1);
        let msg = NectarMsg {
            edges: vec![relayed(&ks, 0, 1, &[0, 2]), relayed(&ks, 1, 2, &[1, 2])],
            format: WireFormat::PerEdgeChains,
        };
        let per_edge = wire::neighborhood_proof_bytes() + 2 * wire::signature_entry_bytes();
        assert_eq!(msg.wire_bytes(), MSG_HEADER_BYTES + 2 * per_edge);
    }

    #[test]
    fn batched_format_charges_one_chain() {
        let ks = KeyStore::generate(6, 1);
        let msg = NectarMsg {
            edges: vec![relayed(&ks, 0, 1, &[0, 2]), relayed(&ks, 1, 2, &[1, 2])],
            format: WireFormat::BatchedChain,
        };
        let expected = MSG_HEADER_BYTES
            + 2 * wire::neighborhood_proof_bytes()
            + 2 * wire::signature_entry_bytes();
        assert_eq!(msg.wire_bytes(), expected);
    }

    #[test]
    fn batched_is_never_larger_than_per_edge() {
        let ks = KeyStore::generate(8, 2);
        let edges = vec![
            relayed(&ks, 0, 1, &[0, 3, 4]),
            relayed(&ks, 1, 2, &[1, 3, 4]),
            relayed(&ks, 2, 3, &[2, 3, 4]),
        ];
        let per = NectarMsg { edges: edges.clone(), format: WireFormat::PerEdgeChains };
        let batched = NectarMsg { edges, format: WireFormat::BatchedChain };
        assert!(batched.wire_bytes() <= per.wire_bytes());
    }

    #[test]
    fn empty_message_is_header_only() {
        let msg = NectarMsg { edges: Vec::new(), format: WireFormat::PerEdgeChains };
        assert_eq!(msg.wire_bytes(), MSG_HEADER_BYTES);
    }
}
