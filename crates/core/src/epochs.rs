//! Epoch-based monitoring of evolving topologies.
//!
//! NECTAR is specified one-shot over a static graph; the paper notes
//! (footnote 2) that in practice "the connectivity graph might evolve over
//! time — in such cases, we assume that the graph remains static long
//! enough for the algorithm to execute". [`EpochMonitor`] packages that
//! usage: one NECTAR execution per topology snapshot, with fresh keys per
//! epoch and a report history — the pattern behind the `drone_patrol`
//! example and any deployment that re-runs detection periodically.
//!
//! One [`ConnectivityOracle`] is shared across all epochs of a monitoring
//! run: a snapshot whose topology did not move since an earlier epoch —
//! the overwhelmingly common case for a stable deployment — re-resolves
//! its decision phase from the verdict cache in O(n + m) instead of
//! re-running max-flow connectivity computations (see
//! [`Outcome::oracle`](crate::runner::Outcome::oracle) per epoch).

use nectar_graph::{ConnectivityOracle, Graph};

use crate::config::Verdict;
use crate::runner::{Outcome, Runtime, Scenario};

/// Runs one NECTAR execution per topology snapshot.
#[derive(Debug, Clone)]
pub struct EpochMonitor {
    t: usize,
    key_seed: u64,
    runtime: Runtime,
}

/// The outcome of one epoch.
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// The full execution outcome.
    pub outcome: Outcome,
}

impl EpochMonitor {
    /// A monitor tolerating up to `t` Byzantine nodes per epoch.
    pub fn new(t: usize) -> Self {
        EpochMonitor { t, key_seed: 1, runtime: Runtime::Sync }
    }

    /// Seeds the per-epoch key universes (epoch `e` uses `seed + e`).
    pub fn with_key_seed(mut self, seed: u64) -> Self {
        self.key_seed = seed;
        self
    }

    /// Selects the runtime executing each epoch (default
    /// [`Runtime::Sync`]); outcomes are identical on all four, so pick
    /// [`Runtime::Event`] when the monitored fleet is large, or
    /// [`Runtime::Parallel`] when it is large *and* the machine has cores
    /// to spare.
    pub fn with_runtime(mut self, runtime: Runtime) -> Self {
        self.runtime = runtime;
        self
    }

    /// Runs NECTAR over each snapshot in turn, sharing one connectivity
    /// oracle across the epochs so unchanged topologies decide from cache.
    ///
    /// Each snapshot is one single-epoch [`Simulation`](crate::Simulation)
    /// session (the builder's own `.epochs(k)` re-runs one *fixed*
    /// topology; the monitor's job is the evolving-topology variant, one
    /// scenario per snapshot).
    pub fn run_epochs<I>(&self, snapshots: I) -> Vec<EpochReport>
    where
        I: IntoIterator<Item = Graph>,
    {
        let mut oracle = ConnectivityOracle::new();
        snapshots
            .into_iter()
            .enumerate()
            .map(|(epoch, graph)| {
                let outcome = Scenario::new(graph, self.t)
                    .with_key_seed(self.key_seed + epoch as u64)
                    .sim()
                    .runtime(self.runtime)
                    .oracle(&mut oracle)
                    .run()
                    .into_outcome();
                EpochReport { epoch, outcome }
            })
            .collect()
    }

    /// First epoch whose unanimous verdict was PARTITIONABLE, if any — the
    /// "early warning" moment of the drone scenario.
    pub fn first_partitionable_epoch(reports: &[EpochReport]) -> Option<usize> {
        reports
            .iter()
            .find(|r| r.outcome.unanimous_verdict() == Some(Verdict::Partitionable))
            .map(|r| r.epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nectar_graph::gen;

    #[test]
    fn monitors_a_degrading_topology() {
        // Snapshots: a 4-connected graph that loses edges epoch by epoch
        // until it is a bare ring — the verdict flips once κ drops to t.
        let strong = gen::harary(4, 10).unwrap();
        let mut weaker = strong.clone();
        for i in 0..10 {
            weaker.remove_edge(i, (i + 2) % 10);
        }
        let ring = gen::cycle(10);
        let monitor = EpochMonitor::new(2).with_key_seed(42);
        let reports = monitor.run_epochs([strong, weaker, ring]);
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].outcome.unanimous_verdict(), Some(Verdict::NotPartitionable));
        assert_eq!(reports[2].outcome.unanimous_verdict(), Some(Verdict::Partitionable));
        let first = EpochMonitor::first_partitionable_epoch(&reports);
        assert!(matches!(first, Some(1) | Some(2)));
    }

    #[test]
    fn stable_topology_never_alarms() {
        let monitor = EpochMonitor::new(1);
        let reports = monitor.run_epochs(std::iter::repeat_n(gen::cycle(6), 3));
        assert_eq!(EpochMonitor::first_partitionable_epoch(&reports), None);
        assert!(reports.iter().all(|r| r.outcome.agreement()));
    }

    #[test]
    fn unchanged_snapshots_decide_from_the_shared_cache() {
        let monitor = EpochMonitor::new(1);
        let reports = monitor.run_epochs(std::iter::repeat_n(gen::cycle(8), 3));
        // Epoch 0 pays for the one real connectivity query; epochs 1 and 2
        // answer every node's decision from the shared verdict cache.
        assert_eq!(reports[0].outcome.oracle.cache_hits, 7);
        for r in &reports[1..] {
            assert_eq!(r.outcome.oracle.cache_hits, r.outcome.oracle.queries);
            assert_eq!(r.outcome.oracle.bounded_flows, 0);
        }
    }

    #[test]
    fn event_runtime_monitors_identically() {
        let snapshots = || [gen::harary(4, 10).unwrap(), gen::cycle(10)];
        let sync_reports = EpochMonitor::new(2).run_epochs(snapshots());
        let event_reports =
            EpochMonitor::new(2).with_runtime(Runtime::Event).run_epochs(snapshots());
        for (a, b) in sync_reports.iter().zip(&event_reports) {
            assert_eq!(a.outcome.decisions, b.outcome.decisions);
            assert_eq!(a.outcome.metrics, b.outcome.metrics);
        }
    }

    #[test]
    fn parallel_runtime_monitors_identically_and_shares_the_cache() {
        let snapshots = || [gen::harary(4, 10).unwrap(), gen::cycle(10), gen::cycle(10)];
        let sync_reports = EpochMonitor::new(2).run_epochs(snapshots());
        let par_reports = EpochMonitor::new(2)
            .with_runtime(Runtime::Parallel { workers: 3 })
            .run_epochs(snapshots());
        for (a, b) in sync_reports.iter().zip(&par_reports) {
            assert_eq!(a.outcome.decisions, b.outcome.decisions);
            assert_eq!(a.outcome.metrics, b.outcome.metrics);
            assert_eq!(a.outcome.oracle, b.outcome.oracle);
        }
        // The repeated snapshot decides entirely from the shared cache,
        // exactly as under the sequential decision phase.
        let last = &par_reports[2].outcome.oracle;
        assert_eq!(last.cache_hits, last.queries);
    }

    #[test]
    fn epochs_use_distinct_key_universes() {
        let monitor = EpochMonitor::new(1).with_key_seed(7);
        let reports = monitor.run_epochs([gen::cycle(5), gen::cycle(5)]);
        // Different keys, same decisions: byte counts match because message
        // *sizes* are identical even though signatures differ.
        assert_eq!(
            reports[0].outcome.metrics.total_bytes_sent(),
            reports[1].outcome.metrics.total_bytes_sent()
        );
        assert_eq!(reports[0].outcome.unanimous_verdict(), reports[1].outcome.unanimous_verdict());
    }
}
