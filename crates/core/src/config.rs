//! Protocol parameters and decision types.

use serde::{Deserialize, Serialize};

use crate::message::WireFormat;

/// NECTAR's two possible decisions (§III-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Verdict {
    /// No placement of Byzantine nodes can disconnect correct nodes.
    NotPartitionable,
    /// Byzantine nodes might be able to disconnect correct nodes (but this
    /// is not certain).
    Partitionable,
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::NotPartitionable => f.write_str("NOT_PARTITIONABLE"),
            Verdict::Partitionable => f.write_str("PARTITIONABLE"),
        }
    }
}

impl std::str::FromStr for Verdict {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "NOT_PARTITIONABLE" => Ok(Verdict::NotPartitionable),
            "PARTITIONABLE" => Ok(Verdict::Partitionable),
            other => Err(format!("unknown verdict {other}")),
        }
    }
}

/// The output of `decide()`: the verdict plus the indicative `confirmed`
/// flag (§IV-A). `confirmed = true` means an actual partition was detected
/// — some nodes were unreachable — which per the Validity property implies
/// the Byzantine nodes form a vertex cut of `G`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Decision {
    /// PARTITIONABLE / NOT_PARTITIONABLE.
    pub verdict: Verdict,
    /// Whether an actual communication impossibility was observed.
    pub confirmed: bool,
    /// Number of nodes this node saw as reachable (`r` in Alg. 1).
    pub reachable: usize,
    /// The vertex-connectivity bound of the discovered graph that justified
    /// the verdict (`k` in Alg. 1). The reference path
    /// ([`NectarNode::decide`](crate::node::NectarNode::decide)) reports the
    /// exact `κ`; the oracle path
    /// ([`decide_with`](crate::node::NectarNode::decide_with)) reports a
    /// witness bound instead — `≤ t` for PARTITIONABLE (a cut of that size
    /// exists), `t + 1` for NOT_PARTITIONABLE (`κ` is at least that). The
    /// verdict-relevant comparison `connectivity > t` agrees between the two.
    pub connectivity: usize,
}

impl Decision {
    /// Applies the decision rule of Alg. 1 ll. 17–23 to a view summarized
    /// by its reachable count `r` and its connectivity (bound): decide
    /// NOT_PARTITIONABLE iff `k > t ∧ r = n`, PARTITIONABLE otherwise with
    /// `confirmed = (r ≠ n)`. Single home of the rule, shared by the exact
    /// and oracle paths of `NectarNode` and by the dolev detector.
    pub fn from_view(n: usize, t: usize, reachable: usize, connectivity: usize) -> Decision {
        let all_reachable = reachable == n;
        if connectivity > t && all_reachable {
            Decision {
                verdict: Verdict::NotPartitionable,
                confirmed: false,
                reachable,
                connectivity,
            }
        } else {
            Decision {
                verdict: Verdict::Partitionable,
                confirmed: !all_reachable,
                reachable,
                connectivity,
            }
        }
    }
}

/// NECTAR's parameters: the paper's inputs (`n`, `t`) plus reproduction
/// knobs whose defaults follow Algorithm 1 exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct NectarConfig {
    /// Total number of processes (`n`), known to all nodes (§II).
    pub n: usize,
    /// Maximum number of Byzantine nodes (`t`).
    pub t: usize,
    /// Number of propagation rounds `R`; `None` uses the paper's default
    /// `n − 1` (the chain-topology worst case, §IV-B). Choosing a different
    /// value trades liveness on high-diameter graphs for latency — the
    /// `ablation_rounds` bench explores this.
    pub rounds: Option<usize>,
    /// Reject chains whose length differs from the current round
    /// (Alg. 1 l. 14). Disabling this is unsafe and exists only for the
    /// ablation that demonstrates the stale-replay attack it prevents.
    pub check_chain_length: bool,
    /// Reject chains with repeated signers (the Dolev–Strong style sanity
    /// condition; correct relays never sign the same edge twice).
    pub require_distinct_signers: bool,
    /// Byte-accounting wire format (DESIGN.md §4.2).
    pub wire_format: WireFormat,
}

impl NectarConfig {
    /// Paper-faithful configuration for an `n`-node system tolerating `t`
    /// Byzantine nodes.
    pub fn new(n: usize, t: usize) -> Self {
        NectarConfig {
            n,
            t,
            rounds: None,
            check_chain_length: true,
            require_distinct_signers: true,
            wire_format: WireFormat::default(),
        }
    }

    /// The number of propagation rounds this configuration runs.
    pub fn effective_rounds(&self) -> usize {
        self.rounds.unwrap_or(self.n.saturating_sub(1))
    }

    /// Sets an explicit round count (builder style).
    pub fn with_rounds(mut self, rounds: usize) -> Self {
        self.rounds = Some(rounds);
        self
    }

    /// Sets the wire format (builder style).
    pub fn with_wire_format(mut self, format: WireFormat) -> Self {
        self.wire_format = format;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_rounds_is_n_minus_one() {
        assert_eq!(NectarConfig::new(10, 2).effective_rounds(), 9);
        assert_eq!(NectarConfig::new(0, 0).effective_rounds(), 0);
        assert_eq!(NectarConfig::new(10, 2).with_rounds(4).effective_rounds(), 4);
    }

    #[test]
    fn defaults_are_paper_faithful() {
        let cfg = NectarConfig::new(5, 1);
        assert!(cfg.check_chain_length);
        assert!(cfg.require_distinct_signers);
        assert_eq!(cfg.wire_format, WireFormat::PerEdgeChains);
    }

    #[test]
    fn verdict_displays_like_the_paper() {
        assert_eq!(Verdict::NotPartitionable.to_string(), "NOT_PARTITIONABLE");
        assert_eq!(Verdict::Partitionable.to_string(), "PARTITIONABLE");
    }

    #[test]
    fn verdict_names_round_trip() {
        for v in [Verdict::NotPartitionable, Verdict::Partitionable] {
            assert_eq!(v.to_string().parse::<Verdict>().unwrap(), v);
        }
        assert!("MAYBE".parse::<Verdict>().is_err());
    }
}
