//! Byzantine-resilience experiments: Fig. 8 and the §V-D in-text topology
//! study.
//!
//! Fig. 8 plots the *decision success rate* — the fraction of correct nodes
//! reaching the correct conclusion — against the number of Byzantine nodes,
//! in a drone system whose correct subgraph is partitioned in two:
//!
//! * **MtG** faces insiders gossiping all-ones Bloom filters;
//! * **MtGv2** and **NECTAR** face two-faced bridge nodes that carry all
//!   inter-part edges, act correctly toward part A and crashed toward
//!   part B.
//!
//! The paper's result: NECTAR stays at success 1.0 for every `t`, MtG
//! collapses to 0 from two Byzantine nodes, MtGv2 plateaus near 0.5.

use std::collections::BTreeMap;

use nectar_baselines::{
    run_mtg, run_mtg_v2, BaselineVerdict, MtgBehavior, MtgConfig, MtgV2Behavior,
};
use nectar_graph::{gen, traversal, ConnectivityOracle, Graph};
use nectar_net::NodeId;
use nectar_protocol::{ByzantineBehavior, Outcome, Runtime, Scenario, Verdict};

use crate::scenarios::{
    bridged_partition, clustered_fleet, cut_byzantine_placement_with, partitioned_with_insiders,
};
use crate::stats::summarize;
use crate::table::{Point, Series, Table};

/// Parameters for Fig. 8.
#[derive(Debug, Clone)]
pub struct Fig8Config {
    /// System size (the paper uses 35; 20 and 50 "exhibit the same
    /// tendencies").
    pub n: usize,
    /// Byzantine counts to sweep.
    pub ts: Vec<usize>,
    /// Bridge edges per part per Byzantine node.
    pub links_per_part: usize,
    /// Repetitions per point.
    pub runs: usize,
    /// Base RNG seed.
    pub base_seed: u64,
}

impl Fig8Config {
    /// The paper's setting: n = 35, t ∈ {0..6}, 50 runs.
    pub fn paper() -> Self {
        Fig8Config { n: 35, ts: (0..=6).collect(), links_per_part: 3, runs: 50, base_seed: 88 }
    }

    /// Scaled-down setting for tests.
    pub fn quick() -> Self {
        Fig8Config { n: 14, ts: vec![0, 1, 2], links_per_part: 2, runs: 3, base_seed: 88 }
    }
}

fn mix(base: u64, a: u64, b: u64) -> u64 {
    base ^ a.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ b.wrapping_mul(0xbf58_476d_1ce4_e5b9)
}

/// One NECTAR bridge-attack run; returns the success rate (fraction of
/// correct nodes deciding PARTITIONABLE, the correct answer since the
/// correct subgraph is disconnected).
fn nectar_bridge_run(cfg: &Fig8Config, t: usize, seed: u64) -> f64 {
    if t == 0 {
        let s = partitioned_with_insiders(cfg.n, 0, seed);
        let out = Scenario::new(s.graph, 0).with_key_seed(seed).sim().run();
        return out.success_rate(Verdict::Partitionable);
    }
    let s = bridged_partition(cfg.n, t, cfg.links_per_part, seed);
    let mut scenario = Scenario::new(s.graph, t).with_key_seed(seed);
    for &b in &s.byzantine {
        scenario = scenario.with_byzantine(
            b,
            ByzantineBehavior::TwoFaced { silent_toward: s.part_b.iter().copied().collect() },
        );
    }
    scenario.sim().run().success_rate(Verdict::Partitionable)
}

/// One MtGv2 bridge-attack run.
fn mtgv2_bridge_run(cfg: &Fig8Config, t: usize, seed: u64) -> f64 {
    let (graph, byzantine, part_b) = if t == 0 {
        let s = partitioned_with_insiders(cfg.n, 0, seed);
        (s.graph, Vec::new(), s.part_b)
    } else {
        let s = bridged_partition(cfg.n, t, cfg.links_per_part, seed);
        (s.graph, s.byzantine, s.part_b)
    };
    let byz: BTreeMap<NodeId, MtgV2Behavior> = byzantine
        .into_iter()
        .map(|b| (b, MtgV2Behavior::TwoFaced { silent_toward: part_b.iter().copied().collect() }))
        .collect();
    run_mtg_v2(&graph, &byz, cfg.n - 1, seed).success_rate(BaselineVerdict::Partitioned)
}

/// One MtG insider-attack run.
fn mtg_insider_run(cfg: &Fig8Config, t: usize, seed: u64) -> f64 {
    let s = partitioned_with_insiders(cfg.n, t, seed);
    let byz: BTreeMap<NodeId, MtgBehavior> =
        s.byzantine.into_iter().map(|b| (b, MtgBehavior::SaturateFilter)).collect();
    run_mtg(&s.graph, MtgConfig::new(cfg.n), &byz, cfg.n - 1)
        .success_rate(BaselineVerdict::Partitioned)
}

/// **Fig. 8** — decision success rate vs number of Byzantine nodes, for
/// NECTAR, MtG and MtGv2 in the drone scenario.
pub fn fig8_byzantine_resilience(cfg: &Fig8Config) -> Table {
    let algos: Vec<(&str, fn(&Fig8Config, usize, u64) -> f64)> = vec![
        ("Nectar (ours)", nectar_bridge_run),
        ("MtG", mtg_insider_run),
        ("MtGv2", mtgv2_bridge_run),
    ];
    let series = algos
        .into_iter()
        .map(|(label, runner)| Series {
            label: label.into(),
            points: cfg
                .ts
                .iter()
                .map(|&t| {
                    let samples: Vec<f64> = (0..cfg.runs)
                        .map(|run| runner(cfg, t, mix(cfg.base_seed, t as u64, run as u64)))
                        .collect();
                    let s = summarize(&samples);
                    Point { x: t as f64, mean: s.mean, ci95: s.ci95 }
                })
                .collect(),
        })
        .collect();
    Table {
        id: "fig8".into(),
        title: format!("Fig. 8: decision success rate vs Byzantine count (drone, n = {})", cfg.n),
        x_label: "Number of Byzantine nodes (t)".into(),
        y_label: "Decision success rate".into(),
        series,
    }
}

/// Whether a NECTAR outcome complies with Definition 3 given the ground
/// truth (used when the "correct" verdict is not unique):
///
/// * Agreement must hold;
/// * if the Byzantine cast cuts the correct subgraph, the verdict must be
///   PARTITIONABLE (Safety);
/// * if `κ(G) ≥ 2t`, the verdict must be NOT_PARTITIONABLE
///   (2t-Sensitivity);
/// * any `confirmed = true` requires some subset of the cast to really be
///   a vertex cut of `G` (Validity, in Theorem 2's reading — a Byzantine
///   node with no correct neighbors counts as cut off);
/// * otherwise both verdicts are acceptable.
pub fn nectar_spec_compliant(out: &Outcome, t: usize) -> bool {
    nectar_spec_compliant_with(&mut ConnectivityOracle::new(), out, t)
}

/// [`nectar_spec_compliant`] with a caller-supplied oracle: the
/// 2t-Sensitivity check `κ(G) ≥ 2t` is a threshold decision, so sweeps that
/// test many runs over the same topology resolve it from cache after the
/// first (and with bounded flows even on the first).
pub fn nectar_spec_compliant_with(
    oracle: &mut ConnectivityOracle,
    out: &Outcome,
    t: usize,
) -> bool {
    if !out.agreement() {
        return false;
    }
    let verdict = match out.unanimous_verdict() {
        Some(v) => v,
        None => return out.decisions.is_empty(),
    };
    if out.byzantine_cast_is_vertex_cut() && verdict != Verdict::Partitionable {
        return false;
    }
    if oracle.kappa_at_least(&out.topology, 2 * t) && verdict != Verdict::NotPartitionable {
        return false;
    }
    if out.decisions.values().any(|d| d.confirmed) && !out.byzantine_cast_can_cut() {
        return false;
    }
    true
}

/// Parameters for the §V-D in-text topology-resilience study.
#[derive(Debug, Clone)]
pub struct TopologyResilienceConfig {
    /// System size.
    pub n: usize,
    /// Connectivity parameter of the topology families.
    pub k: usize,
    /// Byzantine counts to sweep.
    pub ts: Vec<usize>,
    /// Repetitions per point.
    pub runs: usize,
    /// Base RNG seed.
    pub base_seed: u64,
}

impl TopologyResilienceConfig {
    /// Full-size study.
    pub fn paper() -> Self {
        TopologyResilienceConfig { n: 30, k: 4, ts: (0..=6).collect(), runs: 20, base_seed: 99 }
    }

    /// Scaled-down study for tests.
    pub fn quick() -> Self {
        TopologyResilienceConfig { n: 16, k: 4, ts: vec![0, 4], runs: 2, base_seed: 99 }
    }
}

/// Builds the named family member, if the parameters permit.
pub fn topology_family(name: &str, k: usize, n: usize) -> Option<Graph> {
    match name {
        "k-regular" => gen::harary(k, n).ok(),
        "k-pasted-tree" => gen::k_pasted_tree(k, n).ok(),
        "k-diamond" => gen::k_diamond(k, n).ok(),
        "generalized-wheel" => gen::generalized_wheel(k, n).ok(),
        "multipartite-wheel" => gen::multipartite_wheel(k, n, 2).ok(),
        _ => None,
    }
}

/// Names of the §V-B topology families.
pub const TOPOLOGY_FAMILIES: [&str; 5] =
    ["k-regular", "k-pasted-tree", "k-diamond", "generalized-wheel", "multipartite-wheel"];

/// **§V-D in-text** — success rates on the connectivity-dependent topology
/// families under worst-case ("key position") Byzantine placement: the
/// Byzantine nodes sit on a minimum vertex cut whenever `t ≥ κ`, play
/// two-faced against NECTAR/MtGv2 and saturate filters against MtG.
/// Returns one table per family.
pub fn topology_resilience(cfg: &TopologyResilienceConfig) -> Vec<Table> {
    TOPOLOGY_FAMILIES
        .iter()
        .filter_map(|family| {
            let g = topology_family(family, cfg.k, cfg.n)?;
            Some(family_resilience(cfg, family, &g))
        })
        .collect()
}

fn family_resilience(cfg: &TopologyResilienceConfig, family: &str, g: &Graph) -> Table {
    let mut nectar_series = Series { label: "Nectar (ours)".into(), points: Vec::new() };
    let mut mtg_series = Series { label: "MtG".into(), points: Vec::new() };
    let mut v2_series = Series { label: "MtGv2".into(), points: Vec::new() };
    // One oracle per family: every run of the sweep places casts on (and
    // spec-checks against) the same topology, so the per-run feasibility
    // and 2t-sensitivity queries all resolve from the shared verdict cache
    // after their first occurrence.
    let mut oracle = ConnectivityOracle::new();
    for &t in &cfg.ts {
        let mut nectar_samples = Vec::new();
        let mut mtg_samples = Vec::new();
        let mut v2_samples = Vec::new();
        for run in 0..cfg.runs {
            let seed = mix(cfg.base_seed, t as u64, run as u64);
            let byz = cut_byzantine_placement_with(&mut oracle, g, t, seed);
            let correct_partitioned = traversal::is_partitioned_without(g, &byz);
            // The silenced side: nodes outside the component of the
            // smallest correct node (empty if the correct subgraph stays
            // connected).
            let silenced = silenced_side(g, &byz);

            // NECTAR: two-faced Byzantine nodes; success = spec compliance.
            let mut scenario = Scenario::new(g.clone(), t).with_key_seed(seed);
            for &b in &byz {
                scenario = scenario.with_byzantine(
                    b,
                    if silenced.is_empty() {
                        ByzantineBehavior::Silent
                    } else {
                        ByzantineBehavior::TwoFaced {
                            silent_toward: silenced.iter().copied().collect(),
                        }
                    },
                );
            }
            let out = scenario.sim().oracle(&mut oracle).run().into_outcome();
            nectar_samples.push(if nectar_spec_compliant_with(&mut oracle, &out, t) {
                1.0
            } else {
                0.0
            });

            // MtG: saturating insiders; the correct answer tracks the
            // correct subgraph.
            let mtg_byz: BTreeMap<NodeId, MtgBehavior> =
                byz.iter().map(|&b| (b, MtgBehavior::SaturateFilter)).collect();
            let mtg_out = run_mtg(g, MtgConfig::new(cfg.n), &mtg_byz, cfg.n - 1);
            let expected = if correct_partitioned {
                BaselineVerdict::Partitioned
            } else {
                BaselineVerdict::Connected
            };
            mtg_samples.push(mtg_out.success_rate(expected));

            // MtGv2: two-faced bridges.
            let v2_byz: BTreeMap<NodeId, MtgV2Behavior> = byz
                .iter()
                .map(|&b| {
                    (
                        b,
                        if silenced.is_empty() {
                            MtgV2Behavior::Silent
                        } else {
                            MtgV2Behavior::TwoFaced {
                                silent_toward: silenced.iter().copied().collect(),
                            }
                        },
                    )
                })
                .collect();
            let v2_out = run_mtg_v2(g, &v2_byz, cfg.n - 1, seed);
            // A silent/two-faced Byzantine node makes its own attestation
            // reachable only partially; the fair expected verdict is about
            // the correct subgraph.
            v2_samples.push(v2_out.success_rate(expected));
        }
        let t_f = t as f64;
        let s = summarize(&nectar_samples);
        nectar_series.points.push(Point { x: t_f, mean: s.mean, ci95: s.ci95 });
        let s = summarize(&mtg_samples);
        mtg_series.points.push(Point { x: t_f, mean: s.mean, ci95: s.ci95 });
        let s = summarize(&v2_samples);
        v2_series.points.push(Point { x: t_f, mean: s.mean, ci95: s.ci95 });
    }
    Table {
        id: format!("text_resilience_{family}"),
        title: format!(
            "§V-D: decision success rate vs t on {family} (n = {}, k = {})",
            cfg.n, cfg.k
        ),
        x_label: "Number of Byzantine nodes (t)".into(),
        y_label: "Decision success rate".into(),
        series: vec![nectar_series, mtg_series, v2_series],
    }
}

/// Parameters for the large-n clustered-fleet resilience sweep.
#[derive(Debug, Clone)]
pub struct ClusteredResilienceConfig {
    /// Number of disjoint clusters.
    pub clusters: usize,
    /// Nodes per cluster.
    pub size: usize,
    /// Byzantine insider counts to sweep.
    pub ts: Vec<usize>,
    /// Repetitions per point.
    pub runs: usize,
    /// Base RNG seed.
    pub base_seed: u64,
    /// The runtime executing the sweep.
    pub runtime: Runtime,
}

impl ClusteredResilienceConfig {
    /// The beyond-the-paper scale: 2 000 nodes (500 clusters of 4) on the
    /// event-driven runtime.
    pub fn paper() -> Self {
        ClusteredResilienceConfig {
            clusters: 500,
            size: 4,
            ts: vec![0, 4, 16],
            runs: 3,
            base_seed: 424,
            runtime: Runtime::Event,
        }
    }

    /// Scaled-down sweep for tests.
    pub fn quick() -> Self {
        ClusteredResilienceConfig {
            clusters: 10,
            size: 4,
            ts: vec![0, 3],
            runs: 2,
            base_seed: 424,
            runtime: Runtime::Event,
        }
    }
}

/// **Beyond §V** — decision success rate on large clustered fleets
/// ([`clustered_fleet`]): the ground truth is a `confirmed` partition
/// everywhere (the fleet is maximally partitioned), so success is the
/// fraction of correct nodes deciding PARTITIONABLE even with silent
/// Byzantine insiders scattered across clusters. Feasible at thousands of
/// nodes only because the event-driven runtime schedules `O(active
/// events)`: every cluster quiesces after ~`size` rounds of the `n − 1`
/// round horizon.
pub fn clustered_resilience(cfg: &ClusteredResilienceConfig) -> Table {
    let mut series = Series { label: "Nectar (ours)".into(), points: Vec::new() };
    // One oracle across the sweep: correct nodes see only their own
    // cluster, so the per-cluster views repeat across runs and epochs and
    // the decision phase resolves from the verdict cache.
    let mut oracle = ConnectivityOracle::new();
    for &t in &cfg.ts {
        let samples: Vec<f64> = (0..cfg.runs)
            .map(|run| {
                let seed = mix(cfg.base_seed, t as u64, run as u64);
                let s = clustered_fleet(cfg.clusters, cfg.size, t, seed);
                let mut scenario = Scenario::new(s.graph, t).with_key_seed(seed);
                for &b in &s.byzantine {
                    scenario = scenario.with_byzantine(b, ByzantineBehavior::Silent);
                }
                let out = scenario.sim().runtime(cfg.runtime).oracle(&mut oracle).run();
                debug_assert!(out.decisions().values().all(|d| d.confirmed));
                out.success_rate(Verdict::Partitionable)
            })
            .collect();
        let s = summarize(&samples);
        series.points.push(Point { x: t as f64, mean: s.mean, ci95: s.ci95 });
    }
    Table {
        id: "large_scale_resilience".into(),
        title: format!(
            "Beyond §V: success rate on a {}-node clustered fleet ({} runtime)",
            cfg.clusters * cfg.size,
            cfg.runtime
        ),
        x_label: "Number of Byzantine insiders (t)".into(),
        y_label: "Decision success rate".into(),
        series: vec![series],
    }
}

/// Nodes cut off from the smallest-id correct node once `byz` is removed.
fn silenced_side(g: &Graph, byz: &[NodeId]) -> Vec<NodeId> {
    let n = g.node_count();
    let byz_set: std::collections::BTreeSet<NodeId> = byz.iter().copied().collect();
    let anchor = match (0..n).find(|v| !byz_set.contains(v)) {
        Some(a) => a,
        None => return Vec::new(),
    };
    let without = g.without_nodes(byz);
    let reach = traversal::reachable_from(&without, anchor);
    (0..n).filter(|&v| !byz_set.contains(&v) && !reach[v]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_quick_shapes_match_the_paper() {
        let t = fig8_byzantine_resilience(&Fig8Config::quick());
        let nectar = &t.series[0];
        let mtg = &t.series[1];
        let v2 = &t.series[2];
        // NECTAR: 100% accuracy at every t.
        for p in &nectar.points {
            assert_eq!(p.mean, 1.0, "NECTAR must stay at success 1.0 (t = {})", p.x);
        }
        // Everyone is correct with no Byzantine nodes.
        assert_eq!(mtg.points[0].mean, 1.0);
        assert_eq!(v2.points[0].mean, 1.0);
        // MtG: two insiders (one per side) fool everyone.
        let mtg_t2 = mtg.points.iter().find(|p| p.x == 2.0).unwrap();
        assert_eq!(mtg_t2.mean, 0.0, "MtG must collapse at t = 2");
        // MtGv2: bridge attack leaves roughly half the nodes wrong.
        let v2_t1 = v2.points.iter().find(|p| p.x == 1.0).unwrap();
        assert!(v2_t1.mean < 0.8, "MtGv2 must lose accuracy at t = 1 (got {})", v2_t1.mean);
        assert!(v2_t1.mean > 0.2, "MtGv2 should not collapse entirely (got {})", v2_t1.mean);
    }

    #[test]
    fn spec_compliance_accepts_clean_runs() {
        let g = gen::harary(4, 10).unwrap();
        let out = Scenario::new(g, 2).sim().run().into_outcome();
        assert!(nectar_spec_compliant(&out, 2));
    }

    #[test]
    fn topology_resilience_quick_runs_all_families() {
        let tables = topology_resilience(&TopologyResilienceConfig::quick());
        assert_eq!(tables.len(), 5);
        for table in &tables {
            // NECTAR stays spec-compliant everywhere.
            let nectar = &table.series[0];
            for p in &nectar.points {
                assert_eq!(p.mean, 1.0, "{}: NECTAR failed at t = {}", table.title, p.x);
            }
        }
    }

    #[test]
    fn clustered_resilience_quick_stays_at_full_success() {
        let t = clustered_resilience(&ClusteredResilienceConfig::quick());
        assert_eq!(t.series.len(), 1);
        for p in &t.series[0].points {
            assert_eq!(p.mean, 1.0, "every correct node must confirm the partition (t = {})", p.x);
        }
    }

    #[test]
    fn silenced_side_identifies_cut_components() {
        let g = gen::star(5);
        let side = silenced_side(&g, &[0]);
        // Removing the hub: nodes 2, 3, 4 are cut from anchor node 1.
        assert_eq!(side, vec![2, 3, 4]);
        let g = gen::cycle(5);
        assert!(silenced_side(&g, &[0]).is_empty());
    }
}
