//! Figure data containers with CSV and Markdown emission.
//!
//! Every experiment produces a [`Table`]: one x-axis, one or more labelled
//! series of `(x, mean, ci95)` points — exactly the shape of the paper's
//! plots. The figure binaries print the Markdown form and write the CSV
//! form under `results/`.

use serde::{Deserialize, Serialize};

/// One measured point of a series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// x-axis value (number of nodes, distance, Byzantine count, …).
    pub x: f64,
    /// Mean over the experiment's repetitions.
    pub mean: f64,
    /// 95% confidence half-width.
    pub ci95: f64,
}

/// A labelled series (one curve of a figure).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Curve label, e.g. `"Nectar: k = 10"`.
    pub label: String,
    /// Measured points in x order.
    pub points: Vec<Point>,
}

/// A full figure or table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Stable identifier, e.g. `"fig3"`.
    pub id: String,
    /// Human title, e.g. `"Fig. 3: data sent per node on k-regular graphs"`.
    pub title: String,
    /// x-axis label.
    pub x_label: String,
    /// y-axis label.
    pub y_label: String,
    /// The curves.
    pub series: Vec<Series>,
}

impl Table {
    /// Renders the long-form CSV: `series,x,mean,ci95`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,x,mean,ci95\n");
        for s in &self.series {
            for p in &s.points {
                out.push_str(&format!("{},{},{},{}\n", s.label, p.x, p.mean, p.ci95));
            }
        }
        out
    }

    /// Renders a Markdown table with one column per series (rows aligned by
    /// x value).
    pub fn to_markdown(&self) -> String {
        let mut xs: Vec<f64> =
            self.series.iter().flat_map(|s| s.points.iter().map(|p| p.x)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("x values are finite"));
        xs.dedup();
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |", self.x_label));
        for s in &self.series {
            out.push_str(&format!(" {} |", s.label));
        }
        out.push('\n');
        out.push_str("|---|");
        for _ in &self.series {
            out.push_str("---|");
        }
        out.push('\n');
        for &x in &xs {
            out.push_str(&format!("| {x} |"));
            for s in &self.series {
                match s.points.iter().find(|p| p.x == x) {
                    Some(p) => out.push_str(&format!(" {:.2} ± {:.2} |", p.mean, p.ci95)),
                    None => out.push_str(" – |"),
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        Table {
            id: "t".into(),
            title: "Test".into(),
            x_label: "n".into(),
            y_label: "KB".into(),
            series: vec![
                Series {
                    label: "a".into(),
                    points: vec![
                        Point { x: 1.0, mean: 2.0, ci95: 0.1 },
                        Point { x: 2.0, mean: 3.0, ci95: 0.2 },
                    ],
                },
                Series { label: "b".into(), points: vec![Point { x: 2.0, mean: 9.0, ci95: 0.0 }] },
            ],
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = sample_table().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "series,x,mean,ci95");
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("a,1,"));
    }

    #[test]
    fn markdown_aligns_series_by_x() {
        let md = sample_table().to_markdown();
        assert!(md.contains("| n | a | b |"));
        // x = 1 exists only in series a; b shows a dash.
        assert!(md.contains("| 1 | 2.00 ± 0.10 | – |"));
        assert!(md.contains("| 2 | 3.00 ± 0.20 | 9.00 ± 0.00 |"));
    }
}
