//! The topology-zoo × attack-zoo experiment matrix (the ROADMAP's
//! "scenario diversity" item).
//!
//! The paper validates NECTAR's claims one hand-picked scenario at a time;
//! this module sweeps them systematically, in the style of the DRFE-R
//! five-family experiments: a declarative [`MatrixSpec`] crosses topology
//! families × system sizes × adversary casts × seeds, runs every trial
//! through the [`Simulation`](nectar_protocol::Simulation) builder (one
//! shared [`ConnectivityOracle`] across the whole sweep, any runtime), and
//! aggregates each cell into [`CellStats`]: detection and
//! false-positive/false-negative counts against per-trial ground truth
//! (`κ(G) ≤ t`, computed on the *real* topology by a private oracle so the
//! protocol's counters stay untouched), the median rounds-to-verdict,
//! message/byte cost and oracle counters. The result is a [`MatrixReport`]
//! that persists exactly like
//! [`RunReport`](nectar_protocol::RunReport) — hand-rolled JSON
//! ([`MatrixReport::to_json`] / [`MatrixReport::from_json`], reusing the
//! protocol crate's recursive-descent reader) and a per-cell CSV stream —
//! behind the `nectar-cli matrix` subcommand.
//!
//! Every input is derived from `(base_seed, trial)` alone, so a sweep is
//! bit-identical across the sync, event and parallel runtimes at any
//! worker count — `tests/matrix_conformance.rs` pins that, along with the
//! paper-predicted per-cell invariants (zero false positives on `κ > t`
//! cells, detection rate 1.0 on persistent cuts).

use std::collections::BTreeSet;
use std::fmt;
use std::fmt::Write as _;

use rand::rngs::StdRng;
use rand::SeedableRng;

use nectar_graph::{gen, ConnectivityOracle, Graph};
use nectar_net::NodeId;
use nectar_protocol::report::json::{self, Fields};
use nectar_protocol::{ByzantineBehavior, Runtime, Scenario, Verdict};

use crate::scenarios::{
    articulation_byzantine_placement, articulation_falsifier_cast, cut_byzantine_placement,
    random_byzantine_placement,
};

/// Version tag of the persisted matrix-report formats (bumped on
/// incompatible changes; the JSON form carries it).
pub const MATRIX_CODEC_VERSION: u16 = 1;

/// Header of the per-cell CSV stream — one row per matrix cell, the
/// machine-readable form sweep analyses consume.
pub const MATRIX_CSV_HEADER: &str = "family,n,cast,trials,truth_partitionable,detected,\
                                     false_positives,false_negatives,confirmed,\
                                     agreement_failures,median_rounds,total_msgs,total_bytes,\
                                     oracle_queries,oracle_cache_hits";

/// One topology family of the §V-B generator zoo, with the parameters that
/// stay fixed while the sweep varies `n`. Randomized families (BA, WS,
/// random-regular, two-cluster geometric) draw from a per-trial seeded
/// stream, so every cell is reproducible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FamilySpec {
    /// Harary graph `H_{k,n}` (κ = k exactly).
    Harary {
        /// Connectivity parameter.
        k: usize,
    },
    /// Generalized wheel: `k − 2` hubs over a cycle (κ = k).
    Wheel {
        /// Connectivity parameter (≥ 3).
        k: usize,
    },
    /// Barabási–Albert preferential attachment.
    BarabasiAlbert {
        /// Edges added per arriving node.
        m: usize,
    },
    /// Watts–Strogatz small world.
    WattsStrogatz {
        /// Even ring degree.
        k: usize,
        /// Rewiring probability in per-mille (kept integral so specs stay
        /// `Eq` and the JSON form stays integer-only).
        p_per_mille: u16,
    },
    /// Near-square `rows × cols` grid (the sweep size rounds to the
    /// closest factorization; the cell records the actual `n`).
    Grid,
    /// Near-square torus (wrap-around grid).
    Torus,
    /// Connected random `d`-regular graph.
    RandomRegular {
        /// Node degree.
        d: usize,
    },
    /// Two geometric clusters of drones bridged by proximity.
    TwoCluster,
}

impl FamilySpec {
    /// Stable identifier used in reports, CSV rows and the CLI.
    pub fn name(&self) -> String {
        match self {
            FamilySpec::Harary { k } => format!("harary-k{k}"),
            FamilySpec::Wheel { k } => format!("wheel-k{k}"),
            FamilySpec::BarabasiAlbert { m } => format!("scale-free-m{m}"),
            FamilySpec::WattsStrogatz { k, p_per_mille } => {
                format!("small-world-k{k}-p{p_per_mille}")
            }
            FamilySpec::Grid => "grid".into(),
            FamilySpec::Torus => "torus".into(),
            FamilySpec::RandomRegular { d } => format!("random-regular-d{d}"),
            FamilySpec::TwoCluster => "two-cluster".into(),
        }
    }

    /// Parses an identifier back into its spec — the inverse of
    /// [`name`](Self::name), also accepting the bare family name with its
    /// default parameters (`harary` ≡ `harary-k4`). This is the `nectar-cli
    /// matrix --families` vocabulary.
    ///
    /// # Errors
    ///
    /// Returns a message listing the vocabulary on unknown names.
    pub fn parse(name: &str) -> Result<FamilySpec, String> {
        let tail = |prefix: &str| name.strip_prefix(prefix);
        let num =
            |s: &str| s.parse::<usize>().map_err(|_| format!("bad parameter {s} in family {name}"));
        if name == "grid" {
            return Ok(FamilySpec::Grid);
        }
        if name == "torus" {
            return Ok(FamilySpec::Torus);
        }
        if name == "two-cluster" {
            return Ok(FamilySpec::TwoCluster);
        }
        if name == "harary" {
            return Ok(FamilySpec::Harary { k: 4 });
        }
        if let Some(k) = tail("harary-k") {
            return Ok(FamilySpec::Harary { k: num(k)? });
        }
        if name == "wheel" {
            return Ok(FamilySpec::Wheel { k: 4 });
        }
        if let Some(k) = tail("wheel-k") {
            return Ok(FamilySpec::Wheel { k: num(k)? });
        }
        if name == "scale-free" {
            return Ok(FamilySpec::BarabasiAlbert { m: 2 });
        }
        if let Some(m) = tail("scale-free-m") {
            return Ok(FamilySpec::BarabasiAlbert { m: num(m)? });
        }
        if name == "small-world" {
            return Ok(FamilySpec::WattsStrogatz { k: 4, p_per_mille: 100 });
        }
        if let Some(params) = tail("small-world-k") {
            let (k, p) = params
                .split_once("-p")
                .ok_or_else(|| format!("family {name}: expected small-world-k<K>-p<P>"))?;
            return Ok(FamilySpec::WattsStrogatz {
                k: num(k)?,
                p_per_mille: num(p)?.min(1000) as u16,
            });
        }
        if name == "random-regular" {
            return Ok(FamilySpec::RandomRegular { d: 4 });
        }
        if let Some(d) = tail("random-regular-d") {
            return Ok(FamilySpec::RandomRegular { d: num(d)? });
        }
        Err(format!(
            "unknown family {name}; expected harary[-kK] | wheel[-kK] | scale-free[-mM] | \
             small-world[-kK-pP] | grid | torus | random-regular[-dD] | two-cluster"
        ))
    }

    /// Materializes the family at (approximately) `n` nodes from `seed`.
    ///
    /// # Errors
    ///
    /// Propagates the generator's parameter validation as a message (a
    /// family/size combination outside the generator's domain).
    pub fn build(&self, n: usize, seed: u64) -> Result<Graph, String> {
        let mut rng = StdRng::seed_from_u64(seed);
        let err = |e: nectar_graph::GraphError| format!("{}: {e}", self.name());
        match self {
            FamilySpec::Harary { k } => gen::harary(*k, n).map_err(err),
            FamilySpec::Wheel { k } => gen::generalized_wheel(*k, n).map_err(err),
            FamilySpec::BarabasiAlbert { m } => gen::barabasi_albert(n, *m, &mut rng).map_err(err),
            FamilySpec::WattsStrogatz { k, p_per_mille } => {
                gen::watts_strogatz(n, *k, *p_per_mille as f64 / 1000.0, &mut rng).map_err(err)
            }
            FamilySpec::Grid => {
                let (rows, cols) = near_square(n);
                Ok(gen::grid(rows, cols))
            }
            FamilySpec::Torus => {
                let (rows, cols) = near_square(n.max(9));
                gen::torus(rows.max(3), cols.max(3)).map_err(err)
            }
            FamilySpec::RandomRegular { d } => {
                // d·n must be even; absorb odd combinations by one node.
                let n = if (*d * n) % 2 == 0 { n } else { n + 1 };
                gen::random_regular_connected(*d, n, &mut rng, 64).map_err(err)
            }
            FamilySpec::TwoCluster => {
                // Close enough (d = 3) that proximity bridges the clusters
                // for most seeds; trials where it does not are exactly the
                // confirmed-partition ground truth the cell counts.
                gen::two_cluster_geometric(n, 3.0, 2.0, 1.5, &mut rng)
                    .map(|placement| placement.graph)
                    .map_err(err)
            }
        }
    }
}

/// Near-square factorization `rows × cols` with `rows · cols ≥ n` and both
/// sides ≥ 2 — the grid/torus size adapter.
fn near_square(n: usize) -> (usize, usize) {
    let rows = (1..).take_while(|r| r * r <= n.max(4)).last().unwrap_or(2).max(2);
    (rows, n.max(4).div_ceil(rows))
}

/// One adversary cast of the attack zoo, as placed per trial. Placements
/// use the full Byzantine budget `t` of the sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CastSpec {
    /// No adversary — the baseline column.
    Honest,
    /// `t` silent nodes on a random placement.
    SilentRandom,
    /// `t` silent nodes on the min-cut placement (they *are* the cut when
    /// one of size ≤ t exists).
    SilentCut,
    /// `t` equivocators on a random placement, starving every neighbor.
    EquivocateRandom,
    /// `t` partner-free data falsifiers on the articulation placement:
    /// measurements flip "down" only, so the view can only shrink.
    FalsifyArticulation {
        /// Per-measurement flip probability in per-mille.
        flips_per_mille: u16,
    },
    /// `t` colluding data falsifiers on the articulation placement: "down"
    /// flips plus fabricated "up" measurements among the cast.
    FalsifyColluding {
        /// Per-measurement flip probability in per-mille.
        flips_per_mille: u16,
    },
}

impl CastSpec {
    /// Stable identifier used in reports, CSV rows and the CLI.
    pub fn name(&self) -> String {
        match self {
            CastSpec::Honest => "honest".into(),
            CastSpec::SilentRandom => "silent-random".into(),
            CastSpec::SilentCut => "silent-cut".into(),
            CastSpec::EquivocateRandom => "equivocate-random".into(),
            CastSpec::FalsifyArticulation { flips_per_mille } => {
                format!("falsify-articulation-p{flips_per_mille}")
            }
            CastSpec::FalsifyColluding { flips_per_mille } => {
                format!("falsify-colluding-p{flips_per_mille}")
            }
        }
    }

    /// Parses an identifier back into its spec — the inverse of
    /// [`name`](Self::name), also accepting the bare cast name with its
    /// default flip rate (`falsify-articulation` ≡
    /// `falsify-articulation-p800`). This is the `nectar-cli matrix
    /// --casts` vocabulary.
    ///
    /// # Errors
    ///
    /// Returns a message listing the vocabulary on unknown names.
    pub fn parse(name: &str) -> Result<CastSpec, String> {
        let flips = |s: &str| {
            s.parse::<u16>()
                .map_err(|_| format!("bad flip rate {s} in cast {name}"))
                .map(|p| p.min(1000))
        };
        match name {
            "honest" => Ok(CastSpec::Honest),
            "silent-random" => Ok(CastSpec::SilentRandom),
            "silent-cut" => Ok(CastSpec::SilentCut),
            "equivocate-random" => Ok(CastSpec::EquivocateRandom),
            "falsify-articulation" => Ok(CastSpec::FalsifyArticulation { flips_per_mille: 800 }),
            "falsify-colluding" => Ok(CastSpec::FalsifyColluding { flips_per_mille: 800 }),
            _ => {
                if let Some(p) = name.strip_prefix("falsify-articulation-p") {
                    return Ok(CastSpec::FalsifyArticulation { flips_per_mille: flips(p)? });
                }
                if let Some(p) = name.strip_prefix("falsify-colluding-p") {
                    return Ok(CastSpec::FalsifyColluding { flips_per_mille: flips(p)? });
                }
                Err(format!(
                    "unknown cast {name}; expected honest | silent-random | silent-cut | \
                     equivocate-random | falsify-articulation[-pP] | falsify-colluding[-pP]"
                ))
            }
        }
    }

    /// Places this cast on `g` with budget `t` from `seed`.
    pub fn cast(&self, g: &Graph, t: usize, seed: u64) -> Vec<(NodeId, ByzantineBehavior)> {
        let t = t.min(g.node_count());
        match self {
            CastSpec::Honest => Vec::new(),
            CastSpec::SilentRandom => random_byzantine_placement(g, t, seed)
                .into_iter()
                .map(|node| (node, ByzantineBehavior::Silent))
                .collect(),
            CastSpec::SilentCut => cut_byzantine_placement(g, t, seed)
                .into_iter()
                .map(|node| (node, ByzantineBehavior::Silent))
                .collect(),
            CastSpec::EquivocateRandom => random_byzantine_placement(g, t, seed)
                .into_iter()
                .map(|node| {
                    let victims: BTreeSet<NodeId> = g.neighbors(node).collect();
                    (node, ByzantineBehavior::Equivocate { victims })
                })
                .collect(),
            CastSpec::FalsifyArticulation { flips_per_mille } => {
                articulation_byzantine_placement(g, t, seed)
                    .into_iter()
                    .map(|node| {
                        (
                            node,
                            ByzantineBehavior::FalsifyData {
                                flips_per_mille: *flips_per_mille,
                                seed,
                                partners: vec![],
                            },
                        )
                    })
                    .collect()
            }
            CastSpec::FalsifyColluding { flips_per_mille } => {
                articulation_falsifier_cast(g, t, *flips_per_mille, seed)
            }
        }
    }
}

/// The declarative sweep: families × sizes × casts, each cell sampled over
/// `trials` seeded trials with Byzantine budget `t`, executed on `runtime`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixSpec {
    /// Topology-family axis.
    pub families: Vec<FamilySpec>,
    /// System-size axis (approximate for grid/torus — see
    /// [`FamilySpec::build`]).
    pub sizes: Vec<usize>,
    /// Adversary-cast axis.
    pub casts: Vec<CastSpec>,
    /// Byzantine budget per trial.
    pub t: usize,
    /// Trials per cell (trial `i` everywhere derives from seed
    /// `base_seed + i`).
    pub trials: usize,
    /// Base seed of every per-trial stream (graph, placement, keys).
    pub base_seed: u64,
    /// The engine all trials run on (results are bit-identical across
    /// engines; this is recorded for provenance).
    pub runtime: Runtime,
}

impl MatrixSpec {
    /// A small but representative default: three families × two sizes ×
    /// three casts at `t = 2`, 100 trials per cell.
    pub fn reduced() -> MatrixSpec {
        MatrixSpec {
            families: vec![
                FamilySpec::Harary { k: 4 },
                FamilySpec::Wheel { k: 4 },
                FamilySpec::WattsStrogatz { k: 4, p_per_mille: 100 },
            ],
            sizes: vec![12, 16],
            casts: vec![
                CastSpec::Honest,
                CastSpec::SilentCut,
                CastSpec::FalsifyArticulation { flips_per_mille: 800 },
            ],
            t: 2,
            trials: 100,
            base_seed: 0x4D41_5452,
            runtime: Runtime::Sync,
        }
    }

    /// Runs the full sweep: every cell in (family, size, cast) order, every
    /// trial through the `Simulation` builder with one shared oracle.
    ///
    /// # Errors
    ///
    /// Returns a message when a family/size combination is outside its
    /// generator's domain (no partial sweeps: the spec is validated by
    /// running it).
    pub fn run(&self) -> Result<MatrixReport, String> {
        // One oracle for the whole sweep: repeated views across trials and
        // cells answer from cache (the counters land in each cell's stats).
        let mut oracle = ConnectivityOracle::new();
        // Ground truth is computed on the *real* topology by a private
        // oracle, so protocol-side counters stay clean.
        let mut truth_oracle = ConnectivityOracle::new();
        let mut cells = Vec::new();
        for family in &self.families {
            for &n in &self.sizes {
                for cast_spec in &self.casts {
                    let stats =
                        self.run_cell(family, n, cast_spec, &mut oracle, &mut truth_oracle)?;
                    cells.push(MatrixCell {
                        family: family.name(),
                        n,
                        cast: cast_spec.name(),
                        stats,
                    });
                }
            }
        }
        Ok(MatrixReport {
            runtime: self.runtime,
            t: self.t,
            trials: self.trials,
            base_seed: self.base_seed,
            cells,
        })
    }

    /// Runs the `trials` trials of one cell.
    fn run_cell(
        &self,
        family: &FamilySpec,
        n: usize,
        cast_spec: &CastSpec,
        oracle: &mut ConnectivityOracle,
        truth_oracle: &mut ConnectivityOracle,
    ) -> Result<CellStats, String> {
        let mut stats = CellStats::default();
        let mut rounds = Vec::with_capacity(self.trials);
        for trial in 0..self.trials {
            let seed = self.base_seed + trial as u64;
            let g = family.build(n, seed)?;
            let truth_partitionable = truth_oracle.is_t_partitionable(&g, self.t);
            let mut scenario = Scenario::new(g.clone(), self.t).with_key_seed(seed);
            for (node, behavior) in cast_spec.cast(&g, self.t, seed) {
                scenario = scenario.with_byzantine(node, behavior);
            }
            let report = scenario.sim().runtime(self.runtime).oracle(oracle).run();
            stats.trials += 1;
            if truth_partitionable {
                stats.truth_partitionable += 1;
            }
            if !report.agreement() {
                stats.agreement_failures += 1;
            }
            let any = |verdict: Verdict| report.decisions().values().any(|d| d.verdict == verdict);
            if truth_partitionable && report.unanimous_verdict() == Some(Verdict::Partitionable) {
                stats.detected += 1;
            }
            if !truth_partitionable && any(Verdict::Partitionable) {
                stats.false_positives += 1;
            }
            if truth_partitionable && any(Verdict::NotPartitionable) {
                stats.false_negatives += 1;
            }
            if report.last().any_confirmed() {
                stats.confirmed += 1;
            }
            rounds.push(report.metrics().bytes_per_round().len());
            stats.total_msgs += report.metrics().msgs_sent().iter().sum::<u64>();
            stats.total_bytes += report.metrics().total_bytes_sent();
            stats.oracle_queries += report.oracle().queries;
            stats.oracle_cache_hits += report.oracle().cache_hits;
        }
        rounds.sort_unstable();
        stats.median_rounds = rounds.get(rounds.len() / 2).copied().unwrap_or(0);
        Ok(stats)
    }
}

/// Aggregated counters of one matrix cell. Everything is integral, so cell
/// stats are `Eq`-comparable bit for bit across runtimes and round-trip
/// through the integer-only JSON grammar; the rate accessors derive the
/// paper-style ratios on demand.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CellStats {
    /// Trials run in this cell.
    pub trials: usize,
    /// Trials whose real topology satisfies `κ(G) ≤ t` (ground truth:
    /// t-Byzantine partitionable, Corollary 1).
    pub truth_partitionable: usize,
    /// Ground-truth-partitionable trials unanimously reported
    /// `PARTITIONABLE`.
    pub detected: usize,
    /// `κ > t` trials where *any* correct node reported `PARTITIONABLE`.
    pub false_positives: usize,
    /// `κ ≤ t` trials where *any* correct node reported
    /// `NOT_PARTITIONABLE`.
    pub false_negatives: usize,
    /// Trials where some correct node confirmed an actual partition.
    pub confirmed: usize,
    /// Trials where correct nodes disagreed (must stay 0: Agreement).
    pub agreement_failures: usize,
    /// Median over trials of the active-round count — the
    /// rounds-to-verdict proxy (dissemination quiesces when no new edge
    /// moves).
    pub median_rounds: usize,
    /// Messages sent across all trials (all nodes, Byzantine included).
    pub total_msgs: u64,
    /// Bytes sent across all trials.
    pub total_bytes: u64,
    /// Connectivity-oracle queries across all trials' decision phases.
    pub oracle_queries: u64,
    /// Oracle cache hits across all trials' decision phases.
    pub oracle_cache_hits: u64,
}

impl CellStats {
    /// Detected fraction of the ground-truth-partitionable trials (1.0
    /// when the cell has none — nothing to miss).
    pub fn detection_rate(&self) -> f64 {
        if self.truth_partitionable == 0 {
            return 1.0;
        }
        self.detected as f64 / self.truth_partitionable as f64
    }

    /// False-positive fraction of the `κ > t` trials (0.0 when the cell
    /// has none).
    pub fn false_positive_rate(&self) -> f64 {
        let negatives = self.trials - self.truth_partitionable;
        if negatives == 0 {
            return 0.0;
        }
        self.false_positives as f64 / negatives as f64
    }

    /// False-negative fraction of the `κ ≤ t` trials (0.0 when the cell
    /// has none).
    pub fn false_negative_rate(&self) -> f64 {
        if self.truth_partitionable == 0 {
            return 0.0;
        }
        self.false_negatives as f64 / self.truth_partitionable as f64
    }
}

/// One cell of the persisted matrix: the axes it sits on plus its stats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixCell {
    /// Family identifier ([`FamilySpec::name`]).
    pub family: String,
    /// Requested system size (grid/torus cells may have run at the nearest
    /// factorization).
    pub n: usize,
    /// Cast identifier ([`CastSpec::name`]).
    pub cast: String,
    /// Aggregated counters.
    pub stats: CellStats,
}

/// The persisted result of one matrix sweep: provenance (runtime, budget,
/// trials, base seed) plus one [`MatrixCell`] per (family, size, cast)
/// combination, in sweep order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixReport {
    /// The engine the sweep ran on.
    pub runtime: Runtime,
    /// Byzantine budget per trial.
    pub t: usize,
    /// Trials per cell.
    pub trials: usize,
    /// Base seed of the per-trial streams.
    pub base_seed: u64,
    /// Per-cell results.
    pub cells: Vec<MatrixCell>,
}

impl MatrixReport {
    // ---- JSON ----------------------------------------------------------

    /// Serializes the report as a JSON document (loss-free; parsed back by
    /// [`from_json`](Self::from_json)).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let w = &mut out;
        writeln!(w, "{{").expect("writing to String cannot fail");
        writeln!(w, "  \"version\": {MATRIX_CODEC_VERSION},").expect("infallible");
        let workers = match self.runtime {
            Runtime::Parallel { workers } => workers,
            _ => 0,
        };
        writeln!(w, "  \"runtime\": \"{}\", \"workers\": {workers},", self.runtime)
            .expect("infallible");
        writeln!(
            w,
            "  \"t\": {}, \"trials\": {}, \"base_seed\": {},",
            self.t, self.trials, self.base_seed
        )
        .expect("infallible");
        writeln!(w, "  \"cells\": [").expect("infallible");
        for (i, cell) in self.cells.iter().enumerate() {
            let sep = if i + 1 == self.cells.len() { "" } else { "," };
            let s = &cell.stats;
            writeln!(
                w,
                "    {{\"family\": \"{}\", \"n\": {}, \"cast\": \"{}\",",
                json_escape(&cell.family),
                cell.n,
                json_escape(&cell.cast)
            )
            .expect("infallible");
            writeln!(
                w,
                "     \"stats\": {{\"trials\": {}, \"truth_partitionable\": {}, \
                 \"detected\": {}, \"false_positives\": {}, \"false_negatives\": {}, \
                 \"confirmed\": {}, \"agreement_failures\": {}, \"median_rounds\": {}, \
                 \"total_msgs\": {}, \"total_bytes\": {}, \"oracle_queries\": {}, \
                 \"oracle_cache_hits\": {}}}}}{sep}",
                s.trials,
                s.truth_partitionable,
                s.detected,
                s.false_positives,
                s.false_negatives,
                s.confirmed,
                s.agreement_failures,
                s.median_rounds,
                s.total_msgs,
                s.total_bytes,
                s.oracle_queries,
                s.oracle_cache_hits
            )
            .expect("infallible");
        }
        writeln!(w, "  ]").expect("infallible");
        writeln!(w, "}}").expect("infallible");
        out
    }

    /// Parses a report back from [`to_json`](Self::to_json) output.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on malformed or version-skewed
    /// input.
    pub fn from_json(input: &str) -> Result<MatrixReport, String> {
        let value = json::parse(input)?;
        let obj = value.as_obj("matrix report")?;
        let version = obj.field("version")?.as_u64("version")?;
        if version != MATRIX_CODEC_VERSION as u64 {
            return Err(format!("unsupported matrix report version {version}"));
        }
        let workers = obj.field("workers")?.as_u64("workers")? as usize;
        let runtime = match obj.field("runtime")?.as_str("runtime")? {
            "parallel" => Runtime::Parallel { workers },
            name => name.parse::<Runtime>()?,
        };
        let t = obj.field("t")?.as_u64("t")? as usize;
        let trials = obj.field("trials")?.as_u64("trials")? as usize;
        let base_seed = obj.field("base_seed")?.as_u64("base_seed")?;
        let mut cells = Vec::new();
        for cell in obj.field("cells")?.as_arr("cells")? {
            let cell = cell.as_obj("cell")?;
            let s = cell.field("stats")?.as_obj("stats")?;
            let count = |key: &str| -> Result<usize, String> {
                s.field(key)?.as_u64(key).map(|v| v as usize)
            };
            let wide = |key: &str| -> Result<u64, String> { s.field(key)?.as_u64(key) };
            cells.push(MatrixCell {
                family: cell.field("family")?.as_str("family")?.to_string(),
                n: cell.field("n")?.as_u64("n")? as usize,
                cast: cell.field("cast")?.as_str("cast")?.to_string(),
                stats: CellStats {
                    trials: count("trials")?,
                    truth_partitionable: count("truth_partitionable")?,
                    detected: count("detected")?,
                    false_positives: count("false_positives")?,
                    false_negatives: count("false_negatives")?,
                    confirmed: count("confirmed")?,
                    agreement_failures: count("agreement_failures")?,
                    median_rounds: count("median_rounds")?,
                    total_msgs: wide("total_msgs")?,
                    total_bytes: wide("total_bytes")?,
                    oracle_queries: wide("oracle_queries")?,
                    oracle_cache_hits: wide("oracle_cache_hits")?,
                },
            });
        }
        Ok(MatrixReport { runtime, t, trials, base_seed, cells })
    }

    /// Writes [`to_json`](Self::to_json) to `path` — the persistence hook
    /// behind `nectar-cli matrix --json <path>`.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error.
    pub fn save_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Reads a report persisted by [`save_json`](Self::save_json).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on I/O or parse failure.
    pub fn load_json(path: impl AsRef<std::path::Path>) -> Result<MatrixReport, String> {
        let text = std::fs::read_to_string(path.as_ref())
            .map_err(|e| format!("reading {}: {e}", path.as_ref().display()))?;
        Self::from_json(&text)
    }

    // ---- CSV -----------------------------------------------------------

    /// The per-cell stream as CSV: [`MATRIX_CSV_HEADER`], one row per cell
    /// in sweep order. Loss-free for the cells (provenance lives in the
    /// JSON form).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(MATRIX_CSV_HEADER);
        out.push('\n');
        for cell in &self.cells {
            let s = &cell.stats;
            writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                cell.family,
                cell.n,
                cell.cast,
                s.trials,
                s.truth_partitionable,
                s.detected,
                s.false_positives,
                s.false_negatives,
                s.confirmed,
                s.agreement_failures,
                s.median_rounds,
                s.total_msgs,
                s.total_bytes,
                s.oracle_queries,
                s.oracle_cache_hits
            )
            .expect("writing to String cannot fail");
        }
        out
    }

    /// Parses the cells back out of [`to_csv`](Self::to_csv) output.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on a bad header or malformed rows.
    pub fn cells_from_csv(csv: &str) -> Result<Vec<MatrixCell>, String> {
        let mut lines = csv.lines();
        match lines.next() {
            Some(header) if header == MATRIX_CSV_HEADER => {}
            other => return Err(format!("bad matrix CSV header: {other:?}")),
        }
        let mut cells = Vec::new();
        for line in lines {
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != 15 {
                return Err(format!("bad matrix CSV row (expected 15 fields): {line}"));
            }
            let num =
                |s: &str| s.parse::<usize>().map_err(|_| format!("bad number {s} in row {line}"));
            let wide =
                |s: &str| s.parse::<u64>().map_err(|_| format!("bad number {s} in row {line}"));
            cells.push(MatrixCell {
                family: fields[0].to_string(),
                n: num(fields[1])?,
                cast: fields[2].to_string(),
                stats: CellStats {
                    trials: num(fields[3])?,
                    truth_partitionable: num(fields[4])?,
                    detected: num(fields[5])?,
                    false_positives: num(fields[6])?,
                    false_negatives: num(fields[7])?,
                    confirmed: num(fields[8])?,
                    agreement_failures: num(fields[9])?,
                    median_rounds: num(fields[10])?,
                    total_msgs: wide(fields[11])?,
                    total_bytes: wide(fields[12])?,
                    oracle_queries: wide(fields[13])?,
                    oracle_cache_hits: wide(fields[14])?,
                },
            });
        }
        Ok(cells)
    }
}

impl fmt::Display for MatrixReport {
    /// A human-readable per-cell summary table (the CLI's default output).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "matrix: {} cells × {} trials, t = {}, runtime {}, seed {}",
            self.cells.len(),
            self.trials,
            self.t,
            self.runtime,
            self.base_seed
        )?;
        writeln!(
            f,
            "{:<24} {:>5} {:<26} {:>6} {:>5} {:>5} {:>7} {:>8}",
            "family", "n", "cast", "detect", "fp", "fn", "rounds", "kB"
        )?;
        for cell in &self.cells {
            let s = &cell.stats;
            writeln!(
                f,
                "{:<24} {:>5} {:<26} {:>6.2} {:>5} {:>5} {:>7} {:>8.1}",
                cell.family,
                cell.n,
                cell.cast,
                s.detection_rate(),
                s.false_positives,
                s.false_negatives,
                s.median_rounds,
                s.total_bytes as f64 / 1024.0
            )?;
        }
        Ok(())
    }
}

/// Escapes a string for the JSON subset the shared reader understands.
fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> MatrixSpec {
        MatrixSpec {
            families: vec![FamilySpec::Harary { k: 4 }, FamilySpec::Grid],
            sizes: vec![9],
            casts: vec![CastSpec::Honest, CastSpec::SilentCut],
            t: 1,
            trials: 3,
            base_seed: 5,
            runtime: Runtime::Sync,
        }
    }

    #[test]
    fn sweep_covers_every_cell_in_order() {
        let report = tiny_spec().run().expect("valid spec");
        let keys: Vec<(String, usize, String)> =
            report.cells.iter().map(|c| (c.family.clone(), c.n, c.cast.clone())).collect();
        assert_eq!(
            keys,
            vec![
                ("harary-k4".into(), 9, "honest".into()),
                ("harary-k4".into(), 9, "silent-cut".into()),
                ("grid".into(), 9, "honest".into()),
                ("grid".into(), 9, "silent-cut".into()),
            ]
        );
        for cell in &report.cells {
            assert_eq!(cell.stats.trials, 3);
            assert_eq!(cell.stats.agreement_failures, 0);
            assert!(cell.stats.median_rounds > 0);
            assert!(cell.stats.total_bytes > 0);
        }
    }

    #[test]
    fn harary_cells_have_zero_false_positives_and_grids_detect() {
        let report = tiny_spec().run().expect("valid spec");
        // κ(H_{4,9}) = 4 > 1 = t: never partitionable, never a false alarm.
        let harary_silent = &report.cells[1];
        assert_eq!(harary_silent.stats.truth_partitionable, 0);
        assert_eq!(harary_silent.stats.false_positives, 0);
        // κ(grid) = 2 > 1 as well — but the honest column shows it too.
        let grid_honest = &report.cells[2];
        assert_eq!(grid_honest.stats.false_positives, 0);
    }

    #[test]
    fn sweeps_are_seed_deterministic() {
        let a = tiny_spec().run().expect("valid spec");
        let b = tiny_spec().run().expect("valid spec");
        assert_eq!(a, b);
    }

    #[test]
    fn json_round_trips_loss_free() {
        let report = tiny_spec().run().expect("valid spec");
        let parsed = MatrixReport::from_json(&report.to_json()).expect("round trip");
        assert_eq!(parsed, report);
    }

    #[test]
    fn json_rejects_version_skew_and_damage() {
        let report = tiny_spec().run().expect("valid spec");
        let json = report.to_json();
        let skewed = json.replace("\"version\": 1", "\"version\": 99");
        assert!(MatrixReport::from_json(&skewed).is_err());
        assert!(MatrixReport::from_json("").is_err());
        assert!(MatrixReport::from_json("{").is_err());
        assert!(MatrixReport::from_json(&json[..json.len() / 2]).is_err());
        let renamed = json.replace("\"cells\"", "\"cels\"");
        assert!(MatrixReport::from_json(&renamed).is_err());
    }

    #[test]
    fn csv_round_trips_the_cells() {
        let report = tiny_spec().run().expect("valid spec");
        let cells = MatrixReport::cells_from_csv(&report.to_csv()).expect("round trip");
        assert_eq!(cells, report.cells);
        assert!(MatrixReport::cells_from_csv("family,n\n").is_err());
        assert!(MatrixReport::cells_from_csv(&format!("{MATRIX_CSV_HEADER}\na,b\n")).is_err());
    }

    #[test]
    fn family_names_and_builders_agree_with_the_zoo() {
        let combos = [
            (FamilySpec::Harary { k: 4 }, "harary-k4"),
            (FamilySpec::Wheel { k: 4 }, "wheel-k4"),
            (FamilySpec::BarabasiAlbert { m: 2 }, "scale-free-m2"),
            (FamilySpec::WattsStrogatz { k: 4, p_per_mille: 100 }, "small-world-k4-p100"),
            (FamilySpec::Grid, "grid"),
            (FamilySpec::Torus, "torus"),
            (FamilySpec::RandomRegular { d: 4 }, "random-regular-d4"),
            (FamilySpec::TwoCluster, "two-cluster"),
        ];
        for (family, name) in combos {
            assert_eq!(family.name(), name);
            let g = family.build(12, 7).expect("12 nodes is in every domain");
            assert!(g.node_count() >= 12, "{name} shrank below the requested size");
            // Randomized families must be seed-deterministic.
            assert_eq!(family.build(12, 7).expect("same domain"), g, "{name} not deterministic");
        }
        // Domain errors surface as messages, not panics.
        assert!(FamilySpec::Harary { k: 4 }.build(3, 0).is_err());
        assert!(FamilySpec::WattsStrogatz { k: 5, p_per_mille: 0 }.build(12, 0).is_err());
    }

    #[test]
    fn names_parse_back_to_their_specs() {
        let families = [
            FamilySpec::Harary { k: 5 },
            FamilySpec::Wheel { k: 3 },
            FamilySpec::BarabasiAlbert { m: 3 },
            FamilySpec::WattsStrogatz { k: 6, p_per_mille: 250 },
            FamilySpec::Grid,
            FamilySpec::Torus,
            FamilySpec::RandomRegular { d: 5 },
            FamilySpec::TwoCluster,
        ];
        for family in families {
            assert_eq!(FamilySpec::parse(&family.name()).unwrap(), family);
        }
        assert_eq!(FamilySpec::parse("harary").unwrap(), FamilySpec::Harary { k: 4 });
        assert!(FamilySpec::parse("klein-bottle").is_err());
        assert!(FamilySpec::parse("harary-kX").is_err());
        let casts = [
            CastSpec::Honest,
            CastSpec::SilentRandom,
            CastSpec::SilentCut,
            CastSpec::EquivocateRandom,
            CastSpec::FalsifyArticulation { flips_per_mille: 125 },
            CastSpec::FalsifyColluding { flips_per_mille: 1000 },
        ];
        for cast in casts {
            assert_eq!(CastSpec::parse(&cast.name()).unwrap(), cast);
        }
        assert_eq!(
            CastSpec::parse("falsify-articulation").unwrap(),
            CastSpec::FalsifyArticulation { flips_per_mille: 800 }
        );
        assert!(CastSpec::parse("gaslight").is_err());
    }

    #[test]
    fn casts_place_within_budget_and_name_themselves() {
        let g = gen::harary(4, 12).unwrap();
        let specs = [
            (CastSpec::Honest, "honest", 0usize),
            (CastSpec::SilentRandom, "silent-random", 2),
            (CastSpec::SilentCut, "silent-cut", 2),
            (CastSpec::EquivocateRandom, "equivocate-random", 2),
            (
                CastSpec::FalsifyArticulation { flips_per_mille: 500 },
                "falsify-articulation-p500",
                2,
            ),
            (CastSpec::FalsifyColluding { flips_per_mille: 500 }, "falsify-colluding-p500", 2),
        ];
        for (spec, name, expected) in specs {
            assert_eq!(spec.name(), name);
            let cast = spec.cast(&g, 2, 3);
            assert_eq!(cast.len(), expected, "{name}");
            for (node, _) in &cast {
                assert!(*node < 12);
            }
        }
    }
}
