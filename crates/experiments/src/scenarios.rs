//! Attack-scenario builders for the resilience experiments (§V-D).
//!
//! Two constructions back Fig. 8:
//!
//! * [`partitioned_with_insiders`]: a drone graph partitioned in two parts,
//!   with `t` Byzantine nodes *inside* the parts, equally distributed — the
//!   setting of the all-ones Bloom-filter attack on MtG;
//! * [`bridged_partition`]: a partitioned subgraph of correct nodes made
//!   connected again by `t` Byzantine *bridge* nodes carrying all
//!   inter-part edges — the setting of the two-faced attack on MtGv2 and
//!   NECTAR ("the graph is at most t-connected, and the Byzantine nodes are
//!   the t key nodes that decide the connectivity parameter").

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use nectar_graph::{connectivity, gen, traversal, ConnectivityOracle, Graph};
use nectar_net::NodeId;
use nectar_protocol::ByzantineBehavior;

/// A partitioned drone graph with Byzantine insiders.
#[derive(Debug, Clone)]
pub struct InsiderScenario {
    /// The (partitioned) communication graph.
    pub graph: Graph,
    /// Byzantine nodes, alternating between the two parts.
    pub byzantine: Vec<NodeId>,
    /// Nodes of the first part (including its Byzantine insiders).
    pub part_a: Vec<NodeId>,
    /// Nodes of the second part.
    pub part_b: Vec<NodeId>,
}

/// Builds the insider scenario: `n` drones in two scatters too far apart to
/// communicate (`d = 6`, `radius = 2.4`), with `t` Byzantine insiders
/// "equally distributed between the two parts" (§V-D).
///
/// # Panics
///
/// Panics if `t` exceeds the size of either part.
pub fn partitioned_with_insiders(n: usize, t: usize, seed: u64) -> InsiderScenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let placement =
        gen::drone_scenario(n, 6.0, 2.4, &mut rng).expect("drone parameters are valid constants");
    let part_a: Vec<NodeId> = placement.first_cluster().collect();
    let part_b: Vec<NodeId> = placement.second_cluster().collect();
    assert!(t <= part_a.len().min(part_b.len()) * 2, "too many Byzantine insiders");
    let mut byzantine = Vec::with_capacity(t);
    let mut a_pool = part_a.clone();
    let mut b_pool = part_b.clone();
    a_pool.shuffle(&mut rng);
    b_pool.shuffle(&mut rng);
    for i in 0..t {
        let pool = if i % 2 == 0 { &mut a_pool } else { &mut b_pool };
        byzantine.push(pool.pop().expect("pool size checked above"));
    }
    InsiderScenario { graph: placement.graph, byzantine, part_a, part_b }
}

/// A partitioned correct subgraph re-connected through Byzantine bridges.
#[derive(Debug, Clone)]
pub struct BridgeScenario {
    /// The communication graph: connected, but every inter-part path passes
    /// through a Byzantine bridge.
    pub graph: Graph,
    /// The `t` bridge nodes (ids `n - t .. n`).
    pub byzantine: Vec<NodeId>,
    /// Correct nodes of the first part.
    pub part_a: Vec<NodeId>,
    /// Correct nodes of the second part.
    pub part_b: Vec<NodeId>,
}

/// Builds the bridge scenario with `n` total nodes of which `t ≥ 1` are
/// Byzantine bridges: `n − t` correct drones form two disconnected scatters
/// (`d = 6`, `radius = 2.4`); each bridge gets `links_per_part` edges into
/// random nodes of each part (plus edges among bridges, as Byzantine nodes
/// may declare edges with each other).
///
/// # Panics
///
/// Panics if `t == 0` or the parts are too small for `links_per_part`.
pub fn bridged_partition(n: usize, t: usize, links_per_part: usize, seed: u64) -> BridgeScenario {
    assert!(t >= 1, "bridge scenario requires at least one Byzantine bridge");
    let correct = n - t;
    let mut rng = StdRng::seed_from_u64(seed);
    let placement = gen::drone_scenario(correct, 6.0, 2.4, &mut rng)
        .expect("drone parameters are valid constants");
    let part_a: Vec<NodeId> = placement.first_cluster().collect();
    let part_b: Vec<NodeId> = placement.second_cluster().collect();
    assert!(
        links_per_part <= part_a.len() && links_per_part <= part_b.len(),
        "parts too small for {links_per_part} links per part"
    );
    let mut graph = Graph::empty(n);
    for (u, v) in placement.graph.edges() {
        graph.add_edge(u, v).expect("correct-node edges are in range");
    }
    let byzantine: Vec<NodeId> = (correct..n).collect();
    for &b in &byzantine {
        for part in [&part_a, &part_b] {
            // Distinct random endpoints in this part.
            let mut pool = part.clone();
            pool.shuffle(&mut rng);
            for &target in pool.iter().take(links_per_part) {
                graph.add_edge(b, target).expect("in range");
            }
        }
        // Bridges form a clique among themselves.
        for &other in &byzantine {
            if other != b && !graph.has_edge(b, other) {
                graph.add_edge(b, other).expect("in range");
            }
        }
    }
    BridgeScenario { graph, byzantine, part_a, part_b }
}

/// A large clustered fleet: many disjoint cliques with Byzantine insiders.
#[derive(Debug, Clone)]
pub struct ClusteredFleet {
    /// The (maximally partitioned) communication graph.
    pub graph: Graph,
    /// Byzantine insiders, at most one per cluster.
    pub byzantine: Vec<NodeId>,
}

/// Builds a fleet of `clusters` disjoint `size`-cliques with `t` Byzantine
/// insiders placed in `t` distinct random clusters — the large-n setting
/// (thousands to tens of thousands of nodes) that only the event-driven
/// runtime can sweep: every cluster quiesces after ~`size` rounds, so the
/// active-event volume is linear in `n` even though the paper's round
/// horizon is `n − 1`. Ground truth everywhere is a `confirmed` partition.
///
/// # Panics
///
/// Panics if `t` exceeds the cluster count.
pub fn clustered_fleet(clusters: usize, size: usize, t: usize, seed: u64) -> ClusteredFleet {
    assert!(t <= clusters, "at most one Byzantine insider per cluster");
    let graph = gen::disjoint_cliques(clusters, size);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cluster_ids: Vec<usize> = (0..clusters).collect();
    cluster_ids.shuffle(&mut rng);
    let mut byzantine: Vec<NodeId> = cluster_ids
        .into_iter()
        .take(t)
        .map(|c| c * size + (seed as usize + c) % size.max(1))
        .collect();
    byzantine.sort_unstable();
    ClusteredFleet { graph, byzantine }
}

/// Draws `t` distinct random nodes of `g` (for "aleatory placement"
/// experiments).
///
/// # Panics
///
/// Panics if `t > n`.
pub fn random_byzantine_placement(g: &Graph, t: usize, seed: u64) -> Vec<NodeId> {
    let n = g.node_count();
    assert!(t <= n, "cannot pick {t} Byzantine nodes out of {n}");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nodes: Vec<NodeId> = (0..n).collect();
    nodes.shuffle(&mut rng);
    nodes.truncate(t);
    nodes.sort_unstable();
    nodes
}

/// Picks a Byzantine placement that actually cuts the graph when possible:
/// the `t` nodes are a minimum vertex cut padded with random extras (or a
/// random placement if `t < κ(G)`).
///
/// Extras are drawn from the *largest* component left by the cut, so the
/// padding can never swallow a separated side whole and thereby heal the
/// partition (e.g. when the min cut is the neighborhood of a single node,
/// adding that node to the cast would reconnect the rest).
pub fn cut_byzantine_placement(g: &Graph, t: usize, seed: u64) -> Vec<NodeId> {
    cut_byzantine_placement_with(&mut ConnectivityOracle::new(), g, t, seed)
}

/// [`cut_byzantine_placement`] with a caller-supplied oracle: resilience
/// sweeps place casts on the *same* topology dozens of times, so the
/// feasibility check `t ≥ κ(G)` ("does a cut of size ≤ t exist at all?") is
/// a cached, bounded decision instead of an exact `κ` recomputation per
/// run. Only placements that do cut still pay for one exact
/// [`min_vertex_cut`](nectar_graph::connectivity::min_vertex_cut) to obtain
/// the witness nodes.
pub fn cut_byzantine_placement_with(
    oracle: &mut ConnectivityOracle,
    g: &Graph,
    t: usize,
    seed: u64,
) -> Vec<NodeId> {
    // t < κ (no cut of size ≤ t exists) or κ = 0 (already partitioned;
    // "key positions" are meaningless): fall back to a random cast.
    if !oracle.is_t_partitionable(g, t) || !traversal::is_connected(g) {
        return random_byzantine_placement(g, t, seed);
    }
    let mut cut = nectar_graph::connectivity::min_vertex_cut(g).unwrap_or_default();
    let mut rng = StdRng::seed_from_u64(seed);
    // Components of G \ cut: pad only from the most populous one.
    let without = g.without_nodes(&cut);
    let (ids, count) = nectar_graph::traversal::connected_components(&without);
    let cut_set: std::collections::BTreeSet<NodeId> = cut.iter().copied().collect();
    let mut sizes = vec![0usize; count];
    for v in 0..g.node_count() {
        if !cut_set.contains(&v) {
            sizes[ids[v]] += 1;
        }
    }
    let largest = sizes.iter().enumerate().max_by_key(|&(_, s)| s).map(|(i, _)| i);
    let mut pool: Vec<NodeId> = (0..g.node_count())
        .filter(|v| !cut_set.contains(v) && largest.is_some_and(|c| ids[*v] == c))
        .collect();
    pool.shuffle(&mut rng);
    while cut.len() < t {
        match pool.pop() {
            Some(extra) => cut.push(extra),
            None => break, // graph too small to pad further
        }
    }
    cut.sort_unstable();
    cut
}

/// The tree/cut-aware Byzantine placement: liars sit on the graph's
/// *articulation set*. Articulation points are the size-1 vertex cuts, so
/// on tree-like, bridged and chained topologies (where the Kailkhura et al.
/// data-falsification literature places its adversaries) they are exactly
/// the positions from which a single liar controls every inter-component
/// path. The placement takes the articulation points most damaging first —
/// descending degree, then ascending id, both deterministic — and pads a
/// short set with random extras from the largest remaining component (the
/// same no-healing rule as [`cut_byzantine_placement`]). On a biconnected
/// graph (no articulation points at all) it falls back to
/// [`cut_byzantine_placement`] wholesale.
pub fn articulation_byzantine_placement(g: &Graph, t: usize, seed: u64) -> Vec<NodeId> {
    let mut points = connectivity::articulation_points(g);
    if points.is_empty() {
        return cut_byzantine_placement(g, t, seed);
    }
    points.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
    points.truncate(t);
    if points.len() < t {
        // Pad from the most populous component left by the chosen points,
        // so the extras can never swallow a separated side whole.
        let mut rng = StdRng::seed_from_u64(seed);
        let chosen: std::collections::BTreeSet<NodeId> = points.iter().copied().collect();
        let without = g.without_nodes(&points);
        let (ids, count) = traversal::connected_components(&without);
        let mut sizes = vec![0usize; count];
        for v in 0..g.node_count() {
            if !chosen.contains(&v) {
                sizes[ids[v]] += 1;
            }
        }
        let largest = sizes.iter().enumerate().max_by_key(|&(_, s)| s).map(|(i, _)| i);
        let mut pool: Vec<NodeId> = (0..g.node_count())
            .filter(|v| !chosen.contains(v) && largest.is_some_and(|c| ids[*v] == c))
            .collect();
        pool.shuffle(&mut rng);
        while points.len() < t {
            match pool.pop() {
                Some(extra) => points.push(extra),
                None => break, // graph too small to pad further
            }
        }
    }
    points.sort_unstable();
    points
}

/// A full data-falsification cast on the articulation placement: each
/// placed liar runs [`ByzantineBehavior::FalsifyData`] with the given flip
/// probability, a per-node seed derived from `seed`, and every *other* cast
/// member as a colluding partner (fabricated "up" measurements are only
/// forgeable among Byzantine nodes, §II — the scenario runner enforces it).
pub fn articulation_falsifier_cast(
    g: &Graph,
    t: usize,
    flips_per_mille: u16,
    seed: u64,
) -> Vec<(NodeId, ByzantineBehavior)> {
    let placement = articulation_byzantine_placement(g, t, seed);
    placement
        .iter()
        .map(|&node| {
            let partners: Vec<NodeId> = placement.iter().copied().filter(|&p| p != node).collect();
            (node, ByzantineBehavior::FalsifyData { flips_per_mille, seed, partners })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nectar_graph::traversal;

    #[test]
    fn insiders_are_balanced_across_parts() {
        let s = partitioned_with_insiders(20, 4, 1);
        assert!(traversal::is_partitioned(&s.graph));
        let in_a = s.byzantine.iter().filter(|b| s.part_a.contains(b)).count();
        let in_b = s.byzantine.iter().filter(|b| s.part_b.contains(b)).count();
        assert_eq!(in_a, 2);
        assert_eq!(in_b, 2);
    }

    #[test]
    fn insider_byzantine_nodes_are_distinct() {
        let s = partitioned_with_insiders(30, 6, 7);
        let mut b = s.byzantine.clone();
        b.sort_unstable();
        b.dedup();
        assert_eq!(b.len(), 6);
    }

    #[test]
    fn bridges_connect_the_graph_but_form_a_cut() {
        let s = bridged_partition(21, 2, 3, 3);
        assert!(traversal::is_connected(&s.graph), "bridges must reconnect the graph");
        assert!(
            traversal::is_partitioned_without(&s.graph, &s.byzantine),
            "removing the bridges must partition the correct nodes"
        );
        // Connectivity is at most t: the bridges are a vertex cut.
        let kappa = nectar_graph::connectivity::vertex_connectivity(&s.graph);
        assert!(kappa <= 2, "κ = {kappa} should not exceed the bridge count");
    }

    #[test]
    fn bridge_scenario_is_seeded_deterministic() {
        let a = bridged_partition(15, 1, 2, 9);
        let b = bridged_partition(15, 1, 2, 9);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.byzantine, b.byzantine);
    }

    #[test]
    fn clustered_fleet_places_insiders_in_distinct_clusters() {
        let s = clustered_fleet(10, 4, 5, 11);
        assert_eq!(s.graph.node_count(), 40);
        assert!(traversal::is_partitioned(&s.graph));
        assert_eq!(s.byzantine.len(), 5);
        let mut clusters: Vec<usize> = s.byzantine.iter().map(|b| b / 4).collect();
        clusters.dedup();
        assert_eq!(clusters.len(), 5, "one insider per cluster");
        // Seeded determinism.
        assert_eq!(clustered_fleet(10, 4, 5, 11).byzantine, s.byzantine);
    }

    #[test]
    fn random_placement_is_distinct_and_in_range() {
        let g = gen::cycle(12);
        let byz = random_byzantine_placement(&g, 5, 4);
        assert_eq!(byz.len(), 5);
        assert!(byz.windows(2).all(|w| w[0] < w[1]));
        assert!(byz.iter().all(|&b| b < 12));
    }

    #[test]
    fn cut_placement_cuts_when_budget_allows() {
        let g = gen::star(10);
        let byz = cut_byzantine_placement(&g, 1, 2);
        assert_eq!(byz, vec![0], "the star's hub is the only min cut");
        let g = gen::cycle(8);
        let byz = cut_byzantine_placement(&g, 2, 2);
        assert!(traversal::is_partitioned_without(&g, &byz));
    }

    #[test]
    fn articulation_placement_takes_the_cut_vertices_first() {
        // A path's interior nodes are all articulation points; the highest
        // degree ties break by ascending id, so t = 2 takes nodes 1 and 2.
        let g = gen::path(6);
        assert_eq!(articulation_byzantine_placement(&g, 2, 0), vec![1, 2]);
        // The star's hub is the lone articulation point and a full cut.
        let g = gen::star(9);
        assert_eq!(articulation_byzantine_placement(&g, 1, 3), vec![0]);
        // Two triangles bridged through node 2: the bowtie centre wins over
        // the random fallback every time.
        let bowtie =
            Graph::from_edges(5, [(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)]).unwrap();
        let placement = articulation_byzantine_placement(&bowtie, 1, 9);
        assert_eq!(placement, vec![2]);
        assert!(traversal::is_partitioned_without(&bowtie, &placement));
    }

    #[test]
    fn articulation_placement_pads_and_falls_back_deterministically() {
        // A lollipop (4-clique with a 2-edge tail) has two articulation
        // points; t = 3 pads the third from the largest remaining component
        // (the clique side), never healing the split.
        let g =
            Graph::from_edges(6, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4), (4, 5)])
                .unwrap();
        let placement = articulation_byzantine_placement(&g, 3, 5);
        assert_eq!(placement.len(), 3);
        assert!(placement.contains(&3) && placement.contains(&4), "both cut vertices placed");
        assert!(placement.iter().any(|v| [0, 1, 2].contains(v)), "padding from the clique side");
        assert!(traversal::is_partitioned_without(&g, &placement));
        // Biconnected graph: identical to the min-cut placement.
        let ring = gen::cycle(8);
        assert_eq!(
            articulation_byzantine_placement(&ring, 2, 4),
            cut_byzantine_placement(&ring, 2, 4),
        );
        // Seeded determinism.
        assert_eq!(
            articulation_byzantine_placement(&g, 3, 5),
            articulation_byzantine_placement(&g, 3, 5),
        );
    }

    #[test]
    fn articulation_falsifier_cast_names_only_cast_partners() {
        let g = gen::path(7);
        let cast = articulation_falsifier_cast(&g, 3, 700, 11);
        assert_eq!(cast.len(), 3);
        let members: Vec<NodeId> = cast.iter().map(|(n, _)| *n).collect();
        for (node, behavior) in &cast {
            let ByzantineBehavior::FalsifyData { flips_per_mille, partners, .. } = behavior else {
                panic!("articulation cast must be falsifiers, got {behavior:?}");
            };
            assert_eq!(*flips_per_mille, 700);
            assert!(!partners.contains(node), "a falsifier cannot partner itself");
            assert!(partners.iter().all(|p| members.contains(p)));
            assert_eq!(partners.len(), 2);
        }
    }

    #[test]
    fn shared_oracle_placement_matches_the_transient_one() {
        // The oracle only answers the feasibility question; the placement
        // itself must stay bit-identical whether the oracle is shared
        // (resilience sweeps) or created per call.
        let mut oracle = ConnectivityOracle::new();
        for (g, ts) in [
            (gen::cycle(8), vec![0usize, 1, 2, 3]),
            (gen::harary(4, 10).unwrap(), vec![2, 4, 5]),
            (gen::star(6), vec![1, 2]),
        ] {
            for &t in &ts {
                for seed in 0..3 {
                    assert_eq!(
                        cut_byzantine_placement_with(&mut oracle, &g, t, seed),
                        cut_byzantine_placement(&g, t, seed),
                    );
                }
            }
        }
        assert!(oracle.stats().cache_hits > 0, "repeat feasibility checks must hit the cache");
    }
}
