//! Ablation studies over the reproduction's design knobs (E9 in DESIGN.md).
//!
//! * [`wire_format_ablation`]: faithful per-edge signature chains vs the
//!   batched-chain encoding — quantifies how much of NECTAR's cost is chain
//!   signatures (and connects our absolute numbers to the paper's ~500 KB
//!   ceiling, see DESIGN.md §4.2);
//! * [`rounds_ablation`]: sweeps the round budget `R` and reports view
//!   completeness, showing why `n − 1` rounds is the safe general-purpose
//!   choice (§IV-B) while `diameter(G)` rounds already suffice on a known
//!   topology.

use nectar_graph::{gen, traversal, Graph};
use nectar_protocol::{NectarConfig, Scenario, WireFormat};

use crate::table::{Point, Series, Table};

/// Parameters for the wire-format ablation.
#[derive(Debug, Clone)]
pub struct WireFormatConfig {
    /// System sizes to sweep.
    pub ns: Vec<usize>,
    /// Connectivity parameter.
    pub k: usize,
}

impl WireFormatConfig {
    /// Full-size sweep.
    pub fn paper() -> Self {
        WireFormatConfig { ns: (20..=100).step_by(20).collect(), k: 10 }
    }

    /// Scaled-down sweep for tests.
    pub fn quick() -> Self {
        WireFormatConfig { ns: vec![12, 20], k: 4 }
    }
}

/// **E9a** — NECTAR's cost per node under both wire formats, on k-regular
/// graphs.
pub fn wire_format_ablation(cfg: &WireFormatConfig) -> Table {
    let formats = [
        ("per-edge chains", WireFormat::PerEdgeChains),
        ("batched chain", WireFormat::BatchedChain),
    ];
    let series = formats
        .into_iter()
        .map(|(label, format)| Series {
            label: label.into(),
            points: cfg
                .ns
                .iter()
                .filter(|&&n| cfg.k < n)
                .map(|&n| {
                    let g = gen::harary(cfg.k, n).expect("k < n checked");
                    let config = NectarConfig::new(n, cfg.k / 2).with_wire_format(format);
                    let metrics = Scenario::new(g, cfg.k / 2)
                        .with_config(config)
                        .sim()
                        .metrics_only()
                        .run()
                        .into_metrics();
                    Point {
                        x: n as f64,
                        mean: metrics.mean_bytes_sent_per_node() / 1024.0,
                        ci95: 0.0,
                    }
                })
                .collect(),
        })
        .collect();
    Table {
        id: "ablation_wire_format".into(),
        title: format!("Ablation: wire format impact on data sent per node (k = {})", cfg.k),
        x_label: "Number of Nodes (n)".into(),
        y_label: "Data sent per node (KBytes)".into(),
        series,
    }
}

/// Parameters for the round-budget ablation.
#[derive(Debug, Clone)]
pub struct RoundsConfig {
    /// The topology to study.
    pub graph: Graph,
    /// Byzantine budget (affects only the decision, not propagation).
    pub t: usize,
}

impl RoundsConfig {
    /// A ring of 24 nodes — diameter 12, so the sweep shows a sharp
    /// completeness knee at `R = 12` while the paper's default would be 23.
    pub fn paper() -> Self {
        RoundsConfig { graph: gen::cycle(24), t: 1 }
    }

    /// Scaled-down version.
    pub fn quick() -> Self {
        RoundsConfig { graph: gen::cycle(8), t: 1 }
    }
}

/// **E9b** — view completeness and cost as a function of the round budget
/// `R ∈ [1, n − 1]`.
pub fn rounds_ablation(cfg: &RoundsConfig) -> Table {
    let n = cfg.graph.node_count();
    let total_edges = cfg.graph.edge_count() as f64;
    let mut completeness = Series { label: "view completeness".into(), points: Vec::new() };
    let mut cost = Series { label: "data sent per node (KB)".into(), points: Vec::new() };
    for rounds in 1..n {
        let config = NectarConfig::new(n, cfg.t).with_rounds(rounds);
        let scenario = Scenario::new(cfg.graph.clone(), cfg.t).with_config(config);
        let out = scenario.sim().run();
        // Completeness: mean fraction of edges discovered across nodes.
        let mean_edges: f64 = out
            .decisions()
            .keys()
            .map(|_| 0.0) // decisions do not expose edge counts; recompute below
            .sum::<f64>();
        let _ = mean_edges;
        // Re-run collecting node views (cheap at these sizes).
        let frac = completeness_fraction(&scenario, total_edges);
        completeness.points.push(Point { x: rounds as f64, mean: frac, ci95: 0.0 });
        cost.points.push(Point {
            x: rounds as f64,
            mean: out.metrics().mean_bytes_sent_per_node() / 1024.0,
            ci95: 0.0,
        });
    }
    Table {
        id: "ablation_rounds".into(),
        title: format!(
            "Ablation: round budget R vs view completeness and cost (cycle n = {}, diameter = {})",
            n,
            traversal::diameter(&cfg.graph).map(|d| d.to_string()).unwrap_or_else(|| "∞".into()),
        ),
        x_label: "Propagation rounds (R)".into(),
        y_label: "fraction / KBytes".into(),
        series: vec![completeness, cost],
    }
}

fn completeness_fraction(scenario: &Scenario, total_edges: f64) -> f64 {
    let participants = scenario.sim().participants();
    let n = participants.len() as f64;
    participants.iter().map(|p| p.nectar().known_edge_count() as f64 / total_edges).sum::<f64>() / n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batched_format_is_cheaper() {
        let t = wire_format_ablation(&WireFormatConfig::quick());
        let per_edge = &t.series[0];
        let batched = &t.series[1];
        for (a, b) in per_edge.points.iter().zip(&batched.points) {
            assert!(b.mean < a.mean, "batched must be cheaper at n = {}", a.x);
        }
    }

    #[test]
    fn completeness_saturates_at_the_diameter() {
        let t = rounds_ablation(&RoundsConfig::quick());
        let completeness = &t.series[0];
        // Cycle of 8: diameter 4. Below 4 rounds the view is incomplete,
        // from 4 rounds on it is complete.
        let at = |r: f64| completeness.points.iter().find(|p| p.x == r).unwrap().mean;
        assert!(at(2.0) < 1.0);
        assert!((at(4.0) - 1.0).abs() < 1e-12);
        assert!((at(7.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cost_stops_growing_after_the_diameter() {
        let t = rounds_ablation(&RoundsConfig::quick());
        let cost = &t.series[1];
        let at = |r: f64| cost.points.iter().find(|p| p.x == r).unwrap().mean;
        // Extra rounds beyond the diameter are silent: same cost.
        assert!((at(4.0) - at(7.0)).abs() < 1e-9);
        assert!(at(2.0) < at(4.0));
    }
}
