//! Signed vs unsigned cost comparison (the paper's conclusion conjecture).
//!
//! NECTAR needs signatures; §VII posits a signature-free synchronous
//! solution "albeit at a significant cost". This experiment pits NECTAR
//! against the Dolev-style unsigned detector of `nectar-dolev` at equal
//! `(graph, t)` and reports messages and kilobytes per node for both.

use nectar_dolev::{UnsignedConfig, UnsignedNode};
use nectar_graph::gen;
use nectar_net::SyncNetwork;
use nectar_protocol::Scenario;

use crate::table::{Point, Series, Table};

/// Parameters for the signed-vs-unsigned comparison.
#[derive(Debug, Clone)]
pub struct UnsignedCostConfig {
    /// System sizes to sweep (keep modest: the unsigned message count grows
    /// with the number of simple paths).
    pub ns: Vec<usize>,
    /// Connectivity parameter of the Harary substrate.
    pub k: usize,
    /// Byzantine budget (drives the `t + 1` disjoint-path requirement).
    pub t: usize,
}

impl UnsignedCostConfig {
    /// Full-size sweep.
    pub fn paper() -> Self {
        UnsignedCostConfig { ns: vec![8, 10, 12, 14, 16], k: 4, t: 1 }
    }

    /// Scaled-down sweep for tests.
    pub fn quick() -> Self {
        UnsignedCostConfig { ns: vec![8, 10], k: 4, t: 1 }
    }
}

/// **E11** — messages per node, NECTAR vs the unsigned Dolev-style variant,
/// on k-regular graphs.
pub fn unsigned_cost(cfg: &UnsignedCostConfig) -> Table {
    let mut nectar_msgs = Series { label: "NECTAR messages/node".into(), points: Vec::new() };
    let mut unsigned_msgs = Series { label: "unsigned messages/node".into(), points: Vec::new() };
    let mut nectar_kb = Series { label: "NECTAR KB/node".into(), points: Vec::new() };
    let mut unsigned_kb = Series { label: "unsigned KB/node".into(), points: Vec::new() };
    for &n in &cfg.ns {
        let g = match gen::harary(cfg.k, n) {
            Ok(g) => g,
            Err(_) => continue,
        };
        let nectar = Scenario::new(g.clone(), cfg.t).sim().metrics_only().run().into_metrics();
        let ucfg = UnsignedConfig::new(n, cfg.t);
        let nodes: Vec<UnsignedNode> =
            (0..n).map(|i| UnsignedNode::new(i, ucfg, g.neighborhood(i))).collect();
        let mut net = SyncNetwork::new(nodes, g);
        net.run_rounds(ucfg.rounds());
        let unsigned = net.metrics();
        let x = n as f64;
        let per_node = |total: u64| total as f64 / x;
        nectar_msgs.points.push(Point {
            x,
            mean: per_node(nectar.msgs_sent().iter().sum()),
            ci95: 0.0,
        });
        unsigned_msgs.points.push(Point {
            x,
            mean: per_node(unsigned.msgs_sent().iter().sum()),
            ci95: 0.0,
        });
        nectar_kb.points.push(Point {
            x,
            mean: nectar.mean_bytes_sent_per_node() / 1024.0,
            ci95: 0.0,
        });
        unsigned_kb.points.push(Point {
            x,
            mean: unsigned.mean_bytes_sent_per_node() / 1024.0,
            ci95: 0.0,
        });
    }
    Table {
        id: "unsigned_cost".into(),
        title: format!(
            "Conclusion conjecture: signed vs unsigned detection cost (Harary k = {}, t = {})",
            cfg.k, cfg.t
        ),
        x_label: "Number of Nodes (n)".into(),
        y_label: "messages / KB per node".into(),
        series: vec![nectar_msgs, unsigned_msgs, nectar_kb, unsigned_kb],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsigned_message_count_dwarfs_nectar() {
        let t = unsigned_cost(&UnsignedCostConfig::quick());
        let nectar = &t.series[0];
        let unsigned = &t.series[1];
        for (a, b) in nectar.points.iter().zip(&unsigned.points) {
            assert!(
                b.mean > 2.0 * a.mean,
                "n = {}: unsigned {} should dwarf NECTAR {}",
                a.x,
                b.mean,
                a.mean
            );
        }
    }

    #[test]
    fn unsigned_growth_is_steeper_than_nectar() {
        let t = unsigned_cost(&UnsignedCostConfig::quick());
        let ratio_at = |s: &crate::table::Series, i: usize| s.points[i].mean;
        let nectar_growth = ratio_at(&t.series[0], 1) / ratio_at(&t.series[0], 0);
        let unsigned_growth = ratio_at(&t.series[1], 1) / ratio_at(&t.series[1], 0);
        assert!(
            unsigned_growth > nectar_growth,
            "unsigned growth {unsigned_growth:.2} vs NECTAR {nectar_growth:.2}"
        );
    }
}
