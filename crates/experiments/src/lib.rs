//! Experiment harness regenerating the NECTAR paper's evaluation (§V).
//!
//! Every figure and in-text result maps to one runner here (see DESIGN.md
//! §3 for the experiment index):
//!
//! | Paper artifact | Runner |
//! |---|---|
//! | Fig. 3 | [`cost::fig3_kregular_cost`] |
//! | §V-C topology comparison | [`cost::topology_cost`] |
//! | Fig. 4 | [`cost::fig4_drone_nectar`] |
//! | Fig. 5 | [`cost::fig5_drone_mtgv2`] |
//! | Fig. 6 | [`cost::fig6_drone_scaling_nectar`] |
//! | Fig. 7 | [`cost::fig7_drone_scaling_mtgv2`] |
//! | Fig. 8 | [`resilience::fig8_byzantine_resilience`] |
//! | §V-D topology resilience | [`resilience::topology_resilience`] |
//! | Reproduction ablations | [`ablation`] |
//! | §VII unsigned-cost conjecture | [`unsigned::unsigned_cost`] |
//! | Beyond §V: 10k-node clustered-fleet cost | [`cost::large_scale_cost`] |
//! | Beyond §V: clustered-fleet resilience | [`resilience::clustered_resilience`] |
//!
//! The large-n sweeps run on the event-driven runtime
//! (`nectar_protocol::Runtime::Event`), whose `O(active events)`
//! scheduling makes system sizes far beyond the paper's 100-node
//! evaluation feasible; all runners accept any runtime since outcomes are
//! bit-identical across the three.
//!
//! Each runner takes a config with `paper()` (full scale) and `quick()`
//! (CI-sized) presets and returns a [`table::Table`] that renders to CSV
//! and Markdown; the `nectar-bench` figure binaries drive them.

#![forbid(unsafe_code)]

pub mod ablation;
pub mod chart;
pub mod cost;
pub mod matrix;
pub mod mobility;
pub mod resilience;
pub mod scenario;
pub mod scenarios;
pub mod stats;
pub mod table;
pub mod unsigned;

pub use mobility::MobilitySpec;
pub use scenario::{CompiledScenario, ScenarioError, ScenarioSpec, TransportKind};

pub use matrix::{
    CastSpec, CellStats, FamilySpec, MatrixCell, MatrixReport, MatrixSpec, MATRIX_CODEC_VERSION,
    MATRIX_CSV_HEADER,
};
pub use scenarios::{
    articulation_byzantine_placement, articulation_falsifier_cast, bridged_partition,
    cut_byzantine_placement, partitioned_with_insiders, random_byzantine_placement, BridgeScenario,
    InsiderScenario,
};
pub use stats::{summarize, Summary};
pub use table::{Point, Series, Table};
