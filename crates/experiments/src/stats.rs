//! Sample statistics: the paper reports 50-run averages with 95% confidence
//! intervals (§V-B).

use serde::{Deserialize, Serialize};

/// Mean, standard deviation and 95% confidence half-width of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected).
    pub std_dev: f64,
    /// Half-width of the 95% confidence interval (normal approximation,
    /// `1.96 · σ/√n`, as is customary for 50-run experiments).
    pub ci95: f64,
    /// Sample size.
    pub n: usize,
}

/// Summarizes a sample. Empty samples yield all-zero summaries.
pub fn summarize(samples: &[f64]) -> Summary {
    let n = samples.len();
    if n == 0 {
        return Summary { mean: 0.0, std_dev: 0.0, ci95: 0.0, n: 0 };
    }
    let mean = samples.iter().sum::<f64>() / n as f64;
    if n == 1 {
        return Summary { mean, std_dev: 0.0, ci95: 0.0, n };
    }
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
    let std_dev = var.sqrt();
    let ci95 = 1.96 * std_dev / (n as f64).sqrt();
    Summary { mean, std_dev, ci95, n }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample() {
        let s = summarize(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn single_sample_has_no_spread() {
        let s = summarize(&[5.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.ci95, 0.0);
    }

    #[test]
    fn known_values() {
        let s = summarize(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std dev with Bessel correction: sqrt(32/7).
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert!(s.ci95 > 0.0);
    }

    #[test]
    fn constant_sample_has_zero_ci() {
        let s = summarize(&[3.0; 10]);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95, 0.0);
    }
}
