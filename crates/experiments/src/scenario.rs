//! The scenario layer: one declarative file describing a whole NECTAR
//! experiment, compiled into a frozen plan that lowers onto the existing
//! execution machinery.
//!
//! Every execution axis the repo has grown — four runtimes, the
//! topology/attack zoos, [`TopologySchedule`]s, mobility generators, the
//! socket fleet — is reachable from one hand-rolled text format (in the
//! style of `TopologySchedule::parse` / `RunReport::from_json`; no serde):
//!
//! ```text
//! # scenarios/demo.scn
//! name      harary cut demo
//! topology  harary-k2 16      # FamilySpec vocabulary, or nodes + edge lines
//! t         2
//! seed      7
//! cast      silent-cut        # CastSpec vocabulary; or per-node byz lines
//! epochs    2
//! runtime   event
//! schedule  drop 2 0 1        # inline, or `schedule @file.sched`
//! report    out/demo.json
//! ```
//!
//! The flow is **parse → compile → lower**. [`ScenarioSpec::parse`] maps
//! text to a plain struct, rejecting malformed directives with
//! `file:line` context ([`ScenarioError`]). [`ScenarioSpec::compile`]
//! validates every cross-field constraint — cast placements against the
//! topology, the schedule against the base graph, transport × runtime
//! legality — and freezes a [`CompiledScenario`]. Lowering then reuses the
//! seams that already exist instead of a parallel execution path: the
//! sync-transport plan becomes a `Scenario` plus `Simulation` builder
//! calls ([`CompiledScenario::run_report`]), the loopback plan becomes
//! `run_over_loopback`, and a UDS/TCP fleet node hands the same
//! `Scenario` to `run_scenario_node` — so an entire multi-process fleet
//! shares one scenario file instead of re-deriving seeded state from
//! per-process flags. A new scenario key must lower onto an existing
//! builder knob (`docs/DETERMINISM.md` §4); the format adds reach, never
//! a second semantics.
//!
//! Dynamic networks come from the [`mobility`](crate::mobility) presets
//! (`mobility waypoint …` / `churn …` / `split-heal …`), which emit
//! schedules as pure seeded functions — a 10k-node random-waypoint swarm
//! is three lines of config.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

use nectar_graph::Graph;
use nectar_net::{
    run_over_loopback, DeliveryLog, Metrics, NodeId, ScheduleError, TopologySchedule,
    TransportError,
};
use nectar_protocol::{
    ByzantineBehavior, ConnectivityOracle, Decision, RunReport, Runtime, Scenario,
};

use crate::matrix::{CastSpec, FamilySpec};
use crate::mobility::MobilitySpec;

/// Default Byzantine budget.
const DEFAULT_T: usize = 1;
/// Default seed (keys, placements, generators).
const DEFAULT_SEED: u64 = 42;
/// Default TCP base port (node `i` listens on `base + i`).
const DEFAULT_BASE_PORT: u16 = 4600;
/// Default socket connect/recv timeout.
const DEFAULT_TIMEOUT_MS: u64 = 30_000;

/// An error in a scenario document, carrying its source position. The
/// Display form is `file:line: reason` (degrading gracefully when either
/// part is unknown), so compile errors from scenario files point at the
/// offending directive, not just at "the file".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// Originating file (empty when parsed from a bare string).
    pub file: String,
    /// 1-based line of the offending directive; 0 when the error is about
    /// the document as a whole.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.file.is_empty(), self.line) {
            (false, 0) => write!(f, "{}: {}", self.file, self.reason),
            (false, line) => write!(f, "{}:{}: {}", self.file, line, self.reason),
            (true, 0) => f.write_str(&self.reason),
            (true, line) => write!(f, "line {}: {}", line, self.reason),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// How the compiled scenario executes: in-process on a runtime engine, or
/// as a fleet over a transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// In-process deterministic execution on one of the four runtimes —
    /// the only transport that supports epochs, schedules and report
    /// sinks.
    #[default]
    Sync,
    /// In-process loopback channels behind the real wire codec
    /// (`run_over_loopback`): the transport stack without processes.
    Loopback,
    /// One OS process per node over Unix domain sockets.
    Uds,
    /// One OS process per node over TCP.
    Tcp,
}

impl TransportKind {
    /// Stable identifier used in scenario files.
    pub fn name(self) -> &'static str {
        match self {
            TransportKind::Sync => "sync",
            TransportKind::Loopback => "loopback",
            TransportKind::Uds => "uds",
            TransportKind::Tcp => "tcp",
        }
    }

    /// Parses the `transport` directive vocabulary.
    ///
    /// # Errors
    ///
    /// Returns a message listing the vocabulary on unknown names.
    pub fn parse(name: &str) -> Result<TransportKind, String> {
        match name {
            "sync" => Ok(TransportKind::Sync),
            "loopback" => Ok(TransportKind::Loopback),
            "uds" => Ok(TransportKind::Uds),
            "tcp" => Ok(TransportKind::Tcp),
            other => Err(format!("unknown transport {other}; expected sync, loopback, uds or tcp")),
        }
    }
}

/// Source positions of a parsed spec — which file it came from and which
/// line each directive sat on — so [`ScenarioSpec::compile`] can anchor
/// cross-field errors at the offending directive. Provenance only: two
/// specs with equal content compare equal regardless of where (or
/// whether) they were written down, which is what the parse/to_text
/// round-trip contract needs.
#[derive(Debug, Clone, Default)]
struct SourceMap {
    file: String,
    dir: PathBuf,
    line_of: BTreeMap<&'static str, usize>,
    edge_lines: Vec<usize>,
    byz_lines: Vec<usize>,
    schedule_lines: Vec<usize>,
}

impl PartialEq for SourceMap {
    fn eq(&self, _: &SourceMap) -> bool {
        true
    }
}

impl Eq for SourceMap {}

/// A parsed-but-not-yet-validated scenario document: one field per
/// directive, defaults filled in. Cross-field constraints are checked by
/// [`compile`](Self::compile), not here, so a spec can be inspected,
/// [`reduced`](Self::reduced) for CI, or re-rendered with
/// [`to_text`](Self::to_text) before committing to a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Human-readable label (free text, informational).
    pub name: String,
    /// Topology by family: `(spec, n)` from `topology <family> <n>`.
    pub family: Option<(FamilySpec, usize)>,
    /// Explicit topology size, from `nodes <n>` (paired with `edge` lines).
    pub nodes: Option<usize>,
    /// Explicit edge list, from repeated `edge <u> <v>` lines.
    pub edges: Vec<(NodeId, NodeId)>,
    /// Byzantine budget `t`.
    pub t: usize,
    /// Seed for keys, placements and generators.
    pub seed: u64,
    /// Whole-cast placement from the attack zoo (`cast <name>`); mutually
    /// exclusive with per-node `byz` lines.
    pub cast: Option<CastSpec>,
    /// Per-node behaviors from repeated `byz <node>:<behavior>` lines.
    pub byzantine: Vec<(NodeId, ByzantineBehavior)>,
    /// Monitoring epochs (sync transport only).
    pub epochs: usize,
    /// Requested runtime; `None` means the sync engine. Parsed eagerly so
    /// a bad name errors at its line.
    pub runtime: Option<Runtime>,
    /// Schedule from a sibling file (`schedule @<path>`).
    pub schedule_file: Option<String>,
    /// Inline schedule directives (repeated `schedule <directive…>`).
    pub schedule_lines: Vec<String>,
    /// Mobility preset generating the schedule (and, for waypoint, the
    /// topology); mutually exclusive with explicit schedules.
    pub mobility: Option<MobilitySpec>,
    /// Execution transport.
    pub transport: TransportKind,
    /// Socket directory for the UDS fleet (`sock-dir <path>`).
    pub sock_dir: Option<String>,
    /// TCP base port (node `i` listens on `base + i`).
    pub base_port: u16,
    /// Socket connect timeout.
    pub connect_timeout_ms: u64,
    /// Socket receive timeout.
    pub recv_timeout_ms: u64,
    /// JSON report sink (`report <path>`, sync transport only).
    pub report: Option<String>,
    /// CSV decisions sink (`csv <path>`, sync transport only).
    pub csv: Option<String>,
    /// Record per-phase wall-clock profiles (`profile`).
    pub profile: bool,
    src: SourceMap,
}

impl Default for ScenarioSpec {
    fn default() -> ScenarioSpec {
        ScenarioSpec {
            name: String::new(),
            family: None,
            nodes: None,
            edges: Vec::new(),
            t: DEFAULT_T,
            seed: DEFAULT_SEED,
            cast: None,
            byzantine: Vec::new(),
            epochs: 1,
            runtime: None,
            schedule_file: None,
            schedule_lines: Vec::new(),
            mobility: None,
            transport: TransportKind::Sync,
            sock_dir: None,
            base_port: DEFAULT_BASE_PORT,
            connect_timeout_ms: DEFAULT_TIMEOUT_MS,
            recv_timeout_ms: DEFAULT_TIMEOUT_MS,
            report: None,
            csv: None,
            profile: false,
            src: SourceMap::default(),
        }
    }
}

impl ScenarioSpec {
    /// Reads and parses a scenario file. The file's directory becomes the
    /// base for `schedule @<path>` references.
    ///
    /// # Errors
    ///
    /// I/O failures and every [`parse`](Self::parse) error, with the path
    /// as the error's file.
    pub fn load(path: &Path) -> Result<ScenarioSpec, ScenarioError> {
        let file = path.display().to_string();
        let text = std::fs::read_to_string(path).map_err(|e| ScenarioError {
            file: file.clone(),
            line: 0,
            reason: format!("cannot read scenario file: {e}"),
        })?;
        let mut spec = ScenarioSpec::parse(&text, &file)?;
        spec.src.dir = path.parent().unwrap_or_else(|| Path::new("")).to_path_buf();
        Ok(spec)
    }

    /// Parses a scenario document. `file` labels errors (pass `""` for
    /// in-memory text). One directive per line; blank lines and `#`
    /// comments are skipped; single-valued directives may appear at most
    /// once; `edge`, `byz` and inline `schedule` lines repeat.
    ///
    /// # Errors
    ///
    /// A [`ScenarioError`] at the first malformed, duplicate or
    /// conflicting directive.
    pub fn parse(text: &str, file: &str) -> Result<ScenarioSpec, ScenarioError> {
        let mut spec = ScenarioSpec {
            src: SourceMap { file: file.into(), ..Default::default() },
            ..Default::default()
        };
        let fail = |line: usize, reason: String| ScenarioError { file: file.into(), line, reason };
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            // Strip trailing comments so directives and notes can share a
            // line, like the schedule script format.
            let line = line.split('#').next().unwrap_or("").trim();
            let words: Vec<&str> = line.split_whitespace().collect();
            let (keyword, rest) = words.split_first().expect("non-empty line");
            let mut once = |key: &'static str| -> Result<(), ScenarioError> {
                match spec.src.line_of.insert(key, line_no) {
                    Some(first) => Err(fail(
                        line_no,
                        format!("duplicate {key} directive (first at line {first})"),
                    )),
                    None => Ok(()),
                }
            };
            let arg = |count: usize| -> Result<&[&str], ScenarioError> {
                if rest.len() == count {
                    Ok(rest)
                } else {
                    Err(fail(
                        line_no,
                        format!("{keyword} takes {count} argument(s), got {}", rest.len()),
                    ))
                }
            };
            let num = |word: &str, what: &str| -> Result<u64, ScenarioError> {
                word.parse::<u64>().map_err(|_| fail(line_no, format!("bad {what} {word}")))
            };
            match *keyword {
                "name" => {
                    once("name")?;
                    if rest.is_empty() {
                        return Err(fail(line_no, "name needs a value".into()));
                    }
                    spec.name = rest.join(" ");
                }
                "topology" => {
                    once("topology")?;
                    if spec.nodes.is_some() || !spec.edges.is_empty() {
                        return Err(fail(
                            line_no,
                            "topology conflicts with an explicit nodes/edge topology".into(),
                        ));
                    }
                    let args = arg(2)?;
                    let family = FamilySpec::parse(args[0]).map_err(|e| fail(line_no, e))?;
                    spec.family = Some((family, num(args[1], "topology size")? as usize));
                }
                "nodes" => {
                    once("nodes")?;
                    if spec.family.is_some() {
                        return Err(fail(
                            line_no,
                            "nodes conflicts with a topology directive".into(),
                        ));
                    }
                    spec.nodes = Some(num(arg(1)?[0], "node count")? as usize);
                }
                "edge" => {
                    if spec.family.is_some() {
                        return Err(fail(
                            line_no,
                            "edge conflicts with a topology directive".into(),
                        ));
                    }
                    let args = arg(2)?;
                    spec.edges.push((
                        num(args[0], "node id")? as usize,
                        num(args[1], "node id")? as usize,
                    ));
                    spec.src.edge_lines.push(line_no);
                }
                "t" => {
                    once("t")?;
                    spec.t = num(arg(1)?[0], "t")? as usize;
                }
                "seed" => {
                    once("seed")?;
                    spec.seed = num(arg(1)?[0], "seed")?;
                }
                "cast" => {
                    once("cast")?;
                    if !spec.byzantine.is_empty() {
                        return Err(fail(line_no, "cast and byz are mutually exclusive".into()));
                    }
                    spec.cast = Some(CastSpec::parse(arg(1)?[0]).map_err(|e| fail(line_no, e))?);
                }
                "byz" => {
                    if spec.cast.is_some() {
                        return Err(fail(line_no, "cast and byz are mutually exclusive".into()));
                    }
                    let (node, behavior) =
                        parse_behavior(arg(1)?[0]).map_err(|e| fail(line_no, e))?;
                    spec.byzantine.push((node, behavior));
                    spec.src.byz_lines.push(line_no);
                }
                "epochs" => {
                    once("epochs")?;
                    let epochs = num(arg(1)?[0], "epoch count")? as usize;
                    if epochs == 0 {
                        return Err(fail(line_no, "epochs must be at least 1".into()));
                    }
                    spec.epochs = epochs;
                }
                "runtime" => {
                    once("runtime")?;
                    // Parsed eagerly: a bad runtime name errors here, at
                    // its line, not later out of context.
                    spec.runtime = Some(arg(1)?[0].parse().map_err(|e| fail(line_no, e))?);
                }
                "schedule" => {
                    if spec.mobility.is_some() {
                        return Err(fail(
                            line_no,
                            "mobility and an explicit schedule are mutually exclusive".into(),
                        ));
                    }
                    if let Some(path) = rest.first().and_then(|w| w.strip_prefix('@')) {
                        once("schedule")?;
                        let args = arg(1)?;
                        debug_assert_eq!(args.len(), 1);
                        if !spec.schedule_lines.is_empty() {
                            return Err(fail(
                                line_no,
                                "cannot mix an @file schedule with inline schedule lines".into(),
                            ));
                        }
                        if path.is_empty() {
                            return Err(fail(line_no, "schedule @ needs a file path".into()));
                        }
                        spec.schedule_file = Some(path.to_string());
                    } else {
                        if spec.schedule_file.is_some() {
                            return Err(fail(
                                line_no,
                                "cannot mix an @file schedule with inline schedule lines".into(),
                            ));
                        }
                        if rest.is_empty() {
                            return Err(fail(
                                line_no,
                                "schedule needs a directive or @file".into(),
                            ));
                        }
                        spec.schedule_lines.push(rest.join(" "));
                        spec.src.schedule_lines.push(line_no);
                    }
                }
                "mobility" => {
                    once("mobility")?;
                    if spec.schedule_file.is_some() || !spec.schedule_lines.is_empty() {
                        return Err(fail(
                            line_no,
                            "mobility and an explicit schedule are mutually exclusive".into(),
                        ));
                    }
                    spec.mobility = Some(MobilitySpec::parse(rest).map_err(|e| fail(line_no, e))?);
                }
                "transport" => {
                    once("transport")?;
                    spec.transport =
                        TransportKind::parse(arg(1)?[0]).map_err(|e| fail(line_no, e))?;
                }
                "sock-dir" => {
                    once("sock-dir")?;
                    spec.sock_dir = Some(arg(1)?[0].to_string());
                }
                "base-port" => {
                    once("base-port")?;
                    let port = num(arg(1)?[0], "base port")?;
                    spec.base_port = u16::try_from(port)
                        .map_err(|_| fail(line_no, format!("bad base port {port}")))?;
                }
                "connect-timeout-ms" => {
                    once("connect-timeout-ms")?;
                    spec.connect_timeout_ms = num(arg(1)?[0], "timeout")?;
                }
                "recv-timeout-ms" => {
                    once("recv-timeout-ms")?;
                    spec.recv_timeout_ms = num(arg(1)?[0], "timeout")?;
                }
                "report" => {
                    once("report")?;
                    spec.report = Some(arg(1)?[0].to_string());
                }
                "csv" => {
                    once("csv")?;
                    spec.csv = Some(arg(1)?[0].to_string());
                }
                "profile" => {
                    once("profile")?;
                    arg(0)?;
                    spec.profile = true;
                }
                other => {
                    return Err(fail(line_no, format!("unknown directive `{other}`")));
                }
            }
        }
        Ok(spec)
    }

    /// Renders the spec back to canonical scenario text, round-tripping
    /// through [`parse`](Self::parse) (defaulted directives are omitted).
    ///
    /// # Panics
    ///
    /// Panics on a hand-built spec whose `byzantine` entries have no text
    /// form (behaviors beyond silent/crash/two-faced/hide — express those
    /// as a cast).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if !self.name.is_empty() {
            let _ = writeln!(out, "name {}", self.name);
        }
        if let Some((family, n)) = &self.family {
            let _ = writeln!(out, "topology {} {n}", family.name());
        }
        if let Some(n) = self.nodes {
            let _ = writeln!(out, "nodes {n}");
        }
        for (u, v) in &self.edges {
            let _ = writeln!(out, "edge {u} {v}");
        }
        let _ = writeln!(out, "t {}", self.t);
        let _ = writeln!(out, "seed {}", self.seed);
        if let Some(cast) = &self.cast {
            let _ = writeln!(out, "cast {}", cast.name());
        }
        for (node, behavior) in &self.byzantine {
            let _ = writeln!(out, "byz {node}:{}", behavior_text(behavior));
        }
        if self.epochs != 1 {
            let _ = writeln!(out, "epochs {}", self.epochs);
        }
        if let Some(runtime) = self.runtime {
            let _ = writeln!(out, "runtime {runtime}");
        }
        if let Some(mobility) = &self.mobility {
            let _ = writeln!(out, "mobility {}", mobility.to_directive());
        }
        if let Some(path) = &self.schedule_file {
            let _ = writeln!(out, "schedule @{path}");
        }
        for line in &self.schedule_lines {
            let _ = writeln!(out, "schedule {line}");
        }
        if self.transport != TransportKind::Sync {
            let _ = writeln!(out, "transport {}", self.transport.name());
        }
        if let Some(dir) = &self.sock_dir {
            let _ = writeln!(out, "sock-dir {dir}");
        }
        if self.base_port != DEFAULT_BASE_PORT {
            let _ = writeln!(out, "base-port {}", self.base_port);
        }
        if self.connect_timeout_ms != DEFAULT_TIMEOUT_MS {
            let _ = writeln!(out, "connect-timeout-ms {}", self.connect_timeout_ms);
        }
        if self.recv_timeout_ms != DEFAULT_TIMEOUT_MS {
            let _ = writeln!(out, "recv-timeout-ms {}", self.recv_timeout_ms);
        }
        if let Some(path) = &self.report {
            let _ = writeln!(out, "report {path}");
        }
        if let Some(path) = &self.csv {
            let _ = writeln!(out, "csv {path}");
        }
        if self.profile {
            out.push_str("profile\n");
        }
        out
    }

    /// A CI-sized copy: family and waypoint sizes clamped to `max_n`
    /// (rounds to 8), epochs to 2, and all non-sync execution stripped
    /// (runtime, transport, sockets, sinks, profiling) so the result runs
    /// in-process on the sync engine. Explicit `nodes`/`edge` topologies
    /// and explicit schedules are left alone — they are already
    /// author-sized and node ids in them cannot be re-derived.
    pub fn reduced(&self, max_n: usize) -> ScenarioSpec {
        let mut spec = self.clone();
        if let Some((_, n)) = &mut spec.family {
            *n = (*n).min(max_n);
        }
        if let Some(MobilitySpec::Waypoint { nodes, rounds, .. }) = &mut spec.mobility {
            *nodes = (*nodes).min(max_n);
            *rounds = (*rounds).min(8);
        }
        spec.t = spec.t.min(max_n.saturating_sub(1));
        spec.epochs = spec.epochs.min(2);
        spec.runtime = None;
        spec.transport = TransportKind::Sync;
        spec.sock_dir = None;
        spec.base_port = DEFAULT_BASE_PORT;
        spec.connect_timeout_ms = DEFAULT_TIMEOUT_MS;
        spec.recv_timeout_ms = DEFAULT_TIMEOUT_MS;
        spec.report = None;
        spec.csv = None;
        spec.profile = false;
        spec
    }

    /// Validates every cross-field constraint and freezes the spec into
    /// an executable [`CompiledScenario`]: the topology is built (or
    /// generated by waypoint mobility), the cast is placed on it, the
    /// schedule is parsed/generated and compiled against the base graph,
    /// and transport × runtime legality is checked. Works on hand-built
    /// specs too — parse-time conflict checks are repeated here.
    ///
    /// # Errors
    ///
    /// A [`ScenarioError`] anchored at the offending directive's line.
    pub fn compile(&self) -> Result<CompiledScenario, ScenarioError> {
        let at = |key: &'static str, reason: String| ScenarioError {
            file: self.src.file.clone(),
            line: self.src.line_of.get(key).copied().unwrap_or(0),
            reason,
        };
        let whole = |reason: String| ScenarioError { file: self.src.file.clone(), line: 0, reason };

        // 1. Topology — declared, explicit, or generated by waypoint.
        let supplies = self.mobility.as_ref().is_some_and(MobilitySpec::supplies_topology);
        let mut generated_schedule = None;
        let graph = if supplies {
            if self.family.is_some() || self.nodes.is_some() || !self.edges.is_empty() {
                return Err(at(
                    "mobility",
                    "waypoint mobility generates its own topology; remove the topology/nodes/edge \
                     directives"
                        .into(),
                ));
            }
            let mobility = self.mobility.as_ref().expect("supplies_topology implies mobility");
            let (graph, schedule) =
                mobility.generate(None, self.seed).map_err(|e| at("mobility", e))?;
            generated_schedule = Some(schedule);
            graph.expect("waypoint supplies a topology")
        } else {
            match (&self.family, self.nodes) {
                (Some(_), Some(_)) => {
                    return Err(at(
                        "topology",
                        "topology conflicts with an explicit nodes/edge topology".into(),
                    ));
                }
                (Some((family, n)), None) => {
                    if !self.edges.is_empty() {
                        return Err(at(
                            "topology",
                            "topology conflicts with an explicit nodes/edge topology".into(),
                        ));
                    }
                    family.build(*n, self.seed).map_err(|e| at("topology", e))?
                }
                (None, Some(n)) => {
                    let mut graph = Graph::empty(n);
                    for (i, &(u, v)) in self.edges.iter().enumerate() {
                        let line = self.src.edge_lines.get(i).copied().unwrap_or(0);
                        let fail = |reason: String| ScenarioError {
                            file: self.src.file.clone(),
                            line,
                            reason,
                        };
                        if u >= n || v >= n {
                            return Err(fail(format!(
                                "edge ({u}, {v}) is out of range for {n} nodes"
                            )));
                        }
                        graph.add_edge(u, v).map_err(|e| fail(e.to_string()))?;
                    }
                    graph
                }
                (None, None) => {
                    if self.edges.is_empty() {
                        return Err(whole(
                            "a scenario needs a topology (a topology directive, nodes + edge \
                             lines, or waypoint mobility)"
                                .into(),
                        ));
                    }
                    return Err(at("nodes", "edge directives need a nodes directive".into()));
                }
            }
        };
        let n = graph.node_count();

        // 2. Budget and cast placement against the topology.
        if self.t >= n {
            return Err(at("t", format!("t = {} needs fewer than the n = {n} nodes", self.t)));
        }
        if self.cast.is_some() && !self.byzantine.is_empty() {
            return Err(at("cast", "cast and byz are mutually exclusive".into()));
        }
        let mut seen_nodes = BTreeSet::new();
        for (i, &(node, _)) in self.byzantine.iter().enumerate() {
            let line = self.src.byz_lines.get(i).copied().unwrap_or(0);
            let fail = |reason: String| ScenarioError { file: self.src.file.clone(), line, reason };
            if node >= n {
                return Err(fail(format!("byzantine node {node} is out of range for {n} nodes")));
            }
            if !seen_nodes.insert(node) {
                return Err(fail(format!("byzantine node {node} is cast twice")));
            }
        }
        let cast = match &self.cast {
            Some(cast) => cast.cast(&graph, self.t, self.seed),
            None => self.byzantine.clone(),
        };

        // 3. Schedule — generated by mobility, read from @file, or inline.
        // Cross-field (Invalid) errors anchor at the directive that
        // introduced the schedule: the mobility line, the @file line, or
        // the first inline schedule line.
        let schedule_anchor = |reason: String| ScenarioError {
            file: self.src.file.clone(),
            line: self
                .src
                .line_of
                .get("mobility")
                .or_else(|| self.src.line_of.get("schedule"))
                .copied()
                .or_else(|| self.src.schedule_lines.first().copied())
                .unwrap_or(0),
            reason,
        };
        let schedule = if let Some(schedule) = generated_schedule {
            Some(schedule)
        } else if let Some(mobility) = &self.mobility {
            if self.schedule_file.is_some() || !self.schedule_lines.is_empty() {
                return Err(at(
                    "mobility",
                    "mobility and an explicit schedule are mutually exclusive".into(),
                ));
            }
            let (_, schedule) =
                mobility.generate(Some(&graph), self.seed).map_err(|e| at("mobility", e))?;
            Some(schedule)
        } else if let Some(path) = &self.schedule_file {
            if !self.schedule_lines.is_empty() {
                return Err(at(
                    "schedule",
                    "cannot mix an @file schedule with inline schedule lines".into(),
                ));
            }
            let resolved = self.src.dir.join(path);
            let text = std::fs::read_to_string(&resolved)
                .map_err(|e| at("schedule", format!("cannot read schedule file {path}: {e}")))?;
            // Errors inside the referenced file carry *its* path and
            // lines, not the scenario's.
            Some(TopologySchedule::parse(&text).map_err(|e| match e {
                ScheduleError::Parse { line, reason } => {
                    ScenarioError { file: path.clone(), line, reason }
                }
                other => ScenarioError { file: path.clone(), line: 0, reason: other.to_string() },
            })?)
        } else if !self.schedule_lines.is_empty() {
            // Inline lines concatenate into one script; a parse error's
            // relative line maps back to the absolute scenario line.
            let script = self.schedule_lines.join("\n");
            Some(TopologySchedule::parse(&script).map_err(|e| match e {
                ScheduleError::Parse { line, reason } => ScenarioError {
                    file: self.src.file.clone(),
                    line: self.src.schedule_lines.get(line - 1).copied().unwrap_or(0),
                    reason,
                },
                other => at("schedule", other.to_string()),
            })?)
        } else {
            None
        };
        if let Some(schedule) = &schedule {
            schedule.compile(&graph).map_err(|e| schedule_anchor(e.to_string()))?;
        }

        // 4. Transport × everything-else legality: epochs, runtimes,
        // schedules and sinks are in-process (sync transport) concepts; a
        // fleet node is its own runtime and writes no fleet-wide report.
        if self.transport != TransportKind::Sync {
            let requires_sync: &[(&'static str, bool)] = &[
                ("runtime", self.runtime.is_some()),
                ("epochs", self.epochs != 1),
                ("schedule", self.schedule_file.is_some() || !self.schedule_lines.is_empty()),
                ("mobility", self.mobility.is_some()),
                ("report", self.report.is_some()),
                ("csv", self.csv.is_some()),
                ("profile", self.profile),
            ];
            for &(key, present) in requires_sync {
                if present {
                    return Err(at(
                        key,
                        format!(
                            "{key} requires the sync transport (transport is {})",
                            self.transport.name()
                        ),
                    ));
                }
            }
        }
        if self.sock_dir.is_some() && self.transport != TransportKind::Uds {
            return Err(at("sock-dir", "sock-dir applies to the uds transport only".into()));
        }
        if self.base_port != DEFAULT_BASE_PORT && self.transport != TransportKind::Tcp {
            return Err(at("base-port", "base-port applies to the tcp transport only".into()));
        }
        let socketed = matches!(self.transport, TransportKind::Uds | TransportKind::Tcp);
        if !socketed
            && (self.connect_timeout_ms != DEFAULT_TIMEOUT_MS
                || self.recv_timeout_ms != DEFAULT_TIMEOUT_MS)
        {
            let key = if self.connect_timeout_ms != DEFAULT_TIMEOUT_MS {
                "connect-timeout-ms"
            } else {
                "recv-timeout-ms"
            };
            return Err(at(key, format!("{key} applies to socket transports only")));
        }

        Ok(CompiledScenario {
            name: self.name.clone(),
            graph,
            t: self.t,
            seed: self.seed,
            cast,
            epochs: self.epochs,
            runtime: self.runtime.unwrap_or_default(),
            schedule,
            transport: self.transport,
            sock_dir: self.sock_dir.clone(),
            base_port: self.base_port,
            connect_timeout_ms: self.connect_timeout_ms,
            recv_timeout_ms: self.recv_timeout_ms,
            report: self.report.clone(),
            csv: self.csv.clone(),
            profile: self.profile,
        })
    }
}

/// A validated, frozen execution plan: the topology is materialized, the
/// cast is placed, the schedule is proven consistent with the base graph,
/// and the transport is legal for every requested knob. Everything a
/// runner needs, nothing left to re-derive — the CLI's `run` command and
/// each fleet node's `node --scenario` both start from here, so every
/// process of a fleet shares identical seeded state by construction.
#[derive(Debug, Clone)]
pub struct CompiledScenario {
    /// Human-readable label.
    pub name: String,
    /// The materialized base topology.
    pub graph: Graph,
    /// Byzantine budget.
    pub t: usize,
    /// Seed for keys (and everything derived during compilation).
    pub seed: u64,
    /// The placed Byzantine cast.
    pub cast: Vec<(NodeId, ByzantineBehavior)>,
    /// Monitoring epochs.
    pub epochs: usize,
    /// Resolved runtime (defaults to sync).
    pub runtime: Runtime,
    /// Validated schedule, if any.
    pub schedule: Option<TopologySchedule>,
    /// Execution transport.
    pub transport: TransportKind,
    /// UDS socket directory override.
    pub sock_dir: Option<String>,
    /// TCP base port.
    pub base_port: u16,
    /// Socket connect timeout.
    pub connect_timeout_ms: u64,
    /// Socket receive timeout.
    pub recv_timeout_ms: u64,
    /// JSON report sink.
    pub report: Option<String>,
    /// CSV decisions sink.
    pub csv: Option<String>,
    /// Per-phase profiling.
    pub profile: bool,
}

impl CompiledScenario {
    /// Lowers onto the protocol layer's [`Scenario`]: topology, `t`, key
    /// seed and the placed cast. This is the exact value a hand-written
    /// harness would build, which is what makes scenario-file runs
    /// bit-identical to hand-built ones — and what every fleet node hands
    /// to `run_scenario_node`.
    pub fn scenario(&self) -> Scenario {
        let mut scenario = Scenario::new(self.graph.clone(), self.t).with_key_seed(self.seed);
        for (node, behavior) in &self.cast {
            scenario = scenario.with_byzantine(*node, behavior.clone());
        }
        scenario
    }

    /// Runs the plan in-process and returns the [`RunReport`] — the sync
    /// transport's execution path, lowering every scenario key onto its
    /// `Simulation` builder knob (runtime, epochs, schedule, profile).
    pub fn run_report(&self) -> RunReport {
        let scenario = self.scenario();
        let mut sim = scenario.sim().runtime(self.runtime).epochs(self.epochs);
        if let Some(schedule) = &self.schedule {
            sim = sim.schedule(schedule.clone());
        }
        if self.profile {
            sim = sim.profile();
        }
        sim.run()
    }

    /// Runs the plan over in-process loopback channels behind the real
    /// wire codec — the `transport loopback` execution path. Returns each
    /// node's decision plus the transport metrics and fleet delivery log.
    ///
    /// # Errors
    ///
    /// The first transport or codec failure.
    pub fn run_loopback(
        &self,
    ) -> Result<(BTreeMap<NodeId, Decision>, Metrics, DeliveryLog), TransportError> {
        let scenario = self.scenario();
        let participants = scenario.build_participants();
        let (participants, metrics, log) = run_over_loopback(
            participants,
            scenario.topology(),
            scenario.config().effective_rounds(),
        )?;
        let mut oracle = ConnectivityOracle::new();
        let (decisions, _) = scenario.collect_decisions(&participants, &mut oracle, 1);
        Ok((decisions, metrics, log))
    }
}

/// Parses one `<node>:<behavior>` cast entry — the single grammar behind
/// scenario `byz` lines and the CLI's `--byz` flag: `silent` | `crash@R`
/// | `two-faced@a-b` | `hide@a-b`.
///
/// # Errors
///
/// Returns a message naming the malformed part.
pub fn parse_behavior(spec: &str) -> Result<(NodeId, ByzantineBehavior), String> {
    let (node, behavior) = spec
        .split_once(':')
        .ok_or_else(|| format!("bad byz spec {spec}: expected <node>:<behavior>"))?;
    let node: NodeId = node.parse().map_err(|_| format!("bad node id in {spec}"))?;
    let behavior = match behavior.split_once('@') {
        None if behavior == "silent" => ByzantineBehavior::Silent,
        Some(("crash", round)) => ByzantineBehavior::CrashAfter {
            round: round.parse().map_err(|_| format!("bad round in {spec}"))?,
        },
        Some(("two-faced", range)) => {
            ByzantineBehavior::TwoFaced { silent_toward: parse_node_range(range, spec)? }
        }
        Some(("hide", range)) => {
            ByzantineBehavior::HideEdges { toward: parse_node_range(range, spec)? }
        }
        _ => return Err(format!("unknown behavior in {spec}")),
    };
    Ok((node, behavior))
}

fn parse_node_range(range: &str, spec: &str) -> Result<BTreeSet<NodeId>, String> {
    let (a, b) =
        range.split_once('-').ok_or_else(|| format!("bad range in {spec}: expected <a>-<b>"))?;
    let a: NodeId = a.parse().map_err(|_| format!("bad range start in {spec}"))?;
    let b: NodeId = b.parse().map_err(|_| format!("bad range end in {spec}"))?;
    if a > b {
        return Err(format!("empty range in {spec}"));
    }
    Ok((a..=b).collect())
}

/// The inverse of [`parse_behavior`]'s behavior half, for
/// [`ScenarioSpec::to_text`].
///
/// # Panics
///
/// Panics on behaviors the text grammar cannot express (non-contiguous
/// node sets, or variants beyond silent/crash/two-faced/hide).
fn behavior_text(behavior: &ByzantineBehavior) -> String {
    let range_text = |set: &BTreeSet<NodeId>| {
        let (first, last) =
            (*set.first().expect("non-empty range"), *set.last().expect("non-empty range"));
        assert_eq!(set.len(), last - first + 1, "only contiguous node ranges have a text form");
        format!("{first}-{last}")
    };
    match behavior {
        ByzantineBehavior::Silent => "silent".into(),
        ByzantineBehavior::CrashAfter { round } => format!("crash@{round}"),
        ByzantineBehavior::TwoFaced { silent_toward } => {
            format!("two-faced@{}", range_text(silent_toward))
        }
        ByzantineBehavior::HideEdges { toward } => format!("hide@{}", range_text(toward)),
        other => panic!("behavior {other:?} has no scenario-text form; express it as a cast"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nectar_protocol::Verdict;

    const FULL_DOC: &str = "\
# everything in one file
name full demo
topology harary-k2 12
t 2
seed 9
cast silent-cut
epochs 2
runtime parallel:2
schedule drop 2 0 1   # drop a ring edge
schedule heal 3 0 1
report out/full.json
csv out/full.csv
profile
";

    #[test]
    fn parses_every_directive() {
        let spec = ScenarioSpec::parse(FULL_DOC, "full.scn").unwrap();
        assert_eq!(spec.name, "full demo");
        assert_eq!(spec.family, Some((FamilySpec::Harary { k: 2 }, 12)));
        assert_eq!((spec.t, spec.seed, spec.epochs), (2, 9, 2));
        assert_eq!(spec.cast, Some(CastSpec::SilentCut));
        assert_eq!(spec.runtime, Some(Runtime::Parallel { workers: 2 }));
        assert_eq!(spec.schedule_lines, vec!["drop 2 0 1", "heal 3 0 1"]);
        assert_eq!(spec.report.as_deref(), Some("out/full.json"));
        assert_eq!(spec.csv.as_deref(), Some("out/full.csv"));
        assert!(spec.profile);
    }

    #[test]
    fn text_round_trips() {
        let spec = ScenarioSpec::parse(FULL_DOC, "full.scn").unwrap();
        let reparsed = ScenarioSpec::parse(&spec.to_text(), "").unwrap();
        assert_eq!(reparsed, spec);
        // Explicit topologies and byz casts round-trip too.
        let doc = "nodes 4\nedge 0 1\nedge 1 2\nedge 2 3\nedge 3 0\nt 1\nbyz 1:two-faced@2-3\n";
        let spec = ScenarioSpec::parse(doc, "").unwrap();
        assert_eq!(ScenarioSpec::parse(&spec.to_text(), "").unwrap(), spec);
    }

    #[test]
    fn runtime_errors_carry_file_and_line() {
        let doc = "topology harary-k2 8\nt 1\nruntime warp\n";
        let err = ScenarioSpec::parse(doc, "demo.scn").unwrap_err();
        assert_eq!(
            err.to_string(),
            "demo.scn:3: unknown runtime warp; expected sync, threaded, event, parallel \
             or parallel:<workers>"
        );
        let doc = "topology harary-k2 8\nruntime parallel:x\n";
        let err = ScenarioSpec::parse(doc, "demo.scn").unwrap_err();
        assert_eq!(err.to_string(), "demo.scn:2: bad parallel worker count \"x\"");
    }

    #[test]
    fn schedule_errors_carry_the_inline_line() {
        // Line 4 is the second schedule directive; its parse error must
        // point there, not at relative line 2 of the joined script.
        let doc = "topology harary-k2 8\nt 1\nschedule drop 2 0 1\nschedule drop x 0 1\n";
        let err = ScenarioSpec::parse(doc, "demo.scn").unwrap().compile().unwrap_err();
        assert_eq!(err.line, 4);
        assert_eq!(err.file, "demo.scn");
        // Compile-stage (Invalid) errors anchor at the schedule block.
        let doc = "topology harary-k2 8\nt 1\nschedule drop 2 0 4\n";
        let err = ScenarioSpec::parse(doc, "demo.scn").unwrap().compile().unwrap_err();
        assert_eq!(err.file, "demo.scn");
        assert_eq!(err.line, 3);
        assert!(err.reason.contains("not a base-graph edge"), "{}", err.reason);
    }

    #[test]
    fn malformed_documents_error_with_context() {
        for (doc, needle) in [
            ("warp 3\n", "unknown directive"),
            ("t 1\nt 2\n", "duplicate t directive (first at line 1)"),
            ("epochs 0\n", "epochs must be at least 1"),
            ("topology harary-k2 8\nnodes 8\n", "conflicts"),
            ("nodes 8\ntopology harary-k2 8\n", "conflicts"),
            ("cast silent-cut\nbyz 0:silent\n", "mutually exclusive"),
            ("byz 0:silent\ncast silent-cut\n", "mutually exclusive"),
            ("schedule drop 2 0 1\nmobility churn\n", "mutually exclusive"),
            ("mobility churn\nschedule drop 2 0 1\n", "mutually exclusive"),
            ("schedule @a.sched\nschedule drop 2 0 1\n", "cannot mix"),
            ("t\n", "takes 1 argument"),
            ("profile now\n", "takes 0 argument"),
            ("cast nonsense\n", "unknown cast"),
            ("topology klein-bottle 8\n", "unknown family"),
            ("transport warp\n", "unknown transport"),
            ("byz 0:explode\n", "unknown behavior"),
            ("base-port 99999\n", "bad base port"),
        ] {
            let err = ScenarioSpec::parse(doc, "bad.scn").unwrap_err();
            assert!(err.reason.contains(needle), "{doc:?} gave {err}");
            assert!(err.line >= 1, "{doc:?} lost its line");
        }
    }

    #[test]
    fn compile_checks_cross_field_constraints() {
        for (doc, needle) in [
            ("t 1\n", "needs a topology"),
            ("edge 0 1\n", "need a nodes directive"),
            ("nodes 4\nedge 0 9\n", "out of range"),
            ("nodes 4\nedge 0 0\n", "loop"),
            ("topology harary-k2 8\nt 8\n", "fewer than"),
            ("topology harary-k2 8\nbyz 9:silent\n", "out of range"),
            ("topology harary-k2 8\nbyz 1:silent\nbyz 1:crash@2\n", "cast twice"),
            ("topology harary-k2 8\nschedule @missing.sched\n", "cannot read schedule file"),
            ("mobility waypoint\ntopology harary-k2 8\n", "generates its own topology"),
            ("topology harary-k2 8\nmobility split-heal at=3 heal=3\n", "at < heal"),
            ("topology harary-k2 8\ntransport uds\nepochs 2\n", "requires the sync transport"),
            ("topology harary-k2 8\ntransport uds\nruntime event\n", "requires the sync transport"),
            ("topology harary-k2 8\ntransport loopback\nreport out.json\n", "requires the sync"),
            ("topology harary-k2 8\ntransport tcp\nsock-dir /tmp/x\n", "uds transport only"),
            ("topology harary-k2 8\ntransport uds\nbase-port 5000\n", "tcp transport only"),
            ("topology harary-k2 8\nconnect-timeout-ms 5\n", "socket transports only"),
        ] {
            let err = ScenarioSpec::parse(doc, "bad.scn").unwrap().compile().unwrap_err();
            assert!(err.reason.contains(needle), "{doc:?} gave {err}");
        }
    }

    #[test]
    fn compiled_scenario_runs_and_matches_a_hand_built_one() {
        let doc = "topology harary-k2 10\nt 2\ncast silent-cut\nseed 5\n";
        let compiled = ScenarioSpec::parse(doc, "").unwrap().compile().unwrap();
        let report = compiled.run_report();
        // κ = 2 ≤ t on a Harary H_{2,n} ring: PARTITIONABLE everywhere.
        assert_eq!(report.unanimous_verdict(), Some(Verdict::Partitionable));
        // The lowering is the hand-written harness, value for value.
        let family = FamilySpec::Harary { k: 2 };
        let graph = family.build(10, 5).unwrap();
        let mut hand = Scenario::new(graph, 2).with_key_seed(5);
        for (node, behavior) in CastSpec::SilentCut.cast(&compiled.graph, 2, 5) {
            hand = hand.with_byzantine(node, behavior);
        }
        assert_eq!(hand.sim().run(), report);
    }

    #[test]
    fn waypoint_scenarios_generate_topology_and_schedule() {
        let doc = "mobility waypoint nodes=24 radius=2000 speed=600 density=6000 rounds=6\n\
                   t 2\nseed 3\n";
        let compiled = ScenarioSpec::parse(doc, "").unwrap().compile().unwrap();
        assert_eq!(compiled.graph.node_count(), 24);
        let schedule = compiled.schedule.as_ref().expect("waypoint emits a schedule");
        assert!(schedule.compile(&compiled.graph).is_ok());
        let report = compiled.run_report();
        assert_eq!(report.n, 24);
    }

    #[test]
    fn loopback_runs_deliver_per_node_decisions() {
        let doc = "topology harary-k2 6\nt 2\ntransport loopback\n";
        let compiled = ScenarioSpec::parse(doc, "").unwrap().compile().unwrap();
        let (decisions, _, _) = compiled.run_loopback().unwrap();
        assert_eq!(decisions.len(), 6);
        // Same decisions as the in-process sync run.
        let sync = compiled.run_report();
        assert_eq!(&decisions, sync.decisions());
    }

    #[test]
    fn reduced_clamps_to_ci_size() {
        let doc = "topology harary-k4 500\nt 3\nepochs 5\nruntime event\n\
                   report out.json\nprofile\n";
        let reduced = ScenarioSpec::parse(doc, "").unwrap().reduced(24);
        assert_eq!(reduced.family, Some((FamilySpec::Harary { k: 4 }, 24)));
        assert_eq!(reduced.epochs, 2);
        assert_eq!(reduced.runtime, None);
        assert_eq!(reduced.report, None);
        assert!(!reduced.profile);
        reduced.compile().unwrap().run_report();
    }

    #[test]
    fn behavior_grammar_round_trips() {
        for text in ["silent", "crash@3", "two-faced@2-4", "hide@1-1"] {
            let (node, behavior) = parse_behavior(&format!("5:{text}")).unwrap();
            assert_eq!(node, 5);
            assert_eq!(behavior_text(&behavior), text);
        }
        assert!(parse_behavior("5").is_err());
        assert!(parse_behavior("x:silent").is_err());
        assert!(parse_behavior("5:crash@x").is_err());
        assert!(parse_behavior("5:two-faced@4-2").is_err());
        assert!(parse_behavior("5:hide@2").is_err());
    }

    #[test]
    fn scenario_error_display_degrades_gracefully() {
        let full = ScenarioError { file: "a.scn".into(), line: 3, reason: "boom".into() };
        assert_eq!(full.to_string(), "a.scn:3: boom");
        let no_line = ScenarioError { file: "a.scn".into(), line: 0, reason: "boom".into() };
        assert_eq!(no_line.to_string(), "a.scn: boom");
        let no_file = ScenarioError { file: String::new(), line: 3, reason: "boom".into() };
        assert_eq!(no_file.to_string(), "line 3: boom");
        let bare = ScenarioError { file: String::new(), line: 0, reason: "boom".into() };
        assert_eq!(bare.to_string(), "boom");
    }
}
