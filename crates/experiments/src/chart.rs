//! Plain-text line charts for rendering [`Table`]s in a terminal.
//!
//! The figure binaries print these under the Markdown tables so the curve
//! shapes (the thing the reproduction is judged on) are visible without
//! leaving the shell.

use crate::table::Table;

/// Renders an ASCII chart of the table's series, `width × height`
/// characters of plot area, one marker per series.
///
/// Markers cycle through `*`, `o`, `x`, `+`, `#`, `@`. Axes are linear; the
/// y range is padded to start at zero when all values are non-negative.
pub fn render(table: &Table, width: usize, height: usize) -> String {
    const MARKERS: [char; 6] = ['*', 'o', 'x', '+', '#', '@'];
    let width = width.max(16);
    let height = height.max(4);
    let points: Vec<(usize, f64, f64)> = table
        .series
        .iter()
        .enumerate()
        .flat_map(|(si, s)| s.points.iter().map(move |p| (si, p.x, p.mean)))
        .collect();
    if points.is_empty() {
        return format!("{} (no data)\n", table.title);
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(_, x, y) in &points {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    if y_min >= 0.0 {
        y_min = 0.0;
    }
    let x_span = (x_max - x_min).max(f64::MIN_POSITIVE);
    let y_span = (y_max - y_min).max(f64::MIN_POSITIVE);

    let mut canvas = vec![vec![' '; width]; height];
    for &(si, x, y) in &points {
        let col = (((x - x_min) / x_span) * (width - 1) as f64).round() as usize;
        let row = (((y - y_min) / y_span) * (height - 1) as f64).round() as usize;
        let row = height - 1 - row;
        canvas[row][col] = MARKERS[si % MARKERS.len()];
    }

    let mut out = String::new();
    out.push_str(&format!("{}\n", table.title));
    for (i, row) in canvas.iter().enumerate() {
        let y_label = if i == 0 {
            format!("{y_max:>10.1}")
        } else if i == height - 1 {
            format!("{y_min:>10.1}")
        } else {
            " ".repeat(10)
        };
        out.push_str(&format!("{y_label} |{}|\n", row.iter().collect::<String>()));
    }
    out.push_str(&format!("{} +{}+\n", " ".repeat(10), "-".repeat(width)));
    out.push_str(&format!(
        "{}  {:<width$.1}{:>rest$.1}\n",
        " ".repeat(10),
        x_min,
        x_max,
        width = width / 2,
        rest = width - width / 2
    ));
    for (si, s) in table.series.iter().enumerate() {
        out.push_str(&format!("{} {}  {}\n", " ".repeat(10), MARKERS[si % MARKERS.len()], s.label));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Point, Series};

    fn table() -> Table {
        Table {
            id: "t".into(),
            title: "Chart".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![
                Series {
                    label: "rising".into(),
                    points: (0..5)
                        .map(|i| Point { x: i as f64, mean: i as f64 * 2.0, ci95: 0.0 })
                        .collect(),
                },
                Series {
                    label: "flat".into(),
                    points: (0..5).map(|i| Point { x: i as f64, mean: 1.0, ci95: 0.0 }).collect(),
                },
            ],
        }
    }

    #[test]
    fn renders_title_legend_and_markers() {
        let chart = render(&table(), 40, 10);
        assert!(chart.contains("Chart"));
        assert!(chart.contains("*  rising"));
        assert!(chart.contains("o  flat"));
        assert!(chart.contains('*'));
        assert!(chart.contains('o'));
    }

    #[test]
    fn max_value_sits_on_the_top_row() {
        let chart = render(&table(), 40, 10);
        let plot_rows: Vec<&str> = chart.lines().filter(|l| l.contains('|')).collect();
        assert!(plot_rows.first().unwrap().contains('*'), "top row must hold the max point");
        assert!(plot_rows.first().unwrap().contains("8.0"));
    }

    #[test]
    fn empty_table_renders_placeholder() {
        let empty = Table {
            id: "e".into(),
            title: "E".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![],
        };
        assert!(render(&empty, 40, 10).contains("no data"));
    }

    #[test]
    fn degenerate_single_point_does_not_panic() {
        let single = Table {
            id: "s".into(),
            title: "S".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![Series {
                label: "p".into(),
                points: vec![Point { x: 1.0, mean: 1.0, ci95: 0.0 }],
            }],
        };
        let chart = render(&single, 20, 5);
        assert!(chart.contains('*'));
    }
}
