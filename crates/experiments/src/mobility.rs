//! Mobility generators: dynamic-network scenarios as *emitted*
//! [`TopologySchedule`]s.
//!
//! The scenario layer (`crate::scenario`) makes large dynamic networks
//! expressible in one config line because everything here is a **pure
//! seeded function**: the same `(spec, seed)` always yields the same base
//! graph and the same schedule, on every machine and every runtime — the
//! same determinism leg the multi-process fleet stands on (topologies and
//! keys as pure functions of the seed, `docs/DETERMINISM.md` §8). Three
//! generator families:
//!
//! * [`waypoint`] — random-waypoint motion over a geometric graph (the
//!   drone-swarm regime of §V-D, set moving): nodes walk toward random
//!   waypoints, the radio graph at each round is the in-range pairs, and
//!   the emitted schedule toggles exactly the edges whose range membership
//!   changes between rounds. The *base* graph is the union of every
//!   round's radio graph, so the schedule only ever touches base edges —
//!   the invariant [`TopologySchedule::compile`] enforces.
//! * [`rolling_churn`] — a staggered drop/heal wave over the base graph's
//!   edge list (shuffled by the seed), the "always something down, never
//!   everything" regime.
//! * [`split_heal`] — the canonical two-cluster experiment: partition the
//!   first half of the node ids away at one round, heal the cut at a
//!   later one.
//!
//! Every generator returns a schedule that compiles against its base
//! graph (pinned by `tests/scenario_conformance.rs`).

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

use nectar_graph::Graph;
use nectar_net::{NodeId, TopologySchedule};

/// A declarative mobility preset, as written in a scenario file
/// (`mobility waypoint nodes=100 ...`). Parameters that are lengths or
/// speeds are in **milli-units** (integers), so scenario text round-trips
/// exactly — no float formatting in the config format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MobilitySpec {
    /// Random-waypoint motion over a geometric graph. Supplies its own
    /// topology (a scenario using it must not also declare one).
    Waypoint {
        /// Number of nodes.
        nodes: usize,
        /// Radio range, milli-units.
        radius_milli: u64,
        /// Distance walked per round, milli-units.
        speed_milli: u64,
        /// Target mean degree of the round-1 radio graph, milli-nodes
        /// (6000 = 6 neighbors); sizes the arena.
        density_milli: u64,
        /// Rounds of simulated motion; the topology freezes afterwards.
        rounds: usize,
    },
    /// Staggered drop/heal wave over the scenario topology's edges.
    Churn {
        /// Rounds between consecutive edges starting their outage.
        period: usize,
        /// Rounds each edge stays down.
        down: usize,
        /// Last round at which a new outage may start.
        rounds: usize,
    },
    /// Partition the first ⌈n/2⌉ node ids away, then heal the cut.
    SplitHeal {
        /// Round the partition opens (before that round's sends).
        split_round: usize,
        /// Round the partition heals; must exceed `split_round`.
        heal_round: usize,
    },
}

impl MobilitySpec {
    /// Parses the argument words of a `mobility` directive (everything
    /// after the keyword): a preset name followed by `key=value` pairs.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending word on malformed input.
    pub fn parse(words: &[&str]) -> Result<MobilitySpec, String> {
        let (preset, rest) = words.split_first().ok_or("mobility needs a preset name")?;
        let mut spec = match *preset {
            "waypoint" => MobilitySpec::Waypoint {
                nodes: 100,
                radius_milli: 2000,
                speed_milli: 400,
                density_milli: 6000,
                rounds: 8,
            },
            "churn" => MobilitySpec::Churn { period: 1, down: 2, rounds: 8 },
            "split-heal" => MobilitySpec::SplitHeal { split_round: 1, heal_round: 3 },
            other => {
                return Err(format!(
                    "unknown mobility preset {other}; expected waypoint, churn or split-heal"
                ));
            }
        };
        for word in rest {
            let (key, value) = word
                .split_once('=')
                .ok_or_else(|| format!("bad mobility parameter {word}: expected key=value"))?;
            let num = |what: &str| {
                value.parse::<u64>().map_err(|_| format!("bad mobility {what} {value}"))
            };
            match (&mut spec, key) {
                (MobilitySpec::Waypoint { nodes, .. }, "nodes") => *nodes = num("nodes")? as usize,
                (MobilitySpec::Waypoint { radius_milli, .. }, "radius") => {
                    *radius_milli = num("radius")?;
                }
                (MobilitySpec::Waypoint { speed_milli, .. }, "speed") => {
                    *speed_milli = num("speed")?;
                }
                (MobilitySpec::Waypoint { density_milli, .. }, "density") => {
                    *density_milli = num("density")?;
                }
                (MobilitySpec::Waypoint { rounds, .. }, "rounds")
                | (MobilitySpec::Churn { rounds, .. }, "rounds") => {
                    *rounds = num("rounds")? as usize
                }
                (MobilitySpec::Churn { period, .. }, "period") => *period = num("period")? as usize,
                (MobilitySpec::Churn { down, .. }, "down") => *down = num("down")? as usize,
                (MobilitySpec::SplitHeal { split_round, .. }, "at") => {
                    *split_round = num("at")? as usize;
                }
                (MobilitySpec::SplitHeal { heal_round, .. }, "heal") => {
                    *heal_round = num("heal")? as usize;
                }
                _ => return Err(format!("unknown mobility parameter {key} for preset {preset}")),
            }
        }
        Ok(spec)
    }

    /// The directive text after the `mobility` keyword — canonical form,
    /// round-tripping through [`MobilitySpec::parse`].
    pub fn to_directive(&self) -> String {
        match self {
            MobilitySpec::Waypoint { nodes, radius_milli, speed_milli, density_milli, rounds } => {
                format!(
                    "waypoint nodes={nodes} radius={radius_milli} speed={speed_milli} \
                     density={density_milli} rounds={rounds}"
                )
            }
            MobilitySpec::Churn { period, down, rounds } => {
                format!("churn period={period} down={down} rounds={rounds}")
            }
            MobilitySpec::SplitHeal { split_round, heal_round } => {
                format!("split-heal at={split_round} heal={heal_round}")
            }
        }
    }

    /// Whether this preset generates its own base topology (waypoint) or
    /// derives a schedule from the scenario's declared one.
    pub fn supplies_topology(&self) -> bool {
        matches!(self, MobilitySpec::Waypoint { .. })
    }

    /// Generates the schedule (and, for waypoint, the base graph) for
    /// this preset. `base` must be `None` exactly when
    /// [`supplies_topology`](Self::supplies_topology) is true.
    ///
    /// # Errors
    ///
    /// Returns a message on out-of-domain parameters.
    ///
    /// # Panics
    ///
    /// Panics if `base` disagrees with `supplies_topology`.
    pub fn generate(
        &self,
        base: Option<&Graph>,
        seed: u64,
    ) -> Result<(Option<Graph>, TopologySchedule), String> {
        match self {
            MobilitySpec::Waypoint { nodes, radius_milli, speed_milli, density_milli, rounds } => {
                assert!(base.is_none(), "waypoint supplies its own topology");
                let (graph, schedule) = waypoint(
                    *nodes,
                    *radius_milli as f64 / 1000.0,
                    *speed_milli as f64 / 1000.0,
                    *density_milli as f64 / 1000.0,
                    *rounds,
                    seed,
                )?;
                Ok((Some(graph), schedule))
            }
            MobilitySpec::Churn { period, down, rounds } => {
                let base = base.expect("churn derives its schedule from the scenario topology");
                Ok((None, rolling_churn(base, *period, *down, *rounds, seed)?))
            }
            MobilitySpec::SplitHeal { split_round, heal_round } => {
                let base =
                    base.expect("split-heal derives its schedule from the scenario topology");
                Ok((None, split_heal(base, *split_round, *heal_round)?))
            }
        }
    }
}

/// Random-waypoint mobility: `n` nodes placed uniformly in a square arena
/// sized for a mean degree of `density`, each walking `speed` units per
/// round toward a uniformly drawn waypoint (redrawn on arrival). Returns
/// the **base graph** — the union of every round's in-range pairs — and
/// the schedule that replays the motion on it: edges out of range at
/// round 1 open dropped, and every later range-membership flip becomes a
/// `drop`/`heal` at its round. After `rounds` the topology freezes in its
/// last state.
///
/// Pure in `(n, radius, speed, density, rounds, seed)`; the emitted
/// schedule always compiles against the returned base graph.
///
/// # Errors
///
/// Returns a message when `n < 2`, `rounds == 0`, or `radius`/`density`
/// is not positive.
pub fn waypoint(
    n: usize,
    radius: f64,
    speed: f64,
    density: f64,
    rounds: usize,
    seed: u64,
) -> Result<(Graph, TopologySchedule), String> {
    if n < 2 {
        return Err(format!("waypoint needs at least 2 nodes, got {n}"));
    }
    if rounds == 0 {
        return Err("waypoint needs at least 1 round".into());
    }
    if !(radius > 0.0) || !(density > 0.0) || !(speed >= 0.0) {
        return Err(format!(
            "waypoint parameters must be positive (radius {radius}, density {density}, \
             speed {speed})"
        ));
    }
    // Mean degree ≈ n·πr²/side² = density  ⇒  side = r·√(πn/density).
    let side = radius * (std::f64::consts::PI * n as f64 / density).sqrt();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut positions: Vec<(f64, f64)> =
        (0..n).map(|_| (rng.random::<f64>() * side, rng.random::<f64>() * side)).collect();
    let mut targets: Vec<(f64, f64)> =
        (0..n).map(|_| (rng.random::<f64>() * side, rng.random::<f64>() * side)).collect();

    let mut per_round: Vec<BTreeSet<(NodeId, NodeId)>> = Vec::with_capacity(rounds);
    for round in 0..rounds {
        per_round.push(in_range_pairs(&positions, radius, side));
        if round + 1 == rounds {
            break;
        }
        // Walk every node toward its waypoint, in node-id order so the
        // RNG draws for redrawn targets stay a pure function of the seed.
        for i in 0..n {
            let (px, py) = positions[i];
            let (tx, ty) = targets[i];
            let (dx, dy) = (tx - px, ty - py);
            let dist = (dx * dx + dy * dy).sqrt();
            if dist <= speed {
                positions[i] = (tx, ty);
                targets[i] = (rng.random::<f64>() * side, rng.random::<f64>() * side);
            } else {
                positions[i] = (px + dx / dist * speed, py + dy / dist * speed);
            }
        }
    }

    let mut base_edges: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
    for pairs in &per_round {
        base_edges.extend(pairs.iter().copied());
    }
    let mut graph = Graph::empty(n);
    for &(u, v) in &base_edges {
        graph.add_edge(u, v).expect("in-range pairs are in range");
    }
    let mut schedule = TopologySchedule::new().with_seed(seed);
    for &(u, v) in &base_edges {
        // A base edge starts up; replay its membership flips round by
        // round (round 1 drops model edges not yet in range).
        let mut up = true;
        for (idx, pairs) in per_round.iter().enumerate() {
            let round = idx + 1;
            let present = pairs.contains(&(u, v));
            if present != up {
                schedule = if present {
                    schedule.heal_edge(round, u, v)
                } else {
                    schedule.drop_edge(round, u, v)
                };
                up = present;
            }
        }
    }
    Ok((graph, schedule))
}

/// The in-range pairs of a placement, via grid binning (cells of side
/// `radius`, 9-cell neighborhoods) so large fleets stay `O(n + m)` per
/// round instead of `O(n²)`.
fn in_range_pairs(positions: &[(f64, f64)], radius: f64, side: f64) -> BTreeSet<(NodeId, NodeId)> {
    let cells_per_side = (side / radius).ceil().max(1.0) as i64;
    let cell_of = |x: f64, y: f64| -> (i64, i64) {
        (
            ((x / radius) as i64).clamp(0, cells_per_side - 1),
            ((y / radius) as i64).clamp(0, cells_per_side - 1),
        )
    };
    let mut bins: std::collections::BTreeMap<(i64, i64), Vec<NodeId>> =
        std::collections::BTreeMap::new();
    for (i, &(x, y)) in positions.iter().enumerate() {
        bins.entry(cell_of(x, y)).or_default().push(i);
    }
    let r2 = radius * radius;
    let mut pairs = BTreeSet::new();
    for (&(cx, cy), members) in &bins {
        for dx in -1..=1 {
            for dy in -1..=1 {
                let Some(neighbors) = bins.get(&(cx + dx, cy + dy)) else { continue };
                for &i in members {
                    for &j in neighbors {
                        if i < j {
                            let (xi, yi) = positions[i];
                            let (xj, yj) = positions[j];
                            let (ex, ey) = (xi - xj, yi - yj);
                            if ex * ex + ey * ey <= r2 {
                                pairs.insert((i, j));
                            }
                        }
                    }
                }
            }
        }
    }
    pairs
}

/// Rolling churn over `base`'s edges: the seed shuffles the edge list,
/// then the `k`-th edge goes down at round `1 + k·period` (while that is
/// `≤ rounds`) and comes back `down` rounds later. Always something is
/// down, never everything — the sustained-flap regime.
///
/// # Errors
///
/// Returns a message when `period`/`down`/`rounds` is zero or `base` has
/// no edges.
pub fn rolling_churn(
    base: &Graph,
    period: usize,
    down: usize,
    rounds: usize,
    seed: u64,
) -> Result<TopologySchedule, String> {
    if period == 0 || down == 0 || rounds == 0 {
        return Err(format!(
            "churn parameters must be at least 1 (period {period}, down {down}, rounds {rounds})"
        ));
    }
    let mut edges: Vec<(NodeId, NodeId)> = base.edges().collect();
    if edges.is_empty() {
        return Err("churn needs a topology with at least one edge".into());
    }
    edges.sort_unstable();
    let mut rng = StdRng::seed_from_u64(seed);
    edges.shuffle(&mut rng);
    let mut schedule = TopologySchedule::new().with_seed(seed);
    for (k, &(u, v)) in edges.iter().enumerate() {
        let drop_round = 1 + k * period;
        if drop_round > rounds {
            break;
        }
        schedule = schedule.drop_edge(drop_round, u, v).heal_edge(drop_round + down, u, v);
    }
    Ok(schedule)
}

/// The split-heal preset: every edge crossing the `{0, …, ⌈n/2⌉−1}` /
/// rest split goes down at `split_round` and comes back at `heal_round` —
/// the two-cluster partition-then-merge experiment as a schedule.
///
/// # Errors
///
/// Returns a message when the rounds are out of order, `base` is too
/// small, or no edge crosses the split (the halves were never connected,
/// so there is nothing to cut).
pub fn split_heal(
    base: &Graph,
    split_round: usize,
    heal_round: usize,
) -> Result<TopologySchedule, String> {
    let n = base.node_count();
    if n < 2 {
        return Err(format!("split-heal needs at least 2 nodes, got {n}"));
    }
    if split_round == 0 || heal_round <= split_round {
        return Err(format!(
            "split-heal needs 1 ≤ at < heal, got at={split_round} heal={heal_round}"
        ));
    }
    let half = n.div_ceil(2);
    let crossing = base.edges().any(|(u, v)| (u < half) != (v < half));
    if !crossing {
        return Err("split-heal: no edge crosses the first-half split".into());
    }
    Ok(TopologySchedule::new().partition(split_round, 0..half).heal_partition(heal_round, 0..half))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nectar_graph::gen;

    #[test]
    fn waypoint_is_seeded_deterministic_and_compiles() {
        let (g1, s1) = waypoint(40, 2.0, 0.5, 6.0, 10, 7).unwrap();
        let (g2, s2) = waypoint(40, 2.0, 0.5, 6.0, 10, 7).unwrap();
        assert_eq!(g1, g2);
        assert_eq!(s1.to_script(), s2.to_script());
        // The emitted schedule always validates against its base graph.
        let compiled = s1.compile(&g1).expect("waypoint schedule compiles against its base");
        assert_eq!(compiled.base(), &g1);
        // A different seed moves differently.
        let (g3, s3) = waypoint(40, 2.0, 0.5, 6.0, 10, 8).unwrap();
        assert!(g3 != g1 || s3.to_script() != s1.to_script());
    }

    #[test]
    fn waypoint_motion_actually_toggles_edges() {
        // Fast motion in a small arena must flip at least one edge.
        let (_, schedule) = waypoint(24, 1.5, 1.0, 5.0, 12, 3).unwrap();
        assert!(
            schedule.to_script().lines().any(|l| l.starts_with("drop") || l.starts_with("heal")),
            "no membership flip in 12 rounds of fast motion:\n{}",
            schedule.to_script()
        );
    }

    #[test]
    fn waypoint_round_one_graph_is_the_base_minus_round_one_drops() {
        let (base, schedule) = waypoint(30, 2.0, 0.8, 6.0, 6, 11).unwrap();
        let compiled = schedule.compile(&base).unwrap();
        // Every transition the schedule makes touches a base edge, and
        // the round-1 graph is a subgraph of the base.
        let at_one = compiled.graph_at(1);
        for (u, v) in at_one.edges() {
            assert!(base.has_edge(u, v));
        }
    }

    #[test]
    fn waypoint_rejects_out_of_domain_parameters() {
        assert!(waypoint(1, 2.0, 0.5, 6.0, 4, 0).is_err());
        assert!(waypoint(10, 0.0, 0.5, 6.0, 4, 0).is_err());
        assert!(waypoint(10, 2.0, 0.5, 0.0, 4, 0).is_err());
        assert!(waypoint(10, 2.0, 0.5, 6.0, 0, 0).is_err());
    }

    #[test]
    fn churn_staggers_and_compiles() {
        let g = gen::harary(4, 12).unwrap();
        let s = rolling_churn(&g, 2, 3, 9, 5).unwrap();
        let compiled = s.compile(&g).expect("churn compiles against its base");
        // Outages start at rounds 1, 3, 5, 7, 9 (period 2, rounds 9).
        let rounds: Vec<usize> = compiled.transition_rounds().collect();
        assert_eq!(rounds.first(), Some(&1));
        assert!(rounds.contains(&3));
        // Deterministic in the seed; different seeds shuffle differently.
        assert_eq!(rolling_churn(&g, 2, 3, 9, 5).unwrap().to_script(), s.to_script());
        assert_ne!(rolling_churn(&g, 2, 3, 9, 6).unwrap().to_script(), s.to_script());
        // Domain errors.
        assert!(rolling_churn(&g, 0, 3, 9, 5).is_err());
        assert!(rolling_churn(&Graph::empty(4), 1, 1, 4, 0).is_err());
    }

    #[test]
    fn split_heal_cuts_the_crossing_edges_and_heals_them() {
        let g = gen::harary(4, 16).unwrap();
        let s = split_heal(&g, 2, 5).unwrap();
        let compiled = s.compile(&g).expect("split-heal compiles against its base");
        // At the split round the halves are disconnected...
        let split = compiled.graph_at(2);
        assert!(split.edges().all(|(u, v)| (u < 8) == (v < 8)));
        // ...and the heal restores the base graph exactly.
        assert_eq!(compiled.graph_at(5), g);
        // Domain errors: inverted rounds, disconnected halves.
        assert!(split_heal(&g, 3, 3).is_err());
        assert!(split_heal(&gen::disjoint_cliques(2, 3), 1, 2).is_err());
    }

    #[test]
    fn mobility_spec_parses_and_round_trips() {
        for spec in [
            MobilitySpec::Waypoint {
                nodes: 48,
                radius_milli: 1500,
                speed_milli: 400,
                density_milli: 6000,
                rounds: 12,
            },
            MobilitySpec::Churn { period: 2, down: 3, rounds: 9 },
            MobilitySpec::SplitHeal { split_round: 1, heal_round: 4 },
        ] {
            let text = spec.to_directive();
            let words: Vec<&str> = text.split_whitespace().collect();
            assert_eq!(MobilitySpec::parse(&words).unwrap(), spec, "{text}");
        }
        // Defaults fill unnamed parameters.
        assert_eq!(
            MobilitySpec::parse(&["churn", "down=4"]).unwrap(),
            MobilitySpec::Churn { period: 1, down: 4, rounds: 8 }
        );
        // Malformed input errors.
        assert!(MobilitySpec::parse(&[]).is_err());
        assert!(MobilitySpec::parse(&["teleport"]).is_err());
        assert!(MobilitySpec::parse(&["churn", "period"]).is_err());
        assert!(MobilitySpec::parse(&["churn", "period=x"]).is_err());
        assert!(MobilitySpec::parse(&["churn", "radius=2"]).is_err());
    }

    #[test]
    fn generate_dispatches_per_preset() {
        let g = gen::harary(4, 10).unwrap();
        let spec = MobilitySpec::Churn { period: 1, down: 1, rounds: 4 };
        let (none, schedule) = spec.generate(Some(&g), 3).unwrap();
        assert!(none.is_none());
        assert!(schedule.compile(&g).is_ok());
        let spec = MobilitySpec::Waypoint {
            nodes: 20,
            radius_milli: 2000,
            speed_milli: 500,
            density_milli: 6000,
            rounds: 5,
        };
        let (base, schedule) = spec.generate(None, 3).unwrap();
        let base = base.expect("waypoint supplies a topology");
        assert!(schedule.compile(&base).is_ok());
        assert!(spec.supplies_topology());
    }
}
