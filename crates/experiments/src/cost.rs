//! Network-cost experiments: Figures 3–7 plus the in-text topology
//! comparison of §V-C.
//!
//! Each function reproduces one figure: it sweeps the paper's parameters,
//! runs the protocol(s) on the deterministic engine, measures *data sent per
//! node* from serialized message sizes, and returns a [`Table`] with the
//! same series the paper plots.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use nectar_baselines::{run_mtg, run_mtg_v2, MtgConfig};
use nectar_graph::{gen, ConnectivityOracle, Graph};
use nectar_protocol::{Runtime, Scenario};

use crate::stats::summarize;
use crate::table::{Point, Series, Table};

/// Deterministic per-point seed mixing.
fn mix_seed(base: u64, a: u64, b: u64, c: u64) -> u64 {
    base ^ a.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ b.wrapping_mul(0xbf58_476d_1ce4_e5b9)
        ^ c.wrapping_mul(0x94d0_49bb_1331_11eb)
}

/// Mean kilobytes sent per node by one NECTAR execution on `g`.
fn nectar_kb_per_node(g: &Graph, t: usize) -> f64 {
    let metrics = Scenario::new(g.clone(), t).sim().metrics_only().run().into_metrics();
    metrics.mean_bytes_sent_per_node() / 1024.0
}

/// Debug-build guard for the deterministic cost figures: the §V-C sweeps
/// pick `t = k/2` on families advertised as k-connected, so `κ > t` must
/// hold or the series would silently measure a partitionable regime. The
/// oracle decides the threshold with bounded flows; in release sweeps
/// (`figures` binary, paper presets) the check compiles away.
fn debug_assert_supports_t(oracle: &mut ConnectivityOracle, label: &str, g: &Graph, t: usize) {
    if cfg!(debug_assertions) {
        assert!(
            !oracle.is_t_partitionable(g, t),
            "{label}: generated graph is {t}-partitionable, cost series would be misleading"
        );
    }
}

/// Parameters for Fig. 3 (k-regular graphs).
#[derive(Debug, Clone)]
pub struct Fig3Config {
    /// System sizes to sweep.
    pub ns: Vec<usize>,
    /// Connectivity parameters (one series each).
    pub ks: Vec<usize>,
}

impl Fig3Config {
    /// The paper's grid: n ∈ {20, …, 100}, k ∈ {2, 10, 18, 26, 34}.
    pub fn paper() -> Self {
        Fig3Config { ns: (20..=100).step_by(10).collect(), ks: vec![2, 10, 18, 26, 34] }
    }

    /// A darkly scaled-down grid for tests.
    pub fn quick() -> Self {
        Fig3Config { ns: vec![12, 20], ks: vec![2, 6] }
    }
}

/// **Fig. 3** — data sent per node (KB) vs `n` on k-regular k-connected
/// (Harary) graphs, one series per `k`.
pub fn fig3_kregular_cost(cfg: &Fig3Config) -> Table {
    let mut oracle = ConnectivityOracle::new();
    let series = cfg
        .ks
        .iter()
        .map(|&k| Series {
            label: format!("Nectar: k = {k}"),
            points: cfg
                .ns
                .iter()
                .filter(|&&n| k < n)
                .map(|&n| {
                    let g = gen::harary(k, n).expect("k < n checked");
                    debug_assert_supports_t(&mut oracle, "fig3 harary", &g, k / 2);
                    Point { x: n as f64, mean: nectar_kb_per_node(&g, k / 2), ci95: 0.0 }
                })
                .collect(),
        })
        .collect();
    Table {
        id: "fig3".into(),
        title: "Fig. 3: data sent per node (KB) vs n, k-regular graphs".into(),
        x_label: "Number of Nodes (n)".into(),
        y_label: "Data sent per node (KBytes)".into(),
        series,
    }
}

/// Parameters for the §V-C in-text topology-cost comparison.
#[derive(Debug, Clone)]
pub struct TopologyCostConfig {
    /// System sizes to sweep.
    pub ns: Vec<usize>,
    /// The shared connectivity parameter.
    pub k: usize,
}

impl TopologyCostConfig {
    /// Full-size comparison at k = 10.
    pub fn paper() -> Self {
        TopologyCostConfig { ns: (40..=100).step_by(20).collect(), k: 10 }
    }

    /// Scaled-down comparison for tests.
    pub fn quick() -> Self {
        TopologyCostConfig { ns: vec![20], k: 4 }
    }
}

/// **§V-C in-text** — NECTAR's cost on every §V-B topology family at equal
/// `(n, k)`, to compare against the k-regular baseline (the paper reports
/// ≈2× cheaper LHGs and ≈2.5× cheaper wheels).
pub fn topology_cost(cfg: &TopologyCostConfig) -> Table {
    let k = cfg.k;
    type Builder = fn(usize, usize) -> Option<Graph>;
    let families: Vec<(&str, Builder)> = vec![
        ("k-regular", |k, n| gen::harary(k, n).ok()),
        ("k-pasted-tree", |k, n| gen::k_pasted_tree(k, n).ok()),
        ("k-diamond", |k, n| gen::k_diamond(k, n).ok()),
        ("generalized-wheel", |k, n| gen::generalized_wheel(k, n).ok()),
        ("multipartite-wheel", |k, n| gen::multipartite_wheel(k, n, 2).ok()),
    ];
    let mut oracle = ConnectivityOracle::new();
    let series = families
        .into_iter()
        .map(|(name, build)| Series {
            label: format!("{name}: k = {k}"),
            points: cfg
                .ns
                .iter()
                .filter_map(|&n| {
                    build(k, n).map(|g| {
                        debug_assert_supports_t(&mut oracle, name, &g, k / 2);
                        Point { x: n as f64, mean: nectar_kb_per_node(&g, k / 2), ci95: 0.0 }
                    })
                })
                .collect(),
        })
        .collect();
    Table {
        id: "text_topology_cost".into(),
        title: format!("§V-C: data sent per node (KB) across topology families, k = {k}"),
        x_label: "Number of Nodes (n)".into(),
        y_label: "Data sent per node (KBytes)".into(),
        series,
    }
}

/// Parameters for the drone-scenario cost figures (Figs. 4 and 5).
#[derive(Debug, Clone)]
pub struct DroneCostConfig {
    /// System size (the paper uses 20).
    pub n: usize,
    /// Barycenter distances to sweep.
    pub ds: Vec<f64>,
    /// Communication scopes (one series each).
    pub radii: Vec<f64>,
    /// Repetitions per point (the paper uses 50).
    pub runs: usize,
    /// Base RNG seed.
    pub base_seed: u64,
}

impl DroneCostConfig {
    /// The paper's setting: n = 20, d ∈ {0..6}, radius ∈ {1.2, 1.8, 2.4},
    /// 50 runs.
    pub fn paper() -> Self {
        DroneCostConfig {
            n: 20,
            ds: (0..=6).map(|d| d as f64).collect(),
            radii: vec![1.2, 1.8, 2.4],
            runs: 50,
            base_seed: 2024,
        }
    }

    /// Scaled-down setting for tests.
    pub fn quick() -> Self {
        DroneCostConfig {
            n: 10,
            ds: vec![0.0, 3.0, 6.0],
            radii: vec![1.2, 2.4],
            runs: 3,
            base_seed: 2024,
        }
    }
}

fn drone_graph(n: usize, d: f64, radius: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    gen::drone_scenario(n, d, radius, &mut rng).expect("valid drone parameters").graph
}

/// **Fig. 4** — NECTAR's data sent per node vs barycenter distance `d` in
/// the drone scenario, one series per radius, plus the MtG reference line.
pub fn fig4_drone_nectar(cfg: &DroneCostConfig) -> Table {
    let mut series: Vec<Series> = Vec::new();
    for (ri, &radius) in cfg.radii.iter().enumerate() {
        let points = cfg
            .ds
            .iter()
            .enumerate()
            .map(|(di, &d)| {
                let samples: Vec<f64> = (0..cfg.runs)
                    .map(|run| {
                        let seed = mix_seed(cfg.base_seed, ri as u64, di as u64, run as u64);
                        let g = drone_graph(cfg.n, d, radius, seed);
                        nectar_kb_per_node(&g, 1)
                    })
                    .collect();
                let s = summarize(&samples);
                Point { x: d, mean: s.mean, ci95: s.ci95 }
            })
            .collect();
        series.push(Series { label: format!("Nectar (ours): radius = {radius}"), points });
    }
    series.push(mtg_reference_series(cfg));
    Table {
        id: "fig4".into(),
        title: format!(
            "Fig. 4: NECTAR data sent per node (KB) vs d, drone scenario (n = {})",
            cfg.n
        ),
        x_label: "Distance between barycenters (d)".into(),
        y_label: "Data sent per node (KBytes)".into(),
        series,
    }
}

/// **Fig. 5** — MtGv2's data sent per node vs `d` (same setting as Fig. 4),
/// plus the MtG reference line.
pub fn fig5_drone_mtgv2(cfg: &DroneCostConfig) -> Table {
    let mut series: Vec<Series> = Vec::new();
    for (ri, &radius) in cfg.radii.iter().enumerate() {
        let points = cfg
            .ds
            .iter()
            .enumerate()
            .map(|(di, &d)| {
                let samples: Vec<f64> = (0..cfg.runs)
                    .map(|run| {
                        let seed = mix_seed(cfg.base_seed, ri as u64, di as u64, run as u64);
                        let g = drone_graph(cfg.n, d, radius, seed);
                        run_mtg_v2(&g, &BTreeMap::new(), cfg.n - 1, seed).mean_kb_sent_per_node()
                    })
                    .collect();
                let s = summarize(&samples);
                Point { x: d, mean: s.mean, ci95: s.ci95 }
            })
            .collect();
        series.push(Series { label: format!("MtGv2: radius = {radius}"), points });
    }
    series.push(mtg_reference_series(cfg));
    Table {
        id: "fig5".into(),
        title: format!(
            "Fig. 5: MtGv2 data sent per node (KB) vs d, drone scenario (n = {})",
            cfg.n
        ),
        x_label: "Distance between barycenters (d)".into(),
        y_label: "Data sent per node (KBytes)".into(),
        series,
    }
}

/// The flat MtG reference curve of Figs. 4–7 (its cost depends on neither
/// `d` nor `radius`; we average over all of them per `d`).
fn mtg_reference_series(cfg: &DroneCostConfig) -> Series {
    let points = cfg
        .ds
        .iter()
        .enumerate()
        .map(|(di, &d)| {
            let mut samples = Vec::new();
            for (ri, &radius) in cfg.radii.iter().enumerate() {
                for run in 0..cfg.runs {
                    let seed = mix_seed(cfg.base_seed, ri as u64, di as u64, run as u64);
                    let g = drone_graph(cfg.n, d, radius, seed);
                    samples.push(
                        run_mtg(&g, MtgConfig::new(cfg.n), &BTreeMap::new(), cfg.n - 1)
                            .mean_kb_sent_per_node(),
                    );
                }
            }
            let s = summarize(&samples);
            Point { x: d, mean: s.mean, ci95: s.ci95 }
        })
        .collect();
    Series { label: "MtG".into(), points }
}

/// Parameters for the drone-scenario scaling figures (Figs. 6 and 7).
#[derive(Debug, Clone)]
pub struct DroneScalingConfig {
    /// System sizes to sweep.
    pub ns: Vec<usize>,
    /// Barycenter distances (one series each).
    pub ds: Vec<f64>,
    /// Fixed communication scope (the paper uses 1.2).
    pub radius: f64,
    /// Repetitions per point.
    pub runs: usize,
    /// Base RNG seed.
    pub base_seed: u64,
}

impl DroneScalingConfig {
    /// The paper's setting: n ∈ {10..50}, d ∈ {0, 2.5, 5}, radius = 1.2.
    pub fn paper() -> Self {
        DroneScalingConfig {
            ns: (10..=50).step_by(10).collect(),
            ds: vec![0.0, 2.5, 5.0],
            radius: 1.2,
            runs: 50,
            base_seed: 2025,
        }
    }

    /// Scaled-down setting for tests.
    pub fn quick() -> Self {
        DroneScalingConfig {
            ns: vec![10, 16],
            ds: vec![0.0, 5.0],
            radius: 1.2,
            runs: 3,
            base_seed: 2025,
        }
    }
}

/// Shared sweep for Figs. 6 and 7.
fn drone_scaling(
    cfg: &DroneScalingConfig,
    label: &str,
    cost: impl Fn(&Graph, usize, u64) -> f64,
) -> Vec<Series> {
    let mut series = Vec::new();
    for (di, &d) in cfg.ds.iter().enumerate() {
        let points = cfg
            .ns
            .iter()
            .enumerate()
            .map(|(ni, &n)| {
                let samples: Vec<f64> = (0..cfg.runs)
                    .map(|run| {
                        let seed = mix_seed(cfg.base_seed, di as u64, ni as u64, run as u64);
                        let g = drone_graph(n, d, cfg.radius, seed);
                        cost(&g, n, seed)
                    })
                    .collect();
                let s = summarize(&samples);
                Point { x: n as f64, mean: s.mean, ci95: s.ci95 }
            })
            .collect();
        series.push(Series { label: format!("{label}: d = {d}"), points });
    }
    series
}

/// **Fig. 6** — NECTAR's data sent per node vs `n` in the drone scenario
/// (radius = 1.2), one series per `d`, plus the MtG reference.
pub fn fig6_drone_scaling_nectar(cfg: &DroneScalingConfig) -> Table {
    let mut series = drone_scaling(cfg, "Nectar (ours)", |g, _n, _seed| nectar_kb_per_node(g, 1));
    series.extend(drone_scaling(cfg, "MtG", |g, n, _seed| {
        run_mtg(g, MtgConfig::new(n), &BTreeMap::new(), n - 1).mean_kb_sent_per_node()
    }));
    Table {
        id: "fig6".into(),
        title: format!(
            "Fig. 6: NECTAR data sent per node (KB) vs n, drone scenario (radius = {})",
            cfg.radius
        ),
        x_label: "Number of nodes (n)".into(),
        y_label: "Data sent per node (KBytes)".into(),
        series,
    }
}

/// **Fig. 7** — MtGv2's data sent per node vs `n` (same setting as Fig. 6),
/// plus the MtG reference.
pub fn fig7_drone_scaling_mtgv2(cfg: &DroneScalingConfig) -> Table {
    let mut series = drone_scaling(cfg, "MtGv2", |g, n, seed| {
        run_mtg_v2(g, &BTreeMap::new(), n - 1, seed).mean_kb_sent_per_node()
    });
    series.extend(drone_scaling(cfg, "MtG", |g, n, _seed| {
        run_mtg(g, MtgConfig::new(n), &BTreeMap::new(), n - 1).mean_kb_sent_per_node()
    }));
    Table {
        id: "fig7".into(),
        title: format!(
            "Fig. 7: MtGv2 data sent per node (KB) vs n, drone scenario (radius = {})",
            cfg.radius
        ),
        x_label: "Number of nodes (n)".into(),
        y_label: "Data sent per node (KBytes)".into(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_quick_produces_monotone_series() {
        let t = fig3_kregular_cost(&Fig3Config::quick());
        assert_eq!(t.series.len(), 2);
        for s in &t.series {
            assert!(!s.points.is_empty());
            // Cost grows with n within each k series.
            for w in s.points.windows(2) {
                assert!(w[1].mean > w[0].mean, "series {} not monotone: {w:?}", s.label);
            }
        }
        // Cost grows with k at fixed n.
        let k2_at_20 = t.series[0].points.iter().find(|p| p.x == 20.0).unwrap().mean;
        let k6_at_20 = t.series[1].points.iter().find(|p| p.x == 20.0).unwrap().mean;
        assert!(k6_at_20 > k2_at_20);
    }

    #[test]
    fn topology_cost_quick_covers_all_families() {
        let t = topology_cost(&TopologyCostConfig::quick());
        assert_eq!(t.series.len(), 5);
        for s in &t.series {
            assert!(!s.points.is_empty(), "family {} produced no points", s.label);
            assert!(s.points.iter().all(|p| p.mean > 0.0));
        }
    }

    #[test]
    fn fig4_quick_nectar_cost_drops_with_distance() {
        let t = fig4_drone_nectar(&DroneCostConfig::quick());
        // Last series is the MtG reference.
        assert_eq!(t.series.len(), 3);
        for s in &t.series[..2] {
            let first = s.points.first().unwrap().mean;
            let last = s.points.last().unwrap().mean;
            assert!(last < first, "cost should drop once the graph partitions ({})", s.label);
        }
    }

    #[test]
    fn fig5_quick_mtgv2_is_cheaper_than_nectar() {
        let cfg = DroneCostConfig::quick();
        let nectar = fig4_drone_nectar(&cfg);
        let v2 = fig5_drone_mtgv2(&cfg);
        let n_mean = nectar.series[1].points[0].mean; // radius 2.4, d = 0
        let v_mean = v2.series[1].points[0].mean;
        assert!(v_mean < n_mean, "MtGv2 ({v_mean}) must be cheaper than NECTAR ({n_mean})");
    }

    #[test]
    fn fig6_and_fig7_quick_grow_with_n() {
        let cfg = DroneScalingConfig::quick();
        for t in [fig6_drone_scaling_nectar(&cfg), fig7_drone_scaling_mtgv2(&cfg)] {
            let dense = &t.series[0]; // d = 0
            assert!(
                dense.points.last().unwrap().mean > dense.points.first().unwrap().mean,
                "{}",
                t.title
            );
        }
    }
}

/// **§V-C mechanism** — quiescence and chain-length evidence behind the
/// topology-cost discussion: for each family at equal `(n, k)`, the number
/// of rounds with any traffic (dissemination stops at the diameter) and the
/// mean bytes per message (longer chains ⇒ bigger messages).
pub fn topology_quiescence(cfg: &TopologyCostConfig) -> Table {
    let k = cfg.k;
    type Builder = fn(usize, usize) -> Option<Graph>;
    let families: Vec<(&str, Builder)> = vec![
        ("k-regular", |k, n| gen::harary(k, n).ok()),
        ("k-pasted-tree", |k, n| gen::k_pasted_tree(k, n).ok()),
        ("k-diamond", |k, n| gen::k_diamond(k, n).ok()),
        ("generalized-wheel", |k, n| gen::generalized_wheel(k, n).ok()),
        ("multipartite-wheel", |k, n| gen::multipartite_wheel(k, n, 2).ok()),
    ];
    let mut series = Vec::new();
    for (name, build) in families {
        let mut active_rounds =
            Series { label: format!("{name}: active rounds"), points: Vec::new() };
        let mut per_msg = Series { label: format!("{name}: KB/message"), points: Vec::new() };
        for &n in &cfg.ns {
            let Some(g) = build(k, n) else { continue };
            let metrics = Scenario::new(g, k / 2).sim().metrics_only().run().into_metrics();
            let rounds = metrics.bytes_per_round().iter().filter(|&&b| b > 0).count();
            let msgs: u64 = metrics.msgs_sent().iter().sum();
            let kb_per_msg = if msgs == 0 {
                0.0
            } else {
                metrics.total_bytes_sent() as f64 / msgs as f64 / 1024.0
            };
            active_rounds.points.push(Point { x: n as f64, mean: rounds as f64, ci95: 0.0 });
            per_msg.points.push(Point { x: n as f64, mean: kb_per_msg, ci95: 0.0 });
        }
        series.push(active_rounds);
        series.push(per_msg);
    }
    Table {
        id: "text_topology_quiescence".into(),
        title: format!("§V-C mechanism: active rounds and message size per family, k = {k}"),
        x_label: "Number of Nodes (n)".into(),
        y_label: "rounds / KB per message".into(),
        series,
    }
}

/// Parameters for the large-n clustered-fleet cost sweep.
#[derive(Debug, Clone)]
pub struct LargeScaleConfig {
    /// System sizes to sweep (thousands of nodes are fine).
    pub ns: Vec<usize>,
    /// Cluster sizes (one series each).
    pub cluster_sizes: Vec<usize>,
    /// The runtime executing the sweeps.
    pub runtime: Runtime,
}

impl LargeScaleConfig {
    /// The beyond-the-paper scale: up to 10 000 nodes, clusters of 4 and 8,
    /// on the event-driven runtime.
    pub fn paper() -> Self {
        LargeScaleConfig {
            ns: vec![1_000, 4_000, 10_000],
            cluster_sizes: vec![4, 8],
            runtime: Runtime::Event,
        }
    }

    /// Scaled-down sweep for tests.
    pub fn quick() -> Self {
        LargeScaleConfig { ns: vec![200, 400], cluster_sizes: vec![4], runtime: Runtime::Event }
    }
}

/// **Beyond §V** — data sent per node on clustered fleets far past the
/// paper's 100-node evaluation ceiling. Each point runs NECTAR with its
/// default `n − 1` round horizon over a fleet of disjoint cliques
/// ([`gen::disjoint_cliques`]); dissemination is cluster-local and
/// quiesces after ~`cluster size` rounds, so the event-driven runtime's
/// `O(active events)` scheduling makes 10 000-node sweeps routine where
/// the polling runtimes spend their time ticking silent nodes (and
/// thread-per-node cannot host the fleet at all). The measured cost per
/// node is flat in `n` — the per-cluster locality the table demonstrates.
pub fn large_scale_cost(cfg: &LargeScaleConfig) -> Table {
    let series = cfg
        .cluster_sizes
        .iter()
        .map(|&size| Series {
            label: format!("clustered fleet: cluster size = {size}"),
            points: cfg
                .ns
                .iter()
                .filter(|&&n| n >= size)
                .map(|&n| {
                    let g = gen::disjoint_cliques(n / size, size);
                    let t = (size / 2).max(1);
                    let metrics = Scenario::new(g, t)
                        .sim()
                        .runtime(cfg.runtime)
                        .metrics_only()
                        .run()
                        .into_metrics();
                    Point {
                        x: (n / size * size) as f64,
                        mean: metrics.mean_bytes_sent_per_node() / 1024.0,
                        ci95: 0.0,
                    }
                })
                .collect(),
        })
        .collect();
    Table {
        id: "large_scale_cost".into(),
        title: format!(
            "Beyond §V: data sent per node (KB) vs n, clustered fleets ({} runtime)",
            cfg.runtime
        ),
        x_label: "Number of Nodes (n)".into(),
        y_label: "Data sent per node (KBytes)".into(),
        series,
    }
}

/// **§IV-E in-text** — per-node cost disparity: "the communication cost can
/// also be very disparate through nodes since the complexity for each node
/// depends on the size of its neighborhood". Measured as min / mean / max
/// bytes sent per node on the hub-heavy generalized wheel vs the uniform
/// k-regular graph.
pub fn per_node_disparity(cfg: &TopologyCostConfig) -> Table {
    let k = cfg.k;
    type Builder = fn(usize, usize) -> Option<Graph>;
    let families: Vec<(&str, Builder)> = vec![
        ("k-regular", |k, n| gen::harary(k, n).ok()),
        ("generalized-wheel", |k, n| gen::generalized_wheel(k, n).ok()),
    ];
    let mut series = Vec::new();
    for (name, build) in families {
        let mut min_s = Series { label: format!("{name}: min KB"), points: Vec::new() };
        let mut mean_s = Series { label: format!("{name}: mean KB"), points: Vec::new() };
        let mut max_s = Series { label: format!("{name}: max KB"), points: Vec::new() };
        for &n in &cfg.ns {
            let Some(g) = build(k, n) else { continue };
            let metrics = Scenario::new(g, k / 2).sim().metrics_only().run().into_metrics();
            let kb = |b: u64| b as f64 / 1024.0;
            let min = metrics.bytes_sent().iter().copied().min().unwrap_or(0);
            min_s.points.push(Point { x: n as f64, mean: kb(min), ci95: 0.0 });
            mean_s.points.push(Point {
                x: n as f64,
                mean: metrics.mean_bytes_sent_per_node() / 1024.0,
                ci95: 0.0,
            });
            max_s.points.push(Point {
                x: n as f64,
                mean: kb(metrics.max_bytes_sent_per_node()),
                ci95: 0.0,
            });
        }
        series.extend([min_s, mean_s, max_s]);
    }
    Table {
        id: "text_per_node_disparity".into(),
        title: format!("§IV-E: per-node cost disparity (min/mean/max KB sent), k = {k}"),
        x_label: "Number of Nodes (n)".into(),
        y_label: "Data sent per node (KBytes)".into(),
        series,
    }
}

#[cfg(test)]
mod mechanism_tests {
    use super::*;

    #[test]
    fn large_scale_cost_is_flat_in_n() {
        // Cluster-local dissemination: per-node cost must not grow with the
        // fleet size (within float noise — the cost is deterministic).
        let t = large_scale_cost(&LargeScaleConfig::quick());
        assert_eq!(t.series.len(), 1);
        let points = &t.series[0].points;
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].x, 200.0);
        assert_eq!(points[1].x, 400.0);
        assert!(points[0].mean > 0.0);
        assert_eq!(points[0].mean, points[1].mean, "cost per node must be cluster-local");
    }

    #[test]
    fn quiescence_table_shows_low_diameter_families_finishing_early() {
        let t = topology_quiescence(&TopologyCostConfig { ns: vec![48], k: 4 });
        let rounds_of = |label: &str| {
            t.series
                .iter()
                .find(|s| s.label.starts_with(label) && s.label.contains("active rounds"))
                .and_then(|s| s.points.first())
                .map(|p| p.mean)
                .expect("series present")
        };
        assert!(rounds_of("k-pasted-tree") < rounds_of("k-regular"));
        assert!(rounds_of("generalized-wheel") < rounds_of("k-regular"));
    }

    #[test]
    fn disparity_is_wider_on_the_wheel() {
        let t = per_node_disparity(&TopologyCostConfig { ns: vec![30], k: 4 });
        let val = |label: &str| {
            t.series
                .iter()
                .find(|s| s.label == label)
                .and_then(|s| s.points.first())
                .map(|p| p.mean)
                .expect("series present")
        };
        let regular_spread = val("k-regular: max KB") / val("k-regular: min KB").max(1e-9);
        let wheel_spread =
            val("generalized-wheel: max KB") / val("generalized-wheel: min KB").max(1e-9);
        assert!(
            wheel_spread > regular_spread,
            "hub-heavy wheel spread {wheel_spread:.2} should exceed regular {regular_spread:.2}"
        );
    }
}
