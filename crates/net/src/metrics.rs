//! Per-node network accounting.
//!
//! The evaluation's cost figures (Figs. 3–7) report *data sent per node* in
//! kilobytes; [`Metrics`] tracks bytes and message counts per sender, per
//! receiver and per round, plus protocol violations (messages addressed to
//! non-neighbors, which reliable channels cannot carry).

use serde::{Deserialize, Serialize};

/// Byte and message counters collected by a runtime execution.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Metrics {
    bytes_sent: Vec<u64>,
    msgs_sent: Vec<u64>,
    bytes_received: Vec<u64>,
    msgs_received: Vec<u64>,
    bytes_per_round: Vec<u64>,
    illegal_sends: u64,
    schedule_drops: u64,
}

impl Metrics {
    /// Creates counters for an `n`-node system.
    pub fn new(n: usize) -> Self {
        Metrics {
            bytes_sent: vec![0; n],
            msgs_sent: vec![0; n],
            bytes_received: vec![0; n],
            msgs_received: vec![0; n],
            bytes_per_round: Vec::new(),
            illegal_sends: 0,
            schedule_drops: 0,
        }
    }

    /// Reassembles counters from their raw parts — the constructor behind
    /// deserialized run reports (`nectar_protocol`'s `RunReport` codec),
    /// which must rebuild the exact counters a runtime recorded.
    ///
    /// # Panics
    ///
    /// Panics unless the four per-node vectors have equal lengths.
    pub fn from_parts(
        bytes_sent: Vec<u64>,
        msgs_sent: Vec<u64>,
        bytes_received: Vec<u64>,
        msgs_received: Vec<u64>,
        bytes_per_round: Vec<u64>,
        illegal_sends: u64,
        schedule_drops: u64,
    ) -> Self {
        assert!(
            bytes_sent.len() == msgs_sent.len()
                && bytes_sent.len() == bytes_received.len()
                && bytes_sent.len() == msgs_received.len(),
            "per-node counter vectors must cover the same system"
        );
        Metrics {
            bytes_sent,
            msgs_sent,
            bytes_received,
            msgs_received,
            bytes_per_round,
            illegal_sends,
            schedule_drops,
        }
    }

    /// Records a successful transmission of `bytes` from `from` to `to`
    /// during `round` (1-based).
    pub fn record_send(&mut self, round: usize, from: usize, to: usize, bytes: usize) {
        self.bytes_sent[from] += bytes as u64;
        self.msgs_sent[from] += 1;
        self.bytes_received[to] += bytes as u64;
        self.msgs_received[to] += 1;
        if self.bytes_per_round.len() < round {
            self.bytes_per_round.resize(round, 0);
        }
        self.bytes_per_round[round - 1] += bytes as u64;
    }

    /// Records an attempted send along a non-existent channel.
    pub fn record_illegal_send(&mut self) {
        self.illegal_sends += 1;
    }

    /// Records `n` messages suppressed by a topology schedule (down edges
    /// and loss windows). Unlike illegal sends these are legitimate
    /// protocol traffic the *network* refused to carry, so they are counted
    /// apart from both the sent and the violation counters.
    pub fn record_schedule_drops(&mut self, n: u64) {
        self.schedule_drops += n;
    }

    /// Bytes sent, per node.
    pub fn bytes_sent(&self) -> &[u64] {
        &self.bytes_sent
    }

    /// Messages sent, per node.
    pub fn msgs_sent(&self) -> &[u64] {
        &self.msgs_sent
    }

    /// Bytes received, per node.
    pub fn bytes_received(&self) -> &[u64] {
        &self.bytes_received
    }

    /// Messages received, per node.
    pub fn msgs_received(&self) -> &[u64] {
        &self.msgs_received
    }

    /// Total bytes transmitted per round (index 0 = round 1).
    pub fn bytes_per_round(&self) -> &[u64] {
        &self.bytes_per_round
    }

    /// Number of sends attempted along non-existent channels.
    pub fn illegal_sends(&self) -> u64 {
        self.illegal_sends
    }

    /// Number of messages a topology schedule dropped.
    pub fn schedule_drops(&self) -> u64 {
        self.schedule_drops
    }

    /// Total bytes sent across all nodes.
    pub fn total_bytes_sent(&self) -> u64 {
        self.bytes_sent.iter().sum()
    }

    /// Mean bytes sent per node — the y-axis of Figs. 3–7.
    pub fn mean_bytes_sent_per_node(&self) -> f64 {
        if self.bytes_sent.is_empty() {
            return 0.0;
        }
        self.total_bytes_sent() as f64 / self.bytes_sent.len() as f64
    }

    /// Maximum bytes sent by any single node.
    pub fn max_bytes_sent_per_node(&self) -> u64 {
        self.bytes_sent.iter().copied().max().unwrap_or(0)
    }

    /// Merges another execution's counters into this one (same `n`).
    ///
    /// # Panics
    ///
    /// Panics if the two metrics cover different system sizes.
    pub fn merge(&mut self, other: &Metrics) {
        assert_eq!(
            self.bytes_sent.len(),
            other.bytes_sent.len(),
            "metrics cover different systems"
        );
        for (a, b) in self.bytes_sent.iter_mut().zip(&other.bytes_sent) {
            *a += b;
        }
        for (a, b) in self.msgs_sent.iter_mut().zip(&other.msgs_sent) {
            *a += b;
        }
        for (a, b) in self.bytes_received.iter_mut().zip(&other.bytes_received) {
            *a += b;
        }
        for (a, b) in self.msgs_received.iter_mut().zip(&other.msgs_received) {
            *a += b;
        }
        if self.bytes_per_round.len() < other.bytes_per_round.len() {
            self.bytes_per_round.resize(other.bytes_per_round.len(), 0);
        }
        for (a, b) in self.bytes_per_round.iter_mut().zip(&other.bytes_per_round) {
            *a += b;
        }
        self.illegal_sends += other.illegal_sends;
        self.schedule_drops += other.schedule_drops;
    }
}

/// Wall-clock breakdown of one epoch's phases, in microseconds: the
/// dissemination rounds, then the four decision-phase stages (classify
/// views, derive per-class keys/components, materialize oracle-miss graphs,
/// and the sequential oracle-decide walk).
///
/// Deliberately *not* part of [`Metrics`]: metrics are compared bit-for-bit
/// across runtimes by the determinism suite, while wall-clock readings are
/// inherently nondeterministic. Profiles therefore ride next to the metrics
/// as an opt-in `Option` (`Simulation::profile()` in `nectar_protocol`) and
/// are excluded from every cross-runtime equivalence check; two profiled
/// runs of the same scenario will not agree on these numbers, only on
/// everything else.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseProfile {
    /// The propagation rounds (Alg. 1 ll. 5–15), all of them.
    pub disseminate_micros: u64,
    /// Decision stages 1+2: grouping nodes into view classes by their
    /// incremental fingerprints.
    pub classify_micros: u64,
    /// Decision stage 3: per-class canonical edge key + component sizes.
    pub derive_micros: u64,
    /// Decision stage 4: pre-materializing view graphs the oracle cannot
    /// answer from cache.
    pub materialize_micros: u64,
    /// Decision stage 5: the sequential per-node oracle queries and
    /// decision commits.
    pub decide_micros: u64,
}

impl PhaseProfile {
    /// Sum of all phase timings.
    pub fn total_micros(&self) -> u64 {
        self.disseminate_micros
            + self.classify_micros
            + self.derive_micros
            + self.materialize_micros
            + self.decide_micros
    }

    /// Total time spent in the decision phase (stages 1–5, everything but
    /// dissemination).
    pub fn collect_micros(&self) -> u64 {
        self.total_micros() - self.disseminate_micros
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_profile_totals_add_up() {
        let profile = PhaseProfile {
            disseminate_micros: 100,
            classify_micros: 20,
            derive_micros: 30,
            materialize_micros: 5,
            decide_micros: 45,
        };
        assert_eq!(profile.total_micros(), 200);
        assert_eq!(profile.collect_micros(), 100);
        assert_eq!(PhaseProfile::default().total_micros(), 0);
    }

    #[test]
    fn record_send_updates_all_counters() {
        let mut m = Metrics::new(3);
        m.record_send(1, 0, 2, 100);
        m.record_send(2, 0, 1, 50);
        assert_eq!(m.bytes_sent(), &[150, 0, 0]);
        assert_eq!(m.msgs_sent(), &[2, 0, 0]);
        assert_eq!(m.bytes_received(), &[0, 50, 100]);
        assert_eq!(m.msgs_received(), &[0, 1, 1]);
        assert_eq!(m.bytes_per_round(), &[100, 50]);
        assert_eq!(m.total_bytes_sent(), 150);
        assert_eq!(m.max_bytes_sent_per_node(), 150);
        assert!((m.mean_bytes_sent_per_node() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn rounds_may_arrive_out_of_order() {
        let mut m = Metrics::new(2);
        m.record_send(3, 0, 1, 10);
        m.record_send(1, 1, 0, 20);
        assert_eq!(m.bytes_per_round(), &[20, 0, 10]);
    }

    #[test]
    fn illegal_sends_are_counted_separately() {
        let mut m = Metrics::new(2);
        m.record_illegal_send();
        assert_eq!(m.illegal_sends(), 1);
        assert_eq!(m.total_bytes_sent(), 0);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = Metrics::new(2);
        a.record_send(1, 0, 1, 5);
        let mut b = Metrics::new(2);
        b.record_send(2, 1, 0, 7);
        b.record_illegal_send();
        a.merge(&b);
        assert_eq!(a.bytes_sent(), &[5, 7]);
        assert_eq!(a.bytes_per_round(), &[5, 7]);
        assert_eq!(a.illegal_sends(), 1);
    }

    #[test]
    #[should_panic(expected = "different systems")]
    fn merge_rejects_mismatched_sizes() {
        Metrics::new(2).merge(&Metrics::new(3));
    }

    #[test]
    fn empty_metrics_mean_is_zero() {
        assert_eq!(Metrics::new(0).mean_bytes_sent_per_node(), 0.0);
    }
}
