//! Fault interposition: wrap a correct process and distort its traffic.
//!
//! Byzantine behaviour in the evaluation (§V-D) is largely *traffic-shaped*:
//! crashing, staying silent toward half the network, or dropping messages.
//! [`Faulty`] wraps any [`Process`] with a [`FaultModel`] that filters its
//! incoming and outgoing messages, so the same correct protocol code can be
//! subjected to every such behaviour. Protocol-specific deviations (lying
//! about neighborhoods, forging chains) live next to each protocol instead.

use std::collections::BTreeSet;
use std::fmt;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::process::{NodeId, Outgoing, Process};

/// A traffic-level fault model applied around a process.
pub trait FaultModel<M>: fmt::Debug + Send {
    /// Filters/distorts the messages the wrapped process wants to send.
    fn filter_outgoing(&mut self, round: usize, out: Vec<Outgoing<M>>) -> Vec<Outgoing<M>>;

    /// Filters/distorts a message before the wrapped process sees it.
    /// Returning `None` suppresses delivery.
    fn filter_incoming(&mut self, round: usize, from: NodeId, msg: M) -> Option<M> {
        let _ = round;
        let _ = from;
        Some(msg)
    }
}

/// A process whose traffic passes through a [`FaultModel`].
#[derive(Debug)]
pub struct Faulty<P: Process> {
    inner: P,
    fault: Box<dyn FaultModel<P::Msg>>,
}

impl<P: Process> Faulty<P> {
    /// Wraps `inner` with `fault`.
    pub fn new(inner: P, fault: Box<dyn FaultModel<P::Msg>>) -> Self {
        Faulty { inner, fault }
    }

    /// The wrapped process.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

/// `Faulty` deliberately keeps the default (conservative)
/// [`Process::quiescent`] hint: fault models only *filter* traffic today,
/// but a scripted [`ClosureFault`] may fabricate messages out of thin air,
/// so the wrapper cannot promise silence even when the inner process can.
/// Faulty nodes are few (at most `t`), so polling them every round costs
/// the event runtime only `O(t · rounds)` extra events.
impl<P: Process> Process for Faulty<P> {
    type Msg = P::Msg;

    fn id(&self) -> NodeId {
        self.inner.id()
    }

    fn send(&mut self, round: usize) -> Vec<Outgoing<P::Msg>> {
        let out = self.inner.send(round);
        self.fault.filter_outgoing(round, out)
    }

    fn receive(&mut self, round: usize, from: NodeId, msg: P::Msg) {
        if let Some(msg) = self.fault.filter_incoming(round, from, msg) {
            self.inner.receive(round, from, msg);
        }
    }

    fn link_changed(&mut self, round: usize, peer: NodeId, up: bool) {
        // Fault models shape traffic, not link awareness: the inner process
        // hears about topology changes unfiltered.
        self.inner.link_changed(round, peer, up);
    }
}

/// Crash fault: sends nothing from `from_round` onwards (a node that crashed
/// before round 1 is silent for the whole execution).
#[derive(Debug, Clone)]
pub struct Crash {
    /// First round in which the node is silent.
    pub from_round: usize,
}

impl<M> FaultModel<M> for Crash
where
    M: fmt::Debug + Send,
{
    fn filter_outgoing(&mut self, round: usize, out: Vec<Outgoing<M>>) -> Vec<Outgoing<M>> {
        if round >= self.from_round {
            Vec::new()
        } else {
            out
        }
    }
}

/// The paper's bridge attack behaviour (§V-D): act correctly toward one part
/// of the network and as a *crashed* node toward the other. A crashed node
/// stops sending but still receives, so only outgoing messages to
/// `silent_toward` are dropped — the node keeps collecting the silenced
/// side's information and relays it to the favoured side, which is exactly
/// what splits correct nodes' views in Fig. 8.
#[derive(Debug, Clone)]
pub struct TwoFaced {
    /// Nodes toward which this node plays dead.
    pub silent_toward: BTreeSet<NodeId>,
}

impl TwoFaced {
    /// Builds the fault from any iterator of victim nodes.
    pub fn new(silent_toward: impl IntoIterator<Item = NodeId>) -> Self {
        TwoFaced { silent_toward: silent_toward.into_iter().collect() }
    }
}

impl<M> FaultModel<M> for TwoFaced
where
    M: fmt::Debug + Send,
{
    fn filter_outgoing(&mut self, _round: usize, out: Vec<Outgoing<M>>) -> Vec<Outgoing<M>> {
        out.into_iter().filter(|o| !self.silent_toward.contains(&o.to)).collect()
    }
}

/// Message-loss fault: drops each outgoing message independently with
/// probability `p` (seeded, deterministic).
pub struct DropRandom {
    p: f64,
    rng: StdRng,
}

impl DropRandom {
    /// Creates the fault with drop probability `p` (clamped to `[0, 1]`).
    pub fn new(p: f64, seed: u64) -> Self {
        DropRandom { p: p.clamp(0.0, 1.0), rng: StdRng::seed_from_u64(seed) }
    }
}

impl fmt::Debug for DropRandom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DropRandom").field("p", &self.p).finish()
    }
}

impl<M> FaultModel<M> for DropRandom
where
    M: fmt::Debug + Send,
{
    fn filter_outgoing(&mut self, _round: usize, out: Vec<Outgoing<M>>) -> Vec<Outgoing<M>> {
        out.into_iter().filter(|_| self.rng.random::<f64>() >= self.p).collect()
    }
}

/// Fully scriptable fault for tests: closures over outgoing and incoming
/// traffic.
pub struct ClosureFault<M> {
    outgoing: Box<dyn FnMut(usize, Vec<Outgoing<M>>) -> Vec<Outgoing<M>> + Send>,
    incoming: Box<dyn FnMut(usize, NodeId, M) -> Option<M> + Send>,
}

impl<M> ClosureFault<M> {
    /// Builds the fault from the two filter closures.
    pub fn new(
        outgoing: impl FnMut(usize, Vec<Outgoing<M>>) -> Vec<Outgoing<M>> + Send + 'static,
        incoming: impl FnMut(usize, NodeId, M) -> Option<M> + Send + 'static,
    ) -> Self {
        ClosureFault { outgoing: Box::new(outgoing), incoming: Box::new(incoming) }
    }
}

impl<M> fmt::Debug for ClosureFault<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ClosureFault(<scripted>)")
    }
}

impl<M> FaultModel<M> for ClosureFault<M>
where
    M: fmt::Debug + Send,
{
    fn filter_outgoing(&mut self, round: usize, out: Vec<Outgoing<M>>) -> Vec<Outgoing<M>> {
        (self.outgoing)(round, out)
    }

    fn filter_incoming(&mut self, round: usize, from: NodeId, msg: M) -> Option<M> {
        (self.incoming)(round, from, msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::WireSized;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Beacon(usize);

    impl WireSized for Beacon {
        fn wire_bytes(&self) -> usize {
            4
        }
    }

    /// Sends one beacon to every peer each round; records receptions.
    #[derive(Debug)]
    struct Chatty {
        id: usize,
        peers: Vec<usize>,
        seen: Vec<(usize, usize)>,
    }

    impl Process for Chatty {
        type Msg = Beacon;
        fn id(&self) -> usize {
            self.id
        }
        fn send(&mut self, _round: usize) -> Vec<Outgoing<Beacon>> {
            self.peers.iter().map(|&to| Outgoing::new(to, Beacon(self.id))).collect()
        }
        fn receive(&mut self, round: usize, from: usize, _msg: Beacon) {
            self.seen.push((round, from));
        }
    }

    fn chatty(id: usize, peers: Vec<usize>) -> Chatty {
        Chatty { id, peers, seen: Vec::new() }
    }

    #[test]
    fn crash_silences_from_given_round() {
        let mut f = Faulty::new(chatty(0, vec![1]), Box::new(Crash { from_round: 2 }));
        assert_eq!(f.send(1).len(), 1);
        assert_eq!(f.send(2).len(), 0);
        assert_eq!(f.send(3).len(), 0);
    }

    #[test]
    fn two_faced_silences_outgoing_but_keeps_listening() {
        let mut f = Faulty::new(chatty(0, vec![1, 2]), Box::new(TwoFaced::new([2])));
        let out = f.send(1);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to, 1);
        // A crashed node still receives: traffic from the silenced side is
        // processed (and can be leaked to the favoured side).
        f.receive(1, 2, Beacon(2));
        f.receive(1, 1, Beacon(1));
        assert_eq!(f.inner().seen, vec![(1, 2), (1, 1)]);
    }

    #[test]
    fn drop_random_extremes() {
        let mut always = Faulty::new(chatty(0, vec![1]), Box::new(DropRandom::new(1.0, 7)));
        assert!(always.send(1).is_empty());
        let mut never = Faulty::new(chatty(0, vec![1]), Box::new(DropRandom::new(0.0, 7)));
        assert_eq!(never.send(1).len(), 1);
    }

    #[test]
    fn closure_fault_scripts_traffic() {
        let fault = ClosureFault::new(
            |round, out| if round == 1 { Vec::new() } else { out },
            |_round, from, msg| (from != 9).then_some(msg),
        );
        let mut f = Faulty::new(chatty(0, vec![1]), Box::new(fault));
        assert!(f.send(1).is_empty());
        assert_eq!(f.send(2).len(), 1);
        f.receive(2, 9, Beacon(9));
        f.receive(2, 1, Beacon(1));
        assert_eq!(f.inner().seen, vec![(2, 1)]);
    }
}
