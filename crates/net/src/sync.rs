//! Deterministic synchronous round engine.
//!
//! Implements the paper's communication model (§II) exactly: a static
//! undirected topology of reliable channels and lock-step rounds in which
//! every message sent at round `R` is delivered before round `R + 1`.
//! Execution is single-threaded and fully deterministic (messages are
//! delivered in increasing sender order), which the test suite leans on;
//! [`crate::threaded`] runs the same [`Process`] code concurrently,
//! [`crate::event`] runs it on an `O(active events)` event loop, and
//! [`crate::parallel`] fans it over a work-stealing worker pool — all
//! bit-identically.
//!
//! This engine polls every node every round (`O(n · rounds)` even when the
//! protocol has quiesced), which is the simplest correct baseline the
//! other three runtimes are checked against: its per-round order *is* the
//! canonical order of `docs/DETERMINISM.md`.

use nectar_graph::Graph;

use crate::metrics::Metrics;
use crate::process::{NodeId, Process, RoundSink};

/// A synchronous network executing one [`Process`] per topology node.
#[derive(Debug)]
pub struct SyncNetwork<P: Process> {
    processes: Vec<P>,
    topology: Graph,
    metrics: Metrics,
    next_round: usize,
}

impl<P: Process> SyncNetwork<P> {
    /// Creates a network over `topology` with one process per node.
    ///
    /// # Panics
    ///
    /// Panics unless `processes[i].id() == i` for every `i` and the process
    /// count equals the topology's node count.
    pub fn new(processes: Vec<P>, topology: Graph) -> Self {
        assert_eq!(
            processes.len(),
            topology.node_count(),
            "need exactly one process per topology node"
        );
        for (i, p) in processes.iter().enumerate() {
            assert_eq!(p.id(), i, "process at index {i} reports id {}", p.id());
        }
        let n = processes.len();
        SyncNetwork { processes, topology, metrics: Metrics::new(n), next_round: 1 }
    }

    /// Executes one synchronous round: every process sends, then every
    /// delivered message is received (in increasing sender order).
    ///
    /// Messages addressed to non-neighbors are dropped and counted as
    /// [`Metrics::illegal_sends`] — channels only exist along topology
    /// edges, and per §II not even Byzantine nodes can violate that.
    pub fn step(&mut self) {
        let round = self.next_round;
        self.next_round += 1;
        // inboxes[to] = (from, msg), gathered in sender order because we
        // iterate processes in index order.
        let mut inboxes: Vec<Vec<(NodeId, P::Msg)>> = vec![Vec::new(); self.processes.len()];
        for i in 0..self.processes.len() {
            for out in self.processes[i].send(round) {
                if out.to >= self.processes.len() || !self.topology.has_edge(i, out.to) {
                    self.metrics.record_illegal_send();
                    continue;
                }
                self.metrics.record_send(
                    round,
                    i,
                    out.to,
                    crate::process::WireSized::wire_bytes(&out.msg),
                );
                inboxes[out.to].push((i, out.msg));
            }
        }
        for (to, inbox) in inboxes.into_iter().enumerate() {
            for (from, msg) in inbox {
                self.processes[to].receive(round, from, msg);
            }
        }
    }

    /// Runs `rounds` synchronous rounds.
    pub fn run_rounds(&mut self, rounds: usize) {
        self.run_rounds_with(rounds, &mut ());
    }

    /// [`run_rounds`](Self::run_rounds), reporting each committed round to
    /// `sink` — this engine's per-step order *is* the canonical commit
    /// order every other runtime's sink stream must reproduce.
    pub fn run_rounds_with<S: RoundSink + ?Sized>(&mut self, rounds: usize, sink: &mut S) {
        for _ in 0..rounds {
            let round = self.next_round;
            self.step();
            sink.round_committed(round, self.round_bytes(round));
        }
    }

    /// Bytes committed during `round` (0 when the round carried nothing).
    fn round_bytes(&self, round: usize) -> u64 {
        self.metrics.bytes_per_round().get(round - 1).copied().unwrap_or(0)
    }

    /// The round [`step`](Self::step) will execute next (1-based).
    pub fn next_round(&self) -> usize {
        self.next_round
    }

    /// Accumulated traffic counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The topology the network runs over.
    pub fn topology(&self) -> &Graph {
        &self.topology
    }

    /// Immutable access to process `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn process(&self, i: NodeId) -> &P {
        &self.processes[i]
    }

    /// All processes, in node order.
    pub fn processes(&self) -> &[P] {
        &self.processes
    }

    /// Consumes the network, returning processes and metrics.
    pub fn into_parts(self) -> (Vec<P>, Metrics) {
        (self.processes, self.metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{Outgoing, WireSized};
    use nectar_graph::gen;

    /// Toy flooding protocol: each node floods its id once; receivers
    /// remember ids and forward first sightings. Used to validate engine
    /// semantics (synchrony, neighbor-only channels, determinism).
    #[derive(Debug, Clone)]
    struct Flood {
        id: usize,
        neighbors: Vec<usize>,
        known: std::collections::BTreeSet<usize>,
        outbox: Vec<usize>,
        received_rounds: Vec<(usize, usize, usize)>, // (round, from, payload)
    }

    impl Flood {
        fn new(id: usize, g: &Graph) -> Self {
            Flood {
                id,
                neighbors: g.neighborhood(id),
                known: [id].into_iter().collect(),
                outbox: vec![id],
                received_rounds: Vec::new(),
            }
        }
    }

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct IdMsg(usize);

    impl WireSized for IdMsg {
        fn wire_bytes(&self) -> usize {
            8
        }
    }

    impl Process for Flood {
        type Msg = IdMsg;

        fn id(&self) -> usize {
            self.id
        }

        fn send(&mut self, _round: usize) -> Vec<Outgoing<IdMsg>> {
            let outbox = std::mem::take(&mut self.outbox);
            outbox
                .into_iter()
                .flat_map(|payload| {
                    self.neighbors.iter().map(move |&to| Outgoing::new(to, IdMsg(payload)))
                })
                .collect()
        }

        fn receive(&mut self, round: usize, from: usize, msg: IdMsg) {
            self.received_rounds.push((round, from, msg.0));
            if self.known.insert(msg.0) {
                self.outbox.push(msg.0);
            }
        }
    }

    fn run_flood(g: &Graph, rounds: usize) -> SyncNetwork<Flood> {
        let procs = (0..g.node_count()).map(|i| Flood::new(i, g)).collect();
        let mut net = SyncNetwork::new(procs, g.clone());
        net.run_rounds(rounds);
        net
    }

    #[test]
    fn flooding_covers_a_connected_graph_within_diameter_rounds() {
        let g = gen::path(5);
        let net = run_flood(&g, 4);
        for p in net.processes() {
            assert_eq!(p.known.len(), 5, "node {} should know everyone", p.id);
        }
    }

    #[test]
    fn flooding_respects_partitions() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let net = run_flood(&g, 5);
        assert_eq!(net.process(0).known.len(), 2);
        assert_eq!(net.process(3).known.len(), 2);
    }

    #[test]
    fn messages_take_one_round_per_hop() {
        let g = gen::path(4);
        let net = run_flood(&g, 3);
        // Node 3 learns node 0's id exactly at round 3 (three hops away).
        let p3 = net.process(3);
        let arrival = p3.received_rounds.iter().find(|&&(_, _, payload)| payload == 0).unwrap();
        assert_eq!(arrival.0, 3);
        assert_eq!(arrival.1, 2, "must arrive from the intermediate neighbor");
    }

    #[test]
    fn non_neighbor_sends_are_dropped_and_counted() {
        #[derive(Debug)]
        struct Rogue {
            id: usize,
        }
        impl Process for Rogue {
            type Msg = IdMsg;
            fn id(&self) -> usize {
                self.id
            }
            fn send(&mut self, round: usize) -> Vec<Outgoing<IdMsg>> {
                if round == 1 && self.id == 0 {
                    vec![Outgoing::new(2, IdMsg(0)), Outgoing::new(99, IdMsg(0))]
                } else {
                    Vec::new()
                }
            }
            fn receive(&mut self, _round: usize, _from: usize, _msg: IdMsg) {
                panic!("no legal message should arrive");
            }
        }
        // Path 0-1-2: node 0 tries to reach 2 directly, and an absent node.
        let g = gen::path(3);
        let procs = vec![Rogue { id: 0 }, Rogue { id: 1 }, Rogue { id: 2 }];
        let mut net = SyncNetwork::new(procs, g);
        net.run_rounds(1);
        assert_eq!(net.metrics().illegal_sends(), 2);
        assert_eq!(net.metrics().total_bytes_sent(), 0);
    }

    #[test]
    fn metrics_account_wire_bytes() {
        let g = gen::path(3);
        let net = run_flood(&g, 2);
        // Round 1: node 0 sends 1 msg (to 1), node 1 sends 2, node 2 sends 1.
        // Each message is 8 bytes.
        let m = net.metrics();
        assert_eq!(m.bytes_per_round()[0], 8 * 4);
        assert!(m.total_bytes_sent() >= 8 * 4);
        assert_eq!(m.illegal_sends(), 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let g = gen::cycle(6);
        let a = run_flood(&g, 6);
        let b = run_flood(&g, 6);
        for (pa, pb) in a.processes().iter().zip(b.processes()) {
            assert_eq!(pa.received_rounds, pb.received_rounds);
        }
        assert_eq!(a.metrics(), b.metrics());
    }

    #[test]
    #[should_panic(expected = "one process per topology node")]
    fn process_count_must_match_topology() {
        let g = gen::path(3);
        let procs = vec![Flood::new(0, &g)];
        let _ = SyncNetwork::new(procs, g);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::process::{Outgoing, WireSized};
    use nectar_graph::traversal;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct IdMsg(usize);

    impl WireSized for IdMsg {
        fn wire_bytes(&self) -> usize {
            8
        }
    }

    #[derive(Debug, Clone)]
    struct Flood {
        id: usize,
        neighbors: Vec<usize>,
        known: BTreeSet<usize>,
        outbox: Vec<usize>,
    }

    impl Flood {
        fn new(id: usize, g: &Graph) -> Self {
            Flood {
                id,
                neighbors: g.neighborhood(id),
                known: [id].into_iter().collect(),
                outbox: vec![id],
            }
        }
    }

    impl Process for Flood {
        type Msg = IdMsg;

        fn id(&self) -> usize {
            self.id
        }

        fn send(&mut self, _round: usize) -> Vec<Outgoing<IdMsg>> {
            let outbox = std::mem::take(&mut self.outbox);
            outbox
                .into_iter()
                .flat_map(|payload| {
                    self.neighbors.iter().map(move |&to| Outgoing::new(to, IdMsg(payload)))
                })
                .collect()
        }

        fn receive(&mut self, _round: usize, _from: usize, msg: IdMsg) {
            if self.known.insert(msg.0) {
                self.outbox.push(msg.0);
            }
        }
    }

    fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
        (2..=max_n).prop_flat_map(|n| {
            let pairs: Vec<(usize, usize)> =
                (0..n).flat_map(|u| (u + 1..n).map(move |v| (u, v))).collect();
            proptest::collection::vec(proptest::bool::ANY, pairs.len()).prop_map(move |mask| {
                let edges = pairs.iter().zip(&mask).filter_map(|(&e, &keep)| keep.then_some(e));
                Graph::from_edges(n, edges).expect("generated edges are in range")
            })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Flooding over the engine reaches exactly the BFS-reachable set —
        /// the engine neither leaks across partitions nor loses messages.
        #[test]
        fn flood_coverage_equals_reachability(g in arb_graph(9)) {
            let n = g.node_count();
            let procs: Vec<Flood> = (0..n).map(|i| Flood::new(i, &g)).collect();
            let mut net = SyncNetwork::new(procs, g.clone());
            net.run_rounds(n);
            for p in net.processes() {
                let reach = traversal::reachable_from(&g, p.id);
                let expected: std::collections::BTreeSet<usize> =
                    (0..n).filter(|&v| reach[v]).collect();
                prop_assert_eq!(&p.known, &expected, "node {}", p.id);
            }
        }

        /// Byte accounting is exact: total bytes equal message count times
        /// the fixed message size of the flood protocol.
        #[test]
        fn metrics_are_internally_consistent(g in arb_graph(8)) {
            let n = g.node_count();
            let procs: Vec<Flood> = (0..n).map(|i| Flood::new(i, &g)).collect();
            let mut net = SyncNetwork::new(procs, g.clone());
            net.run_rounds(n);
            let m = net.metrics();
            let total_msgs: u64 = m.msgs_sent().iter().sum();
            prop_assert_eq!(m.total_bytes_sent(), total_msgs * 8);
            let received: u64 = m.bytes_received().iter().sum();
            prop_assert_eq!(m.total_bytes_sent(), received);
            let per_round: u64 = m.bytes_per_round().iter().sum();
            prop_assert_eq!(m.total_bytes_sent(), per_round);
        }
    }
}
