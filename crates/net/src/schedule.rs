//! Scripted topology schedules: deterministic network-level fault injection.
//!
//! The paper's system model (§II) fixes the communication graph for the
//! duration of an epoch, and the four runtimes materialize that static
//! topology up front. Real deployments flap: links drop and heal, nodes
//! crash and rejoin, partitions open mid-epoch and close again. A
//! [`TopologySchedule`] scripts exactly those events — seed-driven, round
//! stamped, validated against the base graph — and a [`Scheduled`] wrapper
//! enforces them around any [`Process`], on any runtime, without the
//! engines knowing schedules exist.
//!
//! # Where the schedule is enforced
//!
//! Every scheduled effect is applied at the *sender's* edge of the wire,
//! when the process is polled for a round's sends — which on every engine
//! happens immediately after the previous round's commit barrier. Cutting
//! a link at the sender is observationally identical to cutting it in the
//! network (the message never arrives either way), and it keeps the
//! determinism contract of `docs/DETERMINISM.md` intact for free: a
//! message's fate is a pure function of `(round, from, to, k)` and the
//! compiled schedule, so no engine, worker count or poll order can change
//! it. A crashed node is modeled as all of its incident links being down
//! for the crash window — it neither delivers nor is delivered to, exactly
//! as if it were off.
//!
//! The schedule pipeline:
//!
//! 1. [`TopologySchedule`] — the builder/parser: raw round-stamped events
//!    (drop/heal, crash/rejoin, partition/heal-partition) plus per-link
//!    loss and delay windows, with a line-based text format for the CLI.
//! 2. [`TopologySchedule::compile`] — validates against the base graph and
//!    resolves overlapping causes (an edge is down while *any* cause holds:
//!    an unhealed drop, a cut partition, a crashed endpoint) into one
//!    per-round transition list, shared immutably by every node.
//! 3. [`ScheduleState`] / [`Scheduled`] — the per-node cursor and process
//!    wrapper: applies transitions at the round barrier, notifies the
//!    wrapped process via [`Process::link_changed`], drops or delays
//!    outgoing messages per the compiled fate, and keeps the node
//!    schedulable (non-quiescent) until its last incident transition so
//!    the event/parallel engines deliver wake-ups on time.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

use nectar_graph::Graph;

use crate::process::{NodeId, Outgoing, Process};

/// Why a schedule failed to parse or compile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// A line of the text format could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// The schedule is inconsistent with itself or the base graph.
    Invalid {
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Parse { line, reason } => {
                write!(f, "schedule parse error at line {line}: {reason}")
            }
            ScheduleError::Invalid { reason } => write!(f, "invalid schedule: {reason}"),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// A discrete, round-stamped schedule event.
#[derive(Debug, Clone, PartialEq, Eq)]
enum EdgeEvent {
    Drop { round: usize, u: NodeId, v: NodeId },
    Heal { round: usize, u: NodeId, v: NodeId },
    Crash { round: usize, node: NodeId },
    Rejoin { round: usize, node: NodeId },
    Partition { round: usize, side: Vec<NodeId> },
    HealPartition { round: usize, side: Vec<NodeId> },
}

impl EdgeEvent {
    fn round(&self) -> usize {
        match self {
            EdgeEvent::Drop { round, .. }
            | EdgeEvent::Heal { round, .. }
            | EdgeEvent::Crash { round, .. }
            | EdgeEvent::Rejoin { round, .. }
            | EdgeEvent::Partition { round, .. }
            | EdgeEvent::HealPartition { round, .. } => *round,
        }
    }
}

/// What a matching loss/delay window does to a message.
#[derive(Debug, Clone, PartialEq)]
enum WindowEffect {
    /// Drop each message independently with probability `p` (seeded).
    Loss { p: f64 },
    /// Deliver each message `rounds` rounds late.
    Delay { rounds: usize },
}

/// A per-link loss or delay window over a half-open round range.
#[derive(Debug, Clone, PartialEq)]
struct LinkWindow {
    a: NodeId,
    b: NodeId,
    /// Symmetric windows match both directions; one-way windows only a→b.
    symmetric: bool,
    /// First affected round (1-based, inclusive).
    start: usize,
    /// First unaffected round (exclusive).
    end: usize,
    effect: WindowEffect,
}

impl LinkWindow {
    fn matches(&self, round: usize, from: NodeId, to: NodeId) -> bool {
        round >= self.start
            && round < self.end
            && ((from, to) == (self.a, self.b)
                || (self.symmetric && (from, to) == (self.b, self.a)))
    }
}

/// A scripted sequence of topology events, built programmatically or parsed
/// from the text format (see [`parse`](TopologySchedule::parse)). Rounds
/// are 1-based; an event at round `r` takes effect *before* the sends of
/// round `r` (i.e. at the commit barrier between rounds `r − 1` and `r`).
///
/// Compile against a base graph with
/// [`compile`](TopologySchedule::compile) before use.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TopologySchedule {
    seed: u64,
    events: Vec<EdgeEvent>,
    windows: Vec<LinkWindow>,
}

impl TopologySchedule {
    /// An empty schedule (compiles to "nothing ever happens").
    pub fn new() -> Self {
        TopologySchedule::default()
    }

    /// Seeds the loss-window randomness (default 0). Runs with equal seeds
    /// are bit-identical on every runtime.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The loss-window seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the schedule contains no events and no windows.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.windows.is_empty()
    }

    /// Drops edge `{u, v}` at the start of `round`.
    pub fn drop_edge(mut self, round: usize, u: NodeId, v: NodeId) -> Self {
        self.events.push(EdgeEvent::Drop { round, u, v });
        self
    }

    /// Heals a previously dropped edge `{u, v}` at the start of `round`.
    pub fn heal_edge(mut self, round: usize, u: NodeId, v: NodeId) -> Self {
        self.events.push(EdgeEvent::Heal { round, u, v });
        self
    }

    /// Crashes `node` at the start of `round`: all its incident links go
    /// down until a matching [`rejoin`](Self::rejoin).
    pub fn crash(mut self, round: usize, node: NodeId) -> Self {
        self.events.push(EdgeEvent::Crash { round, node });
        self
    }

    /// Rejoins a crashed `node` at the start of `round`.
    pub fn rejoin(mut self, round: usize, node: NodeId) -> Self {
        self.events.push(EdgeEvent::Rejoin { round, node });
        self
    }

    /// Opens a partition at the start of `round`: every base edge crossing
    /// between `side` and the rest of the graph is dropped.
    pub fn partition(mut self, round: usize, side: impl IntoIterator<Item = NodeId>) -> Self {
        self.events.push(EdgeEvent::Partition { round, side: side.into_iter().collect() });
        self
    }

    /// Heals a partition previously opened over the same `side`.
    pub fn heal_partition(mut self, round: usize, side: impl IntoIterator<Item = NodeId>) -> Self {
        self.events.push(EdgeEvent::HealPartition { round, side: side.into_iter().collect() });
        self
    }

    /// During rounds `start..end`, messages on `{u, v}` (both directions)
    /// are each dropped with probability `p`.
    pub fn loss(mut self, u: NodeId, v: NodeId, rounds: std::ops::Range<usize>, p: f64) -> Self {
        self.windows.push(LinkWindow {
            a: u,
            b: v,
            symmetric: true,
            start: rounds.start,
            end: rounds.end,
            effect: WindowEffect::Loss { p },
        });
        self
    }

    /// [`loss`](Self::loss) applied to the `from → to` direction only —
    /// asymmetric loss.
    pub fn loss_one_way(
        mut self,
        from: NodeId,
        to: NodeId,
        rounds: std::ops::Range<usize>,
        p: f64,
    ) -> Self {
        self.windows.push(LinkWindow {
            a: from,
            b: to,
            symmetric: false,
            start: rounds.start,
            end: rounds.end,
            effect: WindowEffect::Loss { p },
        });
        self
    }

    /// During rounds `start..end`, messages on `{u, v}` (both directions)
    /// arrive `delay` rounds late. A message sent at round `r` is delivered
    /// with round `r + delay`'s traffic; its fate is sealed at send time
    /// (in-flight messages are immune to later drops), and messages still
    /// in flight when the horizon ends are lost.
    pub fn delay(
        mut self,
        u: NodeId,
        v: NodeId,
        rounds: std::ops::Range<usize>,
        delay: usize,
    ) -> Self {
        self.windows.push(LinkWindow {
            a: u,
            b: v,
            symmetric: true,
            start: rounds.start,
            end: rounds.end,
            effect: WindowEffect::Delay { rounds: delay },
        });
        self
    }

    /// [`delay`](Self::delay) applied to the `from → to` direction only.
    pub fn delay_one_way(
        mut self,
        from: NodeId,
        to: NodeId,
        rounds: std::ops::Range<usize>,
        delay: usize,
    ) -> Self {
        self.windows.push(LinkWindow {
            a: from,
            b: to,
            symmetric: false,
            start: rounds.start,
            end: rounds.end,
            effect: WindowEffect::Delay { rounds: delay },
        });
        self
    }

    /// Parses the line-based text format (the CLI's `--schedule` payload).
    ///
    /// One directive per line; blank lines and `#` comments are ignored:
    ///
    /// ```text
    /// seed 42                     # loss-window seed (optional)
    /// drop 2 0 1                  # round u v
    /// heal 4 0 1                  # round u v
    /// crash 3 5                   # round node
    /// rejoin 6 5                  # round node
    /// partition 2 0 1 2           # round node...
    /// heal-partition 5 0 1 2      # round node...
    /// loss 0 1 1..4 0.5           # u v rounds p      (both directions)
    /// loss-one-way 0 1 1..4 0.5   # from to rounds p
    /// delay 2 3 1..6 2            # u v rounds delay  (both directions)
    /// delay-one-way 2 3 1..6 2    # from to rounds delay
    /// ```
    ///
    /// Malformed input returns a [`ScheduleError::Parse`] naming the line;
    /// it never panics (a property test feeds this parser mutated
    /// documents).
    pub fn parse(text: &str) -> Result<Self, ScheduleError> {
        let mut schedule = TopologySchedule::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let content = raw.split('#').next().unwrap_or("").trim();
            if content.is_empty() {
                continue;
            }
            let words: Vec<&str> = content.split_whitespace().collect();
            let args = &words[1..];
            schedule = match words[0] {
                "seed" => {
                    let [s] = expect_args::<1>(line, args)?;
                    schedule.with_seed(parse_num::<u64>(line, s, "seed")?)
                }
                "drop" => {
                    let [r, u, v] = expect_args::<3>(line, args)?;
                    schedule.drop_edge(
                        parse_round(line, r)?,
                        parse_num(line, u, "node")?,
                        parse_num(line, v, "node")?,
                    )
                }
                "heal" => {
                    let [r, u, v] = expect_args::<3>(line, args)?;
                    schedule.heal_edge(
                        parse_round(line, r)?,
                        parse_num(line, u, "node")?,
                        parse_num(line, v, "node")?,
                    )
                }
                "crash" => {
                    let [r, x] = expect_args::<2>(line, args)?;
                    schedule.crash(parse_round(line, r)?, parse_num(line, x, "node")?)
                }
                "rejoin" => {
                    let [r, x] = expect_args::<2>(line, args)?;
                    schedule.rejoin(parse_round(line, r)?, parse_num(line, x, "node")?)
                }
                "partition" | "heal-partition" => {
                    if args.len() < 2 {
                        return Err(ScheduleError::Parse {
                            line,
                            reason: format!("{} needs a round and at least one node", words[0]),
                        });
                    }
                    let round = parse_round(line, args[0])?;
                    let side = args[1..]
                        .iter()
                        .map(|w| parse_num(line, w, "node"))
                        .collect::<Result<Vec<NodeId>, _>>()?;
                    if words[0] == "partition" {
                        schedule.partition(round, side)
                    } else {
                        schedule.heal_partition(round, side)
                    }
                }
                "loss" | "loss-one-way" => {
                    let [u, v, range, p] = expect_args::<4>(line, args)?;
                    let (start, end) = parse_range(line, range)?;
                    let p = parse_num::<f64>(line, p, "probability")?;
                    let (u, v) = (parse_num(line, u, "node")?, parse_num(line, v, "node")?);
                    if words[0] == "loss" {
                        schedule.loss(u, v, start..end, p)
                    } else {
                        schedule.loss_one_way(u, v, start..end, p)
                    }
                }
                "delay" | "delay-one-way" => {
                    let [u, v, range, d] = expect_args::<4>(line, args)?;
                    let (start, end) = parse_range(line, range)?;
                    let d = parse_num::<usize>(line, d, "delay")?;
                    let (u, v) = (parse_num(line, u, "node")?, parse_num(line, v, "node")?);
                    if words[0] == "delay" {
                        schedule.delay(u, v, start..end, d)
                    } else {
                        schedule.delay_one_way(u, v, start..end, d)
                    }
                }
                other => {
                    return Err(ScheduleError::Parse {
                        line,
                        reason: format!("unknown directive `{other}`"),
                    })
                }
            };
        }
        Ok(schedule)
    }

    /// Serializes back to the text format; `parse(to_script())` round-trips
    /// to an equal schedule.
    pub fn to_script(&self) -> String {
        let mut out = String::new();
        if self.seed != 0 {
            out.push_str(&format!("seed {}\n", self.seed));
        }
        for event in &self.events {
            match event {
                EdgeEvent::Drop { round, u, v } => out.push_str(&format!("drop {round} {u} {v}\n")),
                EdgeEvent::Heal { round, u, v } => out.push_str(&format!("heal {round} {u} {v}\n")),
                EdgeEvent::Crash { round, node } => {
                    out.push_str(&format!("crash {round} {node}\n"))
                }
                EdgeEvent::Rejoin { round, node } => {
                    out.push_str(&format!("rejoin {round} {node}\n"))
                }
                EdgeEvent::Partition { round, side } => {
                    out.push_str(&format!("partition {round}{}\n", join_ids(side)))
                }
                EdgeEvent::HealPartition { round, side } => {
                    out.push_str(&format!("heal-partition {round}{}\n", join_ids(side)))
                }
            }
        }
        for w in &self.windows {
            let name = match (&w.effect, w.symmetric) {
                (WindowEffect::Loss { .. }, true) => "loss",
                (WindowEffect::Loss { .. }, false) => "loss-one-way",
                (WindowEffect::Delay { .. }, true) => "delay",
                (WindowEffect::Delay { .. }, false) => "delay-one-way",
            };
            let tail = match &w.effect {
                WindowEffect::Loss { p } => format!("{p}"),
                WindowEffect::Delay { rounds } => format!("{rounds}"),
            };
            out.push_str(&format!("{name} {} {} {}..{} {tail}\n", w.a, w.b, w.start, w.end));
        }
        out
    }

    /// Validates the schedule against `base` and resolves its events into
    /// per-round edge transitions.
    ///
    /// An edge is *down* while any cause holds: an unhealed `drop`, a
    /// partition that cut it, or a crashed endpoint. Heals are
    /// reference-counted against drops (healing an edge that was never
    /// dropped — or healing a partition twice — is an error), and a heal
    /// does not resurrect an edge that another cause still holds down: a
    /// dropped edge whose endpoint is also crashed stays down until the
    /// rejoin.
    pub fn compile(&self, base: &Graph) -> Result<CompiledSchedule, ScheduleError> {
        let n = base.node_count();
        let invalid = |reason: String| ScheduleError::Invalid { reason };
        let check_node = |x: NodeId| {
            (x < n).then_some(()).ok_or_else(|| invalid(format!("node {x} out of range (n = {n})")))
        };
        for w in &self.windows {
            check_node(w.a)?;
            check_node(w.b)?;
            if !base.has_edge(w.a, w.b) {
                return Err(invalid(format!("window names non-edge ({}, {})", w.a, w.b)));
            }
            if w.start == 0 || w.start >= w.end {
                return Err(invalid(format!(
                    "window rounds {}..{} must satisfy 1 <= start < end",
                    w.start, w.end
                )));
            }
            match w.effect {
                WindowEffect::Loss { p } => {
                    if !(0.0..=1.0).contains(&p) {
                        return Err(invalid(format!("loss probability {p} outside [0, 1]")));
                    }
                }
                WindowEffect::Delay { rounds } => {
                    if rounds == 0 {
                        return Err(invalid("delay of 0 rounds is a no-op".into()));
                    }
                }
            }
        }

        // Group events by round (stable within a round), then walk rounds
        // in order tracking every cause of edge downness.
        let mut by_round: BTreeMap<usize, Vec<&EdgeEvent>> = BTreeMap::new();
        for event in &self.events {
            if event.round() == 0 {
                return Err(invalid("rounds are 1-based; round 0 never executes".into()));
            }
            by_round.entry(event.round()).or_default().push(event);
        }

        let norm = |u: NodeId, v: NodeId| (u.min(v), u.max(v));
        let mut drop_refs: BTreeMap<(NodeId, NodeId), usize> = BTreeMap::new();
        let mut crashed: BTreeSet<NodeId> = BTreeSet::new();
        let edge_up = |e: &(NodeId, NodeId),
                       drop_refs: &BTreeMap<(NodeId, NodeId), usize>,
                       crashed: &BTreeSet<NodeId>| {
            drop_refs.get(e).copied().unwrap_or(0) == 0
                && !crashed.contains(&e.0)
                && !crashed.contains(&e.1)
        };
        let mut transitions: BTreeMap<usize, Vec<(NodeId, NodeId, bool)>> = BTreeMap::new();
        for (&round, events) in &by_round {
            // Edges an event of this round touches, with their state before
            // the round; diffed after all of the round's events applied.
            let mut touched: BTreeMap<(NodeId, NodeId), bool> = BTreeMap::new();
            let touch = |e: (NodeId, NodeId),
                         drop_refs: &BTreeMap<(NodeId, NodeId), usize>,
                         crashed: &BTreeSet<NodeId>,
                         touched: &mut BTreeMap<(NodeId, NodeId), bool>| {
                touched.entry(e).or_insert_with(|| edge_up(&e, drop_refs, crashed));
            };
            for event in events {
                match event {
                    EdgeEvent::Drop { u, v, .. } | EdgeEvent::Heal { u, v, .. } => {
                        check_node(*u)?;
                        check_node(*v)?;
                        if !base.has_edge(*u, *v) {
                            return Err(invalid(format!("({u}, {v}) is not a base-graph edge")));
                        }
                        let e = norm(*u, *v);
                        touch(e, &drop_refs, &crashed, &mut touched);
                        if matches!(event, EdgeEvent::Drop { .. }) {
                            *drop_refs.entry(e).or_insert(0) += 1;
                        } else {
                            let refs = drop_refs.entry(e).or_insert(0);
                            if *refs == 0 {
                                return Err(invalid(format!(
                                    "heal of ({u}, {v}) at round {round} without a matching drop"
                                )));
                            }
                            *refs -= 1;
                        }
                    }
                    EdgeEvent::Crash { node, .. } => {
                        check_node(*node)?;
                        // Snapshot incident-edge state *before* the crash.
                        for nbr in base.neighbors(*node) {
                            touch(norm(*node, nbr), &drop_refs, &crashed, &mut touched);
                        }
                        if !crashed.insert(*node) {
                            return Err(invalid(format!(
                                "node {node} crashed twice without a rejoin"
                            )));
                        }
                    }
                    EdgeEvent::Rejoin { node, .. } => {
                        check_node(*node)?;
                        for nbr in base.neighbors(*node) {
                            touch(norm(*node, nbr), &drop_refs, &crashed, &mut touched);
                        }
                        if !crashed.remove(node) {
                            return Err(invalid(format!(
                                "rejoin of node {node} at round {round} without a crash"
                            )));
                        }
                    }
                    EdgeEvent::Partition { side, .. } | EdgeEvent::HealPartition { side, .. } => {
                        let side: BTreeSet<NodeId> = side.iter().copied().collect();
                        for &x in &side {
                            check_node(x)?;
                        }
                        if side.is_empty() || side.len() == n {
                            return Err(invalid(
                                "a partition side must be a non-empty proper subset".into(),
                            ));
                        }
                        let healing = matches!(event, EdgeEvent::HealPartition { .. });
                        for &u in &side {
                            for v in base.neighbors(u) {
                                if side.contains(&v) {
                                    continue;
                                }
                                let e = norm(u, v);
                                touch(e, &drop_refs, &crashed, &mut touched);
                                let refs = drop_refs.entry(e).or_insert(0);
                                if healing {
                                    if *refs == 0 {
                                        return Err(invalid(format!(
                                            "heal-partition at round {round} heals ({}, {}) \
                                             which is not down",
                                            e.0, e.1
                                        )));
                                    }
                                    *refs -= 1;
                                } else {
                                    *refs += 1;
                                }
                            }
                        }
                    }
                }
            }
            let mut flips: Vec<(NodeId, NodeId, bool)> = touched
                .into_iter()
                .filter_map(|(e, was_up)| {
                    let now_up = edge_up(&e, &drop_refs, &crashed);
                    (now_up != was_up).then_some((e.0, e.1, now_up))
                })
                .collect();
            flips.sort_unstable();
            if !flips.is_empty() {
                transitions.insert(round, flips);
            }
        }

        let last_transition_round = transitions.keys().next_back().copied().unwrap_or(0);
        Ok(CompiledSchedule {
            n,
            seed: self.seed,
            base: base.clone(),
            transitions,
            windows: self.windows.clone(),
            last_transition_round,
        })
    }
}

fn join_ids(ids: &[NodeId]) -> String {
    ids.iter().map(|x| format!(" {x}")).collect()
}

fn expect_args<'a, const K: usize>(
    line: usize,
    args: &[&'a str],
) -> Result<[&'a str; K], ScheduleError> {
    <[&str; K]>::try_from(args).map_err(|_| ScheduleError::Parse {
        line,
        reason: format!("expected {K} argument(s), found {}", args.len()),
    })
}

fn parse_num<T: std::str::FromStr>(
    line: usize,
    word: &str,
    what: &str,
) -> Result<T, ScheduleError> {
    word.parse::<T>()
        .map_err(|_| ScheduleError::Parse { line, reason: format!("invalid {what} `{word}`") })
}

fn parse_round(line: usize, word: &str) -> Result<usize, ScheduleError> {
    parse_num::<usize>(line, word, "round")
}

fn parse_range(line: usize, word: &str) -> Result<(usize, usize), ScheduleError> {
    let (a, b) = word.split_once("..").ok_or_else(|| ScheduleError::Parse {
        line,
        reason: format!("invalid round range `{word}` (expected `start..end`)"),
    })?;
    Ok((parse_num(line, a, "round")?, parse_num(line, b, "round")?))
}

/// A validated schedule resolved against one base graph: the single source
/// of truth every node's [`ScheduleState`] reads, shared via `Arc`.
#[derive(Debug, Clone)]
pub struct CompiledSchedule {
    n: usize,
    seed: u64,
    base: Graph,
    /// Round → edge flips `(u, v, up)` with `u < v`, sorted, taking effect
    /// before that round's sends.
    transitions: BTreeMap<usize, Vec<(NodeId, NodeId, bool)>>,
    windows: Vec<LinkWindow>,
    last_transition_round: usize,
}

impl CompiledSchedule {
    /// The base graph the schedule was compiled against.
    pub fn base(&self) -> &Graph {
        &self.base
    }

    /// The rounds at which at least one edge changes state, ascending.
    pub fn transition_rounds(&self) -> impl Iterator<Item = usize> + '_ {
        self.transitions.keys().copied()
    }

    /// The edge flips taking effect at the start of `round` (`(u, v, up)`
    /// with `u < v`, sorted), if any.
    pub fn transitions_at(&self, round: usize) -> &[(NodeId, NodeId, bool)] {
        self.transitions.get(&round).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The last round at which any edge changes state (0 when none do).
    pub fn last_transition_round(&self) -> usize {
        self.last_transition_round
    }

    /// Ground truth: the live graph during `round` — the base graph with
    /// every transition up to and including `round` applied. Rebuilt by
    /// replay; callers walking many rounds should iterate
    /// [`transition_rounds`](Self::transition_rounds) and apply
    /// [`transitions_at`](Self::transitions_at) incrementally (the
    /// `ConnectivityOracle`'s XOR fingerprint absorbs exactly such
    /// incremental updates via `Fingerprint::toggle_edge`).
    pub fn graph_at(&self, round: usize) -> Graph {
        let mut g = self.base.clone();
        for (&r, flips) in &self.transitions {
            if r > round {
                break;
            }
            for &(u, v, up) in flips {
                if up {
                    g.add_edge(u, v).expect("compiled transitions stay in range");
                } else {
                    g.remove_edge(u, v);
                }
            }
        }
        g
    }

    /// Starts a per-node cursor over this schedule.
    pub fn state(self: &Arc<Self>) -> ScheduleState {
        ScheduleState { compiled: Arc::clone(self), down: BTreeSet::new(), round: 0 }
    }
}

/// What the schedule decides for one outgoing message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// Deliver normally this round.
    Deliver,
    /// Silently drop (down edge, or a loss window fired).
    Drop,
    /// Deliver this many rounds late.
    Delay(usize),
}

/// A cursor over a [`CompiledSchedule`]: the set of currently-down edges,
/// advanced monotonically round by round. Cloneable — every node holds its
/// own cursor over the shared compiled schedule, so no engine needs
/// cross-node coordination to consult it.
#[derive(Debug, Clone)]
pub struct ScheduleState {
    compiled: Arc<CompiledSchedule>,
    down: BTreeSet<(NodeId, NodeId)>,
    round: usize,
}

impl ScheduleState {
    /// Applies every transition up to and including `round`. Monotone and
    /// idempotent; called by [`Scheduled`] at each round's first poll.
    pub fn advance_to(&mut self, round: usize) {
        while self.round < round {
            self.round += 1;
            for &(u, v, up) in self.compiled.transitions_at(self.round) {
                if up {
                    self.down.remove(&(u, v));
                } else {
                    self.down.insert((u, v));
                }
            }
        }
    }

    /// Whether edge `{u, v}` is currently up (at the round last advanced
    /// to). Edges outside the base graph are never up.
    pub fn edge_up(&self, u: NodeId, v: NodeId) -> bool {
        let e = (u.min(v), u.max(v));
        self.compiled.base.has_edge(u, v) && !self.down.contains(&e)
    }

    /// The fate of the `k`-th message from `from` to `to` during `round`
    /// (which must be the round last advanced to). Pure in
    /// `(round, from, to, k)` and the compiled schedule — no engine, worker
    /// count or poll order can change the answer.
    pub fn message_fate(&self, round: usize, from: NodeId, to: NodeId, k: u64) -> Fate {
        debug_assert_eq!(round, self.round, "fate consulted without advancing the cursor");
        if !self.edge_up(from, to) {
            return Fate::Drop;
        }
        for w in &self.compiled.windows {
            if !w.matches(round, from, to) {
                continue;
            }
            match w.effect {
                WindowEffect::Loss { p } => {
                    if loss_roll(self.compiled.seed, round, from, to, k) < p {
                        return Fate::Drop;
                    }
                }
                WindowEffect::Delay { rounds } => return Fate::Delay(rounds),
            }
        }
        Fate::Deliver
    }

    fn compiled(&self) -> &CompiledSchedule {
        &self.compiled
    }
}

/// Deterministic per-message loss roll in `[0, 1)`: a SplitMix64 finalize
/// over the seed and message coordinates. Stateless on purpose — a stateful
/// RNG would couple the outcome to poll order, which differs across
/// engines.
fn loss_roll(seed: u64, round: usize, from: NodeId, to: NodeId, k: u64) -> f64 {
    let mut x = seed
        ^ (round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (from as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ (to as u64).wrapping_mul(0x94D0_49BB_1331_11EB)
        ^ k.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Wraps a [`Process`] so a [`CompiledSchedule`] governs its connectivity.
///
/// At each round's first poll the wrapper advances its cursor, notifies the
/// inner process of incident link transitions ([`Process::link_changed`]),
/// releases any delayed messages that matured, and filters the inner
/// process's fresh sends through [`ScheduleState::message_fate`]. Messages
/// to non-neighbors of the *base* graph pass through untouched so the
/// engine's illegal-send accounting is unchanged.
///
/// The wrapper reports non-quiescent until its last incident transition has
/// been delivered and its delay buffer is empty — that is what re-wakes a
/// quiescent node on the event/parallel engines when an edge heals.
#[derive(Debug)]
pub struct Scheduled<P: Process> {
    inner: P,
    state: ScheduleState,
    /// Incident `(round, peer, up)` notifications, ascending round.
    notices: Vec<(usize, NodeId, bool)>,
    notice_cursor: usize,
    /// Delayed messages keyed by delivery round, in emission order.
    delayed: BTreeMap<usize, Vec<Outgoing<P::Msg>>>,
    drops: u64,
}

impl<P: Process> Scheduled<P> {
    /// Wraps `inner` with its cursor over `compiled`.
    pub fn new(inner: P, compiled: &Arc<CompiledSchedule>) -> Self {
        let id = inner.id();
        let notices = compiled
            .transitions
            .iter()
            .flat_map(|(&round, flips)| {
                flips.iter().filter_map(move |&(u, v, up)| {
                    if u == id {
                        Some((round, v, up))
                    } else if v == id {
                        Some((round, u, up))
                    } else {
                        None
                    }
                })
            })
            .collect();
        Scheduled {
            inner,
            state: compiled.state(),
            notices,
            notice_cursor: 0,
            delayed: BTreeMap::new(),
            drops: 0,
        }
    }

    /// Wraps a whole fleet (node order preserved).
    pub fn wrap_all(procs: Vec<P>, compiled: &Arc<CompiledSchedule>) -> Vec<Scheduled<P>> {
        procs.into_iter().map(|p| Scheduled::new(p, compiled)).collect()
    }

    /// The wrapped process.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Messages this node's schedule dropped (down edges + loss windows).
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Messages still in the delay buffer (sent, never matured — lost to
    /// the horizon).
    pub fn in_flight(&self) -> usize {
        self.delayed.values().map(Vec::len).sum()
    }

    /// Unwraps the inner process.
    pub fn into_inner(self) -> P {
        self.inner
    }
}

impl<P: Process> Process for Scheduled<P> {
    type Msg = P::Msg;

    fn id(&self) -> NodeId {
        self.inner.id()
    }

    fn send(&mut self, round: usize) -> Vec<Outgoing<Self::Msg>> {
        self.state.advance_to(round);
        while let Some(&(r, peer, up)) = self.notices.get(self.notice_cursor) {
            if r > round {
                break;
            }
            self.notice_cursor += 1;
            self.inner.link_changed(r, peer, up);
        }
        // Matured delayed messages go out first (oldest first); because the
        // wrapper stays non-quiescent while the buffer is non-empty, it is
        // polled every round and nothing matures unobserved.
        let mut out: Vec<Outgoing<Self::Msg>> = Vec::new();
        while let Some((&r, _)) = self.delayed.first_key_value() {
            if r > round {
                break;
            }
            debug_assert_eq!(r, round, "a delayed message matured unobserved");
            out.extend(self.delayed.remove(&r).expect("key just observed"));
        }
        let id = self.inner.id();
        let n = self.state.compiled().n;
        let mut per_link: BTreeMap<NodeId, u64> = BTreeMap::new();
        for o in self.inner.send(round) {
            if o.to >= n || !self.state.compiled().base.has_edge(id, o.to) {
                // Not a channel at all: let the engine count the violation.
                out.push(o);
                continue;
            }
            let k = per_link.entry(o.to).or_insert(0);
            let fate = self.state.message_fate(round, id, o.to, *k);
            *k += 1;
            match fate {
                Fate::Deliver => out.push(o),
                Fate::Drop => self.drops += 1,
                Fate::Delay(d) => self.delayed.entry(round + d).or_default().push(o),
            }
        }
        out
    }

    fn receive(&mut self, round: usize, from: NodeId, msg: Self::Msg) {
        self.inner.receive(round, from, msg);
    }

    fn quiescent(&self) -> bool {
        self.notice_cursor == self.notices.len()
            && self.delayed.is_empty()
            && self.inner.quiescent()
    }

    fn link_changed(&mut self, round: usize, peer: NodeId, up: bool) {
        self.inner.link_changed(round, peer, up);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::WireSized;
    use crate::sync::SyncNetwork;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Token(u32);

    impl WireSized for Token {
        fn wire_bytes(&self) -> usize {
            4
        }
    }

    /// Reactive flooder: relays every newly learned token to all peers, and
    /// re-announces everything it knows when a link comes up — the behaviour
    /// a healed edge must re-wake.
    #[derive(Debug)]
    struct Flood {
        id: usize,
        peers: Vec<usize>,
        known: BTreeSet<u32>,
        outbox: Vec<u32>,
    }

    impl Flood {
        fn new(id: usize, peers: Vec<usize>) -> Self {
            Flood { id, peers, known: [id as u32].into(), outbox: vec![id as u32] }
        }
    }

    impl Process for Flood {
        type Msg = Token;

        fn id(&self) -> usize {
            self.id
        }

        fn send(&mut self, _round: usize) -> Vec<Outgoing<Token>> {
            let outbox = std::mem::take(&mut self.outbox);
            self.peers
                .iter()
                .flat_map(|&to| outbox.iter().map(move |&t| Outgoing::new(to, Token(t))))
                .collect()
        }

        fn receive(&mut self, _round: usize, _from: usize, msg: Token) {
            if self.known.insert(msg.0) {
                self.outbox.push(msg.0);
            }
        }

        fn quiescent(&self) -> bool {
            self.outbox.is_empty()
        }

        fn link_changed(&mut self, _round: usize, _peer: usize, up: bool) {
            if up {
                let mut known: Vec<u32> = self.known.iter().copied().collect();
                self.outbox.append(&mut known);
            }
        }
    }

    fn flood_fleet(g: &Graph, compiled: &Arc<CompiledSchedule>) -> Vec<Scheduled<Flood>> {
        let procs =
            (0..g.node_count()).map(|i| Flood::new(i, g.neighborhood(i))).collect::<Vec<_>>();
        Scheduled::wrap_all(procs, compiled)
    }

    fn path4() -> Graph {
        Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn script_round_trips_through_parse() {
        let schedule = TopologySchedule::new()
            .with_seed(9)
            .drop_edge(2, 0, 1)
            .crash(3, 2)
            .rejoin(5, 2)
            .heal_edge(4, 0, 1)
            .partition(2, [0, 1])
            .heal_partition(6, [0, 1])
            .loss(0, 1, 1..4, 0.25)
            .loss_one_way(1, 2, 2..3, 1.0)
            .delay(2, 3, 1..6, 2)
            .delay_one_way(3, 2, 1..2, 1);
        let script = schedule.to_script();
        assert_eq!(TopologySchedule::parse(&script).unwrap(), schedule);
    }

    #[test]
    fn parse_rejects_malformed_lines_with_line_numbers() {
        for (text, line) in [
            ("warp 1 2", 1),
            ("drop 1 2", 1),
            ("\n\ndrop one 2 3", 3),
            ("seed 1\nloss 0 1 1-4 0.5", 2),
            ("crash 1 2 3", 1),
            ("partition 4", 1),
            ("delay 0 1 3..5 x", 1),
        ] {
            match TopologySchedule::parse(text) {
                Err(ScheduleError::Parse { line: l, .. }) => assert_eq!(l, line, "{text:?}"),
                other => panic!("{text:?} parsed as {other:?}"),
            }
        }
        // Comments and blank lines are fine.
        assert!(TopologySchedule::parse("# nothing\n\n  # here\n").unwrap().is_empty());
    }

    #[test]
    fn compile_validates_against_the_base_graph() {
        let g = path4();
        let bad = [
            TopologySchedule::new().drop_edge(1, 0, 3),
            TopologySchedule::new().drop_edge(1, 0, 9),
            TopologySchedule::new().drop_edge(0, 0, 1),
            TopologySchedule::new().heal_edge(2, 0, 1),
            TopologySchedule::new().crash(1, 2).crash(2, 2),
            TopologySchedule::new().rejoin(3, 1),
            TopologySchedule::new().partition(1, []),
            TopologySchedule::new().partition(1, [0, 1, 2, 3]),
            TopologySchedule::new().heal_partition(2, [0]),
            TopologySchedule::new().loss(0, 1, 1..4, 1.5),
            TopologySchedule::new().loss(0, 1, 4..4, 0.5),
            TopologySchedule::new().delay(0, 1, 1..4, 0),
        ];
        for schedule in bad {
            assert!(
                matches!(schedule.compile(&g), Err(ScheduleError::Invalid { .. })),
                "{schedule:?} compiled"
            );
        }
    }

    #[test]
    fn overlapping_causes_keep_an_edge_down_until_all_lift() {
        // Edge (1,2) is both dropped and crashed-at-2: the heal at round 4
        // must not resurrect it; only the rejoin at round 6 does.
        let g = path4();
        let compiled = TopologySchedule::new()
            .drop_edge(2, 1, 2)
            .crash(3, 2)
            .heal_edge(4, 1, 2)
            .rejoin(6, 2)
            .compile(&g)
            .unwrap();
        assert!(compiled.graph_at(1).has_edge(1, 2));
        assert!(!compiled.graph_at(2).has_edge(1, 2));
        assert!(!compiled.graph_at(3).has_edge(2, 3), "crash cuts all incident edges");
        assert!(!compiled.graph_at(4).has_edge(1, 2), "healed but endpoint still crashed");
        assert!(!compiled.graph_at(5).has_edge(1, 2));
        assert!(compiled.graph_at(6).has_edge(1, 2));
        assert!(compiled.graph_at(6).has_edge(2, 3));
        assert_eq!(compiled.last_transition_round(), 6);
        // Round 4's heal changes nothing observable: no transition emitted.
        assert_eq!(compiled.transition_rounds().collect::<Vec<_>>(), vec![2, 3, 6]);
    }

    #[test]
    fn partitions_cut_exactly_the_crossing_edges() {
        let g = nectar_graph::gen::cycle(6);
        let compiled = TopologySchedule::new()
            .partition(2, [0, 1, 2])
            .heal_partition(4, [0, 1, 2])
            .compile(&g)
            .unwrap();
        let during = compiled.graph_at(2);
        assert!(!during.has_edge(2, 3));
        assert!(!during.has_edge(5, 0));
        assert!(during.has_edge(0, 1));
        assert!(during.has_edge(3, 4));
        assert_eq!(compiled.graph_at(4), g, "heal restores the base graph");
    }

    #[test]
    fn scheduled_wrapper_drops_and_counts_messages_on_down_edges() {
        let g = path4();
        let compiled = Arc::new(TopologySchedule::new().drop_edge(1, 1, 2).compile(&g).unwrap());
        let mut net = SyncNetwork::new(flood_fleet(&g, &compiled), g.clone());
        net.run_rounds(3);
        let (procs, metrics) = net.into_parts();
        // The split is permanent: tokens never cross (1,2).
        assert_eq!(procs[0].inner().known, [0, 1].into());
        assert_eq!(procs[3].inner().known, [2, 3].into());
        assert_eq!(metrics.illegal_sends(), 0, "schedule drops are not protocol violations");
        let drops: u64 = procs.iter().map(|p| p.drops()).sum();
        assert!(drops > 0);
    }

    #[test]
    fn healed_link_re_floods_via_link_changed() {
        let g = path4();
        let compiled = Arc::new(
            TopologySchedule::new().drop_edge(1, 1, 2).heal_edge(4, 1, 2).compile(&g).unwrap(),
        );
        let mut net = SyncNetwork::new(flood_fleet(&g, &compiled), g.clone());
        net.run_rounds(7);
        let (procs, _) = net.into_parts();
        for p in &procs {
            assert_eq!(p.inner().known, [0, 1, 2, 3].into(), "node {}", p.inner().id);
        }
    }

    #[test]
    fn delayed_messages_arrive_late_and_in_flight_ones_die_at_the_horizon() {
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let compiled = Arc::new(TopologySchedule::new().delay(0, 1, 1..2, 2).compile(&g).unwrap());
        let mut net = SyncNetwork::new(flood_fleet(&g, &compiled), g.clone());
        net.run_rounds(2);
        {
            let procs = net.processes();
            assert_eq!(procs[0].inner().known, [0].into(), "round-1 tokens still in flight");
            assert_eq!(procs[1].inner().known, [1].into(), "round-1 tokens still in flight");
            assert_eq!(procs[0].in_flight() + procs[1].in_flight(), 2);
        }
        net.run_rounds(1);
        let (procs, metrics) = net.into_parts();
        assert_eq!(procs[0].inner().known, [0, 1].into(), "delayed token landed at round 3");
        assert_eq!(procs[1].inner().known, [0, 1].into(), "delayed token landed at round 3");
        // The delayed sends are charged to their delivery round.
        assert_eq!(metrics.bytes_per_round()[0], 0);
        assert!(metrics.bytes_per_round()[2] > 0);
    }

    #[test]
    fn loss_windows_are_deterministic_and_probability_extremes_are_exact() {
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let run = |p: f64, seed: u64| {
            let compiled = Arc::new(
                TopologySchedule::new().with_seed(seed).loss(0, 1, 1..100, p).compile(&g).unwrap(),
            );
            let mut net = SyncNetwork::new(flood_fleet(&g, &compiled), g.clone());
            net.run_rounds(4);
            let (procs, metrics) = net.into_parts();
            (procs.iter().map(|p| p.drops()).sum::<u64>(), metrics.total_bytes_sent())
        };
        assert_eq!(run(1.0, 7).1, 0, "p = 1 drops everything");
        assert_eq!(run(0.0, 7).0, 0, "p = 0 drops nothing");
        assert_eq!(run(0.5, 7), run(0.5, 7), "same seed, same fate");
    }

    #[test]
    fn cross_engine_outcomes_are_identical_under_a_busy_schedule() {
        // Flap + churn + loss + delay on a cycle, run on all four engines:
        // final protocol state, metrics and drop counters must match bit
        // for bit. This is the in-crate seed of the schedule-equivalence
        // suite in tests/schedules.rs.
        let g = nectar_graph::gen::cycle(6);
        let schedule = TopologySchedule::new()
            .with_seed(11)
            .drop_edge(1, 0, 1)
            .heal_edge(3, 0, 1)
            .crash(2, 4)
            .rejoin(4, 4)
            .partition(5, [0, 1])
            .heal_partition(6, [0, 1])
            .loss(2, 3, 1..5, 0.5)
            .delay(1, 2, 2..4, 1);
        let compiled = Arc::new(schedule.compile(&g).unwrap());
        let rounds = 8;
        // Observable outcome only: a quiescent node's schedule cursor may
        // lag on the engines that stop polling it, and that is fine.
        let snapshot = |procs: &[Scheduled<Flood>], m: &crate::metrics::Metrics| {
            let states: Vec<(String, u64, usize)> = procs
                .iter()
                .map(|p| (format!("{:?}", p.inner()), p.drops(), p.in_flight()))
                .collect();
            (states, m.clone())
        };
        let mut sync_net = SyncNetwork::new(flood_fleet(&g, &compiled), g.clone());
        sync_net.run_rounds(rounds);
        let (sync_procs, sync_metrics) = sync_net.into_parts();
        let reference = snapshot(&sync_procs, &sync_metrics);
        assert!(sync_procs.iter().map(|p| p.drops()).sum::<u64>() > 0, "schedule must bite");

        let (procs, metrics) =
            crate::threaded::run_threaded(flood_fleet(&g, &compiled), &g, rounds);
        assert_eq!(snapshot(&procs, &metrics), reference, "threaded drifted");

        let (procs, metrics) =
            crate::event::run_event_driven(flood_fleet(&g, &compiled), &g, rounds);
        assert_eq!(snapshot(&procs, &metrics), reference, "event drifted");

        for workers in [0, 2, 3, 7] {
            let (procs, metrics) =
                crate::parallel::run_parallel(flood_fleet(&g, &compiled), &g, rounds, workers);
            assert_eq!(snapshot(&procs, &metrics), reference, "parallel/{workers} drifted");
        }
    }

    #[test]
    fn wrapper_keeps_nodes_schedulable_until_their_last_transition() {
        let g = path4();
        let compiled = Arc::new(
            TopologySchedule::new().drop_edge(2, 0, 1).heal_edge(5, 0, 1).compile(&g).unwrap(),
        );
        let mut node = Scheduled::new(Flood::new(0, vec![1]), &compiled);
        let _ = node.send(1);
        assert!(!node.quiescent(), "transitions pending at rounds 2 and 5");
        let _ = node.send(2);
        assert!(!node.quiescent(), "heal still pending");
        let _ = node.send(3);
        let _ = node.send(4);
        assert!(!node.quiescent());
        let out = node.send(5);
        assert!(!out.is_empty(), "link-up re-announce fires at the heal round");
        let _ = node.send(6);
        assert!(node.quiescent(), "schedule exhausted, outbox drained");
    }
}
