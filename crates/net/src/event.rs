//! Event-driven runtime: every node multiplexed on one event loop.
//!
//! The thread-per-node runtime ([`crate::threaded`]) mirrors the paper's
//! evaluation setup but caps practical system sizes at a few hundred nodes
//! (one OS thread each). This runtime removes that ceiling: all nodes run
//! as state machines on a single thread, driven by a binary-heap event
//! queue holding three event kinds —
//!
//! * **round ticks** ([`Phase::Send`]): a node is polled for its outgoing
//!   messages at a given round,
//! * **message deliveries** ([`Phase::Deliver`]): one queued message
//!   reaches its destination,
//! * **epoch boundaries** ([`Phase::EpochEnd`]): the run's round horizon,
//!   itself an event, closes the epoch when it surfaces.
//!
//! Cost is `O(active events · log queue)` instead of `O(n · rounds)`:
//! nodes whose [`Process::quiescent`] hint reports an empty outbox are not
//! polled again until a delivery re-activates them, so a 10 000-node
//! NECTAR scenario whose dissemination quiesces after a handful of rounds
//! finishes almost immediately even though the paper's default horizon is
//! `n − 1 = 9 999` rounds.
//!
//! Event ordering reproduces the synchronous model (§II) exactly: all
//! sends of round `R` precede all deliveries of round `R`, deliveries are
//! sorted by destination, then sender, then emission order — the precise
//! order [`crate::sync::SyncNetwork`] uses — so outcomes are bit-identical
//! to every other runtime (the cross-runtime equivalence suite asserts
//! this, metrics included; the contract is `docs/DETERMINISM.md`).

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

use nectar_graph::Graph;

use crate::metrics::Metrics;
use crate::process::{NodeId, Process, RoundSink, WireSized};

/// What an event does when it surfaces from the queue. Declaration order is
/// scheduling order within a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Phase {
    /// Poll a node for its outgoing messages (a round tick for that node).
    Send,
    /// Deliver one in-flight message to its destination.
    Deliver,
    /// Close the current epoch: the run's round horizon.
    EpochEnd,
}

/// One queued event. Ordered by `(round, phase, node, from, seq)`; `seq` is
/// a global emission counter, so messages from one sender to one
/// destination keep their production order.
struct Event<M> {
    round: usize,
    phase: Phase,
    /// Sending node for [`Phase::Send`], destination for [`Phase::Deliver`].
    node: NodeId,
    /// Sender ([`Phase::Deliver`] only).
    from: NodeId,
    seq: u64,
    /// Payload ([`Phase::Deliver`] only).
    msg: Option<M>,
}

impl<M> Event<M> {
    fn key(&self) -> (usize, Phase, NodeId, NodeId, u64) {
        (self.round, self.phase, self.node, self.from, self.seq)
    }
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl<M> Eq for Event<M> {}

impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key().cmp(&other.key())
    }
}

/// An event-driven network executing one [`Process`] per topology node on a
/// single thread, scheduling only active nodes.
pub struct EventNetwork<P: Process> {
    processes: Vec<P>,
    topology: Graph,
    metrics: Metrics,
    queue: BinaryHeap<Reverse<Event<P::Msg>>>,
    /// Per node, the highest round for which a Send event is already queued
    /// (0 = none), deduplicating activations from multiple deliveries.
    send_scheduled: Vec<usize>,
    seq: u64,
    next_round: usize,
    events_processed: u64,
}

impl<P: Process> std::fmt::Debug for EventNetwork<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventNetwork")
            .field("nodes", &self.processes.len())
            .field("next_round", &self.next_round)
            .field("queued_events", &self.queue.len())
            .field("events_processed", &self.events_processed)
            .finish()
    }
}

impl<P: Process> EventNetwork<P> {
    /// Creates a network over `topology` with one process per node. Every
    /// node receives an initial round-1 tick (round 1 is the announcement
    /// round of every protocol in the tree; from round 2 on, only active
    /// nodes stay scheduled).
    ///
    /// # Panics
    ///
    /// Panics unless `processes[i].id() == i` for every `i` and the process
    /// count equals the topology's node count.
    pub fn new(processes: Vec<P>, topology: Graph) -> Self {
        assert_eq!(
            processes.len(),
            topology.node_count(),
            "need exactly one process per topology node"
        );
        for (i, p) in processes.iter().enumerate() {
            assert_eq!(p.id(), i, "process at index {i} reports id {}", p.id());
        }
        let n = processes.len();
        let mut net = EventNetwork {
            processes,
            topology,
            metrics: Metrics::new(n),
            queue: BinaryHeap::new(),
            send_scheduled: vec![0; n],
            seq: 0,
            next_round: 1,
            events_processed: 0,
        };
        for i in 0..n {
            net.schedule_send(1, i);
        }
        net
    }

    /// Runs `rounds` further synchronous rounds (or less work than that:
    /// the loop ends as soon as the queue holds nothing but the epoch
    /// boundary, i.e. once every node has quiesced).
    pub fn run_rounds(&mut self, rounds: usize) {
        self.run_rounds_with(rounds, &mut ());
    }

    /// [`run_rounds`](Self::run_rounds), reporting each committed round to
    /// `sink`. A round is committed the moment the first event of a later
    /// round surfaces (the heap is ordered, so nothing of the earlier round
    /// can still be queued); rounds the quiescence scheduling skipped
    /// entirely still fire, in order, with the zero traffic they carried —
    /// so the sink stream is identical to [`crate::sync::SyncNetwork`]'s.
    pub fn run_rounds_with<S: RoundSink + ?Sized>(&mut self, rounds: usize, sink: &mut S) {
        if rounds == 0 {
            return;
        }
        let horizon = self.next_round + rounds - 1;
        self.queue.push(Reverse(Event {
            round: horizon,
            phase: Phase::EpochEnd,
            node: 0,
            from: 0,
            seq: 0,
            msg: None,
        }));
        // First round not yet reported to the sink.
        let mut uncommitted = self.next_round;
        while let Some(Reverse(ev)) = self.queue.pop() {
            self.events_processed += 1;
            while uncommitted < ev.round {
                sink.round_committed(uncommitted, self.round_bytes(uncommitted));
                uncommitted += 1;
            }
            match ev.phase {
                Phase::Send => self.fire_send(ev.round, ev.node),
                Phase::Deliver => {
                    let msg = ev.msg.expect("deliver events carry a message");
                    self.processes[ev.node].receive(ev.round, ev.from, msg);
                    // A delivery may refill the destination's outbox.
                    self.schedule_send(ev.round + 1, ev.node);
                }
                Phase::EpochEnd => {
                    // The boundary sorts after every send/delivery of the
                    // horizon round, so the horizon commits here.
                    sink.round_committed(horizon, self.round_bytes(horizon));
                    self.next_round = ev.round + 1;
                    return;
                }
            }
        }
        unreachable!("the epoch-boundary event always surfaces");
    }

    /// Bytes committed during `round` (0 when the round carried nothing).
    fn round_bytes(&self, round: usize) -> u64 {
        self.metrics.bytes_per_round().get(round - 1).copied().unwrap_or(0)
    }

    /// Polls node `i` for round `round` and queues its deliveries.
    fn fire_send(&mut self, round: usize, i: NodeId) {
        for out in self.processes[i].send(round) {
            if out.to >= self.processes.len() || !self.topology.has_edge(i, out.to) {
                self.metrics.record_illegal_send();
                continue;
            }
            self.metrics.record_send(round, i, out.to, WireSized::wire_bytes(&out.msg));
            self.seq += 1;
            self.queue.push(Reverse(Event {
                round,
                phase: Phase::Deliver,
                node: out.to,
                from: i,
                seq: self.seq,
                msg: Some(out.msg),
            }));
        }
        // Nodes that may still send spontaneously stay on the schedule;
        // quiescent ones wait for a delivery to re-activate them.
        if !self.processes[i].quiescent() {
            self.schedule_send(round + 1, i);
        }
    }

    /// Queues a round tick for node `i`, unless one is already queued.
    fn schedule_send(&mut self, round: usize, i: NodeId) {
        if self.send_scheduled[i] < round {
            self.send_scheduled[i] = round;
            self.queue.push(Reverse(Event {
                round,
                phase: Phase::Send,
                node: i,
                from: 0,
                seq: 0,
                msg: None,
            }));
        }
    }

    /// The round the next [`run_rounds`](Self::run_rounds) call starts at
    /// (1-based).
    pub fn next_round(&self) -> usize {
        self.next_round
    }

    /// Total events processed so far (round ticks + deliveries + epoch
    /// boundaries) — the runtime's actual work, which quiescence keeps far
    /// below `n · rounds` on workloads that settle early.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Accumulated traffic counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The topology the network runs over.
    pub fn topology(&self) -> &Graph {
        &self.topology
    }

    /// Immutable access to process `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn process(&self, i: NodeId) -> &P {
        &self.processes[i]
    }

    /// All processes, in node order.
    pub fn processes(&self) -> &[P] {
        &self.processes
    }

    /// Consumes the network, returning processes and metrics.
    pub fn into_parts(self) -> (Vec<P>, Metrics) {
        (self.processes, self.metrics)
    }
}

/// Runs `rounds` synchronous rounds of the given processes over `topology`
/// on the event-driven runtime. Returns the processes (in node order) and
/// the traffic metrics — the same signature as
/// [`crate::threaded::run_threaded`], with `O(active events)` scheduling
/// instead of one OS thread per node.
///
/// # Panics
///
/// Panics unless `processes[i].id() == i` for every `i` and the process
/// count equals the topology's node count.
pub fn run_event_driven<P: Process>(
    processes: Vec<P>,
    topology: &Graph,
    rounds: usize,
) -> (Vec<P>, Metrics) {
    run_event_driven_with(processes, topology, rounds, &mut ())
}

/// [`run_event_driven`] with a [`RoundSink`] observing every committed
/// round (skipped-as-silent rounds included).
///
/// # Panics
///
/// Panics unless `processes[i].id() == i` for every `i` and the process
/// count equals the topology's node count.
pub fn run_event_driven_with<P: Process, S: RoundSink + ?Sized>(
    processes: Vec<P>,
    topology: &Graph,
    rounds: usize,
    sink: &mut S,
) -> (Vec<P>, Metrics) {
    let mut net = EventNetwork::new(processes, topology.clone());
    net.run_rounds_with(rounds, sink);
    net.into_parts()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Outgoing;
    use crate::sync::SyncNetwork;
    use nectar_graph::gen;
    use std::collections::BTreeSet;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct IdMsg(usize);

    impl WireSized for IdMsg {
        fn wire_bytes(&self) -> usize {
            8
        }
    }

    /// The toy flooding protocol of the sync/threaded engine tests, with
    /// the quiescence hint the event runtime exploits.
    #[derive(Debug, Clone)]
    struct Flood {
        id: usize,
        neighbors: Vec<usize>,
        known: BTreeSet<usize>,
        outbox: Vec<usize>,
    }

    impl Flood {
        fn new(id: usize, g: &Graph) -> Self {
            Flood {
                id,
                neighbors: g.neighborhood(id),
                known: [id].into_iter().collect(),
                outbox: vec![id],
            }
        }
    }

    impl Process for Flood {
        type Msg = IdMsg;

        fn id(&self) -> usize {
            self.id
        }

        fn send(&mut self, _round: usize) -> Vec<Outgoing<IdMsg>> {
            let outbox = std::mem::take(&mut self.outbox);
            outbox
                .into_iter()
                .flat_map(|payload| {
                    self.neighbors.iter().map(move |&to| Outgoing::new(to, IdMsg(payload)))
                })
                .collect()
        }

        fn receive(&mut self, _round: usize, _from: usize, msg: IdMsg) {
            if self.known.insert(msg.0) {
                self.outbox.push(msg.0);
            }
        }

        fn quiescent(&self) -> bool {
            self.outbox.is_empty()
        }
    }

    fn floods(g: &Graph) -> Vec<Flood> {
        (0..g.node_count()).map(|i| Flood::new(i, g)).collect()
    }

    #[test]
    fn event_flooding_covers_connected_graph() {
        let g = gen::cycle(8);
        let (procs, metrics) = run_event_driven(floods(&g), &g, 7);
        for p in &procs {
            assert_eq!(p.known.len(), 8, "node {}", p.id);
        }
        assert!(metrics.total_bytes_sent() > 0);
        assert_eq!(metrics.illegal_sends(), 0);
    }

    #[test]
    fn event_equals_sync_engine_bit_for_bit() {
        let g = gen::harary(4, 12).unwrap();
        let mut sync_net = SyncNetwork::new(floods(&g), g.clone());
        sync_net.run_rounds(11);
        let (event_procs, event_metrics) = run_event_driven(floods(&g), &g, 11);
        for (a, b) in sync_net.processes().iter().zip(&event_procs) {
            assert_eq!(a.known, b.known);
        }
        assert_eq!(sync_net.metrics(), &event_metrics);
    }

    #[test]
    fn quiescent_nodes_cost_no_events() {
        // A 40-node path floods in ~40 rounds; after that the system is
        // silent. Running 10 000 rounds must cost O(flood) events, not
        // O(n · rounds) polls — the whole point of the runtime.
        let g = gen::path(40);
        let mut net = EventNetwork::new(floods(&g), g.clone());
        net.run_rounds(10_000);
        for p in net.processes() {
            assert_eq!(p.known.len(), 40);
        }
        assert!(
            net.events_processed() < 10_000,
            "{} events for a workload that quiesces after ~40 rounds",
            net.events_processed()
        );
    }

    #[test]
    fn spontaneous_senders_are_polled_every_round() {
        /// Sends one beacon at round 5 only — with no prior receive. The
        /// default (conservative) quiescence hint must keep it scheduled.
        #[derive(Debug)]
        struct TimeBomb {
            id: usize,
            got: usize,
        }
        impl Process for TimeBomb {
            type Msg = IdMsg;
            fn id(&self) -> usize {
                self.id
            }
            fn send(&mut self, round: usize) -> Vec<Outgoing<IdMsg>> {
                if round == 5 {
                    vec![Outgoing::new(1 - self.id, IdMsg(self.id))]
                } else {
                    Vec::new()
                }
            }
            fn receive(&mut self, _round: usize, _from: usize, _msg: IdMsg) {
                self.got += 1;
            }
        }
        let g = gen::path(2);
        let (procs, metrics) =
            run_event_driven(vec![TimeBomb { id: 0, got: 0 }, TimeBomb { id: 1, got: 0 }], &g, 6);
        assert_eq!(procs[0].got, 1);
        assert_eq!(procs[1].got, 1);
        assert_eq!(metrics.total_bytes_sent(), 16);
    }

    #[test]
    fn run_rounds_can_resume_across_epochs() {
        // Two epochs of 3 rounds each equal one run of 6 rounds: the
        // epoch-boundary event closes the first epoch without losing the
        // still-scheduled activations.
        let g = gen::path(6);
        let mut split = EventNetwork::new(floods(&g), g.clone());
        split.run_rounds(3);
        assert_eq!(split.next_round(), 4);
        split.run_rounds(3);
        let mut whole = EventNetwork::new(floods(&g), g.clone());
        whole.run_rounds(6);
        for (a, b) in split.processes().iter().zip(whole.processes()) {
            assert_eq!(a.known, b.known);
        }
        assert_eq!(split.metrics(), whole.metrics());
    }

    #[test]
    fn non_neighbor_sends_are_dropped_and_counted() {
        #[derive(Debug)]
        struct Rogue {
            id: usize,
        }
        impl Process for Rogue {
            type Msg = IdMsg;
            fn id(&self) -> usize {
                self.id
            }
            fn send(&mut self, round: usize) -> Vec<Outgoing<IdMsg>> {
                if round == 1 && self.id == 0 {
                    vec![Outgoing::new(2, IdMsg(0)), Outgoing::new(99, IdMsg(0))]
                } else {
                    Vec::new()
                }
            }
            fn receive(&mut self, _round: usize, _from: usize, _msg: IdMsg) {
                panic!("no legal message should arrive");
            }
            fn quiescent(&self) -> bool {
                true
            }
        }
        let g = gen::path(3);
        let (_, metrics) =
            run_event_driven(vec![Rogue { id: 0 }, Rogue { id: 1 }, Rogue { id: 2 }], &g, 2);
        assert_eq!(metrics.illegal_sends(), 2);
        assert_eq!(metrics.total_bytes_sent(), 0);
    }

    #[test]
    fn empty_system_is_a_no_op() {
        let g = Graph::empty(0);
        let (procs, metrics) = run_event_driven(Vec::<Flood>::new(), &g, 3);
        assert!(procs.is_empty());
        assert_eq!(metrics.total_bytes_sent(), 0);
    }

    #[test]
    fn single_node_runs_without_peers() {
        let g = Graph::empty(1);
        let (procs, metrics) = run_event_driven(vec![Flood::new(0, &g)], &g, 2);
        assert_eq!(procs[0].known.len(), 1);
        assert_eq!(metrics.total_bytes_sent(), 0);
    }

    #[test]
    #[should_panic(expected = "one process per topology node")]
    fn process_count_must_match_topology() {
        let g = gen::path(3);
        let _ = EventNetwork::new(vec![Flood::new(0, &g)], g);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::process::Outgoing;
    use crate::sync::SyncNetwork;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct IdMsg(usize);

    impl WireSized for IdMsg {
        fn wire_bytes(&self) -> usize {
            8
        }
    }

    #[derive(Debug, Clone)]
    struct Flood {
        id: usize,
        neighbors: Vec<usize>,
        known: BTreeSet<usize>,
        outbox: Vec<usize>,
        received: Vec<(usize, usize, usize)>,
    }

    impl Flood {
        fn new(id: usize, g: &Graph) -> Self {
            Flood {
                id,
                neighbors: g.neighborhood(id),
                known: [id].into_iter().collect(),
                outbox: vec![id],
                received: Vec::new(),
            }
        }
    }

    impl Process for Flood {
        type Msg = IdMsg;

        fn id(&self) -> usize {
            self.id
        }

        fn send(&mut self, _round: usize) -> Vec<Outgoing<IdMsg>> {
            let outbox = std::mem::take(&mut self.outbox);
            outbox
                .into_iter()
                .flat_map(|payload| {
                    self.neighbors.iter().map(move |&to| Outgoing::new(to, IdMsg(payload)))
                })
                .collect()
        }

        fn receive(&mut self, round: usize, from: usize, msg: IdMsg) {
            self.received.push((round, from, msg.0));
            if self.known.insert(msg.0) {
                self.outbox.push(msg.0);
            }
        }

        fn quiescent(&self) -> bool {
            self.outbox.is_empty()
        }
    }

    fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
        (2..=max_n).prop_flat_map(|n| {
            let pairs: Vec<(usize, usize)> =
                (0..n).flat_map(|u| (u + 1..n).map(move |v| (u, v))).collect();
            proptest::collection::vec(proptest::bool::ANY, pairs.len()).prop_map(move |mask| {
                let edges = pairs.iter().zip(&mask).filter_map(|(&e, &keep)| keep.then_some(e));
                Graph::from_edges(n, edges).expect("generated edges are in range")
            })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The event loop reproduces the synchronous engine *exactly*:
        /// same receptions (round, sender, payload, order) and equal
        /// metrics on arbitrary topologies.
        #[test]
        fn event_and_sync_trajectories_are_identical(g in arb_graph(9)) {
            let n = g.node_count();
            let procs: Vec<Flood> = (0..n).map(|i| Flood::new(i, &g)).collect();
            let mut sync_net = SyncNetwork::new(procs, g.clone());
            sync_net.run_rounds(n);
            let procs: Vec<Flood> = (0..n).map(|i| Flood::new(i, &g)).collect();
            let (event_procs, event_metrics) = run_event_driven(procs, &g, n);
            for (a, b) in sync_net.processes().iter().zip(&event_procs) {
                prop_assert_eq!(&a.received, &b.received, "node {}", a.id);
                prop_assert_eq!(&a.known, &b.known);
            }
            prop_assert_eq!(sync_net.metrics(), &event_metrics);
        }
    }
}
