//! Deterministic parallel runtime: a work-stealing worker pool over
//! round-committed execution.
//!
//! The event runtime ([`crate::event`]) removed the thread-per-node ceiling
//! but still runs every poll and delivery on one thread. This runtime keeps
//! the event runtime's `O(active nodes)` scheduling (the same
//! [`Process::quiescent`] hint decides who is polled) and adds real
//! parallelism without giving up bit-identical outcomes. Each round executes
//! in two deterministic phases:
//!
//! 1. **Send** — the round's active nodes are fanned out across a
//!    work-stealing worker pool ([`parallel_map`]): every worker polls
//!    [`Process::send`] on the nodes it pops (or steals), producing each
//!    node's outgoing batch independently. Polling order across workers is
//!    arbitrary — which is safe precisely because nothing is delivered yet.
//! 2. **Commit** — a single thread merges the produced batches back into the
//!    canonical synchronous order (ascending sender, emission order within a
//!    sender), applies the topology legality checks and metrics accounting
//!    in that order, and groups deliveries by destination. Only then are the
//!    per-destination inboxes — each internally in (sender, emission) order,
//!    exactly [`crate::sync::SyncNetwork`]'s delivery order — fanned back
//!    out across the pool, one worker task per destination.
//!
//! The commit step is the round barrier that makes parallelism invisible:
//! no message is received while sends of the same round are still being
//! produced, and every process observes the identical per-round reception
//! sequence it would observe under the sync engine. The full contract (and
//! what any new runtime must uphold) is documented in the repository's
//! `docs/DETERMINISM.md`.
//!
//! Worker counts do not affect results, only wall-clock: the cross-runtime
//! equivalence suite runs the same scenarios at several worker counts and
//! asserts outcomes (metrics and oracle counters included) are bit-identical
//! to sync/threaded/event.

use std::collections::VecDeque;

use parking_lot::Mutex;

use nectar_graph::Graph;

use crate::metrics::Metrics;
use crate::process::{NodeId, Process, RoundSink, WireSized};

/// Resolves a requested worker count: `0` means "match the machine"
/// (`std::thread::available_parallelism`, 1 if unknown); any other value is
/// taken as-is. Results never depend on the resolution — only wall-clock.
pub fn resolve_workers(workers: usize) -> usize {
    if workers == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        workers
    }
}

/// Batches below this size run inline: spawning a pool costs more than the
/// work it would spread.
const INLINE_BATCH: usize = 32;

/// How many tasks a worker moves per lock acquisition — from its own deque
/// or a victim's. Amortizes locking (and, on oversubscribed machines, the
/// context switches that lock hand-offs trigger) without hurting balance:
/// a straggler's remaining work is still stolen half a backlog at a time.
const GRAB_BATCH: usize = 256;

/// Order-preserving parallel map over a work-stealing worker pool.
///
/// Items are dealt into one deque per worker; each worker drains its own
/// deque from the front (in [`GRAB_BATCH`]-sized grabs, so locking is
/// amortized) and, when empty, steals half of a victim's remaining tasks
/// from the back — so an uneven workload (one expensive node among
/// thousands of cheap ones) still keeps every worker busy. The output
/// vector is in input order regardless of which worker executed which item,
/// which is what lets the parallel runtime treat this as a drop-in `map`.
///
/// With `workers <= 1` (or a batch too small to amortize thread spawn) the
/// map runs inline on the caller's thread — same results, no pool.
///
/// # Panics
///
/// Propagates panics from `f` (the pool is joined before unwinding).
pub fn parallel_map<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = resolve_workers(workers).min(items.len().max(1));
    if workers <= 1 || items.len() < INLINE_BATCH {
        return items.into_iter().map(f).collect();
    }

    // Deal contiguous chunks so workers start on disjoint cache-friendly
    // ranges; stealing rebalances from the far end of a victim's range.
    let total = items.len();
    let chunk = total.div_ceil(workers);
    let deques: Vec<Mutex<VecDeque<(usize, T)>>> = {
        let mut iter = items.into_iter().enumerate();
        (0..workers)
            .map(|_| Mutex::new(iter.by_ref().take(chunk).collect::<VecDeque<_>>()))
            .collect()
    };

    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(total);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let deques = &deques;
                let f = &f;
                s.spawn(move || {
                    let mut out: Vec<(usize, R)> = Vec::new();
                    let mut grabbed: Vec<(usize, T)> = Vec::with_capacity(GRAB_BATCH);
                    loop {
                        // Own work first (front)...
                        {
                            let mut own = deques[w].lock();
                            let take = own.len().min(GRAB_BATCH);
                            grabbed.extend(own.drain(..take));
                        }
                        // ...then steal half a victim's backlog (back).
                        if grabbed.is_empty() {
                            for victim in (1..deques.len()).map(|d| (w + d) % deques.len()) {
                                let mut v = deques[victim].lock();
                                let len = v.len();
                                if len > 0 {
                                    let take = (len / 2).max(1).min(GRAB_BATCH);
                                    grabbed.extend(v.drain(len - take..));
                                    break;
                                }
                            }
                        }
                        if grabbed.is_empty() {
                            // No task anywhere: nothing re-enqueues during a
                            // phase, so the pool is drained for good.
                            break;
                        }
                        out.extend(grabbed.drain(..).map(|(idx, item)| (idx, f(item))));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            indexed.extend(h.join().expect("parallel_map worker panicked"));
        }
    });

    indexed.sort_unstable_by_key(|&(idx, _)| idx);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// A parallel network executing one [`Process`] per topology node on a
/// work-stealing worker pool, committing deliveries once per round.
///
/// Processes are boxed internally so checking a node out to a worker (and
/// sorting results back into node order) moves one pointer, not the whole
/// protocol state — with 10 000 nodes in flight per phase, that is the
/// difference between memcpy-bound and work-bound scheduling.
pub struct ParallelNetwork<P: Process> {
    /// `None` only transiently, while a node is checked out to a worker.
    slots: Vec<Option<Box<P>>>,
    topology: Graph,
    metrics: Metrics,
    workers: usize,
    /// Nodes to poll at `next_round` (quiescent nodes leave the schedule
    /// until a delivery re-activates them, as in the event runtime).
    active: Vec<bool>,
    /// Per-destination inbox buffers, indexed by node; emptied every round.
    inboxes: Vec<Vec<(NodeId, P::Msg)>>,
    next_round: usize,
    /// Send polls actually performed — the runtime's work, kept far below
    /// `n · rounds` by quiescence.
    polls: u64,
}

impl<P: Process> std::fmt::Debug for ParallelNetwork<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelNetwork")
            .field("nodes", &self.slots.len())
            .field("workers", &self.workers)
            .field("next_round", &self.next_round)
            .field("polls", &self.polls)
            .finish()
    }
}

impl<P> ParallelNetwork<P>
where
    P: Process + Send,
    P::Msg: Send,
{
    /// Creates a network over `topology` with one process per node,
    /// executing on `workers` worker threads (`0` = match the machine, see
    /// [`resolve_workers`]). Every node starts active for round 1.
    ///
    /// # Panics
    ///
    /// Panics unless `processes[i].id() == i` for every `i` and the process
    /// count equals the topology's node count.
    pub fn new(processes: Vec<P>, topology: Graph, workers: usize) -> Self {
        assert_eq!(
            processes.len(),
            topology.node_count(),
            "need exactly one process per topology node"
        );
        for (i, p) in processes.iter().enumerate() {
            assert_eq!(p.id(), i, "process at index {i} reports id {}", p.id());
        }
        let n = processes.len();
        ParallelNetwork {
            slots: processes.into_iter().map(|p| Some(Box::new(p))).collect(),
            topology,
            metrics: Metrics::new(n),
            workers: resolve_workers(workers),
            active: vec![true; n],
            inboxes: (0..n).map(|_| Vec::new()).collect(),
            next_round: 1,
            polls: 0,
        }
    }

    /// Runs `rounds` further synchronous rounds (or less work than that: as
    /// soon as every node is quiescent and no delivery is pending, the
    /// remaining rounds are provably silent and are skipped wholesale).
    pub fn run_rounds(&mut self, rounds: usize) {
        self.run_rounds_with(rounds, &mut ());
    }

    /// [`run_rounds`](Self::run_rounds), reporting each committed round to
    /// `sink`, in ascending order — rounds skipped wholesale as provably
    /// silent still fire with the zero bytes they carried, so the stream is
    /// identical to [`crate::sync::SyncNetwork`]'s.
    pub fn run_rounds_with<S: RoundSink + ?Sized>(&mut self, rounds: usize, sink: &mut S) {
        let horizon = self.next_round + rounds;
        while self.next_round < horizon {
            if !self.active.iter().any(|&a| a) {
                // Nobody may send spontaneously and nothing is in flight:
                // every remaining round is a no-op, exactly as under the
                // sync engine (which would poll n nodes to learn the same).
                while self.next_round < horizon {
                    sink.round_committed(self.next_round, 0);
                    self.next_round += 1;
                }
                return;
            }
            let round = self.next_round;
            self.step();
            sink.round_committed(round, self.round_bytes(round));
        }
    }

    /// Bytes committed during `round` (0 when the round carried nothing).
    fn round_bytes(&self, round: usize) -> u64 {
        self.metrics.bytes_per_round().get(round - 1).copied().unwrap_or(0)
    }

    /// Executes one round: parallel send phase, canonical-order commit,
    /// parallel delivery phase.
    fn step(&mut self) {
        let round = self.next_round;
        self.next_round += 1;
        let n = self.slots.len();

        // ---- Phase 1: fan the round's polls out across the pool. --------
        let polled: Vec<NodeId> = (0..n).filter(|&i| self.active[i]).collect();
        for &i in &polled {
            self.active[i] = false;
        }
        self.polls += polled.len() as u64;
        let tasks: Vec<(NodeId, Box<P>)> = polled
            .iter()
            .map(|&i| (i, self.slots[i].take().expect("active node is checked in")))
            .collect();
        let produced = parallel_map(tasks, self.workers, |(i, mut p)| {
            let out = p.send(round);
            // Checked after `send`, as the event runtime does: a node that
            // may still send spontaneously stays on next round's schedule.
            let quiescent = p.quiescent();
            (i, p, out, quiescent)
        });

        // ---- Phase 2: commit. Single-threaded, ascending sender order —
        // the exact order `SyncNetwork::step` applies legality checks and
        // metrics accounting in. `parallel_map` preserves input order, so
        // `produced` is already sorted by sender id, and pushing into the
        // indexed inbox buffers preserves (sender, emission) order within
        // each destination.
        let mut touched: Vec<NodeId> = Vec::new();
        for (i, p, out, quiescent) in produced {
            self.slots[i] = Some(p);
            if !quiescent {
                self.active[i] = true;
            }
            for o in out {
                if o.to >= n || !self.topology.has_edge(i, o.to) {
                    self.metrics.record_illegal_send();
                    continue;
                }
                self.metrics.record_send(round, i, o.to, WireSized::wire_bytes(&o.msg));
                let inbox = &mut self.inboxes[o.to];
                if inbox.is_empty() {
                    touched.push(o.to);
                }
                inbox.push((i, o.msg));
            }
        }
        if touched.is_empty() {
            return;
        }
        // Ascending destination order — the sync engine's delivery order.
        touched.sort_unstable();

        // ---- Phase 3: committed deliveries fan back out, one task per
        // destination. Each inbox is already in (sender, emission) order;
        // destinations are independent, so receiving in parallel cannot be
        // observed. A delivery re-activates its destination.
        let tasks: Vec<(NodeId, Box<P>, Vec<(NodeId, P::Msg)>)> = touched
            .into_iter()
            .map(|to| {
                self.active[to] = true;
                let inbox = std::mem::take(&mut self.inboxes[to]);
                (to, self.slots[to].take().expect("destination is checked in"), inbox)
            })
            .collect();
        let received = parallel_map(tasks, self.workers, |(to, mut p, inbox)| {
            for (from, msg) in inbox {
                p.receive(round, from, msg);
            }
            (to, p)
        });
        for (to, p) in received {
            self.slots[to] = Some(p);
        }
    }

    /// The round the next [`run_rounds`](Self::run_rounds) call starts at
    /// (1-based).
    pub fn next_round(&self) -> usize {
        self.next_round
    }

    /// Send polls performed so far — kept far below `n · rounds` on
    /// workloads that quiesce early.
    pub fn polls(&self) -> u64 {
        self.polls
    }

    /// The resolved worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Accumulated traffic counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The topology the network runs over.
    pub fn topology(&self) -> &Graph {
        &self.topology
    }

    /// Immutable access to process `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn process(&self, i: NodeId) -> &P {
        self.slots[i].as_deref().expect("process is checked in between rounds")
    }

    /// Consumes the network, returning processes (in node order) and
    /// metrics.
    pub fn into_parts(self) -> (Vec<P>, Metrics) {
        let procs =
            self.slots.into_iter().map(|s| *s.expect("process is checked in between rounds"));
        (procs.collect(), self.metrics)
    }
}

/// Runs `rounds` synchronous rounds of the given processes over `topology`
/// on the parallel runtime with `workers` worker threads (`0` = match the
/// machine). Returns the processes (in node order) and the traffic metrics —
/// the same signature family as [`crate::event::run_event_driven`], with
/// results bit-identical to every other runtime.
///
/// # Panics
///
/// Panics unless `processes[i].id() == i` for every `i` and the process
/// count equals the topology's node count.
pub fn run_parallel<P>(
    processes: Vec<P>,
    topology: &Graph,
    rounds: usize,
    workers: usize,
) -> (Vec<P>, Metrics)
where
    P: Process + Send,
    P::Msg: Send,
{
    run_parallel_with(processes, topology, rounds, workers, &mut ())
}

/// [`run_parallel`] with a [`RoundSink`] observing every committed round
/// (skipped-as-silent rounds included). The sink runs on the calling
/// thread, at the single-threaded commit barrier, so observation costs no
/// synchronization.
///
/// # Panics
///
/// Panics unless `processes[i].id() == i` for every `i` and the process
/// count equals the topology's node count.
pub fn run_parallel_with<P, S>(
    processes: Vec<P>,
    topology: &Graph,
    rounds: usize,
    workers: usize,
    sink: &mut S,
) -> (Vec<P>, Metrics)
where
    P: Process + Send,
    P::Msg: Send,
    S: RoundSink + ?Sized,
{
    let mut net = ParallelNetwork::new(processes, topology.clone(), workers);
    net.run_rounds_with(rounds, sink);
    net.into_parts()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Outgoing;
    use crate::sync::SyncNetwork;
    use nectar_graph::gen;
    use std::collections::BTreeSet;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct IdMsg(usize);

    impl WireSized for IdMsg {
        fn wire_bytes(&self) -> usize {
            8
        }
    }

    /// The toy flooding protocol of the other engines' tests, with the
    /// quiescence hint the scheduler exploits.
    #[derive(Debug, Clone)]
    struct Flood {
        id: usize,
        neighbors: Vec<usize>,
        known: BTreeSet<usize>,
        outbox: Vec<usize>,
        received: Vec<(usize, usize, usize)>,
    }

    impl Flood {
        fn new(id: usize, g: &Graph) -> Self {
            Flood {
                id,
                neighbors: g.neighborhood(id),
                known: [id].into_iter().collect(),
                outbox: vec![id],
                received: Vec::new(),
            }
        }
    }

    impl Process for Flood {
        type Msg = IdMsg;

        fn id(&self) -> usize {
            self.id
        }

        fn send(&mut self, _round: usize) -> Vec<Outgoing<IdMsg>> {
            let outbox = std::mem::take(&mut self.outbox);
            outbox
                .into_iter()
                .flat_map(|payload| {
                    self.neighbors.iter().map(move |&to| Outgoing::new(to, IdMsg(payload)))
                })
                .collect()
        }

        fn receive(&mut self, round: usize, from: usize, msg: IdMsg) {
            self.received.push((round, from, msg.0));
            if self.known.insert(msg.0) {
                self.outbox.push(msg.0);
            }
        }

        fn quiescent(&self) -> bool {
            self.outbox.is_empty()
        }
    }

    fn floods(g: &Graph) -> Vec<Flood> {
        (0..g.node_count()).map(|i| Flood::new(i, g)).collect()
    }

    #[test]
    fn parallel_flooding_covers_connected_graph() {
        let g = gen::cycle(8);
        for workers in [1, 2, 3] {
            let (procs, metrics) = run_parallel(floods(&g), &g, 7, workers);
            for p in &procs {
                assert_eq!(p.known.len(), 8, "node {} at {workers} workers", p.id);
            }
            assert!(metrics.total_bytes_sent() > 0);
            assert_eq!(metrics.illegal_sends(), 0);
        }
    }

    #[test]
    fn parallel_equals_sync_engine_bit_for_bit_at_any_worker_count() {
        let g = gen::harary(4, 40).unwrap();
        let mut sync_net = SyncNetwork::new(floods(&g), g.clone());
        sync_net.run_rounds(39);
        for workers in [1, 2, 4, 7] {
            let (procs, metrics) = run_parallel(floods(&g), &g, 39, workers);
            for (a, b) in sync_net.processes().iter().zip(&procs) {
                assert_eq!(a.received, b.received, "node {} at {workers} workers", a.id);
                assert_eq!(a.known, b.known);
            }
            assert_eq!(sync_net.metrics(), &metrics, "{workers} workers");
        }
    }

    #[test]
    fn quiescent_nodes_cost_no_polls() {
        // A 40-node path floods in ~40 rounds; after that the schedule must
        // drain and the remaining 10 000-round horizon must be skipped.
        let g = gen::path(40);
        let mut net = ParallelNetwork::new(floods(&g), g.clone(), 2);
        net.run_rounds(10_000);
        for i in 0..40 {
            assert_eq!(net.process(i).known.len(), 40);
        }
        assert_eq!(net.next_round(), 10_001);
        assert!(
            net.polls() < 10_000,
            "{} polls for a workload that quiesces after ~40 rounds",
            net.polls()
        );
    }

    #[test]
    fn spontaneous_senders_are_polled_every_round() {
        /// Sends one beacon at round 5 only — with no prior receive. The
        /// default (conservative) quiescence hint must keep it scheduled.
        #[derive(Debug)]
        struct TimeBomb {
            id: usize,
            got: usize,
        }
        impl Process for TimeBomb {
            type Msg = IdMsg;
            fn id(&self) -> usize {
                self.id
            }
            fn send(&mut self, round: usize) -> Vec<Outgoing<IdMsg>> {
                if round == 5 {
                    vec![Outgoing::new(1 - self.id, IdMsg(self.id))]
                } else {
                    Vec::new()
                }
            }
            fn receive(&mut self, _round: usize, _from: usize, _msg: IdMsg) {
                self.got += 1;
            }
        }
        let g = gen::path(2);
        let (procs, metrics) =
            run_parallel(vec![TimeBomb { id: 0, got: 0 }, TimeBomb { id: 1, got: 0 }], &g, 6, 3);
        assert_eq!(procs[0].got, 1);
        assert_eq!(procs[1].got, 1);
        assert_eq!(metrics.total_bytes_sent(), 16);
    }

    #[test]
    fn run_rounds_can_resume_across_epochs() {
        let g = gen::path(6);
        let mut split = ParallelNetwork::new(floods(&g), g.clone(), 2);
        split.run_rounds(3);
        assert_eq!(split.next_round(), 4);
        split.run_rounds(3);
        let mut whole = ParallelNetwork::new(floods(&g), g.clone(), 2);
        whole.run_rounds(6);
        for i in 0..6 {
            assert_eq!(split.process(i).known, whole.process(i).known);
        }
        assert_eq!(split.metrics(), whole.metrics());
    }

    #[test]
    fn non_neighbor_sends_are_dropped_and_counted() {
        #[derive(Debug)]
        struct Rogue {
            id: usize,
        }
        impl Process for Rogue {
            type Msg = IdMsg;
            fn id(&self) -> usize {
                self.id
            }
            fn send(&mut self, round: usize) -> Vec<Outgoing<IdMsg>> {
                if round == 1 && self.id == 0 {
                    vec![Outgoing::new(2, IdMsg(0)), Outgoing::new(99, IdMsg(0))]
                } else {
                    Vec::new()
                }
            }
            fn receive(&mut self, _round: usize, _from: usize, _msg: IdMsg) {
                panic!("no legal message should arrive");
            }
            fn quiescent(&self) -> bool {
                true
            }
        }
        let g = gen::path(3);
        let (_, metrics) =
            run_parallel(vec![Rogue { id: 0 }, Rogue { id: 1 }, Rogue { id: 2 }], &g, 2, 2);
        assert_eq!(metrics.illegal_sends(), 2);
        assert_eq!(metrics.total_bytes_sent(), 0);
    }

    #[test]
    fn empty_system_is_a_no_op() {
        let g = Graph::empty(0);
        let (procs, metrics) = run_parallel(Vec::<Flood>::new(), &g, 3, 4);
        assert!(procs.is_empty());
        assert_eq!(metrics.total_bytes_sent(), 0);
    }

    #[test]
    fn single_node_runs_without_peers() {
        let g = Graph::empty(1);
        let (procs, metrics) = run_parallel(vec![Flood::new(0, &g)], &g, 2, 2);
        assert_eq!(procs[0].known.len(), 1);
        assert_eq!(metrics.total_bytes_sent(), 0);
    }

    #[test]
    #[should_panic(expected = "one process per topology node")]
    fn process_count_must_match_topology() {
        let g = gen::path(3);
        let _ = ParallelNetwork::new(vec![Flood::new(0, &g)], g, 2);
    }

    #[test]
    fn parallel_map_preserves_input_order_and_steals() {
        use std::collections::HashSet;
        use std::sync::Mutex as StdMutex;
        // 3 workers × 1000-item chunks: worker 0's chunk is larger than one
        // GRAB_BATCH (so it cannot privatize it all in a single grab) and
        // every item in it is slow — the other workers drain their own fast
        // chunks and must steal the tail of worker 0's deque. The recorded
        // thread ids prove the slow chunk was actually shared, and the
        // output must still come back in input order.
        assert!(1_000 > GRAB_BATCH, "chunk must exceed one grab for stealing to be reachable");
        let items: Vec<usize> = (0..3_000).collect();
        let owners: StdMutex<Vec<(usize, std::thread::ThreadId)>> = StdMutex::new(Vec::new());
        let out = parallel_map(items.clone(), 3, |i| {
            if i < 1_000 {
                std::thread::sleep(std::time::Duration::from_micros(500));
            }
            owners.lock().unwrap().push((i, std::thread::current().id()));
            i * 3
        });
        assert_eq!(out, items.iter().map(|i| i * 3).collect::<Vec<_>>());
        let owners = owners.into_inner().unwrap();
        assert_eq!(owners.len(), 3_000, "every item runs exactly once");
        let slow_chunk_threads: HashSet<_> =
            owners.iter().filter(|(i, _)| *i < 1_000).map(|&(_, t)| t).collect();
        assert!(
            slow_chunk_threads.len() >= 2,
            "worker 0's slow chunk should have been partly stolen, but {} thread(s) ran it",
            slow_chunk_threads.len()
        );
    }

    #[test]
    fn parallel_map_small_batches_run_inline() {
        // Below the inline threshold no pool is spawned; results identical.
        let out = parallel_map(vec![1usize, 2, 3], 8, |i| i + 1);
        assert_eq!(out, vec![2, 3, 4]);
        assert_eq!(parallel_map(Vec::<usize>::new(), 8, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn resolve_workers_treats_zero_as_auto() {
        assert!(resolve_workers(0) >= 1);
        assert_eq!(resolve_workers(3), 3);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::process::Outgoing;
    use crate::sync::SyncNetwork;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct IdMsg(usize);

    impl WireSized for IdMsg {
        fn wire_bytes(&self) -> usize {
            8
        }
    }

    #[derive(Debug, Clone)]
    struct Flood {
        id: usize,
        neighbors: Vec<usize>,
        known: BTreeSet<usize>,
        outbox: Vec<usize>,
        received: Vec<(usize, usize, usize)>,
    }

    impl Flood {
        fn new(id: usize, g: &Graph) -> Self {
            Flood {
                id,
                neighbors: g.neighborhood(id),
                known: [id].into_iter().collect(),
                outbox: vec![id],
                received: Vec::new(),
            }
        }
    }

    impl Process for Flood {
        type Msg = IdMsg;

        fn id(&self) -> usize {
            self.id
        }

        fn send(&mut self, _round: usize) -> Vec<Outgoing<IdMsg>> {
            let outbox = std::mem::take(&mut self.outbox);
            outbox
                .into_iter()
                .flat_map(|payload| {
                    self.neighbors.iter().map(move |&to| Outgoing::new(to, IdMsg(payload)))
                })
                .collect()
        }

        fn receive(&mut self, round: usize, from: usize, msg: IdMsg) {
            self.received.push((round, from, msg.0));
            if self.known.insert(msg.0) {
                self.outbox.push(msg.0);
            }
        }

        fn quiescent(&self) -> bool {
            self.outbox.is_empty()
        }
    }

    fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
        (2..=max_n).prop_flat_map(|n| {
            let pairs: Vec<(usize, usize)> =
                (0..n).flat_map(|u| (u + 1..n).map(move |v| (u, v))).collect();
            proptest::collection::vec(proptest::bool::ANY, pairs.len()).prop_map(move |mask| {
                let edges = pairs.iter().zip(&mask).filter_map(|(&e, &keep)| keep.then_some(e));
                Graph::from_edges(n, edges).expect("generated edges are in range")
            })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The parallel runtime reproduces the synchronous engine *exactly*:
        /// same receptions (round, sender, payload, order) and equal metrics
        /// on arbitrary topologies, at any worker count.
        #[test]
        fn parallel_and_sync_trajectories_are_identical(
            g in arb_graph(9),
            workers in 1usize..5,
        ) {
            let n = g.node_count();
            let procs: Vec<Flood> = (0..n).map(|i| Flood::new(i, &g)).collect();
            let mut sync_net = SyncNetwork::new(procs, g.clone());
            sync_net.run_rounds(n);
            let procs: Vec<Flood> = (0..n).map(|i| Flood::new(i, &g)).collect();
            let (par_procs, par_metrics) = run_parallel(procs, &g, n, workers);
            for (a, b) in sync_net.processes().iter().zip(&par_procs) {
                prop_assert_eq!(&a.received, &b.received, "node {}", a.id);
                prop_assert_eq!(&a.known, &b.known);
            }
            prop_assert_eq!(sync_net.metrics(), &par_metrics);
        }
    }
}
