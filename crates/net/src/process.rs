//! The process abstraction executed by both runtimes.
//!
//! The paper's system model (§II): processes are interconnected by a static
//! undirected graph, channels are reliable, and communication proceeds in
//! synchronous rounds — a message sent at round `R` is received before round
//! `R + 1`. A [`Process`] therefore exposes two phases per round: `send`
//! (collect this round's outgoing messages) and `receive` (handle the
//! messages delivered during the round).

use std::fmt;

/// Node identity: dense indices `0..n`, shared with
/// [`nectar_graph::Graph`] vertices.
pub type NodeId = usize;

/// Anything that can report its serialized size, for the evaluation's
/// data-sent-per-node accounting.
pub trait WireSized {
    /// Size of this value on the wire, in bytes.
    fn wire_bytes(&self) -> usize;
}

/// An outgoing message: destination plus payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outgoing<M> {
    /// Destination node.
    pub to: NodeId,
    /// Message payload.
    pub msg: M,
}

impl<M> Outgoing<M> {
    /// Convenience constructor.
    pub fn new(to: NodeId, msg: M) -> Self {
        Outgoing { to, msg }
    }
}

/// Forward the implementation through boxes so heterogeneous systems
/// (correct nodes next to Byzantine variants) can run as
/// `Box<dyn Process<Msg = M>>`.
impl<M, P> Process for Box<P>
where
    M: Clone + fmt::Debug + WireSized,
    P: Process<Msg = M> + ?Sized,
{
    type Msg = M;

    fn id(&self) -> NodeId {
        (**self).id()
    }

    fn send(&mut self, round: usize) -> Vec<Outgoing<M>> {
        (**self).send(round)
    }

    fn receive(&mut self, round: usize, from: NodeId, msg: M) {
        (**self).receive(round, from, msg)
    }

    fn quiescent(&self) -> bool {
        (**self).quiescent()
    }

    fn link_changed(&mut self, round: usize, peer: NodeId, up: bool) {
        (**self).link_changed(round, peer, up)
    }
}

/// Observes the round barrier of a runtime execution.
///
/// Every engine fires [`round_committed`](RoundSink::round_committed)
/// exactly once per round of a `run_rounds` horizon, in ascending round
/// order, after all of that round's deliveries have been committed — the
/// same instant for all four runtimes, so an observed execution streams an
/// identical call sequence no matter which engine runs it (rounds an engine
/// skips as provably silent still fire, with zero bytes). This is the
/// streaming half of the determinism contract in `docs/DETERMINISM.md`: a
/// new runtime must fire the sink at its round-commit barrier or it cannot
/// claim bit-identical observability.
pub trait RoundSink {
    /// Round `round` (1-based) has committed; `bytes` is the traffic it
    /// carried (the engine's `Metrics::bytes_per_round` entry).
    fn round_committed(&mut self, round: usize, bytes: u64);
}

/// The no-op sink behind every unobserved entry point.
impl RoundSink for () {
    fn round_committed(&mut self, _round: usize, _bytes: u64) {}
}

/// Forward through references so `&mut dyn RoundSink` plugs into the
/// generic engine entry points.
impl<S: RoundSink + ?Sized> RoundSink for &mut S {
    fn round_committed(&mut self, round: usize, bytes: u64) {
        (**self).round_committed(round, bytes);
    }
}

/// A protocol participant driven by a synchronous runtime.
///
/// The runtime calls, for every round `r = 1, 2, …`:
/// 1. [`send`](Process::send) on every process, collecting outgoing
///    messages;
/// 2. [`receive`](Process::receive) on every destination, once per delivered
///    message, in increasing sender order (deterministic).
///
/// Messages to non-neighbors are discarded by the runtime (channels only
/// exist along graph edges) and recorded as violations.
pub trait Process {
    /// Message type exchanged by the protocol.
    type Msg: Clone + fmt::Debug + WireSized;

    /// This process's node id.
    fn id(&self) -> NodeId;

    /// Produces the messages to transmit during round `round` (1-based).
    fn send(&mut self, round: usize) -> Vec<Outgoing<Self::Msg>>;

    /// Handles a message delivered during round `round`, sent by `from`.
    fn receive(&mut self, round: usize, from: NodeId, msg: Self::Msg);

    /// Whether this process is *certain* to stay silent — every future
    /// [`send`](Process::send) returning an empty vector with no state
    /// change — until it next receives a message.
    ///
    /// This is a scheduling hint for the event-driven runtime
    /// ([`crate::event::EventNetwork`]), which skips quiescent nodes
    /// entirely instead of polling every node every round. The contract is
    /// one-sided: answering `false` for a silent node only costs an empty
    /// poll, but answering `true` while a spontaneous send is still pending
    /// (a timed reveal, an epoch gossip) would silently lose those messages
    /// and break the bit-identical equivalence with
    /// [`crate::sync::SyncNetwork`]. The default is therefore the
    /// conservative `false`; purely reactive protocols (NECTAR relays, the
    /// dolev detector) override it with an "outbox empty" check.
    fn quiescent(&self) -> bool {
        false
    }

    /// Notifies the process that its channel to `peer` changed availability
    /// at the start of `round` (1-based): `up = false` when a topology
    /// schedule takes the link down, `up = true` when it heals.
    ///
    /// Only executions driven by a [`crate::schedule::TopologySchedule`]
    /// ever call this; on a static topology it never fires. The call
    /// arrives at the round-commit barrier — before the round's sends — in
    /// ascending round order, and it is a legal *un-quiescing* point: a
    /// process may react to a healed link by queueing new messages even if
    /// it reported [`quiescent`](Process::quiescent) beforehand, extending
    /// the hint's contract to "silent until the next `receive` *or*
    /// `link_changed`" (the [`crate::schedule::Scheduled`] wrapper keeps
    /// such nodes schedulable so no engine misses the wake-up). The default
    /// ignores the notification, which is the correct behaviour for NECTAR
    /// itself: mid-epoch re-announcement is cryptographically blocked by
    /// the chain-length rule (a relay at round `r` needs `r` distinct
    /// signatures), so healed links are only exploited by traffic that is
    /// still flooding — or by the next epoch.
    fn link_changed(&mut self, round: usize, peer: NodeId, up: bool) {
        let _ = (round, peer, up);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Ping(u32);

    impl WireSized for Ping {
        fn wire_bytes(&self) -> usize {
            4
        }
    }

    #[test]
    fn outgoing_is_a_simple_pair() {
        let o = Outgoing::new(3, Ping(7));
        assert_eq!(o.to, 3);
        assert_eq!(o.msg, Ping(7));
        assert_eq!(o.msg.wire_bytes(), 4);
    }
}

#[cfg(test)]
mod box_tests {
    use super::*;

    #[derive(Debug, Clone)]
    struct Unit;
    impl WireSized for Unit {
        fn wire_bytes(&self) -> usize {
            1
        }
    }

    #[derive(Debug)]
    struct Echo {
        id: usize,
        got: usize,
    }
    impl Process for Echo {
        type Msg = Unit;
        fn id(&self) -> usize {
            self.id
        }
        fn send(&mut self, _round: usize) -> Vec<Outgoing<Unit>> {
            vec![Outgoing::new(1 - self.id, Unit)]
        }
        fn receive(&mut self, _round: usize, _from: usize, _msg: Unit) {
            self.got += 1;
        }
    }

    #[test]
    fn boxed_trait_objects_run_in_the_engine() {
        // Heterogeneous systems can run as Box<dyn Process<Msg = M>>.
        let procs: Vec<Box<dyn Process<Msg = Unit>>> =
            vec![Box::new(Echo { id: 0, got: 0 }), Box::new(Echo { id: 1, got: 0 })];
        let g = nectar_graph::Graph::from_edges(2, [(0, 1)]).expect("valid edge");
        let mut net = crate::sync::SyncNetwork::new(procs, g);
        net.run_rounds(3);
        assert_eq!(net.metrics().total_bytes_sent(), 6);
    }
}
