//! The transport layer: driving unchanged [`Process`] state machines over
//! real byte streams.
//!
//! The four in-memory engines hand messages across as values. This module
//! is the step from simulator to system: the same `Process` code runs
//! behind a [`Transport`] — an exchanger of codec-encoded
//! [`Frame`]s — with a [`NodeDriver`] event loop providing round pacing.
//! Three transports exist:
//!
//! * [`LoopbackTransport`] (via [`LoopbackHub`]): in-process queues with
//!   deterministic ordering, every message still round-tripped through
//!   the wire codec — the bridge that proves the framed path reproduces
//!   the sync engine bit for bit ([`run_over_loopback`]);
//! * [`SocketTransport`] over Unix-domain sockets or TCP: one OS process
//!   per node, peer connect/accept with retry-and-backoff
//!   (`nectar-cli node` launches one).
//!
//! **Round pacing.** Sockets have no global scheduler, so the driver
//! implements the synchronous-round model end-to-end: each round it emits
//! the process's messages as `Data` frames, closes the round with a
//! `RoundEnd` marker to every peer, then blocks until every peer's marker
//! for that round has arrived. Buffered `Data` frames are then delivered
//! in ascending sender order — the canonical order of
//! `docs/DETERMINISM.md` — so a fleet of drivers feeds every process the
//! exact delivery sequence the in-memory engines would. (A peer can run
//! at most one round ahead — it cannot close round `r + 1` before our own
//! `RoundEnd(r)` reaches it — which the per-round buffers absorb.)
//!
//! **Conformance contract.** Socket scheduling is still wall-clock
//! nondeterministic, so the socket path is pinned by *delivered-message
//! equivalence* rather than bit-identity: a [`DeliveryLog`] records the
//! set of delivered `(from, to, sha256(payload))` triples on both the
//! in-memory path (via the [`Recorded`] wrapper) and the driver path, and
//! `tests/transport_conformance.rs` asserts fleet-level equality of logs,
//! verdicts and accepted-edge sets.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::{Read, Write};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use nectar_crypto::codec::{CodecError, Decode, Encode};
use nectar_crypto::frame::{Frame, FrameBuffer};
use nectar_crypto::sha256::sha256;
use nectar_graph::Graph;
use parking_lot::Mutex;

use crate::metrics::Metrics;
use crate::process::{NodeId, Process, WireSized};

/// Errors surfaced by transports and the [`NodeDriver`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// A frame or payload failed to decode.
    Codec(CodecError),
    /// An OS-level send/receive/connect failure.
    Io {
        /// What was being attempted.
        context: &'static str,
        /// The underlying error rendering.
        detail: String,
    },
    /// No frame arrived within the receive deadline.
    Timeout {
        /// What the receiver was waiting for.
        waiting_for: String,
    },
    /// Every inbound connection has closed.
    Disconnected,
    /// A send was addressed to a node this transport has no channel to.
    UnknownPeer {
        /// The unreachable node.
        peer: NodeId,
    },
    /// A peer violated the framing protocol (bad sender id, trailing
    /// bytes after a payload, ...).
    Protocol {
        /// Human-readable description.
        detail: String,
    },
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Codec(e) => write!(f, "codec: {e}"),
            TransportError::Io { context, detail } => write!(f, "{context}: {detail}"),
            TransportError::Timeout { waiting_for } => {
                write!(f, "timed out waiting for {waiting_for}")
            }
            TransportError::Disconnected => f.write_str("all inbound connections closed"),
            TransportError::UnknownPeer { peer } => write!(f, "no channel to node {peer}"),
            TransportError::Protocol { detail } => write!(f, "protocol violation: {detail}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<CodecError> for TransportError {
    fn from(e: CodecError) -> Self {
        TransportError::Codec(e)
    }
}

/// A bidirectional frame channel connecting one node to its peers.
///
/// Implementations only move frames; everything protocol-shaped — round
/// pacing, delivery ordering, payload decoding — lives in [`NodeDriver`],
/// so every transport drives processes identically.
pub trait Transport {
    /// This node's id.
    fn local(&self) -> NodeId;

    /// The peers this transport has channels to, ascending.
    fn peers(&self) -> &[NodeId];

    /// Sends one frame toward `to`.
    ///
    /// # Errors
    ///
    /// [`TransportError::UnknownPeer`] for nodes outside
    /// [`peers`](Self::peers); I/O errors from the underlying channel.
    fn send(&mut self, to: NodeId, frame: Frame) -> Result<(), TransportError>;

    /// Receives the next inbound frame (any peer), blocking up to the
    /// transport's receive deadline.
    ///
    /// # Errors
    ///
    /// [`TransportError::Timeout`] when nothing arrives in time;
    /// [`TransportError::Disconnected`] when no sender remains.
    fn recv(&mut self) -> Result<Frame, TransportError>;
}

/// The set of delivered `(from, to, sha256(payload))` triples — the
/// socket path's correctness currency. Two executions that deliver the
/// same message sets to the same nodes are *delivered-message equivalent*
/// regardless of wall-clock interleaving.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeliveryLog {
    entries: BTreeSet<(NodeId, NodeId, [u8; 32])>,
}

impl DeliveryLog {
    /// An empty log.
    pub fn new() -> Self {
        DeliveryLog::default()
    }

    /// Records one delivery of the message hashing to `digest`.
    pub fn record(&mut self, from: NodeId, to: NodeId, digest: [u8; 32]) {
        self.entries.insert((from, to, digest));
    }

    /// Absorbs another log (set union).
    pub fn merge(&mut self, other: &DeliveryLog) {
        self.entries.extend(other.entries.iter().copied());
    }

    /// Number of distinct delivered triples.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was delivered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The triples, ascending.
    pub fn entries(&self) -> impl Iterator<Item = &(NodeId, NodeId, [u8; 32])> {
        self.entries.iter()
    }
}

/// Wraps a [`Process`] so every delivered message is recorded in a
/// [`DeliveryLog`] before the process sees it — the capture layer that
/// makes the in-memory engines comparable to the socket path. The wrapper
/// is transparent to the engines (id, sends, quiescence and link events
/// all forward), so a `Recorded` fleet produces bit-identical outcomes to
/// the bare one.
#[derive(Debug)]
pub struct Recorded<P> {
    inner: P,
    log: DeliveryLog,
}

impl<P> Recorded<P> {
    /// Wraps `inner` with an empty log.
    pub fn new(inner: P) -> Self {
        Recorded { inner, log: DeliveryLog::new() }
    }

    /// The log so far.
    pub fn delivery_log(&self) -> &DeliveryLog {
        &self.log
    }

    /// Unwraps into the process and its log.
    pub fn into_parts(self) -> (P, DeliveryLog) {
        (self.inner, self.log)
    }
}

impl<P: Process> Process for Recorded<P>
where
    P::Msg: Encode,
{
    type Msg = P::Msg;

    fn id(&self) -> NodeId {
        self.inner.id()
    }

    fn send(&mut self, round: usize) -> Vec<crate::process::Outgoing<P::Msg>> {
        self.inner.send(round)
    }

    fn receive(&mut self, round: usize, from: NodeId, msg: P::Msg) {
        self.log.record(from, self.inner.id(), sha256(&msg.to_wire_bytes()));
        self.inner.receive(round, from, msg);
    }

    fn quiescent(&self) -> bool {
        self.inner.quiescent()
    }

    fn link_changed(&mut self, round: usize, peer: NodeId, up: bool) {
        self.inner.link_changed(round, peer, up);
    }
}

/// One successful send, as charged to traffic metrics: the destination
/// and the message's accounting size ([`WireSized`](crate::WireSized)),
/// which is what the in-memory engines charge too.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendRecord {
    /// Round the message was sent in (1-based).
    pub round: usize,
    /// Destination node.
    pub to: NodeId,
    /// Accounting size in bytes.
    pub wire_bytes: usize,
}

/// The per-node event loop: runs one [`Process`] over a [`Transport`]
/// with synchronous-round pacing (see the module docs for the barrier
/// protocol).
#[derive(Debug)]
pub struct NodeDriver<P: Process, T: Transport> {
    process: P,
    transport: T,
    peers: Vec<NodeId>,
    peer_set: BTreeSet<NodeId>,
    /// Data payloads buffered per round, per sender, in arrival order.
    buffered: BTreeMap<u32, BTreeMap<NodeId, Vec<Vec<u8>>>>,
    /// Peers whose `RoundEnd` marker has arrived, per round.
    ended: BTreeMap<u32, BTreeSet<NodeId>>,
    delivered_through: u32,
    log: DeliveryLog,
    sent: Vec<SendRecord>,
    illegal_sends: u64,
}

impl<P, T> NodeDriver<P, T>
where
    P: Process,
    P::Msg: Encode + Decode,
    T: Transport,
{
    /// Couples `process` to `transport`.
    ///
    /// # Panics
    ///
    /// Panics if the process and transport disagree on the local id.
    pub fn new(process: P, transport: T) -> Self {
        assert_eq!(
            process.id(),
            transport.local(),
            "process and transport must agree on the local node id"
        );
        let peers = transport.peers().to_vec();
        let peer_set = peers.iter().copied().collect();
        NodeDriver {
            process,
            transport,
            peers,
            peer_set,
            buffered: BTreeMap::new(),
            ended: BTreeMap::new(),
            delivered_through: 0,
            log: DeliveryLog::new(),
            sent: Vec::new(),
            illegal_sends: 0,
        }
    }

    /// Emits this round's messages as `Data` frames, then closes the
    /// round toward every peer with a `RoundEnd` marker. Sends addressed
    /// outside the peer set are counted as illegal (the channels do not
    /// exist) and dropped, exactly as the in-memory engines do.
    ///
    /// # Errors
    ///
    /// Transport send failures.
    pub fn begin_round(&mut self, round: usize) -> Result<(), TransportError> {
        let from = self.process.id() as u16;
        for out in self.process.send(round) {
            if !self.peer_set.contains(&out.to) {
                self.illegal_sends += 1;
                continue;
            }
            self.sent.push(SendRecord { round, to: out.to, wire_bytes: out.msg.wire_bytes() });
            let frame = Frame::Data { from, round: round as u32, payload: out.msg.to_wire_bytes() };
            self.transport.send(out.to, frame)?;
        }
        for i in 0..self.peers.len() {
            let peer = self.peers[i];
            self.transport.send(peer, Frame::RoundEnd { from, round: round as u32 })?;
        }
        Ok(())
    }

    /// Blocks until every peer has closed `round`, then delivers the
    /// round's buffered messages in ascending sender order.
    ///
    /// # Errors
    ///
    /// Transport receive failures, payload decode failures, and framing
    /// protocol violations.
    pub fn finish_round(&mut self, round: usize) -> Result<(), TransportError> {
        let r = round as u32;
        let goal = self.peers.len();
        while self.ended.get(&r).map_or(0, BTreeSet::len) < goal {
            let frame = self.transport.recv()?;
            self.absorb(frame)?;
        }
        let to = self.process.id();
        let ready = self.buffered.remove(&r).unwrap_or_default();
        for (from, payloads) in ready {
            for payload in payloads {
                let digest = sha256(&payload);
                let mut slice = payload.as_slice();
                let msg = P::Msg::decode(&mut slice)?;
                if !slice.is_empty() {
                    return Err(TransportError::Protocol {
                        detail: format!(
                            "{} trailing bytes after round {round} payload from node {from}",
                            slice.len()
                        ),
                    });
                }
                self.log.record(from, to, digest);
                self.process.receive(round, from, msg);
            }
        }
        self.ended.remove(&r);
        self.delivered_through = r;
        Ok(())
    }

    /// Runs rounds `1..=rounds` to completion.
    ///
    /// # Errors
    ///
    /// The first transport, codec or protocol failure.
    pub fn run(&mut self, rounds: usize) -> Result<(), TransportError> {
        for round in 1..=rounds {
            self.begin_round(round)?;
            self.finish_round(round)?;
        }
        Ok(())
    }

    fn absorb(&mut self, frame: Frame) -> Result<(), TransportError> {
        match frame {
            // Handshake frames carry no protocol content.
            Frame::Hello { .. } => Ok(()),
            Frame::Data { from, round, payload } => {
                let from = from as NodeId;
                if !self.peer_set.contains(&from) {
                    return Err(TransportError::Protocol {
                        detail: format!("data frame from non-peer node {from}"),
                    });
                }
                // A frame for an already-delivered round arrived after its
                // barrier closed — only a misbehaving transport produces
                // this; the round's delivery set is final, so drop it.
                if round > self.delivered_through {
                    self.buffered.entry(round).or_default().entry(from).or_default().push(payload);
                }
                Ok(())
            }
            Frame::RoundEnd { from, round } => {
                let from = from as NodeId;
                if !self.peer_set.contains(&from) {
                    return Err(TransportError::Protocol {
                        detail: format!("round-end frame from non-peer node {from}"),
                    });
                }
                self.ended.entry(round).or_default().insert(from);
                Ok(())
            }
        }
    }

    /// The driven process.
    pub fn process(&self) -> &P {
        &self.process
    }

    /// Deliveries recorded so far.
    pub fn delivery_log(&self) -> &DeliveryLog {
        &self.log
    }

    /// Successful sends so far, in emission order.
    pub fn sent(&self) -> &[SendRecord] {
        &self.sent
    }

    /// Sends addressed outside the peer set (dropped).
    pub fn illegal_sends(&self) -> u64 {
        self.illegal_sends
    }

    /// Decomposes the driver: process, delivery log, send records,
    /// illegal-send count.
    pub fn into_parts(self) -> (P, DeliveryLog, Vec<SendRecord>, u64) {
        (self.process, self.log, self.sent, self.illegal_sends)
    }
}

// ---------------------------------------------------------------------------
// Loopback: in-process, deterministic, still framed.
// ---------------------------------------------------------------------------

/// Shared mailboxes connecting [`LoopbackTransport`]s inside one process.
///
/// Every frame is still encoded to wire bytes on send and reassembled
/// through a [`FrameBuffer`] on receive, so the loopback path exercises
/// the exact byte-level stack the socket path runs — minus the kernel.
#[derive(Debug, Clone)]
pub struct LoopbackHub {
    mailboxes: Arc<Vec<Mutex<VecDeque<Vec<u8>>>>>,
}

impl LoopbackHub {
    /// A hub for nodes `0..n`.
    pub fn new(n: usize) -> Self {
        LoopbackHub { mailboxes: Arc::new((0..n).map(|_| Mutex::new(VecDeque::new())).collect()) }
    }

    /// A transport endpoint for `local`, reaching `peers`.
    ///
    /// # Panics
    ///
    /// Panics if `local` or any peer is outside the hub.
    pub fn transport(&self, local: NodeId, mut peers: Vec<NodeId>) -> LoopbackTransport {
        assert!(local < self.mailboxes.len(), "local node outside the hub");
        assert!(peers.iter().all(|&p| p < self.mailboxes.len()), "peer outside the hub");
        peers.sort_unstable();
        peers.dedup();
        LoopbackTransport {
            local,
            peers,
            mailboxes: Arc::clone(&self.mailboxes),
            decoder: FrameBuffer::new(),
        }
    }
}

/// In-process [`Transport`] endpoint handed out by [`LoopbackHub`].
#[derive(Debug)]
pub struct LoopbackTransport {
    local: NodeId,
    peers: Vec<NodeId>,
    mailboxes: Arc<Vec<Mutex<VecDeque<Vec<u8>>>>>,
    decoder: FrameBuffer,
}

impl Transport for LoopbackTransport {
    fn local(&self) -> NodeId {
        self.local
    }

    fn peers(&self) -> &[NodeId] {
        &self.peers
    }

    fn send(&mut self, to: NodeId, frame: Frame) -> Result<(), TransportError> {
        if !self.peers.contains(&to) {
            return Err(TransportError::UnknownPeer { peer: to });
        }
        self.mailboxes[to].lock().push_back(frame.to_wire_bytes());
        Ok(())
    }

    fn recv(&mut self) -> Result<Frame, TransportError> {
        loop {
            if let Some(frame) = self.decoder.next_frame()? {
                return Ok(frame);
            }
            match self.mailboxes[self.local].lock().pop_front() {
                Some(chunk) => self.decoder.extend(&chunk),
                // Loopback fleets run in lock-step: an empty mailbox
                // means the barrier logic asked for a frame that was
                // never sent. Surface it rather than spinning.
                None => {
                    return Err(TransportError::Timeout {
                        waiting_for: format!("a frame for node {}", self.local),
                    });
                }
            }
        }
    }
}

/// Runs a fleet of processes over loopback transports for `rounds`
/// rounds, returning the final processes, traffic metrics and the fleet's
/// delivery log.
///
/// Drivers advance in lock-step (everyone sends round `r`, then everyone
/// delivers round `r`), which together with the driver's
/// ascending-sender delivery makes the result *bit-identical* to
/// [`SyncNetwork`](crate::sync::SyncNetwork) on the same processes —
/// while every message pays full wire encode/decode. A proptest in
/// `tests/transport_conformance.rs` pins that equivalence across the
/// topology and behaviour zoos.
///
/// # Errors
///
/// The first codec or protocol failure from any driver.
///
/// # Panics
///
/// Panics if `processes` are not ids `0..n` in order, matching the
/// topology.
pub fn run_over_loopback<P>(
    processes: Vec<P>,
    topology: &Graph,
    rounds: usize,
) -> Result<(Vec<P>, Metrics, DeliveryLog), TransportError>
where
    P: Process,
    P::Msg: Encode + Decode,
{
    let n = topology.node_count();
    assert_eq!(processes.len(), n, "one process per topology node");
    let hub = LoopbackHub::new(n);
    let mut drivers: Vec<NodeDriver<P, LoopbackTransport>> = processes
        .into_iter()
        .enumerate()
        .map(|(i, p)| {
            assert_eq!(p.id(), i, "processes must be ids 0..n in order");
            NodeDriver::new(p, hub.transport(i, topology.neighborhood(i)))
        })
        .collect();
    for round in 1..=rounds {
        for driver in drivers.iter_mut() {
            driver.begin_round(round)?;
        }
        for driver in drivers.iter_mut() {
            driver.finish_round(round)?;
        }
    }
    let mut metrics = Metrics::new(n);
    let mut log = DeliveryLog::new();
    let mut out = Vec::with_capacity(n);
    for (i, driver) in drivers.into_iter().enumerate() {
        let (process, node_log, sent, illegal) = driver.into_parts();
        for record in &sent {
            metrics.record_send(record.round, i, record.to, record.wire_bytes);
        }
        for _ in 0..illegal {
            metrics.record_illegal_send();
        }
        log.merge(&node_log);
        out.push(process);
    }
    Ok((out, metrics, log))
}

// ---------------------------------------------------------------------------
// Sockets: UDS / TCP, one OS process per node.
// ---------------------------------------------------------------------------

/// Connection-establishment and receive deadlines for [`SocketTransport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnectConfig {
    /// Total budget for dialing every peer and accepting every inbound
    /// connection (retry-and-backoff runs inside this window).
    pub connect_timeout: Duration,
    /// How long one [`Transport::recv`] may block.
    pub recv_timeout: Duration,
    /// First retry delay when a peer is not yet listening; doubles per
    /// attempt, capped at 500 ms.
    pub initial_backoff: Duration,
}

impl Default for ConnectConfig {
    fn default() -> Self {
        ConnectConfig {
            connect_timeout: Duration::from_secs(30),
            recv_timeout: Duration::from_secs(30),
            initial_backoff: Duration::from_millis(5),
        }
    }
}

/// A [`Transport`] over real sockets: one duplex pair of connections per
/// peer (we dial their listener for our outbound frames; they dial ours
/// for theirs), a reader thread per inbound connection feeding one
/// channel, and retry-with-backoff dialing so fleet members may start in
/// any order.
///
/// Peer identity is taken from the frames themselves (every frame carries
/// its sender id, and the payloads are signed at the protocol layer);
/// the `Hello` handshake frame exists to version-check the link early.
pub struct SocketTransport {
    local: NodeId,
    peers: Vec<NodeId>,
    writers: BTreeMap<NodeId, Box<dyn Write + Send>>,
    rx: mpsc::Receiver<Result<Frame, TransportError>>,
    recv_timeout: Duration,
    /// Socket file to unlink on drop (UDS only).
    cleanup: Option<std::path::PathBuf>,
}

impl std::fmt::Debug for SocketTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SocketTransport")
            .field("local", &self.local)
            .field("peers", &self.peers)
            .finish_non_exhaustive()
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        if let Some(path) = self.cleanup.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

fn io_err(context: &'static str, e: &std::io::Error) -> TransportError {
    TransportError::Io { context, detail: e.to_string() }
}

/// Reads frames off one inbound connection into the shared channel until
/// EOF (peer finished and closed) or a hard error.
fn spawn_reader<R: Read + Send + 'static>(
    mut stream: R,
    tx: mpsc::Sender<Result<Frame, TransportError>>,
) {
    std::thread::spawn(move || {
        let mut decoder = FrameBuffer::new();
        let mut chunk = [0u8; 16 * 1024];
        loop {
            loop {
                match decoder.next_frame() {
                    Ok(Some(frame)) => {
                        if tx.send(Ok(frame)).is_err() {
                            return;
                        }
                    }
                    Ok(None) => break,
                    Err(e) => {
                        let _ = tx.send(Err(TransportError::Codec(e)));
                        return;
                    }
                }
            }
            match stream.read(&mut chunk) {
                Ok(0) => return,
                Ok(k) => decoder.extend(&chunk[..k]),
                Err(e) => {
                    let _ = tx.send(Err(io_err("socket read", &e)));
                    return;
                }
            }
        }
    });
}

/// Dials until `connect` succeeds or the deadline passes, doubling the
/// backoff between attempts — fleet members may start in any order, so
/// the first attempts routinely race the peer's bind.
fn dial_with_backoff<S>(
    mut connect: impl FnMut() -> std::io::Result<S>,
    deadline: Instant,
    initial_backoff: Duration,
) -> Result<S, TransportError> {
    let mut backoff = initial_backoff.max(Duration::from_millis(1));
    loop {
        match connect() {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                if Instant::now() + backoff >= deadline {
                    return Err(io_err("dialing peer", &e));
                }
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_millis(500));
            }
        }
    }
}

/// Accept loop: takes exactly `expected` inbound connections off
/// `accept`, spawning a reader for each, and reports completion (or
/// timeout) through `ready_tx`.
fn accept_all<S: Read + Send + 'static>(
    mut accept: impl FnMut() -> std::io::Result<S>,
    expected: usize,
    deadline: Instant,
    tx: mpsc::Sender<Result<Frame, TransportError>>,
    ready_tx: mpsc::Sender<Result<(), TransportError>>,
) {
    let mut accepted = 0;
    while accepted < expected {
        if Instant::now() >= deadline {
            let _ = ready_tx.send(Err(TransportError::Timeout {
                waiting_for: format!("inbound connections ({accepted} of {expected} accepted)"),
            }));
            return;
        }
        match accept() {
            Ok(stream) => {
                spawn_reader(stream, tx.clone());
                accepted += 1;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => {
                let _ = ready_tx.send(Err(io_err("accepting peer", &e)));
                return;
            }
        }
    }
    let _ = ready_tx.send(Ok(()));
}

impl SocketTransport {
    /// Connects a Unix-domain-socket transport: binds (and on drop
    /// unlinks) `listen`, dials every peer's socket path with
    /// retry-and-backoff, and waits until every peer has dialed us.
    ///
    /// # Errors
    ///
    /// Bind/dial/accept failures and connect-phase timeouts.
    #[cfg(unix)]
    pub fn uds(
        local: NodeId,
        listen: &std::path::Path,
        peers: &[(NodeId, std::path::PathBuf)],
        config: &ConnectConfig,
    ) -> Result<SocketTransport, TransportError> {
        use std::os::unix::net::{UnixListener, UnixStream};

        // A stale socket file from a crashed predecessor blocks bind.
        let _ = std::fs::remove_file(listen);
        let listener = UnixListener::bind(listen).map_err(|e| io_err("binding socket", &e))?;
        listener.set_nonblocking(true).map_err(|e| io_err("binding socket", &e))?;
        let deadline = Instant::now() + config.connect_timeout;
        let (tx, rx) = mpsc::channel();
        let (ready_tx, ready_rx) = mpsc::channel();
        {
            let tx = tx.clone();
            let expected = peers.len();
            std::thread::spawn(move || {
                accept_all(
                    || {
                        listener.accept().map(|(stream, _)| {
                            let _ = stream.set_nonblocking(false);
                            stream
                        })
                    },
                    expected,
                    deadline,
                    tx,
                    ready_tx,
                );
            });
        }
        let mut writers: BTreeMap<NodeId, Box<dyn Write + Send>> = BTreeMap::new();
        for (peer, path) in peers {
            let stream =
                dial_with_backoff(|| UnixStream::connect(path), deadline, config.initial_backoff)?;
            writers.insert(*peer, Box::new(stream));
        }
        Self::finish(local, peers.iter().map(|&(p, _)| p).collect(), writers, rx, ready_rx, {
            let remaining = deadline.saturating_duration_since(Instant::now());
            remaining + Duration::from_secs(1)
        })
        .map(|mut t| {
            t.cleanup = Some(listen.to_path_buf());
            t.recv_timeout = config.recv_timeout;
            t
        })
    }

    /// Connects a TCP transport on loopback/LAN addresses: binds
    /// `listen`, dials every peer with retry-and-backoff, waits for every
    /// peer to dial us.
    ///
    /// # Errors
    ///
    /// Bind/dial/accept failures and connect-phase timeouts.
    pub fn tcp(
        local: NodeId,
        listen: std::net::SocketAddr,
        peers: &[(NodeId, std::net::SocketAddr)],
        config: &ConnectConfig,
    ) -> Result<SocketTransport, TransportError> {
        use std::net::{TcpListener, TcpStream};

        let listener = TcpListener::bind(listen).map_err(|e| io_err("binding socket", &e))?;
        listener.set_nonblocking(true).map_err(|e| io_err("binding socket", &e))?;
        let deadline = Instant::now() + config.connect_timeout;
        let (tx, rx) = mpsc::channel();
        let (ready_tx, ready_rx) = mpsc::channel();
        {
            let tx = tx.clone();
            let expected = peers.len();
            std::thread::spawn(move || {
                accept_all(
                    || {
                        listener.accept().map(|(stream, _)| {
                            let _ = stream.set_nonblocking(false);
                            let _ = stream.set_nodelay(true);
                            stream
                        })
                    },
                    expected,
                    deadline,
                    tx,
                    ready_tx,
                );
            });
        }
        let mut writers: BTreeMap<NodeId, Box<dyn Write + Send>> = BTreeMap::new();
        for (peer, addr) in peers {
            let stream =
                dial_with_backoff(|| TcpStream::connect(addr), deadline, config.initial_backoff)?;
            let _ = stream.set_nodelay(true);
            writers.insert(*peer, Box::new(stream));
        }
        Self::finish(local, peers.iter().map(|&(p, _)| p).collect(), writers, rx, ready_rx, {
            let remaining = deadline.saturating_duration_since(Instant::now());
            remaining + Duration::from_secs(1)
        })
        .map(|mut t| {
            t.recv_timeout = config.recv_timeout;
            t
        })
    }

    /// Shared tail of both constructors: send the `Hello` handshake on
    /// every outbound link, then wait for the accept loop to confirm
    /// every peer dialed us.
    fn finish(
        local: NodeId,
        mut peers: Vec<NodeId>,
        mut writers: BTreeMap<NodeId, Box<dyn Write + Send>>,
        rx: mpsc::Receiver<Result<Frame, TransportError>>,
        ready_rx: mpsc::Receiver<Result<(), TransportError>>,
        ready_wait: Duration,
    ) -> Result<SocketTransport, TransportError> {
        peers.sort_unstable();
        peers.dedup();
        let hello = Frame::Hello { from: local as u16 }.to_wire_bytes();
        for (_, writer) in writers.iter_mut() {
            writer.write_all(&hello).map_err(|e| io_err("socket write", &e))?;
            writer.flush().map_err(|e| io_err("socket write", &e))?;
        }
        match ready_rx.recv_timeout(ready_wait) {
            Ok(Ok(())) => {}
            Ok(Err(e)) => return Err(e),
            Err(_) => {
                return Err(TransportError::Timeout {
                    waiting_for: "the accept loop to finish".into(),
                });
            }
        }
        Ok(SocketTransport {
            local,
            peers,
            writers,
            rx,
            recv_timeout: Duration::from_secs(30),
            cleanup: None,
        })
    }
}

impl Transport for SocketTransport {
    fn local(&self) -> NodeId {
        self.local
    }

    fn peers(&self) -> &[NodeId] {
        &self.peers
    }

    fn send(&mut self, to: NodeId, frame: Frame) -> Result<(), TransportError> {
        let writer = self.writers.get_mut(&to).ok_or(TransportError::UnknownPeer { peer: to })?;
        writer.write_all(&frame.to_wire_bytes()).map_err(|e| io_err("socket write", &e))?;
        writer.flush().map_err(|e| io_err("socket write", &e))
    }

    fn recv(&mut self) -> Result<Frame, TransportError> {
        match self.rx.recv_timeout(self.recv_timeout) {
            Ok(result) => result,
            Err(mpsc::RecvTimeoutError::Timeout) => Err(TransportError::Timeout {
                waiting_for: format!("a frame for node {}", self.local),
            }),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(TransportError::Disconnected),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{Outgoing, WireSized};
    use bytes::{BufMut, BytesMut};
    use nectar_graph::gen;

    /// A one-byte test message.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Ping(u8);

    impl WireSized for Ping {
        fn wire_bytes(&self) -> usize {
            // Deliberately different from the encoded length, like
            // NectarMsg's accounting size: metrics must charge this.
            3
        }
    }

    impl Encode for Ping {
        fn encode(&self, buf: &mut BytesMut) {
            buf.put_u8(self.0);
        }

        fn encoded_len(&self) -> usize {
            1
        }
    }

    impl Decode for Ping {
        fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
            let (&value, tail) =
                buf.split_first().ok_or(CodecError::UnexpectedEnd { decoding: "ping" })?;
            *buf = tail;
            Ok(Ping(value))
        }
    }

    /// Sends its id to every peer each round; remembers what it saw.
    #[derive(Debug)]
    struct Chatter {
        id: NodeId,
        peers: Vec<NodeId>,
        seen: Vec<(usize, NodeId, u8)>,
    }

    impl Process for Chatter {
        type Msg = Ping;

        fn id(&self) -> NodeId {
            self.id
        }

        fn send(&mut self, _round: usize) -> Vec<Outgoing<Ping>> {
            self.peers.iter().map(|&to| Outgoing::new(to, Ping(self.id as u8))).collect()
        }

        fn receive(&mut self, round: usize, from: NodeId, msg: Ping) {
            self.seen.push((round, from, msg.0));
        }
    }

    fn chatter_fleet(g: &Graph) -> Vec<Chatter> {
        (0..g.node_count())
            .map(|i| Chatter { id: i, peers: g.neighborhood(i), seen: Vec::new() })
            .collect()
    }

    #[test]
    fn loopback_delivers_in_ascending_sender_order() {
        let g = gen::complete(4);
        let (fleet, metrics, log) = run_over_loopback(chatter_fleet(&g), &g, 2).unwrap();
        for node in &fleet {
            let expect: Vec<(usize, NodeId, u8)> = (1..=2usize)
                .flat_map(|r| node.peers.iter().map(move |&p| (r, p, p as u8)))
                .collect();
            assert_eq!(node.seen, expect, "node {}", node.id);
        }
        // 4 nodes × 3 peers × 2 rounds, 3 accounting bytes each.
        assert_eq!(metrics.msgs_sent().iter().sum::<u64>(), 24);
        assert_eq!(metrics.total_bytes_sent(), 72);
        assert_eq!(metrics.bytes_per_round(), &[36, 36]);
        // Distinct digests: one per (from, to) pair — payloads repeat
        // across rounds, and the log is a set.
        assert_eq!(log.len(), 12);
    }

    #[test]
    fn loopback_matches_the_sync_engine_bit_for_bit() {
        let g = gen::cycle(6);
        let (_, loop_metrics, _) = run_over_loopback(chatter_fleet(&g), &g, 3).unwrap();
        let mut net = crate::sync::SyncNetwork::new(chatter_fleet(&g), g);
        net.run_rounds(3);
        let (_, sync_metrics) = net.into_parts();
        assert_eq!(loop_metrics, sync_metrics);
    }

    #[test]
    fn illegal_sends_are_counted_and_dropped() {
        // Node 0 tries to message node 2 across a path 0-1-2: no channel.
        let g = gen::path(3);
        let mut fleet = chatter_fleet(&g);
        fleet[0].peers = vec![1, 2];
        let (fleet, metrics, _) = run_over_loopback(fleet, &g, 1).unwrap();
        assert_eq!(metrics.illegal_sends(), 1);
        assert_eq!(fleet[2].seen, vec![(1, 1, 1)]);
    }

    #[test]
    fn recorded_wrapper_captures_deliveries_transparently() {
        let g = gen::complete(3);
        let wrapped: Vec<Recorded<Chatter>> =
            chatter_fleet(&g).into_iter().map(Recorded::new).collect();
        let mut net = crate::sync::SyncNetwork::new(wrapped, g.clone());
        net.run_rounds(1);
        let (wrapped, _) = net.into_parts();
        let mut fleet_log = DeliveryLog::new();
        for w in &wrapped {
            assert_eq!(w.delivery_log().len(), 2);
            fleet_log.merge(w.delivery_log());
        }
        // The loopback fleet must produce the identical delivery set.
        let (_, _, loop_log) = run_over_loopback(chatter_fleet(&g), &g, 1).unwrap();
        assert_eq!(fleet_log, loop_log);
    }

    #[cfg(unix)]
    #[test]
    fn uds_pair_exchanges_rounds() {
        let dir = std::env::temp_dir().join(format!("nectar-uds-unit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = |i: usize| dir.join(format!("node-{i}.sock"));
        let config = ConnectConfig::default();
        let g = gen::path(2);
        let mut handles = Vec::new();
        for i in 0..2 {
            let listen = path(i);
            let peer = (1 - i, path(1 - i));
            let fleet = chatter_fleet(&g);
            let config = config;
            handles.push(std::thread::spawn(move || {
                let transport =
                    SocketTransport::uds(i, &listen, &[peer], &config).expect("connect");
                let mut driver = NodeDriver::new(fleet.into_iter().nth(i).unwrap(), transport);
                driver.run(2).expect("run");
                let (process, log, sent, illegal) = driver.into_parts();
                assert_eq!(illegal, 0);
                assert_eq!(sent.len(), 2);
                assert_eq!(process.seen.len(), 2);
                log
            }));
        }
        let mut fleet_log = DeliveryLog::new();
        for h in handles {
            fleet_log.merge(&h.join().unwrap());
        }
        let (_, _, loop_log) = run_over_loopback(chatter_fleet(&g), &g, 2).unwrap();
        assert_eq!(fleet_log, loop_log);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tcp_pair_exchanges_rounds() {
        // Fixed loopback ports chosen high; retry/backoff absorbs the
        // listener race between the two threads.
        let base = 42710 + (std::process::id() % 1000) as u16;
        let addr = |i: usize| -> std::net::SocketAddr {
            format!("127.0.0.1:{}", base + i as u16).parse().unwrap()
        };
        let g = gen::path(2);
        let config = ConnectConfig::default();
        let mut handles = Vec::new();
        for i in 0..2 {
            let fleet = chatter_fleet(&g);
            let peer = (1 - i, addr(1 - i));
            let listen = addr(i);
            handles.push(std::thread::spawn(move || {
                let transport = SocketTransport::tcp(i, listen, &[peer], &config).expect("connect");
                let mut driver = NodeDriver::new(fleet.into_iter().nth(i).unwrap(), transport);
                driver.run(1).expect("run");
                driver.process().seen.clone()
            }));
        }
        let seen: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(seen[0], vec![(1, 1, 1)]);
        assert_eq!(seen[1], vec![(1, 0, 0)]);
    }

    #[test]
    fn driver_rejects_mismatched_ids() {
        let g = gen::path(2);
        let hub = LoopbackHub::new(2);
        let fleet = chatter_fleet(&g);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            NodeDriver::new(fleet.into_iter().nth(1).unwrap(), hub.transport(0, vec![1]))
        }));
        assert!(result.is_err());
    }

    #[test]
    fn loopback_send_to_unknown_peer_errors() {
        let hub = LoopbackHub::new(3);
        let mut t = hub.transport(0, vec![1]);
        assert_eq!(
            t.send(2, Frame::Hello { from: 0 }),
            Err(TransportError::UnknownPeer { peer: 2 })
        );
    }

    #[test]
    fn transport_errors_render() {
        for e in [
            TransportError::Codec(CodecError::BadPadding),
            TransportError::Io { context: "socket read", detail: "boom".into() },
            TransportError::Timeout { waiting_for: "frames".into() },
            TransportError::Disconnected,
            TransportError::UnknownPeer { peer: 9 },
            TransportError::Protocol { detail: "late frame".into() },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
