//! Thread-per-node runtime: the same [`Process`] code, actually concurrent.
//!
//! The paper evaluates NECTAR with "up to 100 nodes running real code" (one
//! Docker container per process). This runtime preserves that flavour inside
//! one address space: every node runs on its own OS thread, messages travel
//! through crossbeam channels, and rounds are aligned with barriers so the
//! synchronous model of §II still holds. Delivery order within a round is
//! normalized (sorted by sender) so results are bit-identical to
//! [`crate::sync::SyncNetwork`] — a property the cross-runtime equivalence
//! tests assert.

use std::sync::{Arc, Barrier};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use nectar_graph::Graph;

use crate::metrics::Metrics;
use crate::process::{NodeId, Process, RoundSink, WireSized};

/// Runs `rounds` synchronous rounds of the given processes over `topology`,
/// one OS thread per node. Returns the processes (in node order) and the
/// traffic metrics.
///
/// # Panics
///
/// Panics unless `processes[i].id() == i` for every `i` and the process
/// count equals the topology's node count; also panics if a worker thread
/// panics.
pub fn run_threaded<P>(processes: Vec<P>, topology: &Graph, rounds: usize) -> (Vec<P>, Metrics)
where
    P: Process + Send + 'static,
    P::Msg: Send + 'static,
{
    run_threaded_with(processes, topology, rounds, &mut ())
}

/// [`run_threaded`] with a [`RoundSink`] observing every committed round.
/// The calling thread acts as a coordinator joining the round barriers, so
/// the sink fires on the caller between a round's receive barrier and the
/// next round's sends — the same commit instant the other engines report.
///
/// # Panics
///
/// Panics unless `processes[i].id() == i` for every `i` and the process
/// count equals the topology's node count; also panics if a worker thread
/// panics.
pub fn run_threaded_with<P, S>(
    processes: Vec<P>,
    topology: &Graph,
    rounds: usize,
    sink: &mut S,
) -> (Vec<P>, Metrics)
where
    P: Process + Send + 'static,
    P::Msg: Send + 'static,
    S: RoundSink + ?Sized,
{
    let n = processes.len();
    assert_eq!(n, topology.node_count(), "need exactly one process per topology node");
    for (i, p) in processes.iter().enumerate() {
        assert_eq!(p.id(), i, "process at index {i} reports id {}", p.id());
    }
    if n == 0 {
        // No node will ever send: every round commits empty, as under sync.
        for round in 1..=rounds {
            sink.round_committed(round, 0);
        }
        return (processes, Metrics::new(0));
    }

    type Packet<M> = (usize, NodeId, M); // (round, from, msg)
    let mut senders: Vec<Sender<Packet<P::Msg>>> = Vec::with_capacity(n);
    let mut receivers: Vec<Receiver<Packet<P::Msg>>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }

    let topology = Arc::new(topology.clone());
    let metrics = Arc::new(Mutex::new(Metrics::new(n)));
    // n workers + the coordinating caller, which observes round commits.
    let barrier = Arc::new(Barrier::new(n + 1));

    let mut handles = Vec::with_capacity(n);
    for (i, (mut proc, rx)) in processes.into_iter().zip(receivers).enumerate() {
        let senders = senders.clone();
        let topology = Arc::clone(&topology);
        let metrics = Arc::clone(&metrics);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            // A panicking process must not abandon the barriers: the other
            // workers and the coordinating caller would deadlock (std's
            // Barrier does not poison). Trap the payload, sit out the
            // remaining rounds in lock-step, and re-raise at the end so the
            // join below observes the original panic.
            let mut panicked: Option<Box<dyn std::any::Any + Send>> = None;
            for round in 1..=rounds {
                if panicked.is_none() {
                    let phase = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let out = proc.send(round);
                        for o in out {
                            if o.to >= senders.len() || !topology.has_edge(i, o.to) {
                                metrics.lock().record_illegal_send();
                                continue;
                            }
                            metrics.lock().record_send(round, i, o.to, o.msg.wire_bytes());
                            // Receiver ends live as long as every worker, so
                            // a send can only fail if a peer panicked — and a
                            // panicked peer still drains barriers, so treat a
                            // refused send like our own panic.
                            senders[o.to]
                                .send((round, i, o.msg))
                                .expect("peer thread alive during round");
                        }
                    }));
                    panicked = phase.err();
                }
                // All sends for this round are in flight.
                barrier.wait();
                if panicked.is_none() {
                    let phase = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let mut inbox: Vec<Packet<P::Msg>> = rx.try_iter().collect();
                        inbox.sort_by_key(|&(_, from, _)| from);
                        for (msg_round, from, msg) in inbox {
                            debug_assert_eq!(
                                msg_round, round,
                                "synchrony: no message may cross a round"
                            );
                            proc.receive(round, from, msg);
                        }
                    }));
                    panicked = phase.err();
                }
                // All receives done before anyone starts the next round.
                barrier.wait();
            }
            if let Some(payload) = panicked {
                std::panic::resume_unwind(payload);
            }
            proc
        }));
    }
    drop(senders);

    // Coordinator: join both barriers of every round, then report the
    // commit. After the second barrier all of the round's sends are
    // recorded, so the per-round byte count is final.
    for round in 1..=rounds {
        barrier.wait();
        barrier.wait();
        let bytes = metrics.lock().bytes_per_round().get(round - 1).copied().unwrap_or(0);
        sink.round_committed(round, bytes);
    }

    let mut out: Vec<P> =
        handles.into_iter().map(|h| h.join().expect("worker thread panicked")).collect();
    out.sort_by_key(|p| p.id());

    let metrics = Arc::try_unwrap(metrics).expect("all workers joined").into_inner();
    (out, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Outgoing;
    use crate::sync::SyncNetwork;
    use nectar_graph::gen;
    use std::collections::BTreeSet;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct IdMsg(usize);

    impl WireSized for IdMsg {
        fn wire_bytes(&self) -> usize {
            8
        }
    }

    /// Same toy flooding protocol as the sync engine tests.
    #[derive(Debug, Clone)]
    struct Flood {
        id: usize,
        neighbors: Vec<usize>,
        known: BTreeSet<usize>,
        outbox: Vec<usize>,
    }

    impl Flood {
        fn new(id: usize, g: &Graph) -> Self {
            Flood {
                id,
                neighbors: g.neighborhood(id),
                known: [id].into_iter().collect(),
                outbox: vec![id],
            }
        }
    }

    impl Process for Flood {
        type Msg = IdMsg;

        fn id(&self) -> usize {
            self.id
        }

        fn send(&mut self, _round: usize) -> Vec<Outgoing<IdMsg>> {
            let outbox = std::mem::take(&mut self.outbox);
            outbox
                .into_iter()
                .flat_map(|payload| {
                    self.neighbors.iter().map(move |&to| Outgoing::new(to, IdMsg(payload)))
                })
                .collect()
        }

        fn receive(&mut self, _round: usize, _from: usize, msg: IdMsg) {
            if self.known.insert(msg.0) {
                self.outbox.push(msg.0);
            }
        }
    }

    #[test]
    fn threaded_flooding_covers_connected_graph() {
        let g = gen::cycle(8);
        let procs: Vec<Flood> = (0..8).map(|i| Flood::new(i, &g)).collect();
        let (procs, metrics) = run_threaded(procs, &g, 7);
        for p in &procs {
            assert_eq!(p.known.len(), 8, "node {}", p.id);
        }
        assert!(metrics.total_bytes_sent() > 0);
        assert_eq!(metrics.illegal_sends(), 0);
    }

    #[test]
    fn threaded_equals_sync_engine() {
        let g = gen::harary(4, 12).unwrap();
        let sync_procs: Vec<Flood> = (0..12).map(|i| Flood::new(i, &g)).collect();
        let mut sync_net = SyncNetwork::new(sync_procs, g.clone());
        sync_net.run_rounds(11);

        let threaded_procs: Vec<Flood> = (0..12).map(|i| Flood::new(i, &g)).collect();
        let (threaded_procs, threaded_metrics) = run_threaded(threaded_procs, &g, 11);

        for (a, b) in sync_net.processes().iter().zip(&threaded_procs) {
            assert_eq!(a.known, b.known);
        }
        assert_eq!(sync_net.metrics(), &threaded_metrics);
    }

    #[test]
    fn empty_system_is_a_no_op() {
        let g = Graph::empty(0);
        let (procs, metrics) = run_threaded(Vec::<Flood>::new(), &g, 3);
        assert!(procs.is_empty());
        assert_eq!(metrics.total_bytes_sent(), 0);
    }

    #[test]
    #[should_panic(expected = "worker thread panicked")]
    fn worker_panic_propagates_instead_of_deadlocking() {
        // A process panicking mid-run must fail the call, not hang it: the
        // panicked worker keeps draining the round barriers (std barriers
        // do not poison) and re-raises at join time.
        #[derive(Debug)]
        struct Bomb {
            id: usize,
        }
        impl Process for Bomb {
            type Msg = IdMsg;
            fn id(&self) -> usize {
                self.id
            }
            fn send(&mut self, round: usize) -> Vec<Outgoing<IdMsg>> {
                if round == 2 && self.id == 1 {
                    panic!("process bug under test");
                }
                vec![Outgoing::new((self.id + 1) % 3, IdMsg(self.id))]
            }
            fn receive(&mut self, _round: usize, _from: usize, _msg: IdMsg) {}
        }
        let g = gen::cycle(3);
        let _ = run_threaded(vec![Bomb { id: 0 }, Bomb { id: 1 }, Bomb { id: 2 }], &g, 4);
    }

    #[test]
    fn single_node_runs_without_peers() {
        let g = Graph::empty(1);
        let (procs, metrics) = run_threaded(vec![Flood::new(0, &g)], &g, 2);
        assert_eq!(procs[0].known.len(), 1);
        assert_eq!(metrics.total_bytes_sent(), 0);
    }
}
