//! Synchronous message-passing runtime for the NECTAR reproduction.
//!
//! Implements the paper's system model (§II): processes on a static
//! undirected topology of reliable channels, communicating in synchronous
//! rounds. Four interchangeable runtimes execute the same [`Process`]
//! code and produce bit-identical results:
//!
//! * [`sync::SyncNetwork`]: deterministic, single-threaded, polls every
//!   node every round (tests, small sweeps),
//! * [`threaded::run_threaded`]: one OS thread per node over crossbeam
//!   channels with barrier-aligned rounds ("real code running
//!   concurrently", matching the paper's one-container-per-process setup;
//!   practical up to a few hundred nodes),
//! * [`event::EventNetwork`]: a binary-heap event loop multiplexing all
//!   nodes as state machines — `O(active events)` scheduling via the
//!   [`Process::quiescent`] hint, hosting 10k+-node topologies in one
//!   process,
//! * [`parallel::ParallelNetwork`]: a work-stealing worker pool over
//!   round-committed execution — the event runtime's active-set scheduling
//!   plus real parallelism, kept deterministic by merging each round's
//!   messages into the canonical sync order before committing deliveries
//!   (see `docs/DETERMINISM.md` for the contract).
//!
//! Traffic is charged to per-node counters ([`metrics::Metrics`]) using each
//! message's wire size, which is how the evaluation's data-sent-per-node
//! figures are produced. Byzantine *traffic* behaviours (crash, two-faced
//! silence, message loss) are applied by wrapping any process in
//! [`fault::Faulty`].
//!
//! # Example
//!
//! ```
//! use nectar_net::process::{Outgoing, Process, WireSized};
//! use nectar_net::sync::SyncNetwork;
//!
//! #[derive(Debug, Clone)]
//! struct Hello(u8);
//! impl WireSized for Hello {
//!     fn wire_bytes(&self) -> usize { 1 }
//! }
//!
//! #[derive(Debug)]
//! struct Greeter { id: usize, peers: Vec<usize>, greeted: usize }
//! impl Process for Greeter {
//!     type Msg = Hello;
//!     fn id(&self) -> usize { self.id }
//!     fn send(&mut self, round: usize) -> Vec<Outgoing<Hello>> {
//!         if round == 1 {
//!             self.peers.iter().map(|&to| Outgoing::new(to, Hello(42))).collect()
//!         } else {
//!             Vec::new()
//!         }
//!     }
//!     fn receive(&mut self, _round: usize, _from: usize, _msg: Hello) {
//!         self.greeted += 1;
//!     }
//! }
//!
//! let g = nectar_graph::gen::complete(3);
//! let procs = (0..3)
//!     .map(|i| Greeter { id: i, peers: g.neighborhood(i), greeted: 0 })
//!     .collect();
//! let mut net = SyncNetwork::new(procs, g);
//! net.run_rounds(1);
//! assert!(net.processes().iter().all(|p| p.greeted == 2));
//! ```

#![forbid(unsafe_code)]

pub mod event;
pub mod fault;
pub mod metrics;
pub mod parallel;
pub mod process;
pub mod schedule;
pub mod sync;
pub mod threaded;
pub mod transport;

pub use event::{run_event_driven, run_event_driven_with, EventNetwork};
pub use fault::{ClosureFault, Crash, DropRandom, FaultModel, Faulty, TwoFaced};
pub use metrics::{Metrics, PhaseProfile};
pub use parallel::{
    parallel_map, resolve_workers, run_parallel, run_parallel_with, ParallelNetwork,
};
pub use process::{NodeId, Outgoing, Process, RoundSink, WireSized};
pub use schedule::{
    CompiledSchedule, Fate, ScheduleError, ScheduleState, Scheduled, TopologySchedule,
};
pub use sync::SyncNetwork;
pub use threaded::{run_threaded, run_threaded_with};
pub use transport::{
    run_over_loopback, ConnectConfig, DeliveryLog, LoopbackHub, LoopbackTransport, NodeDriver,
    Recorded, SendRecord, SocketTransport, Transport, TransportError,
};
