//! Length-prefixed, versioned socket frames.
//!
//! The socket transport (`nectar-net`) moves the protocol's signed
//! messages between OS processes as a byte stream; this module gives that
//! stream its framing. A frame is a fixed 12-byte header followed by an
//! opaque payload:
//!
//! ```text
//! version  : u8      (FRAME_VERSION; anything else is rejected)
//! kind     : u8      (0 = hello, 1 = data, 2 = round-end)
//! from     : u16     (sender node id)
//! round    : u32     (protocol round; 0 for hello)
//! length   : u32     (payload bytes; 0 for hello / round-end)
//! payload  : length bytes (a codec-encoded protocol message, data only)
//! ```
//!
//! Three properties matter more than compactness:
//!
//! * **Truncation safety.** A one-shot [`Decode`] on a cut-off buffer is
//!   an `UnexpectedEnd` error; the streaming [`FrameBuffer`] simply waits
//!   for more bytes. Neither ever panics (`tests/parser_fuzz.rs` cuts a
//!   valid frame at every byte boundary to pin this).
//! * **No over-read.** The length field is validated against
//!   [`MAX_FRAME_PAYLOAD`] *before* any payload is buffered or allocated,
//!   so a hostile length prefix cannot make the receiver reserve or wait
//!   for gigabytes.
//! * **Versioning.** The first byte of every frame is the codec version;
//!   a mismatch is an immediate decode error, not a misparse.

use bytes::{Buf, BufMut, BytesMut};

use crate::codec::{need, CodecError, Decode, Encode};

/// Frame codec version (first byte of every frame on the wire).
pub const FRAME_VERSION: u8 = 1;

/// Fixed header size: version, kind, from, round, payload length.
pub const FRAME_HEADER_BYTES: usize = 1 + 1 + 2 + 4 + 4;

/// Upper bound on a frame payload (16 MiB). Protocol messages are far
/// smaller; anything above this is a corrupt or hostile length prefix.
pub const MAX_FRAME_PAYLOAD: usize = 1 << 24;

const KIND_HELLO: u8 = 0;
const KIND_DATA: u8 = 1;
const KIND_ROUND_END: u8 = 2;

/// One transport frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Connection handshake: announces the dialing node's identity.
    Hello {
        /// Sender node id.
        from: u16,
    },
    /// A protocol message for `round`, payload encoded with the message's
    /// own [`Encode`] impl.
    Data {
        /// Sender node id.
        from: u16,
        /// Protocol round the payload belongs to (1-based).
        round: u32,
        /// Codec-encoded protocol message.
        payload: Vec<u8>,
    },
    /// Round barrier marker: the sender has emitted everything it will
    /// send for `round`.
    RoundEnd {
        /// Sender node id.
        from: u16,
        /// The round being closed.
        round: u32,
    },
}

impl Frame {
    /// The sending node's id (every frame carries one).
    pub fn sender(&self) -> u16 {
        match self {
            Frame::Hello { from } | Frame::Data { from, .. } | Frame::RoundEnd { from, .. } => {
                *from
            }
        }
    }

    fn parts(&self) -> (u8, u16, u32, &[u8]) {
        match self {
            Frame::Hello { from } => (KIND_HELLO, *from, 0, &[]),
            Frame::Data { from, round, payload } => (KIND_DATA, *from, *round, payload),
            Frame::RoundEnd { from, round } => (KIND_ROUND_END, *from, *round, &[]),
        }
    }
}

/// Validated header fields: kind, from, round, payload length.
fn parse_header(head: &mut &[u8]) -> Result<(u8, u16, u32, usize), CodecError> {
    let version = head.get_u8();
    if version != FRAME_VERSION {
        return Err(CodecError::LengthOutOfBounds {
            decoding: "frame version",
            len: version as usize,
        });
    }
    let kind = head.get_u8();
    let from = head.get_u16();
    let round = head.get_u32();
    let len = head.get_u32() as usize;
    if len > MAX_FRAME_PAYLOAD {
        return Err(CodecError::LengthOutOfBounds { decoding: "frame payload length", len });
    }
    match kind {
        KIND_DATA => {}
        KIND_HELLO | KIND_ROUND_END if len != 0 => {
            return Err(CodecError::LengthOutOfBounds { decoding: "frame control payload", len });
        }
        KIND_HELLO | KIND_ROUND_END => {}
        other => {
            return Err(CodecError::LengthOutOfBounds {
                decoding: "frame kind",
                len: other as usize,
            });
        }
    }
    Ok((kind, from, round, len))
}

impl Encode for Frame {
    fn encode(&self, buf: &mut BytesMut) {
        let (kind, from, round, payload) = self.parts();
        buf.put_u8(FRAME_VERSION);
        buf.put_u8(kind);
        buf.put_u16(from);
        buf.put_u32(round);
        buf.put_u32(payload.len() as u32);
        buf.put_slice(payload);
    }

    fn encoded_len(&self) -> usize {
        FRAME_HEADER_BYTES + self.parts().3.len()
    }
}

impl Decode for Frame {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let mut head = need(buf, FRAME_HEADER_BYTES, "frame header")?;
        let (kind, from, round, len) = parse_header(&mut head)?;
        match kind {
            KIND_HELLO => Ok(Frame::Hello { from }),
            KIND_ROUND_END => Ok(Frame::RoundEnd { from, round }),
            _ => {
                let payload = need(buf, len, "frame payload")?.to_vec();
                Ok(Frame::Data { from, round, payload })
            }
        }
    }
}

/// Incremental frame reassembly over an arbitrary chunking of the byte
/// stream — the receive side of a socket connection.
///
/// Feed raw bytes with [`extend`](Self::extend); drain complete frames
/// with [`next_frame`](Self::next_frame). An incomplete frame is
/// `Ok(None)` (wait for more bytes), a malformed one is an error — the
/// distinction the one-shot [`Decode`] cannot make.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    start: usize,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        FrameBuffer::default()
    }

    /// Appends raw bytes read off the stream.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// The next complete frame, `Ok(None)` if more bytes are needed.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on a malformed header (bad version,
    /// unknown kind, out-of-bounds length) — detected from the header
    /// alone, before any payload arrives.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, CodecError> {
        let avail = &self.buf[self.start..];
        if avail.len() < FRAME_HEADER_BYTES {
            return Ok(None);
        }
        let mut head = &avail[..FRAME_HEADER_BYTES];
        let (_, _, _, len) = parse_header(&mut head)?;
        let total = FRAME_HEADER_BYTES + len;
        if avail.len() < total {
            return Ok(None);
        }
        let mut slice = &avail[..total];
        let frame = Frame::decode(&mut slice)?;
        self.start += total;
        // Reclaim consumed prefix once it dominates the allocation.
        if self.start > 4096 && self.start * 2 > self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello { from: 7 },
            Frame::Data { from: 3, round: 2, payload: vec![9, 8, 7, 6, 5] },
            Frame::Data { from: 0, round: 1, payload: vec![] },
            Frame::RoundEnd { from: 65535, round: 4_000_000_000 },
        ]
    }

    #[test]
    fn frames_round_trip() {
        for frame in sample_frames() {
            let bytes = frame.to_wire_bytes();
            assert_eq!(bytes.len(), frame.encoded_len());
            let mut slice = bytes.as_slice();
            assert_eq!(Frame::decode(&mut slice).unwrap(), frame);
            assert!(slice.is_empty(), "decode must consume exactly one frame");
        }
    }

    #[test]
    fn decode_leaves_trailing_bytes_alone() {
        let frame = Frame::Data { from: 1, round: 1, payload: vec![1, 2, 3] };
        let mut bytes = frame.to_wire_bytes();
        bytes.extend_from_slice(&[0xAA, 0xBB]);
        let mut slice = bytes.as_slice();
        assert_eq!(Frame::decode(&mut slice).unwrap(), frame);
        assert_eq!(slice, &[0xAA, 0xBB]);
    }

    #[test]
    fn truncation_errors_on_one_shot_decode() {
        let bytes = Frame::Data { from: 2, round: 3, payload: vec![1; 16] }.to_wire_bytes();
        for cut in 0..bytes.len() {
            let mut slice = &bytes[..cut];
            assert!(Frame::decode(&mut slice).is_err(), "cut at {cut} must error");
        }
    }

    #[test]
    fn streaming_waits_for_truncated_frames() {
        let bytes = Frame::Data { from: 2, round: 3, payload: vec![1; 16] }.to_wire_bytes();
        for cut in 0..bytes.len() {
            let mut fb = FrameBuffer::new();
            fb.extend(&bytes[..cut]);
            assert_eq!(fb.next_frame().unwrap(), None, "cut at {cut} must wait");
        }
    }

    #[test]
    fn streaming_reassembles_byte_at_a_time() {
        let frames = sample_frames();
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&f.to_wire_bytes());
        }
        let mut fb = FrameBuffer::new();
        let mut got = Vec::new();
        for &b in &stream {
            fb.extend(&[b]);
            while let Some(f) = fb.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
        assert_eq!(fb.pending(), 0);
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut bytes = Frame::Hello { from: 1 }.to_wire_bytes();
        bytes[0] = FRAME_VERSION + 1;
        let mut slice = bytes.as_slice();
        assert!(Frame::decode(&mut slice).is_err());
        let mut fb = FrameBuffer::new();
        fb.extend(&bytes);
        assert!(fb.next_frame().is_err());
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let mut bytes = Frame::Hello { from: 1 }.to_wire_bytes();
        bytes[1] = 9;
        let mut slice = bytes.as_slice();
        assert!(Frame::decode(&mut slice).is_err());
    }

    #[test]
    fn oversized_length_is_rejected_from_the_header_alone() {
        let mut bytes = Frame::Data { from: 1, round: 1, payload: vec![] }.to_wire_bytes();
        let huge = (MAX_FRAME_PAYLOAD as u32 + 1).to_be_bytes();
        bytes[8..12].copy_from_slice(&huge);
        // The streaming buffer holds only the 12 header bytes, yet must
        // reject the claimed length without waiting for (or allocating)
        // the payload.
        let mut fb = FrameBuffer::new();
        fb.extend(&bytes);
        assert!(fb.next_frame().is_err());
        let mut slice = bytes.as_slice();
        assert!(Frame::decode(&mut slice).is_err());
    }

    #[test]
    fn control_frames_with_payload_are_rejected() {
        let mut bytes = Frame::RoundEnd { from: 1, round: 2 }.to_wire_bytes();
        bytes[8..12].copy_from_slice(&4u32.to_be_bytes());
        bytes.extend_from_slice(&[1, 2, 3, 4]);
        let mut slice = bytes.as_slice();
        assert!(Frame::decode(&mut slice).is_err());
    }

    #[test]
    fn sender_is_reported_for_every_kind() {
        assert_eq!(Frame::Hello { from: 4 }.sender(), 4);
        assert_eq!(Frame::Data { from: 5, round: 1, payload: vec![] }.sender(), 5);
        assert_eq!(Frame::RoundEnd { from: 6, round: 1 }.sender(), 6);
    }
}
