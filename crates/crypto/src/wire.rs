//! Wire-size accounting constants.
//!
//! The evaluation reports "data sent per node" in kilobytes (Figs. 3–7).
//! Every message in this reproduction is charged its serialized size using
//! the byte widths below, chosen to match the paper's prototype: ECDSA
//! signatures are 64 bytes, node identifiers fit in 2 bytes for systems of
//! up to 100 nodes, and digests are SHA-256 sized.

use crate::chain::SignatureChain;
use crate::proof::NeighborhoodProof;

/// Serialized size of one signature on the wire (ECDSA-sized, as in the
/// paper's prototype; our simulated tags are padded up to this width).
pub const SIGNATURE_WIRE_BYTES: usize = 64;

/// Serialized size of a node identifier.
pub const NODE_ID_WIRE_BYTES: usize = 2;

/// Serialized size of a digest.
pub const DIGEST_WIRE_BYTES: usize = 32;

/// Wire size of one signature together with its signer identity.
pub const fn signature_entry_bytes() -> usize {
    NODE_ID_WIRE_BYTES + SIGNATURE_WIRE_BYTES
}

/// Wire size of a neighborhood proof: two endpoint ids + two signatures.
pub const fn neighborhood_proof_bytes() -> usize {
    2 * NODE_ID_WIRE_BYTES + 2 * SIGNATURE_WIRE_BYTES
}

/// Wire size of a signature chain (its links, each id + signature).
pub fn chain_bytes(chain: &SignatureChain) -> usize {
    chain.len() * signature_entry_bytes()
}

/// Wire size of a relayed edge: the proof plus its chain.
pub fn relayed_proof_bytes(proof: &NeighborhoodProof, chain: &SignatureChain) -> usize {
    let _ = proof; // proofs have a fixed wire size
    neighborhood_proof_bytes() + chain_bytes(chain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyStore;
    use crate::sha256::sha256;

    #[test]
    fn sizes_match_paper_prototype() {
        assert_eq!(SIGNATURE_WIRE_BYTES, 64);
        assert_eq!(signature_entry_bytes(), 66);
        assert_eq!(neighborhood_proof_bytes(), 132);
    }

    #[test]
    fn chain_size_grows_linearly() {
        let ks = KeyStore::generate(4, 1);
        let digest = sha256(b"p");
        let mut chain = SignatureChain::new();
        assert_eq!(chain_bytes(&chain), 0);
        for hop in 0..3 {
            chain = chain.extend(&ks.signer(hop), &digest);
            assert_eq!(chain_bytes(&chain), (hop as usize + 1) * signature_entry_bytes());
        }
        let proof = NeighborhoodProof::new(&ks.signer(0), &ks.signer(1));
        assert_eq!(relayed_proof_bytes(&proof, &chain), 132 + 3 * 66);
    }
}
