//! Simulated asymmetric signature scheme with a key registry.
//!
//! The paper's prototype uses ECDSA (§V-B). This reproduction keeps its
//! dependencies to the approved workspace crates, so signatures are
//! *simulated*: signing computes `HMAC-SHA256(secret_i, msg)` and
//! verification recomputes the tag through a shared [`Verifier`] registry
//! that models the PKI. The two properties the protocol relies on are
//! preserved:
//!
//! 1. **Unforgeability (within the simulation).** Adversarial protocol code
//!    only ever receives its own [`Signer`]; secrets are never exposed by
//!    the public API, so a Byzantine node cannot produce a tag that verifies
//!    under another node's identity (guessing a 256-bit MAC).
//! 2. **Wire size.** Signatures occupy
//!    [`SIGNATURE_WIRE_BYTES`](crate::wire::SIGNATURE_WIRE_BYTES) bytes in
//!    all byte accounting, matching the 64-byte ECDSA signatures of the
//!    paper's implementation.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::hmac::hmac_sha256;

/// Identity of a signer. Node ids are dense indices below the system size
/// `n` (the paper's processes `p_1 … p_n`).
pub type SignerId = u16;

#[derive(Clone, PartialEq, Eq)]
struct SecretKey([u8; 32]);

impl fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never leak key material through Debug output.
        write!(f, "SecretKey(<redacted>)")
    }
}

/// A signature: the signer's identity plus an HMAC tag over the message.
///
/// Equality is byte-wise; a signature transported through Byzantine hands
/// either arrives intact or fails [`Verifier::verify`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Signature {
    signer: SignerId,
    tag: [u8; 32],
}

impl Signature {
    /// Identity that produced (or claims to have produced) this signature.
    pub fn signer(&self) -> SignerId {
        self.signer
    }

    /// Raw tag bytes (for wire encoding).
    pub fn tag(&self) -> &[u8; 32] {
        &self.tag
    }

    /// Builds a signature from raw parts — the entry point for *forgery
    /// attempts* in Byzantine behaviours. The result will only verify if the
    /// tag actually matches the signer's secret.
    pub fn from_parts(signer: SignerId, tag: [u8; 32]) -> Self {
        Signature { signer, tag }
    }
}

/// The key registry: generates one secret per node and hands out [`Signer`]s
/// (capability to sign as one identity) and [`Verifier`]s (capability to
/// check any identity's signatures, modelling public keys).
#[derive(Debug, Clone)]
pub struct KeyStore {
    secrets: Arc<Vec<SecretKey>>,
}

impl KeyStore {
    /// Deterministically derives `n` node secrets from `seed`.
    ///
    /// Derivation: `secret_i = HMAC-SHA256(seed_bytes, i)`, so different
    /// seeds give unrelated key universes and runs are reproducible.
    pub fn generate(n: usize, seed: u64) -> Self {
        let seed_bytes = seed.to_be_bytes();
        let secrets = (0..n)
            .map(|i| SecretKey(hmac_sha256(&seed_bytes, &(i as u64).to_be_bytes())))
            .collect();
        KeyStore { secrets: Arc::new(secrets) }
    }

    /// Number of identities in the registry.
    pub fn len(&self) -> usize {
        self.secrets.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.secrets.is_empty()
    }

    /// Signing capability for node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the registry.
    pub fn signer(&self, id: SignerId) -> Signer {
        assert!((id as usize) < self.secrets.len(), "signer id {id} outside key registry");
        Signer { id, secret: self.secrets[id as usize].clone() }
    }

    /// Verification capability covering every identity (models knowing all
    /// public keys).
    pub fn verifier(&self) -> Verifier {
        Verifier { secrets: Arc::clone(&self.secrets) }
    }
}

/// Capability to sign messages as one identity.
#[derive(Debug, Clone)]
pub struct Signer {
    id: SignerId,
    secret: SecretKey,
}

impl Signer {
    /// The identity this signer signs as.
    pub fn id(&self) -> SignerId {
        self.id
    }

    /// Signs `msg`, producing σ_id(msg).
    pub fn sign(&self, msg: &[u8]) -> Signature {
        Signature { signer: self.id, tag: hmac_sha256(&self.secret.0, msg) }
    }
}

/// Capability to verify any node's signatures.
#[derive(Debug, Clone)]
pub struct Verifier {
    secrets: Arc<Vec<SecretKey>>,
}

impl Verifier {
    /// Checks that `sig` is a valid signature over `msg` by `sig.signer()`.
    ///
    /// Unknown signer ids verify as `false` (the paper excludes Sybil
    /// identities: "Byzantine nodes cannot spawn new nodes or generate new
    /// identities", §II).
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> bool {
        match self.secrets.get(sig.signer as usize) {
            Some(secret) => hmac_sha256(&secret.0, msg) == sig.tag,
            None => false,
        }
    }

    /// Number of identities known to the verifier.
    pub fn identity_count(&self) -> usize {
        self.secrets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_round_trip() {
        let ks = KeyStore::generate(4, 7);
        let signer = ks.signer(2);
        let verifier = ks.verifier();
        let sig = signer.sign(b"hello");
        assert_eq!(sig.signer(), 2);
        assert!(verifier.verify(b"hello", &sig));
    }

    #[test]
    fn tampered_message_fails() {
        let ks = KeyStore::generate(4, 7);
        let sig = ks.signer(1).sign(b"hello");
        assert!(!ks.verifier().verify(b"hellO", &sig));
    }

    #[test]
    fn impersonation_fails() {
        // Node 3 signs but claims to be node 0.
        let ks = KeyStore::generate(4, 7);
        let honest = ks.signer(3).sign(b"msg");
        let forged = Signature::from_parts(0, *honest.tag());
        assert!(!ks.verifier().verify(b"msg", &forged));
    }

    #[test]
    fn random_tag_fails() {
        let ks = KeyStore::generate(4, 7);
        let forged = Signature::from_parts(1, [0xab; 32]);
        assert!(!ks.verifier().verify(b"msg", &forged));
    }

    #[test]
    fn unknown_identity_fails() {
        let ks = KeyStore::generate(2, 7);
        let other = KeyStore::generate(5, 7);
        let sig = other.signer(4).sign(b"msg");
        assert!(!ks.verifier().verify(b"msg", &sig));
    }

    #[test]
    fn different_seeds_are_unrelated() {
        let a = KeyStore::generate(2, 1).signer(0).sign(b"msg");
        let b = KeyStore::generate(2, 2).signer(0).sign(b"msg");
        assert_ne!(a, b);
    }

    #[test]
    fn same_seed_is_deterministic() {
        let a = KeyStore::generate(3, 9).signer(1).sign(b"msg");
        let b = KeyStore::generate(3, 9).signer(1).sign(b"msg");
        assert_eq!(a, b);
    }

    #[test]
    fn debug_never_prints_key_material() {
        let ks = KeyStore::generate(1, 3);
        let printed = format!("{:?}{:?}", ks, ks.signer(0));
        assert!(printed.contains("redacted"));
        assert!(!printed.contains("[0x"));
    }

    #[test]
    #[should_panic(expected = "outside key registry")]
    fn signer_out_of_range_panics() {
        KeyStore::generate(2, 0).signer(2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn sign_verify_round_trips_on_arbitrary_messages(
            msg in proptest::collection::vec(proptest::num::u8::ANY, 0..512),
            id in 0u16..8,
            seed in 0u64..1000,
        ) {
            let ks = KeyStore::generate(8, seed);
            let sig = ks.signer(id).sign(&msg);
            prop_assert!(ks.verifier().verify(&msg, &sig));
        }

        #[test]
        fn any_single_bit_flip_breaks_verification(
            msg in proptest::collection::vec(proptest::num::u8::ANY, 1..128),
            bit in 0usize..1024,
        ) {
            let ks = KeyStore::generate(4, 9);
            let sig = ks.signer(2).sign(&msg);
            let mut tampered = msg.clone();
            let bit = bit % (tampered.len() * 8);
            tampered[bit / 8] ^= 1 << (bit % 8);
            prop_assert!(!ks.verifier().verify(&tampered, &sig));
        }

        #[test]
        fn signatures_never_collide_across_identities(
            msg in proptest::collection::vec(proptest::num::u8::ANY, 0..64),
            a in 0u16..8,
            b in 0u16..8,
        ) {
            prop_assume!(a != b);
            let ks = KeyStore::generate(8, 4);
            let sig_a = ks.signer(a).sign(&msg);
            let sig_b = ks.signer(b).sign(&msg);
            prop_assert_ne!(sig_a.tag(), sig_b.tag());
        }
    }
}
