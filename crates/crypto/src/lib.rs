//! Cryptographic substrate for the NECTAR reproduction.
//!
//! **Place in the runtime stack:** a leaf dependency of the protocol layer.
//! `nectar-protocol` signs and verifies through this crate inside every
//! `send`/`receive` the runtimes (`nectar-net`) drive; nothing here knows
//! about graphs, rounds or runtimes.
//!
//! The paper assumes an asymmetric digital signature scheme with chained
//! signatures and unforgeable proofs of neighborhood (§II). This crate
//! provides all of it from scratch, on top of a NIST-vector-tested SHA-256:
//!
//! * [`sha256`]: FIPS 180-4 SHA-256,
//! * [`hmac`]: RFC 2104 HMAC-SHA-256,
//! * [`keys`]: the simulated signature scheme ([`KeyStore`], [`Signer`],
//!   [`Verifier`]) — see DESIGN.md §4.1 for why the simulation preserves the
//!   two properties the protocol needs (unforgeability and ECDSA wire size),
//! * [`chain`]: chained signatures σ_j(σ_i(msg)) ([`SignatureChain`]),
//! * [`proof`]: both-endpoint-signed [`NeighborhoodProof`]s,
//! * [`wire`]: byte-accounting constants for the evaluation's network-cost
//!   figures,
//! * [`frame`]: length-prefixed, versioned socket frames — the stream
//!   framing the real transport (`nectar-net`) wraps around the codec.
//!
//! # Example
//!
//! ```
//! use nectar_crypto::{KeyStore, NeighborhoodProof, SignatureChain};
//!
//! let keys = KeyStore::generate(4, 42);
//! let proof = NeighborhoodProof::new(&keys.signer(0), &keys.signer(1));
//! assert!(proof.verify(&keys.verifier()));
//!
//! // Node 0 announces the edge (round 1), node 2 relays it (round 2).
//! let digest = proof.digest();
//! let chain = SignatureChain::new()
//!     .extend(&keys.signer(0), &digest)
//!     .extend(&keys.signer(2), &digest);
//! assert_eq!(chain.len(), 2);
//! assert!(chain.verify(&keys.verifier(), &digest));
//! ```

#![forbid(unsafe_code)]

pub mod chain;
pub mod codec;
pub mod frame;
pub mod hmac;
pub mod keys;
pub mod proof;
pub mod sha256;
pub mod wire;

pub use chain::SignatureChain;
pub use codec::{CodecError, Decode, Encode};
pub use frame::{Frame, FrameBuffer, FRAME_HEADER_BYTES, FRAME_VERSION, MAX_FRAME_PAYLOAD};
pub use keys::{KeyStore, Signature, Signer, SignerId, Verifier};
pub use proof::NeighborhoodProof;
