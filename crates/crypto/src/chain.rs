//! Chained signatures σ_j(σ_i(msg)).
//!
//! NECTAR relays every discovered edge inside a signature chain whose length
//! must equal the current round number (Alg. 1 l. 14): each relay appends
//! its own signature over everything it received. The chain both
//! authenticates the relay path and timestamps the message — a Byzantine
//! node cannot replay an edge "late" without producing a chain of the wrong
//! length, and cannot splice chains because every link signs the running
//! digest of all previous links (the Dolev–Strong argument of Lemma 2).

use serde::{Deserialize, Serialize};

use crate::keys::{Signature, Signer, SignerId, Verifier};
use crate::sha256::Sha256;

/// A signature chain over a fixed payload digest.
///
/// Link `1` signs the payload digest; link `i + 1` signs
/// `SHA256(digest_i ‖ signer_i ‖ tag_i)`, so links cannot be reordered,
/// dropped or transplanted onto another payload.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct SignatureChain {
    links: Vec<Signature>,
}

impl SignatureChain {
    /// The empty chain (no signatures yet).
    pub fn new() -> Self {
        SignatureChain { links: Vec::new() }
    }

    /// Number of links — the paper's `lengthSign(msg)`.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether the chain has no links.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Identities along the chain, innermost first.
    pub fn signers(&self) -> impl Iterator<Item = SignerId> + '_ {
        self.links.iter().map(Signature::signer)
    }

    /// The innermost (first) signer, if any.
    pub fn innermost_signer(&self) -> Option<SignerId> {
        self.links.first().map(Signature::signer)
    }

    /// The outermost (most recent) signer, if any.
    pub fn outermost_signer(&self) -> Option<SignerId> {
        self.links.last().map(Signature::signer)
    }

    /// Whether all link signers are pairwise distinct. Correct relays never
    /// re-forward an edge they already signed, so duplicate signers expose a
    /// Byzantine-crafted chain.
    pub fn signers_distinct(&self) -> bool {
        let mut seen = std::collections::BTreeSet::new();
        self.links.iter().all(|l| seen.insert(l.signer()))
    }

    /// Returns a new chain extended by `signer`'s signature over the running
    /// digest (σ_signer(previous chain)).
    pub fn extend(&self, signer: &Signer, payload_digest: &[u8; 32]) -> SignatureChain {
        let running = self.running_digest(payload_digest);
        let mut links = self.links.clone();
        links.push(signer.sign(&running));
        SignatureChain { links }
    }

    /// Verifies every link over `payload_digest`.
    pub fn verify(&self, verifier: &Verifier, payload_digest: &[u8; 32]) -> bool {
        let mut digest = *payload_digest;
        for link in &self.links {
            if !verifier.verify(&digest, link) {
                return false;
            }
            digest = fold(&digest, link);
        }
        true
    }

    /// Raw links, innermost first (for wire encoding).
    pub fn links(&self) -> &[Signature] {
        &self.links
    }

    /// Assembles a chain from raw links — the entry point for forgery
    /// attempts in Byzantine behaviours.
    pub fn from_links(links: Vec<Signature>) -> Self {
        SignatureChain { links }
    }

    /// Digest the next link would sign.
    fn running_digest(&self, payload_digest: &[u8; 32]) -> [u8; 32] {
        let mut digest = *payload_digest;
        for link in &self.links {
            digest = fold(&digest, link);
        }
        digest
    }
}

fn fold(digest: &[u8; 32], link: &Signature) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(digest);
    h.update(&link.signer().to_be_bytes());
    h.update(link.tag());
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyStore;
    use crate::sha256::sha256;

    fn setup() -> (KeyStore, [u8; 32]) {
        (KeyStore::generate(6, 99), sha256(b"payload"))
    }

    #[test]
    fn empty_chain_verifies_trivially() {
        let (ks, digest) = setup();
        let chain = SignatureChain::new();
        assert!(chain.is_empty());
        assert!(chain.verify(&ks.verifier(), &digest));
    }

    #[test]
    fn extend_and_verify_three_links() {
        let (ks, digest) = setup();
        let chain = SignatureChain::new()
            .extend(&ks.signer(0), &digest)
            .extend(&ks.signer(1), &digest)
            .extend(&ks.signer(2), &digest);
        assert_eq!(chain.len(), 3);
        assert_eq!(chain.innermost_signer(), Some(0));
        assert_eq!(chain.outermost_signer(), Some(2));
        assert!(chain.signers_distinct());
        assert!(chain.verify(&ks.verifier(), &digest));
    }

    #[test]
    fn wrong_payload_fails() {
        let (ks, digest) = setup();
        let chain = SignatureChain::new().extend(&ks.signer(0), &digest);
        let other = sha256(b"other payload");
        assert!(!chain.verify(&ks.verifier(), &other));
    }

    #[test]
    fn reordered_links_fail() {
        let (ks, digest) = setup();
        let chain =
            SignatureChain::new().extend(&ks.signer(0), &digest).extend(&ks.signer(1), &digest);
        let mut links = chain.links().to_vec();
        links.swap(0, 1);
        let reordered = SignatureChain::from_links(links);
        assert!(!reordered.verify(&ks.verifier(), &digest));
    }

    #[test]
    fn truncated_chain_still_verifies_as_prefix() {
        // Chains are prefix-verifiable by design: dropping the outer links
        // yields the inner (older) chain. NECTAR defends against truncation
        // replay with the length-equals-round check, not the chain itself.
        let (ks, digest) = setup();
        let chain =
            SignatureChain::new().extend(&ks.signer(0), &digest).extend(&ks.signer(1), &digest);
        let truncated = SignatureChain::from_links(chain.links()[..1].to_vec());
        assert!(truncated.verify(&ks.verifier(), &digest));
        assert_eq!(truncated.len(), 1);
    }

    #[test]
    fn spliced_link_from_other_chain_fails() {
        let (ks, digest) = setup();
        let a = SignatureChain::new().extend(&ks.signer(0), &digest).extend(&ks.signer(1), &digest);
        let other_digest = sha256(b"other");
        let b = SignatureChain::new()
            .extend(&ks.signer(0), &other_digest)
            .extend(&ks.signer(2), &other_digest);
        let mut links = a.links().to_vec();
        links[1] = b.links()[1].clone();
        assert!(!SignatureChain::from_links(links).verify(&ks.verifier(), &digest));
    }

    #[test]
    fn duplicate_signers_are_detected() {
        let (ks, digest) = setup();
        let chain =
            SignatureChain::new().extend(&ks.signer(0), &digest).extend(&ks.signer(0), &digest);
        assert!(!chain.signers_distinct());
        // The chain itself is cryptographically valid; the protocol layer
        // rejects it via the distinctness rule.
        assert!(chain.verify(&ks.verifier(), &digest));
    }

    #[test]
    fn forged_link_fails() {
        let (ks, digest) = setup();
        let forged =
            SignatureChain::from_links(vec![crate::keys::Signature::from_parts(3, [7; 32])]);
        assert!(!forged.verify(&ks.verifier(), &digest));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::keys::KeyStore;
    use crate::sha256::sha256;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn chains_of_any_shape_verify(
            payload in proptest::collection::vec(proptest::num::u8::ANY, 0..64),
            signers in proptest::collection::vec(0u16..10, 0..8),
        ) {
            let ks = KeyStore::generate(10, 6);
            let digest = sha256(&payload);
            let mut chain = SignatureChain::new();
            for &s in &signers {
                chain = chain.extend(&ks.signer(s), &digest);
            }
            prop_assert_eq!(chain.len(), signers.len());
            prop_assert!(chain.verify(&ks.verifier(), &digest));
            prop_assert_eq!(chain.signers().collect::<Vec<_>>(), signers.clone());
            // Prefixes verify too (length checks are the protocol's job).
            let prefix = SignatureChain::from_links(chain.links()[..signers.len() / 2].to_vec());
            prop_assert!(prefix.verify(&ks.verifier(), &digest));
        }

        #[test]
        fn corrupting_any_link_invalidates_the_chain(
            signers in proptest::collection::vec(0u16..10, 1..6),
            victim in 0usize..6,
        ) {
            let ks = KeyStore::generate(10, 6);
            let digest = sha256(b"payload");
            let mut chain = SignatureChain::new();
            for &s in &signers {
                chain = chain.extend(&ks.signer(s), &digest);
            }
            let victim = victim % signers.len();
            let mut links = chain.links().to_vec();
            let mut tag = *links[victim].tag();
            tag[0] ^= 0xff;
            links[victim] = crate::keys::Signature::from_parts(links[victim].signer(), tag);
            let corrupted = SignatureChain::from_links(links);
            prop_assert!(!corrupted.verify(&ks.verifier(), &digest));
        }
    }
}
