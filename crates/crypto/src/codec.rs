//! Binary wire codec for the cryptographic objects.
//!
//! The byte-accounting constants of [`crate::wire`] describe these exact
//! encodings: everything a NECTAR message carries can be serialized with
//! [`encode`](Encode::encode) and parsed back with
//! [`decode`](Decode::decode). Signatures occupy the full
//! [`SIGNATURE_WIRE_BYTES`] (the 32-byte
//! HMAC tag padded to ECDSA's 64 bytes, see DESIGN.md §4.1), so measured
//! sizes equal encoded sizes byte-for-byte.

use bytes::{Buf, BufMut, BytesMut};

use crate::chain::SignatureChain;
use crate::keys::{Signature, SignerId};
use crate::proof::NeighborhoodProof;
use crate::wire::SIGNATURE_WIRE_BYTES;

/// Errors produced while decoding wire bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the value was complete.
    UnexpectedEnd {
        /// What was being decoded.
        decoding: &'static str,
    },
    /// A length prefix exceeded sane protocol bounds.
    LengthOutOfBounds {
        /// What was being decoded.
        decoding: &'static str,
        /// The offending length.
        len: usize,
    },
    /// Signature padding bytes were not zero (tampered or corrupt frame).
    BadPadding,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEnd { decoding } => {
                write!(f, "unexpected end of buffer while decoding {decoding}")
            }
            CodecError::LengthOutOfBounds { decoding, len } => {
                write!(f, "length {len} out of bounds while decoding {decoding}")
            }
            CodecError::BadPadding => f.write_str("non-zero signature padding"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Maximum elements a decoded collection may claim (protocol messages never
/// exceed the square of the largest supported system size).
pub const MAX_COLLECTION_LEN: usize = u16::MAX as usize;

/// Serialize a value into a byte buffer.
pub trait Encode {
    /// Appends this value's wire form to `buf`.
    fn encode(&self, buf: &mut BytesMut);

    /// Exact number of bytes [`encode`](Self::encode) appends.
    fn encoded_len(&self) -> usize;

    /// Convenience: encodes into a fresh buffer.
    fn to_wire_bytes(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        self.encode(&mut buf);
        buf.to_vec()
    }
}

/// Parse a value from a byte buffer.
pub trait Decode: Sized {
    /// Consumes this value's wire form from the front of `buf`.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] if the buffer is truncated or malformed.
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError>;
}

pub(crate) fn need<'a>(
    buf: &mut &'a [u8],
    n: usize,
    what: &'static str,
) -> Result<&'a [u8], CodecError> {
    if buf.len() < n {
        return Err(CodecError::UnexpectedEnd { decoding: what });
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

impl Encode for Signature {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u16(self.signer());
        buf.put_slice(self.tag());
        // Pad the 32-byte HMAC tag up to the ECDSA wire width.
        buf.put_bytes(0, SIGNATURE_WIRE_BYTES - 32);
    }

    fn encoded_len(&self) -> usize {
        crate::wire::signature_entry_bytes()
    }
}

impl Decode for Signature {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let mut head = need(buf, 2, "signature signer")?;
        let signer: SignerId = head.get_u16();
        let tag_bytes = need(buf, 32, "signature tag")?;
        let mut tag = [0u8; 32];
        tag.copy_from_slice(tag_bytes);
        let padding = need(buf, SIGNATURE_WIRE_BYTES - 32, "signature padding")?;
        if padding.iter().any(|&b| b != 0) {
            return Err(CodecError::BadPadding);
        }
        Ok(Signature::from_parts(signer, tag))
    }
}

impl Encode for NeighborhoodProof {
    fn encode(&self, buf: &mut BytesMut) {
        let (a, b) = self.endpoints();
        buf.put_u16(a);
        buf.put_u16(b);
        self.sig_a().encode(buf);
        self.sig_b().encode(buf);
    }

    fn encoded_len(&self) -> usize {
        // Note: this frame carries the signer ids inside each signature as
        // well, so it is slightly larger than the *minimal* proof frame the
        // accounting constant describes; accounting uses the constant.
        4 + 2 * crate::wire::signature_entry_bytes()
    }
}

impl Decode for NeighborhoodProof {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let mut head = need(buf, 4, "proof endpoints")?;
        let a = head.get_u16();
        let b = head.get_u16();
        let sig_a = Signature::decode(buf)?;
        let sig_b = Signature::decode(buf)?;
        Ok(NeighborhoodProof::from_parts(a, b, sig_a, sig_b))
    }
}

impl Encode for SignatureChain {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u16(self.len() as u16);
        for link in self.links() {
            link.encode(buf);
        }
    }

    fn encoded_len(&self) -> usize {
        2 + self.len() * crate::wire::signature_entry_bytes()
    }
}

impl Decode for SignatureChain {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let mut head = need(buf, 2, "chain length")?;
        let len = head.get_u16() as usize;
        if len > MAX_COLLECTION_LEN {
            return Err(CodecError::LengthOutOfBounds { decoding: "chain", len });
        }
        let mut links = Vec::with_capacity(len);
        for _ in 0..len {
            links.push(Signature::decode(buf)?);
        }
        Ok(SignatureChain::from_links(links))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyStore;
    use crate::sha256::sha256;

    fn store() -> KeyStore {
        KeyStore::generate(8, 21)
    }

    #[test]
    fn signature_round_trip() {
        let ks = store();
        let sig = ks.signer(3).sign(b"msg");
        let bytes = sig.to_wire_bytes();
        assert_eq!(bytes.len(), sig.encoded_len());
        let mut slice = bytes.as_slice();
        let decoded = Signature::decode(&mut slice).unwrap();
        assert_eq!(decoded, sig);
        assert!(slice.is_empty());
        // Decoded signatures still verify.
        assert!(ks.verifier().verify(b"msg", &decoded));
    }

    #[test]
    fn signature_rejects_nonzero_padding() {
        let ks = store();
        let mut bytes = ks.signer(0).sign(b"m").to_wire_bytes();
        *bytes.last_mut().unwrap() = 1;
        let mut slice = bytes.as_slice();
        assert_eq!(Signature::decode(&mut slice), Err(CodecError::BadPadding));
    }

    #[test]
    fn proof_round_trip_and_verification() {
        let ks = store();
        let proof = NeighborhoodProof::new(&ks.signer(2), &ks.signer(5));
        let bytes = proof.to_wire_bytes();
        assert_eq!(bytes.len(), proof.encoded_len());
        let mut slice = bytes.as_slice();
        let decoded = NeighborhoodProof::decode(&mut slice).unwrap();
        assert_eq!(decoded, proof);
        assert!(decoded.verify(&ks.verifier()));
    }

    #[test]
    fn chain_round_trip_preserves_verification() {
        let ks = store();
        let digest = sha256(b"payload");
        let chain = SignatureChain::new()
            .extend(&ks.signer(0), &digest)
            .extend(&ks.signer(1), &digest)
            .extend(&ks.signer(2), &digest);
        let bytes = chain.to_wire_bytes();
        assert_eq!(bytes.len(), chain.encoded_len());
        let mut slice = bytes.as_slice();
        let decoded = SignatureChain::decode(&mut slice).unwrap();
        assert_eq!(decoded, chain);
        assert!(decoded.verify(&ks.verifier(), &digest));
    }

    #[test]
    fn truncated_buffers_error_cleanly() {
        let ks = store();
        let proof = NeighborhoodProof::new(&ks.signer(0), &ks.signer(1));
        let bytes = proof.to_wire_bytes();
        for cut in [0, 1, 3, 5, 40, bytes.len() - 1] {
            let mut slice = &bytes[..cut];
            assert!(NeighborhoodProof::decode(&mut slice).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn empty_chain_encodes_to_two_bytes() {
        let chain = SignatureChain::new();
        assert_eq!(chain.to_wire_bytes(), vec![0, 0]);
        let mut slice: &[u8] = &[0, 0];
        assert_eq!(SignatureChain::decode(&mut slice).unwrap(), chain);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::keys::KeyStore;
    use crate::sha256::sha256;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn arbitrary_chain_round_trips(
            payload in proptest::collection::vec(proptest::num::u8::ANY, 0..32),
            signers in proptest::collection::vec(0u16..8, 0..6),
        ) {
            let ks = KeyStore::generate(8, 2);
            let digest = sha256(&payload);
            let mut chain = SignatureChain::new();
            for &s in &signers {
                chain = chain.extend(&ks.signer(s), &digest);
            }
            let bytes = chain.to_wire_bytes();
            prop_assert_eq!(bytes.len(), chain.encoded_len());
            let mut slice = bytes.as_slice();
            prop_assert_eq!(SignatureChain::decode(&mut slice).unwrap(), chain);
            prop_assert!(slice.is_empty());
        }

        #[test]
        fn random_bytes_never_panic_the_decoder(
            bytes in proptest::collection::vec(proptest::num::u8::ANY, 0..256),
        ) {
            let mut s1 = bytes.as_slice();
            let _ = Signature::decode(&mut s1);
            let mut s2 = bytes.as_slice();
            let _ = NeighborhoodProof::decode(&mut s2);
            let mut s3 = bytes.as_slice();
            let _ = SignatureChain::decode(&mut s3);
        }
    }
}
