//! Proofs of neighborhood.
//!
//! A `proof_{i,j}` lets node `i` declare an edge with `j` in a way that
//! "cannot be forged as soon as either `p_i` or `p_j` is correct" (§II).
//! We realize it as the canonical edge statement signed by **both**
//! endpoints: forging it requires both secrets, so two colluding Byzantine
//! nodes *can* mint a proof for a fictitious Byzantine–Byzantine edge —
//! exactly the power the paper grants them ("Byzantine nodes may however
//! forge proofs of neighborhood between Byzantine processes").

use serde::{Deserialize, Serialize};

use crate::keys::{Signature, Signer, SignerId, Verifier};

/// A both-endpoint-signed declaration of the undirected edge `(a, b)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NeighborhoodProof {
    a: SignerId,
    b: SignerId,
    sig_a: Signature,
    sig_b: Signature,
}

impl NeighborhoodProof {
    /// Canonical byte statement for the undirected edge `(a, b)`: endpoint
    /// order is normalized so both directions sign identical bytes.
    pub fn statement(a: SignerId, b: SignerId) -> Vec<u8> {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let mut out = Vec::with_capacity(4 + 4);
        out.extend_from_slice(b"edge");
        out.extend_from_slice(&lo.to_be_bytes());
        out.extend_from_slice(&hi.to_be_bytes());
        out
    }

    /// Builds the proof for the edge between the two signers.
    ///
    /// # Panics
    ///
    /// Panics if both signers share the same identity (self-loop).
    pub fn new(first: &Signer, second: &Signer) -> Self {
        assert!(first.id() != second.id(), "neighborhood proof requires two distinct endpoints");
        let (lo, hi) = if first.id() <= second.id() { (first, second) } else { (second, first) };
        let stmt = Self::statement(lo.id(), hi.id());
        NeighborhoodProof { a: lo.id(), b: hi.id(), sig_a: lo.sign(&stmt), sig_b: hi.sign(&stmt) }
    }

    /// Assembles a proof from raw parts — the entry point for forgery
    /// attempts in Byzantine behaviours. Verification decides whether the
    /// parts are consistent.
    pub fn from_parts(a: SignerId, b: SignerId, sig_a: Signature, sig_b: Signature) -> Self {
        NeighborhoodProof { a, b, sig_a, sig_b }
    }

    /// The edge endpoints `(min, max)`.
    pub fn endpoints(&self) -> (SignerId, SignerId) {
        (self.a, self.b)
    }

    /// The smaller endpoint's signature (for wire encoding).
    pub fn sig_a(&self) -> &Signature {
        &self.sig_a
    }

    /// The larger endpoint's signature (for wire encoding).
    pub fn sig_b(&self) -> &Signature {
        &self.sig_b
    }

    /// Checks both endpoint signatures over the canonical statement, plus
    /// structural sanity (normalized order, signer identities matching the
    /// claimed endpoints, no self-loop).
    pub fn verify(&self, verifier: &Verifier) -> bool {
        if self.a >= self.b {
            return false;
        }
        if self.sig_a.signer() != self.a || self.sig_b.signer() != self.b {
            return false;
        }
        let stmt = Self::statement(self.a, self.b);
        verifier.verify(&stmt, &self.sig_a) && verifier.verify(&stmt, &self.sig_b)
    }

    /// Digest of the proof contents, used as the payload binding for
    /// signature chains relaying this proof.
    pub fn digest(&self) -> [u8; 32] {
        let mut bytes = Vec::with_capacity(8 + 2 * 34);
        bytes.extend_from_slice(&Self::statement(self.a, self.b));
        for sig in [&self.sig_a, &self.sig_b] {
            bytes.extend_from_slice(&sig.signer().to_be_bytes());
            bytes.extend_from_slice(sig.tag());
        }
        crate::sha256::sha256(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyStore;

    fn store() -> KeyStore {
        KeyStore::generate(6, 42)
    }

    #[test]
    fn proof_round_trip() {
        let ks = store();
        let proof = NeighborhoodProof::new(&ks.signer(3), &ks.signer(1));
        assert_eq!(proof.endpoints(), (1, 3));
        assert!(proof.verify(&ks.verifier()));
    }

    #[test]
    fn endpoint_order_is_normalized() {
        let ks = store();
        let p1 = NeighborhoodProof::new(&ks.signer(3), &ks.signer(1));
        let p2 = NeighborhoodProof::new(&ks.signer(1), &ks.signer(3));
        assert_eq!(p1, p2);
        assert_eq!(p1.digest(), p2.digest());
    }

    #[test]
    fn one_correct_endpoint_makes_forgery_fail() {
        // A Byzantine node (5) tries to claim an edge with correct node 0
        // without node 0's signature: it signs both slots itself.
        let ks = store();
        let byz = ks.signer(5);
        let stmt = NeighborhoodProof::statement(0, 5);
        let forged = NeighborhoodProof::from_parts(
            0,
            5,
            crate::keys::Signature::from_parts(0, *byz.sign(&stmt).tag()),
            byz.sign(&stmt),
        );
        assert!(!forged.verify(&ks.verifier()));
    }

    #[test]
    fn colluding_byzantine_pair_can_mint_fictitious_edge() {
        // Both endpoints Byzantine: the proof is structurally valid, exactly
        // as the paper permits (§II).
        let ks = store();
        let proof = NeighborhoodProof::new(&ks.signer(4), &ks.signer(5));
        assert!(proof.verify(&ks.verifier()));
    }

    #[test]
    fn mismatched_endpoints_fail() {
        let ks = store();
        let honest = NeighborhoodProof::new(&ks.signer(0), &ks.signer(1));
        let (a, b) = honest.endpoints();
        // Re-label the proof as covering a different edge.
        let relabeled =
            NeighborhoodProof::from_parts(a, b + 1, honest.sig_a.clone(), honest.sig_b.clone());
        assert!(!relabeled.verify(&ks.verifier()));
    }

    #[test]
    fn self_loop_shape_fails_verification() {
        let ks = store();
        let s = ks.signer(2);
        let stmt = NeighborhoodProof::statement(2, 2);
        let p = NeighborhoodProof::from_parts(2, 2, s.sign(&stmt), s.sign(&stmt));
        assert!(!p.verify(&ks.verifier()));
    }

    #[test]
    fn digests_distinguish_edges() {
        let ks = store();
        let p1 = NeighborhoodProof::new(&ks.signer(0), &ks.signer(1));
        let p2 = NeighborhoodProof::new(&ks.signer(0), &ks.signer(2));
        assert_ne!(p1.digest(), p2.digest());
    }
}
