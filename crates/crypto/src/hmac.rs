//! HMAC-SHA-256 (RFC 2104), validated against the RFC 4231 test vectors.
//!
//! The simulated signature scheme ([`crate::keys`]) authenticates messages
//! with HMAC tags; within the simulation's trust model this provides the
//! unforgeability property the paper assumes of its digital signatures
//! (§II: "Byzantine nodes cannot forge signatures").

use crate::sha256::{sha256, Sha256};

const BLOCK_LEN: usize = 64;

/// Computes `HMAC-SHA256(key, msg)`.
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> [u8; 32] {
    let mut key_block = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        key_block[..32].copy_from_slice(&sha256(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK_LEN];
    let mut opad = [0x5cu8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(msg);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(digest: &[u8]) -> String {
        digest.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc4231_case_1() {
        let key = [0x0b; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(hex(&tag), "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(hex(&tag), "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaa; 20];
        let msg = [0xdd; 50];
        let tag = hmac_sha256(&key, &msg);
        assert_eq!(hex(&tag), "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
    }

    #[test]
    fn rfc4231_case_4() {
        let key: Vec<u8> = (1..=25).collect();
        let msg = [0xcd; 50];
        let tag = hmac_sha256(&key, &msg);
        assert_eq!(hex(&tag), "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaa; 131];
        let msg = b"Test Using Larger Than Block-Size Key - Hash Key First";
        let tag = hmac_sha256(&key, msg);
        assert_eq!(hex(&tag), "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
    }

    #[test]
    fn different_keys_produce_different_tags() {
        assert_ne!(hmac_sha256(b"k1", b"msg"), hmac_sha256(b"k2", b"msg"));
        assert_ne!(hmac_sha256(b"k1", b"msg"), hmac_sha256(b"k1", b"msh"));
    }
}
