//! SHA-256 (FIPS 180-4), implemented from scratch.
//!
//! The NECTAR reproduction keeps its dependency footprint to the approved
//! workspace crates, so the hash function underlying message digests, HMAC
//! and the simulated signature scheme is implemented here and validated
//! against the official NIST test vectors.

/// Initial hash state (FIPS 180-4 §5.3.3): the first 32 bits of the
/// fractional parts of the square roots of the first 8 primes.
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Round constants (FIPS 180-4 §4.2.2): the first 32 bits of the fractional
/// parts of the cube roots of the first 64 primes.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Streaming SHA-256 hasher.
///
/// # Example
///
/// ```
/// use nectar_crypto::sha256::Sha256;
///
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// let digest = h.finalize();
/// assert_eq!(digest, nectar_crypto::sha256::sha256(b"abc"));
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 { state: H0, buf: [0; 64], buf_len: 0, total_len: 0 }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = rest.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            rest = tail;
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Pads and produces the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Manually absorb the length to avoid it counting towards total_len.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16].wrapping_add(s0).wrapping_add(w[i - 7]).wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let temp1 = h.wrapping_add(s1).wrapping_add(ch).wrapping_add(K[i]).wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }
        let add = [a, b, c, d, e, f, g, h];
        for (s, v) in self.state.iter_mut().zip(add) {
            *s = s.wrapping_add(v);
        }
    }
}

/// One-shot SHA-256 of `data`.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(digest: &[u8]) -> String {
        digest.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn nist_vector_empty() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn nist_vector_abc() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn nist_vector_two_blocks() {
        let msg = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
        assert_eq!(
            hex(&sha256(msg)),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn nist_vector_million_a() {
        let msg = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha256(&msg)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn nist_vector_448_bit_boundary() {
        // Exactly 56 bytes: exercises the two-block padding path.
        let msg = b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn";
        assert_eq!(msg.len(), 56);
        let one_shot = sha256(msg);
        let mut streaming = Sha256::new();
        for chunk in msg.chunks(7) {
            streaming.update(chunk);
        }
        assert_eq!(streaming.finalize(), one_shot);
    }

    #[test]
    fn streaming_equals_one_shot_across_chunkings() {
        let msg: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let expect = sha256(&msg);
        for chunk_size in [1, 3, 63, 64, 65, 128, 999] {
            let mut h = Sha256::new();
            for chunk in msg.chunks(chunk_size) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), expect, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn distinct_inputs_have_distinct_digests() {
        assert_ne!(sha256(b"nectar"), sha256(b"nectaR"));
        assert_ne!(sha256(b""), sha256(b"\0"));
    }
}
