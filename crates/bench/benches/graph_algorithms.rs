//! Criterion benchmarks for the graph substrate: the vertex-connectivity
//! computation dominating NECTAR's decision phase, the
//! [`ConnectivityOracle`] fast path that replaces it on the hot path, plus
//! topology generation.
//!
//! Run with `NECTAR_BENCH_JSON=BENCH_graph.json` to persist the medians for
//! cross-PR regression tracking (see `BENCH_graph.json` in the repo root).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use nectar_graph::{connectivity, gen, traversal, ConnectivityOracle};

fn bench_vertex_connectivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("vertex_connectivity");
    group.sample_size(10);
    for (k, n) in [(4usize, 50usize), (10, 100), (34, 100)] {
        let g = gen::harary(k, n).expect("valid parameters");
        group.bench_with_input(BenchmarkId::new("harary", format!("k{k}_n{n}")), &g, |b, g| {
            b.iter(|| connectivity::vertex_connectivity(black_box(g)));
        });
    }
    group.finish();
}

/// The oracle against exact connectivity on the decision question the
/// protocol actually asks (`κ ≤ t`, t below κ — the NOT_PARTITIONABLE hot
/// path). `cold` rebuilds the oracle per iteration, isolating the bounded
/// max-flow win; `warm` reuses one oracle, isolating the fingerprint-cache
/// win (the steady state of unchanged views across rounds/epochs).
fn bench_connectivity_oracle(c: &mut Criterion) {
    let mut group = c.benchmark_group("connectivity_oracle");
    group.sample_size(10);
    for (k, n, t) in [(10usize, 100usize, 2usize), (34, 100, 2), (34, 100, 16)] {
        let g = gen::harary(k, n).expect("valid parameters");
        group.bench_with_input(BenchmarkId::new("cold", format!("k{k}_n{n}_t{t}")), &g, |b, g| {
            b.iter(|| {
                let mut oracle = ConnectivityOracle::new();
                oracle.is_t_partitionable(black_box(g), t)
            });
        });
        let mut warm = ConnectivityOracle::new();
        warm.is_t_partitionable(&g, t);
        group.bench_with_input(BenchmarkId::new("warm", format!("k{k}_n{n}_t{t}")), &g, |b, g| {
            b.iter(|| warm.is_t_partitionable(black_box(g), t));
        });
    }
    group.finish();
}

fn bench_min_cut_and_traversal(c: &mut Criterion) {
    let g = gen::harary(10, 100).expect("valid parameters");
    let mut group = c.benchmark_group("graph_ops");
    group.sample_size(10);
    group.bench_function("min_vertex_cut_k10_n100", |b| {
        b.iter(|| connectivity::min_vertex_cut(black_box(&g)))
    });
    group.bench_function("diameter_k10_n100", |b| b.iter(|| traversal::diameter(black_box(&g))));
    group.finish();
}

fn bench_generators(c: &mut Criterion) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut group = c.benchmark_group("generators");
    group.bench_function("harary_k10_n100", |b| b.iter(|| gen::harary(10, 100).expect("valid")));
    group.bench_function("drone_n100", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            gen::drone_scenario(100, 3.0, 1.8, &mut rng).expect("valid")
        })
    });
    group.bench_function("random_regular_k6_n100", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            gen::random_regular(6, 100, &mut rng).expect("valid")
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_vertex_connectivity,
    bench_connectivity_oracle,
    bench_min_cut_and_traversal,
    bench_generators
);
criterion_main!(benches);
