//! Criterion micro-benchmarks for the cryptographic substrate: SHA-256
//! throughput, signing/verification, proof and chain operations. These are
//! the per-message costs behind NECTAR's network figures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use nectar_crypto::{sha256::sha256, KeyStore, NeighborhoodProof, SignatureChain};

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 65536] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| sha256(black_box(data)));
        });
    }
    group.finish();
}

fn bench_sign_verify(c: &mut Criterion) {
    let ks = KeyStore::generate(16, 1);
    let signer = ks.signer(0);
    let verifier = ks.verifier();
    let msg = vec![0x5au8; 128];
    c.bench_function("sign_128B", |b| b.iter(|| signer.sign(black_box(&msg))));
    let sig = signer.sign(&msg);
    c.bench_function("verify_128B", |b| {
        b.iter(|| verifier.verify(black_box(&msg), black_box(&sig)))
    });
}

fn bench_proof_and_chain(c: &mut Criterion) {
    let ks = KeyStore::generate(16, 1);
    let verifier = ks.verifier();
    c.bench_function("neighborhood_proof_new", |b| {
        b.iter(|| NeighborhoodProof::new(&ks.signer(0), &ks.signer(1)))
    });
    let proof = NeighborhoodProof::new(&ks.signer(0), &ks.signer(1));
    c.bench_function("neighborhood_proof_verify", |b| {
        b.iter(|| proof.verify(black_box(&verifier)))
    });

    let digest = proof.digest();
    let mut group = c.benchmark_group("chain_verify");
    for hops in [1usize, 4, 16] {
        let mut chain = SignatureChain::new();
        for h in 0..hops {
            chain = chain.extend(&ks.signer(h as u16), &digest);
        }
        group.bench_with_input(BenchmarkId::from_parameter(hops), &chain, |b, chain| {
            b.iter(|| chain.verify(black_box(&verifier), black_box(&digest)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sha256, bench_sign_verify, bench_proof_and_chain);
criterion_main!(benches);
