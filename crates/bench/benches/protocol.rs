//! Criterion benchmarks for end-to-end protocol executions: NECTAR vs the
//! baselines on identical topologies, and the four runtimes (sync,
//! thread-per-node, event-driven, work-stealing parallel) on identical
//! scenarios.
//!
//! The committed baseline `BENCH_protocol.json` holds this bench's medians
//! (refresh with `NECTAR_BENCH_JSON=BENCH_protocol.json cargo bench -p
//! nectar-bench --bench protocol`); CI diffs a fresh run against it via
//! the `bench_diff` binary.

use std::collections::BTreeMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use nectar_baselines::{run_mtg, run_mtg_v2, MtgConfig};
use nectar_crypto::{KeyStore, NeighborhoodProof};
use nectar_graph::gen;
use nectar_protocol::{
    ConnectivityOracle, NectarNode, Participant, Runtime, Scenario, TopologySchedule,
};

fn bench_nectar_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("nectar_run");
    group.sample_size(10);
    for (k, n) in [(4usize, 20usize), (4, 50), (10, 50)] {
        let g = gen::harary(k, n).expect("valid parameters");
        group.bench_with_input(BenchmarkId::from_parameter(format!("k{k}_n{n}")), &g, |b, g| {
            b.iter(|| Scenario::new(black_box(g.clone()), k / 2).sim().metrics_only().run());
        });
    }
    group.finish();
}

fn bench_nectar_with_decisions(c: &mut Criterion) {
    let g = gen::harary(4, 30).expect("valid parameters");
    let mut group = c.benchmark_group("nectar_run_with_decisions");
    group.sample_size(10);
    group.bench_function("k4_n30", |b| {
        b.iter(|| Scenario::new(black_box(g.clone()), 2).sim().run())
    });
    group.finish();
}

fn bench_runtimes(c: &mut Criterion) {
    let g = gen::harary(4, 24).expect("valid parameters");
    let scenario = Scenario::new(g, 2);
    let mut group = c.benchmark_group("runtime");
    group.sample_size(10);
    group.bench_function("sync", |b| b.iter(|| black_box(&scenario).sim().metrics_only().run()));
    group.bench_function("threaded", |b| {
        b.iter(|| black_box(&scenario).sim().runtime(Runtime::Threaded).run())
    });
    group.bench_function("event", |b| {
        b.iter(|| black_box(&scenario).sim().runtime(Runtime::Event).metrics_only().run())
    });
    group.bench_function("parallel", |b| {
        b.iter(|| black_box(&scenario).sim().workers(2).metrics_only().run())
    });
    group.finish();
}

/// The four runtimes on identical clustered-fleet scenarios at
/// n ∈ {100, 1 000, 10 000, 50 000}, full `n − 1` round horizon.
/// Dissemination is cluster-local and quiesces after ~4 rounds, so the
/// comparison isolates pure scheduling cost: the event loop pays
/// O(active events), the parallel engine pays the same active-set schedule
/// minus the per-event heap (rounds commit in batches) and spreads polls
/// and deliveries over its worker pool, the sync engine polls all n nodes
/// for all n − 1 rounds, and thread-per-node additionally pays n OS threads
/// with 2(n − 1) barrier waits each. Each engine is only benched where it
/// is *practical*: threaded stops at n = 100 (at 1 000+ threads one
/// iteration takes tens of seconds; at 10 000 the fleet does not fit a
/// process's thread budget), sync stops at n = 10 000 (n · rounds polling
/// reaches minutes at 50k), and the parallel rows start at n = 1 000 —
/// below that the pool costs more than it spreads. The parallel rows run
/// with 2 workers, the conservative floor: more cores only widen its gap
/// over the event loop, and results never depend on the count.
fn bench_runtime_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_scaling");
    group.sample_size(10);
    for n in [100usize, 1_000, 10_000, 50_000] {
        let g = gen::disjoint_cliques(n / 4, 4);
        let scenario = Scenario::new(g, 2);
        group.bench_with_input(BenchmarkId::new("event", n), &scenario, |b, s| {
            b.iter(|| black_box(s).sim().runtime(Runtime::Event).metrics_only().run())
        });
        if n >= 1_000 {
            group.bench_with_input(BenchmarkId::new("parallel", n), &scenario, |b, s| {
                b.iter(|| black_box(s).sim().workers(2).metrics_only().run())
            });
        }
        if n <= 10_000 {
            group.bench_with_input(BenchmarkId::new("sync", n), &scenario, |b, s| {
                b.iter(|| black_box(s).sim().metrics_only().run())
            });
        }
        if n <= 100 {
            group.bench_with_input(BenchmarkId::new("threaded", n), &scenario, |b, s| {
                b.iter(|| black_box(s).sim().runtime(Runtime::Threaded).metrics_only().run())
            });
        }
        // A flap-heavy schedule on the 10k fleet: 256 cliques flap one
        // intra-clique edge 8 times over the first 17 rounds (4 096
        // transitions). Every heal re-wakes its endpoints, so this prices
        // what dynamics cost the active-set scheduler: the `Scheduled`
        // wrapper's fate checks plus the churn the flaps keep injecting
        // into an otherwise ~4-round-quiescent dissemination.
        if n == 10_000 {
            let mut schedule = TopologySchedule::new().with_seed(7);
            for c in 0..256 {
                for k in 0..8 {
                    let (u, v) = (4 * c, 4 * c + 1);
                    schedule = schedule.drop_edge(1 + 2 * k, u, v).heal_edge(2 + 2 * k, u, v);
                }
            }
            group.bench_with_input(
                BenchmarkId::new("event_flap", n),
                &(&scenario, schedule),
                |b, (s, sched)| {
                    b.iter(|| {
                        black_box(*s)
                            .sim()
                            .runtime(Runtime::Event)
                            .schedule(sched.clone())
                            .metrics_only()
                            .run()
                    })
                },
            );
        }
    }
    group.finish();
}

/// A fleet in the *converged dense-view* state: `n / 16` cliques of 16,
/// every member holding its clique's full 120-edge discovered view. The
/// state is synthesized directly — each clique's proofs are signed once and
/// announced into every member — so the group prices the decision phase
/// alone instead of paying a 50 000-node dissemination as setup.
fn dense_view_fleet(n: usize) -> (Scenario, Vec<Participant>) {
    const K: usize = 16;
    let scenario = Scenario::new(gen::disjoint_cliques(n / K, K), 2).with_key_seed(17);
    let ks = KeyStore::generate(n, 17);
    let verifier = ks.verifier();
    let config = scenario.config().clone();
    let mut participants = Vec::with_capacity(n);
    for c in 0..n / K {
        let base = c * K;
        let clique: Vec<((usize, usize), NeighborhoodProof)> = (0..K)
            .flat_map(|i| (i + 1..K).map(move |j| (base + i, base + j)))
            .map(|(u, v)| {
                ((u, v), NeighborhoodProof::new(&ks.signer(u as u16), &ks.signer(v as u16)))
            })
            .collect();
        for i in 0..K {
            let id = base + i;
            let own: BTreeMap<usize, NeighborhoodProof> = clique
                .iter()
                .filter(|((u, v), _)| *u == id || *v == id)
                .map(|((u, v), p)| (if *u == id { *v } else { *u }, p.clone()))
                .collect();
            let mut node =
                NectarNode::new(id, config.clone(), ks.signer(id as u16), verifier.clone(), own);
            for ((u, v), p) in &clique {
                if *u != id && *v != id {
                    node.announce_extra_proof(p.clone());
                }
            }
            participants.push(Participant::Correct(node));
        }
    }
    (scenario, participants)
}

/// The steady-state decision phase at fleet scale: n ∈ {1k, 10k, 50k}
/// dense-view fleets (16-cliques, 120-edge views — the worst case for the
/// per-node O(m_view) edge-key walks) re-decided against one warm shared
/// oracle, the epoch-monitoring workload where dissemination has already
/// converged. Like every committed median, the numbers are from a
/// single-core box (docs/BENCHMARKS.md); `workers = 1` keeps the fan-out
/// honest there.
fn bench_collect_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("collect_scaling");
    group.sample_size(10);
    for n in [1_000usize, 10_000, 50_000] {
        let (scenario, participants) = dense_view_fleet(n);
        let mut oracle = ConnectivityOracle::with_capacity(16 * 1024);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                black_box(scenario.collect_decisions(black_box(&participants), &mut oracle, 1))
            })
        });
    }
    group.finish();
}

/// One small experiment-matrix cell end to end (`nectar-cli matrix`'s
/// engine): build the family per trial, place the cast, run the
/// simulation, aggregate the cell — the overhead the sweep adds on top of
/// the raw protocol runs it contains.
fn bench_matrix_smoke(c: &mut Criterion) {
    use nectar_experiments::matrix::{CastSpec, FamilySpec, MatrixSpec};
    let spec = MatrixSpec {
        families: vec![FamilySpec::Harary { k: 4 }],
        sizes: vec![16],
        casts: vec![CastSpec::SilentCut],
        t: 2,
        trials: 5,
        base_seed: 3,
        runtime: Runtime::Sync,
    };
    let mut group = c.benchmark_group("matrix");
    group.sample_size(10);
    group.bench_function("smoke_harary_k4_n16", |b| {
        b.iter(|| black_box(&spec).run().expect("spec in domain"))
    });
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let g = gen::harary(4, 50).expect("valid parameters");
    let n = g.node_count();
    let mut group = c.benchmark_group("baseline_run");
    group.bench_function("mtg_k4_n50", |b| {
        b.iter(|| run_mtg(black_box(&g), MtgConfig::new(n), &BTreeMap::new(), n - 1))
    });
    group.bench_function("mtgv2_k4_n50", |b| {
        b.iter(|| run_mtg_v2(black_box(&g), &BTreeMap::new(), n - 1, 7))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_nectar_end_to_end,
    bench_nectar_with_decisions,
    bench_runtimes,
    bench_runtime_scaling,
    bench_collect_scaling,
    bench_matrix_smoke,
    bench_baselines
);
criterion_main!(benches);
