//! Criterion benchmarks for end-to-end protocol executions: NECTAR vs the
//! baselines on identical topologies, and both runtimes on identical
//! scenarios.

use std::collections::BTreeMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use nectar_baselines::{run_mtg, run_mtg_v2, MtgConfig};
use nectar_graph::gen;
use nectar_protocol::Scenario;

fn bench_nectar_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("nectar_run");
    group.sample_size(10);
    for (k, n) in [(4usize, 20usize), (4, 50), (10, 50)] {
        let g = gen::harary(k, n).expect("valid parameters");
        group.bench_with_input(BenchmarkId::from_parameter(format!("k{k}_n{n}")), &g, |b, g| {
            b.iter(|| Scenario::new(black_box(g.clone()), k / 2).run_metrics_only());
        });
    }
    group.finish();
}

fn bench_nectar_with_decisions(c: &mut Criterion) {
    let g = gen::harary(4, 30).expect("valid parameters");
    let mut group = c.benchmark_group("nectar_run_with_decisions");
    group.sample_size(10);
    group.bench_function("k4_n30", |b| b.iter(|| Scenario::new(black_box(g.clone()), 2).run()));
    group.finish();
}

fn bench_runtimes(c: &mut Criterion) {
    let g = gen::harary(4, 24).expect("valid parameters");
    let scenario = Scenario::new(g, 2);
    let mut group = c.benchmark_group("runtime");
    group.sample_size(10);
    group.bench_function("sync", |b| b.iter(|| black_box(&scenario).run_metrics_only()));
    group.bench_function("threaded", |b| b.iter(|| black_box(&scenario).run_threaded()));
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let g = gen::harary(4, 50).expect("valid parameters");
    let n = g.node_count();
    let mut group = c.benchmark_group("baseline_run");
    group.bench_function("mtg_k4_n50", |b| {
        b.iter(|| run_mtg(black_box(&g), MtgConfig::new(n), &BTreeMap::new(), n - 1))
    });
    group.bench_function("mtgv2_k4_n50", |b| {
        b.iter(|| run_mtg_v2(black_box(&g), &BTreeMap::new(), n - 1, 7))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_nectar_end_to_end,
    bench_nectar_with_decisions,
    bench_runtimes,
    bench_baselines
);
criterion_main!(benches);
