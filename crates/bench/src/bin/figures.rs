//! Regenerates every figure and in-text result of the paper's evaluation.
//!
//! ```text
//! cargo run -p nectar-bench --release --bin figures            # all, full scale
//! cargo run -p nectar-bench --release --bin figures -- --quick # CI-sized
//! cargo run -p nectar-bench --release --bin figures -- fig3 fig8
//! ```
//!
//! Each experiment prints its Markdown table to stdout and writes
//! `results/<id>.csv`.

use nectar_experiments::ablation::{
    rounds_ablation, wire_format_ablation, RoundsConfig, WireFormatConfig,
};
use nectar_experiments::cost::{
    fig3_kregular_cost, fig4_drone_nectar, fig5_drone_mtgv2, fig6_drone_scaling_nectar,
    fig7_drone_scaling_mtgv2, large_scale_cost, topology_cost, DroneCostConfig, DroneScalingConfig,
    Fig3Config, LargeScaleConfig, TopologyCostConfig,
};
use nectar_experiments::resilience::{
    clustered_resilience, fig8_byzantine_resilience, topology_resilience,
    ClusteredResilienceConfig, Fig8Config, TopologyResilienceConfig,
};
use nectar_experiments::Table;

fn emit(table: &Table) {
    println!("{}", table.to_markdown());
    println!("{}", nectar_experiments::chart::render(table, 64, 16));
    let path = nectar_bench::results_path(&format!("{}.csv", table.id));
    std::fs::write(&path, table.to_csv()).expect("cannot write results CSV");
    eprintln!("[figures] wrote {}", path.display());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let wanted: Vec<&str> =
        args.iter().filter(|a| !a.starts_with("--")).map(String::as_str).collect();
    let want = |name: &str| wanted.is_empty() || wanted.contains(&name);

    if want("fig3") {
        let cfg = if quick { Fig3Config::quick() } else { Fig3Config::paper() };
        emit(&fig3_kregular_cost(&cfg));
    }
    if want("topology_cost") {
        let cfg = if quick { TopologyCostConfig::quick() } else { TopologyCostConfig::paper() };
        emit(&topology_cost(&cfg));
    }
    if want("topology_quiescence") {
        let cfg = if quick { TopologyCostConfig::quick() } else { TopologyCostConfig::paper() };
        emit(&nectar_experiments::cost::topology_quiescence(&cfg));
    }
    if want("per_node_disparity") {
        let cfg = if quick { TopologyCostConfig::quick() } else { TopologyCostConfig::paper() };
        emit(&nectar_experiments::cost::per_node_disparity(&cfg));
    }
    if want("fig4") {
        let cfg = if quick { DroneCostConfig::quick() } else { DroneCostConfig::paper() };
        emit(&fig4_drone_nectar(&cfg));
    }
    if want("fig5") {
        let cfg = if quick { DroneCostConfig::quick() } else { DroneCostConfig::paper() };
        emit(&fig5_drone_mtgv2(&cfg));
    }
    if want("fig6") {
        let cfg = if quick { DroneScalingConfig::quick() } else { DroneScalingConfig::paper() };
        emit(&fig6_drone_scaling_nectar(&cfg));
    }
    if want("fig7") {
        let cfg = if quick { DroneScalingConfig::quick() } else { DroneScalingConfig::paper() };
        emit(&fig7_drone_scaling_mtgv2(&cfg));
    }
    if want("fig8") {
        let cfg = if quick { Fig8Config::quick() } else { Fig8Config::paper() };
        emit(&fig8_byzantine_resilience(&cfg));
    }
    if want("topology_resilience") {
        let cfg = if quick {
            TopologyResilienceConfig::quick()
        } else {
            TopologyResilienceConfig::paper()
        };
        for table in topology_resilience(&cfg) {
            emit(&table);
        }
    }
    if want("ablation_wire_format") {
        let cfg = if quick { WireFormatConfig::quick() } else { WireFormatConfig::paper() };
        emit(&wire_format_ablation(&cfg));
    }
    if want("ablation_rounds") {
        let cfg = if quick { RoundsConfig::quick() } else { RoundsConfig::paper() };
        emit(&rounds_ablation(&cfg));
    }
    if want("large_scale_cost") {
        let cfg = if quick { LargeScaleConfig::quick() } else { LargeScaleConfig::paper() };
        emit(&large_scale_cost(&cfg));
    }
    if want("large_scale_resilience") {
        let cfg = if quick {
            ClusteredResilienceConfig::quick()
        } else {
            ClusteredResilienceConfig::paper()
        };
        emit(&clustered_resilience(&cfg));
    }
    if want("unsigned_cost") {
        let cfg = if quick {
            nectar_experiments::unsigned::UnsignedCostConfig::quick()
        } else {
            nectar_experiments::unsigned::UnsignedCostConfig::paper()
        };
        emit(&nectar_experiments::unsigned::unsigned_cost(&cfg));
    }
}
