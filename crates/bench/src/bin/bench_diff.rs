//! Diffs a fresh bench-median run against a committed baseline and fails
//! on regressions — the CI gate behind the committed `BENCH_*.json` files.
//!
//! ```text
//! NECTAR_BENCH_JSON=fresh.json cargo bench -p nectar-bench --bench protocol
//! cargo run -p nectar-bench --bin bench_diff -- BENCH_protocol.json fresh.json
//! cargo run -p nectar-bench --bin bench_diff -- BENCH_graph.json fresh.json --factor 3.0
//! ```
//!
//! Exits non-zero when any benchmark shared by both files got more than
//! `--factor` (default 2.0) times slower than its committed median. Ids
//! present on only one side are reported but never fail the gate: each
//! bench binary contributes its own subset, and brand-new benchmarks have
//! no baseline yet.

use nectar_bench::baseline::{parse, regressions};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut factor = 2.0f64;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--factor" {
            let value = args.get(i + 1).unwrap_or_else(|| usage("--factor needs a value"));
            factor = value.parse().unwrap_or_else(|_| usage("bad --factor value"));
            i += 2;
        } else {
            paths.push(args[i].clone());
            i += 1;
        }
    }
    if paths.len() != 2 {
        usage("expected exactly two files: <baseline.json> <fresh.json>");
    }
    let read = |path: &str| -> Vec<nectar_bench::baseline::Median> {
        let content = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench_diff: cannot read {path}: {e}");
            std::process::exit(2);
        });
        parse(&content)
    };
    let base = read(&paths[0]);
    let fresh = read(&paths[1]);

    let shared = fresh.iter().filter(|f| base.iter().any(|b| b.id == f.id)).count();
    println!(
        "bench_diff: {} baseline, {} fresh, {} shared ids (factor {factor}×)",
        base.len(),
        fresh.len(),
        shared
    );
    if shared == 0 {
        // A gate that compares nothing passes forever: zero overlap means a
        // renamed bench group, a stale baseline, or a format drift that
        // emptied `parse` — all of which must fail loudly, not silently.
        eprintln!(
            "bench_diff: no benchmark id is shared between {} and {} — refusing to pass an \
             empty comparison (refresh the committed baseline or fix the bench ids)",
            paths[0], paths[1]
        );
        std::process::exit(1);
    }
    for f in &fresh {
        match base.iter().find(|b| b.id == f.id) {
            Some(b) => {
                let ratio = f.median_ns as f64 / (b.median_ns as f64).max(f64::MIN_POSITIVE);
                println!(
                    "  {:<45} {:>12} ns -> {:>12} ns  ({ratio:.2}x)",
                    f.id, b.median_ns, f.median_ns
                );
            }
            None => {
                println!("  {:<45} {:>27} -> {:>12} ns  (new, no baseline)", f.id, "", f.median_ns)
            }
        }
    }
    for b in base.iter().filter(|b| !fresh.iter().any(|f| f.id == b.id)) {
        println!("  {:<45} not in fresh run (skipped)", b.id);
    }

    let regs = regressions(&base, &fresh, factor);
    if regs.is_empty() {
        println!("bench_diff: OK — no benchmark regressed beyond {factor}x");
        return;
    }
    eprintln!("bench_diff: {} regression(s) beyond {factor}x:", regs.len());
    for r in &regs {
        eprintln!(
            "  {:<45} {:>12} ns -> {:>12} ns  ({:.2}x)",
            r.id, r.baseline_ns, r.fresh_ns, r.ratio
        );
    }
    std::process::exit(1);
}

fn usage(msg: &str) -> ! {
    eprintln!("bench_diff: {msg}\nusage: bench_diff <baseline.json> <fresh.json> [--factor F]");
    std::process::exit(2);
}
