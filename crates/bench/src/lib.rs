//! Shared helpers for the benchmark harness binaries.
//!
//! The actual figure regeneration lives in `src/bin/` (one binary per paper
//! figure, see DESIGN.md §3) and the Criterion micro-benchmarks in
//! `benches/`.

#![forbid(unsafe_code)]

/// Directory where figure binaries write their CSV output.
pub const RESULTS_DIR: &str = "results";

/// Ensures the results directory exists and returns the path to
/// `results/<name>`.
///
/// # Panics
///
/// Panics if the directory cannot be created.
pub fn results_path(name: &str) -> std::path::PathBuf {
    let dir = std::path::Path::new(RESULTS_DIR);
    std::fs::create_dir_all(dir).expect("cannot create results directory");
    dir.join(name)
}
