//! Shared helpers for the benchmark harness binaries.
//!
//! * [`results_path`]: where the `figures` binary writes its CSV output.
//! * [`baseline`]: parsing and regression-diffing of the bench-median JSON
//!   files the criterion shim persists via `NECTAR_BENCH_JSON`
//!   (`BENCH_graph.json`, `BENCH_protocol.json`), consumed by the
//!   `bench_diff` binary and the CI regression gate.
//!
//! The actual figure regeneration lives in `src/bin/` (one binary per paper
//! figure, see DESIGN.md §3) and the Criterion micro-benchmarks in
//! `benches/`.

#![forbid(unsafe_code)]

/// Directory where figure binaries write their CSV output.
pub const RESULTS_DIR: &str = "results";

/// Ensures the results directory exists and returns the path to
/// `results/<name>`.
///
/// # Panics
///
/// Panics if the directory cannot be created.
pub fn results_path(name: &str) -> std::path::PathBuf {
    let dir = std::path::Path::new(RESULTS_DIR);
    std::fs::create_dir_all(dir).expect("cannot create results directory");
    dir.join(name)
}

/// Bench-median baselines: the JSON the criterion shim writes under
/// `NECTAR_BENCH_JSON`, and the regression comparison CI runs against the
/// committed `BENCH_*.json` files.
pub mod baseline {
    /// One benchmark's committed or freshly measured median.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Median {
        /// Benchmark id, e.g. `runtime_scaling/event/10000`.
        pub id: String,
        /// Median time per iteration, nanoseconds.
        pub median_ns: u128,
    }

    /// A benchmark whose fresh median exceeds the baseline by more than
    /// the allowed factor.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Regression {
        /// Benchmark id.
        pub id: String,
        /// Committed baseline median (ns).
        pub baseline_ns: u128,
        /// Freshly measured median (ns).
        pub fresh_ns: u128,
        /// `fresh / baseline`.
        pub ratio: f64,
    }

    /// Parses the shim's baseline format: a `results` array of
    /// `{"id": …, "median_ns": …}` objects, one per line. Unrecognized
    /// lines are skipped (benchmark ids never contain quotes).
    ///
    /// This mirrors the criterion shim's own (private) renderer/parser
    /// pair; the `parses_what_the_criterion_shim_writes` round-trip test
    /// pins the two sides together, so a format tweak on the writer fails
    /// here instead of silently emptying the CI comparison (which
    /// `bench_diff` additionally refuses to pass on zero shared ids).
    pub fn parse(content: &str) -> Vec<Median> {
        let mut out = Vec::new();
        for line in content.lines() {
            let Some(rest) = line.trim_start().strip_prefix("{\"id\": \"") else { continue };
            let Some((id, rest)) = rest.split_once("\", \"median_ns\": ") else { continue };
            let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
            if let Ok(median_ns) = digits.parse::<u128>() {
                out.push(Median { id: id.to_string(), median_ns });
            }
        }
        out
    }

    /// Compares fresh medians against the committed baseline and returns
    /// every shared id whose fresh median exceeds `factor ×` the baseline.
    /// Ids present on only one side are ignored — each bench binary
    /// contributes its own subset, and new benchmarks have no baseline yet.
    pub fn regressions(baseline: &[Median], fresh: &[Median], factor: f64) -> Vec<Regression> {
        fresh
            .iter()
            .filter_map(|f| {
                let base = baseline.iter().find(|b| b.id == f.id)?;
                let ratio = f.median_ns as f64 / (base.median_ns as f64).max(f64::MIN_POSITIVE);
                (ratio > factor).then(|| Regression {
                    id: f.id.clone(),
                    baseline_ns: base.median_ns,
                    fresh_ns: f.median_ns,
                    ratio,
                })
            })
            .collect()
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        const SAMPLE: &str = r#"{
  "results": [
    {"id": "a/fast", "median_ns": 1000},
    {"id": "b/slow", "median_ns": 2000000}
  ]
}
"#;

        #[test]
        fn parse_reads_the_shim_format() {
            let medians = parse(SAMPLE);
            assert_eq!(
                medians,
                vec![
                    Median { id: "a/fast".into(), median_ns: 1000 },
                    Median { id: "b/slow".into(), median_ns: 2_000_000 },
                ]
            );
            assert!(parse("garbage\n{not json}").is_empty());
        }

        #[test]
        fn regressions_flag_only_shared_ids_beyond_the_factor() {
            let base = parse(SAMPLE);
            let fresh = vec![
                // 2.5× slower: regression at factor 2.
                Median { id: "a/fast".into(), median_ns: 2500 },
                // 1.5× slower: within budget.
                Median { id: "b/slow".into(), median_ns: 3_000_000 },
                // No baseline: ignored.
                Median { id: "c/new".into(), median_ns: 99 },
            ];
            let regs = regressions(&base, &fresh, 2.0);
            assert_eq!(regs.len(), 1);
            assert_eq!(regs[0].id, "a/fast");
            assert_eq!(regs[0].baseline_ns, 1000);
            assert_eq!(regs[0].fresh_ns, 2500);
            assert!((regs[0].ratio - 2.5).abs() < 1e-9);
        }

        #[test]
        fn parses_what_the_criterion_shim_writes() {
            // Round-trip against the real writer: run one benchmark through
            // the shim and parse its rendered JSON. A format change on
            // either side breaks this test instead of silently emptying
            // the CI bench-median comparison.
            let mut c = criterion::Criterion::default();
            c.bench_function("roundtrip/probe", |b| b.iter(|| std::hint::black_box(1 + 1)));
            let medians = parse(&c.results_json());
            assert_eq!(medians.len(), 1);
            assert_eq!(medians[0].id, "roundtrip/probe");
        }

        #[test]
        fn improvements_and_equal_times_pass() {
            let base = parse(SAMPLE);
            let fresh = vec![
                Median { id: "a/fast".into(), median_ns: 400 },
                Median { id: "b/slow".into(), median_ns: 2_000_000 },
            ];
            assert!(regressions(&base, &fresh, 2.0).is_empty());
        }
    }
}
