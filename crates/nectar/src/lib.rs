//! **nectar** — Byzantine-resilient network partition detection.
//!
//! Facade crate for the full reproduction of *Partition Detection in
//! Byzantine Networks* (ICDCS 2024): it re-exports the protocol
//! ([`protocol`]), the substrates it runs on ([`graph`], [`crypto`],
//! [`net`]), the evaluation baselines ([`baselines`]) and the experiment
//! harness ([`experiments`]).
//!
//! **Place in the runtime stack:** the top. This crate hosts the
//! `nectar-cli` binary (whose `--runtime {sync,threaded,event}` flag picks
//! the execution engine), the cross-crate integration/property suites
//! under `tests/` — including the cross-runtime equivalence suite — and
//! the runnable `examples/`. See `docs/ARCHITECTURE.md` for the full map.
//!
//! # Quick start
//!
//! ```
//! use nectar::prelude::*;
//!
//! // Build a topology, pick a Byzantine budget, run NECTAR.
//! let graph = nectar::graph::gen::harary(4, 12)?;
//! let report = Scenario::new(graph, 2)
//!     .with_byzantine(5, ByzantineBehavior::Silent)
//!     .sim()
//!     .run();
//! assert!(report.agreement());
//! assert_eq!(report.unanimous_verdict(), Some(Verdict::NotPartitionable));
//! # Ok::<(), nectar::graph::GraphError>(())
//! ```

#![forbid(unsafe_code)]

/// Graph substrate: `Graph`, connectivity, topology generators.
pub use nectar_graph as graph;

/// Cryptographic substrate: SHA-256, signatures, chains, proofs.
pub use nectar_crypto as crypto;

/// Synchronous runtimes, metrics and fault interposition.
pub use nectar_net as net;

/// The NECTAR protocol itself.
pub use nectar_protocol as protocol;

/// MindTheGap baselines and attacks.
pub use nectar_baselines as baselines;

/// Figure-by-figure experiment runners.
pub use nectar_experiments as experiments;

/// Signature-free (Dolev path-vector) partition detection — the
/// cost/assumption trade-off the paper's conclusion speculates about.
pub use nectar_dolev as unsigned;

pub mod cli;

/// The scenario layer — the single front door to every execution axis
/// (`nectar-cli run <file>`): re-exported at the crate root because it
/// is the first thing a new user touches.
pub use nectar_experiments::{
    CompiledScenario, MobilitySpec, ScenarioError, ScenarioSpec, TransportKind,
};

/// The most commonly used items in one import.
pub mod prelude {
    pub use nectar_baselines::{BaselineVerdict, MtgBehavior, MtgConfig, MtgV2Behavior};
    pub use nectar_experiments::{CompiledScenario, MobilitySpec, ScenarioSpec, TransportKind};
    pub use nectar_graph::{connectivity, gen, traversal, Graph};
    pub use nectar_protocol::{
        ByzantineBehavior, Decision, EpochMonitor, EpochOutcome, NectarConfig, NectarNode, Outcome,
        RunObserver, RunReport, Runtime, Scenario, ScheduleError, Simulation, TopologySchedule,
        Verdict,
    };
}
