//! `nectar-cli` — run Byzantine-resilient partition detection from the
//! command line. See `nectar-cli help` for usage.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match nectar::cli::parse(&args).and_then(nectar::cli::run) {
        Ok(output) => print!("{output}"),
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    }
}
