//! Argument parsing and command execution for the `nectar-cli` binary.
//!
//! The binary is a thin wrapper; everything here is library code so the
//! parsing rules and command behaviour are unit-tested.

use std::fmt::Write as _;

use nectar_experiments::matrix::{CastSpec, FamilySpec, MatrixSpec};
use nectar_experiments::{CompiledScenario, ScenarioSpec, TransportKind};
use nectar_graph::{connectivity, gen, traversal, Graph};
use nectar_net::transport::{ConnectConfig, SocketTransport};
use nectar_protocol::{
    run_scenario_node, ByzantineBehavior, Decision, EpochOutcome, NodeReport, RunObserver,
    RunReport, Runtime, Scenario, TopologySchedule, Verdict,
};

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Execute a whole scenario file (`nectar-cli run <file>`): topology,
    /// cast, schedule, runtime, transport and sinks all come from the
    /// scenario layer (`nectar_experiments::scenario`).
    Run {
        /// Path of the scenario file.
        file: String,
    },
    /// Run NECTAR on a generated topology and report the decision.
    Detect(DetectArgs),
    /// Sweep the topology-zoo × attack-zoo experiment matrix and report
    /// per-cell statistics.
    Matrix(MatrixArgs),
    /// Run ONE node of a scenario over a real socket transport and print
    /// its `NodeReport` — the per-process half of multi-process detection.
    Node(NodeArgs),
    /// Print structural facts (κ, diameter, edges) for every topology
    /// family at the given size.
    Families {
        /// Connectivity parameter.
        k: usize,
        /// System size.
        n: usize,
        /// Emit the table as CSV instead of aligned text.
        csv: bool,
    },
    /// Show usage.
    Help,
}

/// Arguments of the `detect` command.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectArgs {
    /// Topology family name (as accepted by [`build_topology`]).
    pub topology: String,
    /// Connectivity parameter (families that need one).
    pub k: usize,
    /// System size.
    pub n: usize,
    /// Byzantine budget.
    pub t: usize,
    /// Byzantine cast: `(node, behaviour)` pairs.
    pub byzantine: Vec<(usize, ByzantineBehavior)>,
    /// Which runtime executes the scenario (`--runtime`; `--threaded` is a
    /// legacy alias for `--runtime threaded`, and `--workers N` sizes the
    /// `parallel` runtime's pool). Outcomes are bit-identical across all
    /// four.
    pub runtime: Runtime,
    /// Seed for keys and randomized topologies.
    pub seed: u64,
    /// Emit the result as a JSON document instead of human-readable text.
    pub json: bool,
    /// Emit the per-epoch results as CSV rows instead of text.
    pub csv: bool,
    /// Number of monitoring epochs to run (same topology, fresh keys per
    /// epoch, one shared connectivity oracle across all of them).
    pub epochs: usize,
    /// Report every node's verdict (streamed through the `RunObserver`
    /// hooks) instead of the epoch summaries.
    pub per_node: bool,
    /// Persist the full `RunReport` as JSON to this path.
    pub report: Option<String>,
    /// Topology schedule (`--schedule`): a path to a schedule script, or
    /// the script itself inline with `;` separating lines.
    pub schedule: Option<String>,
    /// Record a per-phase wall-clock breakdown (dissemination plus the four
    /// decision stages) into each epoch's outcome, printed with the text
    /// output and persisted in `--report` JSON.
    pub profile: bool,
}

/// Arguments of the `node` command: one OS process hosting one scenario
/// node over sockets. Every fleet member is launched with the *same*
/// scenario flags (topology, n, t, cast, seed) — the topology generators
/// and the key universe are pure functions of the seed, so each process
/// rebuilds the identical scenario locally and drives only its own node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeArgs {
    /// Which node this process hosts.
    pub node: usize,
    /// Scenario file supplying everything but `--node` (`--scenario`).
    /// When set, the per-process flags below are the deprecated path and
    /// must not be mixed in: the whole fleet shares the one file.
    pub scenario: Option<String>,
    /// Topology family name (as accepted by [`build_topology`]).
    pub topology: String,
    /// Connectivity parameter (families that need one).
    pub k: usize,
    /// System size.
    pub n: usize,
    /// Byzantine budget.
    pub t: usize,
    /// Byzantine cast: `(node, behaviour)` pairs — the full cast, on every
    /// process, so correct nodes know nothing they wouldn't in-memory (the
    /// cast only configures the local participant when it is Byzantine).
    pub byzantine: Vec<(usize, ByzantineBehavior)>,
    /// Seed for keys and randomized topologies.
    pub seed: u64,
    /// `uds` (default) or `tcp`.
    pub transport: String,
    /// Directory of the fleet's socket files (`node-<id>.sock` per node);
    /// empty means `<tmp>/nectar-fleet`. UDS only.
    pub sock_dir: String,
    /// First TCP port; node `i` listens on `127.0.0.1:base_port + i`.
    pub base_port: u16,
    /// Budget for the connect/accept phase, in milliseconds.
    pub connect_timeout_ms: u64,
    /// Per-receive deadline once connected, in milliseconds.
    pub recv_timeout_ms: u64,
}

/// Arguments of the `matrix` command (the topology-zoo × attack-zoo
/// sweep; see `nectar_experiments::matrix`).
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixArgs {
    /// Family identifiers (`FamilySpec::parse` vocabulary).
    pub families: Vec<String>,
    /// System sizes.
    pub sizes: Vec<usize>,
    /// Cast identifiers (`CastSpec::parse` vocabulary).
    pub casts: Vec<String>,
    /// Byzantine budget per trial.
    pub t: usize,
    /// Trials per cell.
    pub trials: usize,
    /// Base seed of the per-trial streams.
    pub seed: u64,
    /// The engine every trial runs on (results are engine-independent).
    pub runtime: Runtime,
    /// Emit the full MatrixReport JSON to stdout instead of the table.
    pub json: bool,
    /// Emit the per-cell CSV to stdout instead of the table.
    pub csv: bool,
    /// Persist the MatrixReport JSON to this path.
    pub out: Option<String>,
    /// Persist the per-cell CSV to this path.
    pub out_csv: Option<String>,
}

impl Default for MatrixArgs {
    /// The reduced sweep of `MatrixSpec::reduced()`: three families × two
    /// sizes × three casts, 100 trials per cell at `t = 2`.
    fn default() -> Self {
        let spec = MatrixSpec::reduced();
        MatrixArgs {
            families: spec.families.iter().map(FamilySpec::name).collect(),
            sizes: spec.sizes,
            casts: spec.casts.iter().map(CastSpec::name).collect(),
            t: spec.t,
            trials: spec.trials,
            seed: spec.base_seed,
            runtime: spec.runtime,
            json: false,
            csv: false,
            out: None,
            out_csv: None,
        }
    }
}

/// Usage text.
pub const USAGE: &str = "\
nectar-cli — Byzantine-resilient partition detection

USAGE:
  nectar-cli run <scenario-file>
  nectar-cli detect --topology <family> --n <N> [--k <K>] [--t <T>]
             [--byz <node>:<behavior> ...] [--runtime <R>] [--workers <W>]
             [--seed <S>] [--epochs <E>] [--per-node] [--report <path>]
             [--schedule <path-or-script>] [--profile] [--json | --csv]
  nectar-cli matrix [--families f1,f2,..] [--sizes n1,n2,..] [--casts c1,c2,..]
             [--t <T>] [--trials <N>] [--seed <S>] [--runtime <R>]
             [--workers <W>] [--out <path.json>] [--out-csv <path.csv>]
             [--json | --csv]
  nectar-cli node --scenario <file> --node <I>
  nectar-cli node --node <I> --topology <family> --n <N> [--k <K>] [--t <T>]
             [--byz <node>:<behavior> ...] [--seed <S>] [--transport uds|tcp]
             [--sock-dir <dir>] [--base-port <P>] [--connect-timeout-ms <MS>]
             [--recv-timeout-ms <MS>]              (deprecated flag path)
  nectar-cli families --k <K> --n <N> [--csv]
  nectar-cli help

SCENARIO (run / node --scenario):
  A scenario file describes a whole experiment declaratively — one
  directive per line, `#` comments, defaults for everything omitted:
  `name <words>`, `topology <family> <n>` (FamilySpec vocabulary:
  harary-k4, wheel-k4, scale-free-m2, small-world-k4-p100, grid, torus,
  random-regular-d4, two-cluster) or an explicit edge list
  (`nodes <N>` + `edge U V` lines), `t <T>`, `seed <S>`,
  `cast <CastSpec>` (honest | silent-random | silent-cut |
  equivocate-random | falsify-articulation[-pP] | falsify-colluding[-pP])
  or explicit `byz <node>:<behavior>` lines, `epochs <E>`,
  `runtime sync|threaded|event|parallel[:W]`, `schedule @<file>` or
  inline `schedule <directive>` lines (drop/heal/partition/... grammar),
  `mobility waypoint|churn|split-heal key=value...` (generates the
  schedule — and, for waypoint, the geometric topology — from the seed),
  `transport sync|loopback|uds|tcp`, `sock-dir <dir>`, `base-port <P>`,
  `connect-timeout-ms <MS>`, `recv-timeout-ms <MS>`, `report <path>`,
  `csv <path>`, `profile`. `run` executes sync/loopback scenarios in
  one process; for uds/tcp scenarios launch one process per node with
  `node --scenario <file> --node I` — the file replaces the whole
  per-process flag list, so a fleet can never disagree about its
  scenario. Errors carry file:line context. Curated examples live in
  scenarios/; the format is specified in nectar_experiments::scenario.

RUNTIME (--runtime, default sync):
  sync      deterministic single-threaded round engine — the baseline for
            tests and small sweeps
  threaded  one OS thread per node (--threaded is a legacy alias;
            practical up to a few hundred nodes — the paper's
            one-container-per-process flavour)
  event     event-driven loop, O(active events) scheduling — large n
            (10k+ nodes in one process) on a single core
  parallel  the event runtime's active-set scheduling plus a work-stealing
            worker pool committing deliveries once per round — large n on
            many cores; size the pool with --workers <W> (default:
            match the machine; only wall-clock depends on it). Reports
            name this runtime `parallel:<W>` when W is explicit.
  All four produce bit-identical outcomes (docs/DETERMINISM.md).

NODE (multi-process detection):
  `node` is the real-transport counterpart of `detect`: every process of
  a fleet is launched with the same scenario flags plus its own --node I,
  rebuilds the scenario locally (topologies and keys are pure functions
  of --seed), and drives node I over a framed socket transport with
  round-barrier pacing. With --transport uds (default, Unix only) node I
  listens on <sock-dir>/node-I.sock and dials its topology neighbors'
  files with retry-and-backoff; with --transport tcp it listens on
  127.0.0.1:<base-port>+I. When the rounds complete it prints a
  `nectar-node-report v1` block — verdict, accepted edges, traffic
  counters and the delivered-message log — which the conformance harness
  (tests/transport_conformance.rs) compares against the in-memory sync
  run: same verdicts, confirmations, accepted edges and fleet-wide
  delivery set (docs/DETERMINISM.md covers why the socket contract is
  delivered-message equivalence, not bit-identity).

SCHEDULE (--schedule):
  Runs detection on a dynamic network: a schedule scripts deterministic
  topology faults — `drop R U V` / `heal R U V` (edge down/up before
  round R's sends), `crash R NODE` / `rejoin R NODE` (node churn),
  `partition R a b c` / `heal-partition R a b c` (cut/restore every edge
  crossing {a,b,c}), `loss U V A..B P` and `delay U V A..B D` (per-link
  loss probability / fixed delay over rounds A..B; append `-one-way` for
  asymmetric links), `seed S` (loss-roll seed), `#` comments. The value
  is a file path, or the script itself inline with `;` separating lines
  (e.g. --schedule 'drop 1 0 1; heal 3 0 1'). Applied identically on
  every runtime at any worker count, and recorded in --report output.

OUTPUT:
  --json emits one machine-readable document with the per-epoch verdicts
  and connectivity-oracle statistics (cache hits, bounded flows, early
  exits); --csv emits the same per-epoch results as CSV rows with the
  header `epoch,verdict,confirmed,agreement,mean_kb_per_node,\
oracle_queries,oracle_cache_hits`. --per-node switches both (and the
  text form) to one row per correct node per epoch — streamed live from
  the run's observer hooks — with the columns `epoch,node,verdict,\
confirmed,reachable,connectivity`. --report <path> additionally persists
  the complete RunReport (parameters, topology, per-epoch decisions,
  traffic and oracle counters) as JSON to <path>. For `families`, --csv
  emits `family,nodes,edges,kappa,diameter`. --epochs E re-runs detection
  E times on the same topology with fresh keys, sharing one oracle so
  unchanged graphs decide from cache. --profile records a per-phase
  wall-clock breakdown (dissemination, then the decision phase's classify /
  derive / materialize / decide stages) per epoch: printed with the text
  output and persisted in --report JSON. The timings are wall clock —
  nondeterministic across runs and runtimes; all other outputs stay
  bit-identical. (The experiment runners emit CSV too: `cargo run -p
  nectar-bench --bin figures` writes results/<id>.csv for every figure.)

MATRIX:
  Sweeps topology families × sizes × adversary casts × seeded trials
  through the simulation and aggregates each cell: detection and
  false-positive/false-negative counts against ground truth (κ(G) ≤ t),
  median rounds-to-verdict, message/byte cost, oracle counters. Defaults
  to the reduced sweep (harary-k4, wheel-k4, small-world-k4-p100 ×
  12,16 × honest, silent-cut, falsify-articulation-p800; 100 trials per
  cell at t = 2). Output: a per-cell table (default), the full
  MatrixReport JSON (--json) or per-cell CSV (--csv) on stdout;
  --out / --out-csv additionally persist both forms. Families:
  harary[-kK] | wheel[-kK] | scale-free[-mM] | small-world[-kK-pP] |
  grid | torus | random-regular[-dD] | two-cluster (P is the rewiring
  probability in per-mille). Casts: honest | silent-random | silent-cut |
  equivocate-random | falsify-articulation[-pP] | falsify-colluding[-pP]
  (P is the per-measurement flip probability in per-mille; placements
  use the full budget t, falsifiers sit on articulation points). Every
  cell is bit-identical across runtimes and worker counts.

FAMILIES:
  harary | random-regular | pasted-tree | diamond | wheel |
  multipartite-wheel | cycle | path | star | complete | drone |
  torus | small-world | scale-free |
  cliques (disjoint 4-cliques; --n must be a positive multiple of 4)

BEHAVIORS (for --byz):
  silent | crash@<round> | two-faced@<a>-<b> (silent toward nodes a..=b) |
  hide@<a>-<b> (hide own edges toward a..=b)

EXAMPLES:
  nectar-cli run scenarios/harary-cut.scn
  nectar-cli node --scenario scenarios/harary-cut.scn --node 2
  nectar-cli matrix --families harary-k4,grid --sizes 12,16 --trials 100
  nectar-cli matrix --casts honest,falsify-colluding-p800 --out matrix.json
  nectar-cli detect --topology harary --k 4 --n 20 --t 2 --byz 3:silent
  nectar-cli detect --topology star --n 8 --t 1 --byz 0:two-faced@4-7
  nectar-cli detect --topology cliques --n 10000 --t 2 --runtime event
  nectar-cli detect --topology cliques --n 10000 --t 2 --runtime parallel --workers 4
  nectar-cli detect --topology star --n 8 --t 1 --byz 0:silent --per-node --csv
  nectar-cli detect --topology cycle --n 6 --t 1 --schedule 'drop 1 0 1; drop 1 3 4'
  nectar-cli node --node 2 --topology harary --k 2 --n 6 --t 2 --sock-dir /tmp/fleet
  nectar-cli families --k 4 --n 24 --csv
";

/// Parses a CLI argument vector (without the program name).
///
/// # Errors
///
/// Returns a human-readable message on malformed input.
pub fn parse(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => Ok(Command::Help),
        Some("families") => {
            let (mut k, mut n, mut csv) = (4usize, 20usize, false);
            let rest: Vec<String> = it.cloned().collect();
            parse_flags(&rest, &["--csv"], |flag, value| match (flag, value) {
                ("--csv", _) => {
                    csv = true;
                    Ok(())
                }
                ("--k", Some(v)) => set_usize(&mut k, v, "--k"),
                ("--n", Some(v)) => set_usize(&mut n, v, "--n"),
                (other, _) => Err(format!("unknown flag {other}")),
            })?;
            Ok(Command::Families { k, n, csv })
        }
        Some("matrix") => {
            let mut out = MatrixArgs::default();
            let mut workers: Option<usize> = None;
            let rest: Vec<String> = it.cloned().collect();
            parse_flags(&rest, &["--json", "--csv"], |flag, value| {
                match (flag, value) {
                    ("--json", _) => out.json = true,
                    ("--csv", _) => out.csv = true,
                    ("--families", Some(v)) => {
                        out.families = v.split(',').map(str::to_string).collect();
                    }
                    ("--casts", Some(v)) => {
                        out.casts = v.split(',').map(str::to_string).collect();
                    }
                    ("--sizes", Some(v)) => {
                        out.sizes = v
                            .split(',')
                            .map(|s| s.parse().map_err(|_| format!("bad --sizes value {s}")))
                            .collect::<Result<_, _>>()?;
                    }
                    ("--t", Some(v)) => set_usize(&mut out.t, v, "--t")?,
                    ("--trials", Some(v)) => set_usize(&mut out.trials, v, "--trials")?,
                    ("--runtime", Some(v)) => out.runtime = v.parse()?,
                    ("--workers", Some(v)) => {
                        let mut w = 0;
                        set_usize(&mut w, v, "--workers")?;
                        workers = Some(w);
                    }
                    ("--seed", Some(v)) => {
                        out.seed = v.parse().map_err(|_| format!("bad --seed value {v}"))?;
                    }
                    ("--out", Some(v)) => out.out = Some(v.into()),
                    ("--out-csv", Some(v)) => out.out_csv = Some(v.into()),
                    (other, _) => return Err(format!("unknown flag {other}")),
                }
                Ok(())
            })?;
            if let Some(w) = workers {
                match out.runtime {
                    Runtime::Parallel { .. } => out.runtime = Runtime::Parallel { workers: w },
                    other => {
                        return Err(format!(
                            "--workers only applies to --runtime parallel (got {other})"
                        ));
                    }
                }
            }
            if out.trials == 0 {
                return Err("--trials must be at least 1".into());
            }
            if out.families.is_empty() || out.sizes.is_empty() || out.casts.is_empty() {
                return Err("--families, --sizes and --casts must all be non-empty".into());
            }
            if out.json && out.csv {
                return Err("--json and --csv are mutually exclusive".into());
            }
            Ok(Command::Matrix(out))
        }
        Some("run") => {
            let rest: Vec<String> = it.cloned().collect();
            match rest.as_slice() {
                [file] if !file.starts_with("--") => Ok(Command::Run { file: file.clone() }),
                [] => Err("run needs a scenario file: nectar-cli run <scenario-file>".into()),
                _ => Err("run takes exactly one scenario file".into()),
            }
        }
        Some("node") => {
            let mut out = NodeArgs {
                node: 0,
                scenario: None,
                topology: "harary".into(),
                k: 2,
                n: 6,
                t: 1,
                byzantine: Vec::new(),
                seed: 42,
                transport: "uds".into(),
                sock_dir: String::new(),
                base_port: 4600,
                connect_timeout_ms: 30_000,
                recv_timeout_ms: 30_000,
            };
            let mut node: Option<usize> = None;
            let mut flag_seen: Vec<String> = Vec::new();
            let rest: Vec<String> = it.cloned().collect();
            parse_flags(&rest, &[], |flag, value| {
                flag_seen.push(flag.to_string());
                match (flag, value) {
                    ("--node", Some(v)) => {
                        let mut i = 0;
                        set_usize(&mut i, v, "--node")?;
                        node = Some(i);
                    }
                    ("--scenario", Some(v)) => out.scenario = Some(v.into()),
                    ("--topology", Some(v)) => out.topology = v.into(),
                    ("--n", Some(v)) => set_usize(&mut out.n, v, "--n")?,
                    ("--k", Some(v)) => set_usize(&mut out.k, v, "--k")?,
                    ("--t", Some(v)) => set_usize(&mut out.t, v, "--t")?,
                    ("--byz", Some(v)) => out.byzantine.push(parse_byz(v)?),
                    ("--seed", Some(v)) => {
                        out.seed = v.parse().map_err(|_| format!("bad --seed value {v}"))?;
                    }
                    ("--transport", Some(v)) => match v {
                        "uds" | "tcp" => out.transport = v.into(),
                        other => {
                            return Err(format!("bad --transport {other}; expected uds or tcp"));
                        }
                    },
                    ("--sock-dir", Some(v)) => out.sock_dir = v.into(),
                    ("--base-port", Some(v)) => {
                        out.base_port =
                            v.parse().map_err(|_| format!("bad --base-port value {v}"))?;
                    }
                    ("--connect-timeout-ms", Some(v)) => {
                        out.connect_timeout_ms =
                            v.parse().map_err(|_| format!("bad --connect-timeout-ms value {v}"))?;
                    }
                    ("--recv-timeout-ms", Some(v)) => {
                        out.recv_timeout_ms =
                            v.parse().map_err(|_| format!("bad --recv-timeout-ms value {v}"))?;
                    }
                    (other, _) => return Err(format!("unknown flag {other}")),
                }
                Ok(())
            })?;
            out.node = node.ok_or("node needs --node <I>")?;
            if out.scenario.is_some() {
                // The scenario file is the single source of truth for the
                // whole fleet; mixing in per-process flags would let two
                // processes disagree about the scenario they share.
                if let Some(extra) =
                    flag_seen.iter().find(|f| !matches!(f.as_str(), "--scenario" | "--node"))
                {
                    return Err(format!(
                        "--scenario replaces the per-process flags; drop {extra} (everything \
                         but --node comes from the scenario file)"
                    ));
                }
            } else if out.node >= out.n {
                return Err(format!("--node {} out of range (n = {})", out.node, out.n));
            }
            Ok(Command::Node(out))
        }
        Some("detect") => {
            let mut out = DetectArgs {
                topology: "harary".into(),
                k: 4,
                n: 20,
                t: 1,
                byzantine: Vec::new(),
                runtime: Runtime::Sync,
                seed: 42,
                json: false,
                csv: false,
                epochs: 1,
                per_node: false,
                report: None,
                schedule: None,
                profile: false,
            };
            let mut workers: Option<usize> = None;
            let rest: Vec<String> = it.cloned().collect();
            parse_flags(
                &rest,
                &["--threaded", "--json", "--csv", "--per-node", "--profile"],
                |flag, value| {
                    match (flag, value) {
                        ("--threaded", _) => out.runtime = Runtime::Threaded,
                        ("--json", _) => out.json = true,
                        ("--csv", _) => out.csv = true,
                        ("--per-node", _) => out.per_node = true,
                        ("--profile", _) => out.profile = true,
                        ("--report", Some(v)) => out.report = Some(v.into()),
                        ("--schedule", Some(v)) => out.schedule = Some(v.into()),
                        ("--topology", Some(v)) => out.topology = v.into(),
                        ("--n", Some(v)) => set_usize(&mut out.n, v, "--n")?,
                        ("--k", Some(v)) => set_usize(&mut out.k, v, "--k")?,
                        ("--t", Some(v)) => set_usize(&mut out.t, v, "--t")?,
                        ("--epochs", Some(v)) => set_usize(&mut out.epochs, v, "--epochs")?,
                        ("--runtime", Some(v)) => out.runtime = v.parse()?,
                        ("--workers", Some(v)) => {
                            let mut w = 0;
                            set_usize(&mut w, v, "--workers")?;
                            workers = Some(w);
                        }
                        ("--seed", Some(v)) => {
                            out.seed = v.parse().map_err(|_| format!("bad --seed value {v}"))?;
                        }
                        ("--byz", Some(v)) => out.byzantine.push(parse_byz(v)?),
                        (other, _) => return Err(format!("unknown flag {other}")),
                    }
                    Ok(())
                },
            )?;
            if let Some(w) = workers {
                match out.runtime {
                    Runtime::Parallel { .. } => out.runtime = Runtime::Parallel { workers: w },
                    other => {
                        return Err(format!(
                            "--workers only applies to --runtime parallel (got {other})"
                        ));
                    }
                }
            }
            if out.epochs == 0 {
                return Err("--epochs must be at least 1".into());
            }
            if out.json && out.csv {
                return Err("--json and --csv are mutually exclusive".into());
            }
            Ok(Command::Detect(out))
        }
        Some(other) => Err(format!("unknown command {other}; try `nectar-cli help`")),
    }
}

/// Walks a flag stream: flags named in `boolean` consume no value (the
/// callback sees `None`), every other `--flag` consumes the next argument
/// (the callback sees `Some(value)`). Shared by both subcommands so a new
/// flag is wired up in exactly one parsing path.
fn parse_flags(
    rest: &[String],
    boolean: &[&str],
    mut set: impl FnMut(&str, Option<&str>) -> Result<(), String>,
) -> Result<(), String> {
    let mut i = 0;
    while i < rest.len() {
        let flag = rest[i].as_str();
        if boolean.contains(&flag) {
            set(flag, None)?;
            i += 1;
        } else {
            let value = rest.get(i + 1).ok_or_else(|| format!("flag {flag} needs a value"))?;
            set(flag, Some(value))?;
            i += 2;
        }
    }
    Ok(())
}

fn set_usize(slot: &mut usize, value: &str, flag: &str) -> Result<(), String> {
    *slot = value.parse().map_err(|_| format!("bad {flag} value {value}"))?;
    Ok(())
}

/// Parses `node:behavior` descriptors, e.g. `3:silent`, `0:two-faced@4-7`,
/// `2:crash@3`, `1:hide@0-2` — the same grammar scenario files use for
/// their `byz` directive (`nectar_experiments::scenario::parse_behavior`),
/// so a flag incantation and a scenario line never drift apart.
pub fn parse_byz(spec: &str) -> Result<(usize, ByzantineBehavior), String> {
    nectar_experiments::scenario::parse_behavior(spec)
}

/// Builds the requested topology.
///
/// # Errors
///
/// Returns a message for unknown families or invalid parameters.
pub fn build_topology(name: &str, k: usize, n: usize, seed: u64) -> Result<Graph, String> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let err = |e: nectar_graph::GraphError| e.to_string();
    match name {
        "harary" => gen::harary(k, n).map_err(err),
        "random-regular" => gen::random_regular_connected(k, n, &mut rng, 100).map_err(err),
        "pasted-tree" => gen::k_pasted_tree(k, n).map_err(err),
        "diamond" => gen::k_diamond(k, n).map_err(err),
        "wheel" => gen::generalized_wheel(k, n).map_err(err),
        "multipartite-wheel" => gen::multipartite_wheel(k, n, 2).map_err(err),
        "cycle" => Ok(gen::cycle(n)),
        "path" => Ok(gen::path(n)),
        "star" => Ok(gen::star(n)),
        "complete" => Ok(gen::complete(n)),
        "drone" => gen::drone_scenario(n, 3.0, 1.8, &mut rng).map(|p| p.graph).map_err(err),
        "torus" => {
            let side = (n as f64).sqrt().round() as usize;
            gen::torus(side.max(3), side.max(3)).map_err(err)
        }
        "small-world" => gen::watts_strogatz(n, k.max(2) & !1, 0.2, &mut rng).map_err(err),
        "scale-free" => gen::barabasi_albert(n, k.max(1).min(n - 1), &mut rng).map_err(err),
        // A maximally partitioned fleet of 4-cliques — the large-n workload
        // of the event runtime (dissemination is cluster-local).
        "cliques" => {
            if n == 0 || n % 4 != 0 {
                return Err(format!("cliques needs --n to be a positive multiple of 4, got {n}"));
            }
            Ok(gen::disjoint_cliques(n / 4, 4))
        }
        other => Err(format!("unknown topology family {other}; try `nectar-cli help`")),
    }
}

/// Executes a command, returning the text to print.
///
/// # Errors
///
/// Returns a human-readable message on invalid parameters.
pub fn run(cmd: Command) -> Result<String, String> {
    match cmd {
        Command::Help => Ok(USAGE.to_string()),
        Command::Families { k, n, csv } => {
            let mut out = String::new();
            if csv {
                writeln!(out, "family,nodes,edges,kappa,diameter")
                    .expect("writing to String cannot fail");
            } else {
                writeln!(
                    out,
                    "{:<22} {:>6} {:>6} {:>9} {:>9}",
                    "family", "nodes", "edges", "kappa", "diameter"
                )
                .expect("writing to String cannot fail");
            }
            for family in
                ["harary", "pasted-tree", "diamond", "wheel", "multipartite-wheel", "cycle", "star"]
            {
                match build_topology(family, k, n, 0) {
                    Ok(g) => {
                        let kappa = connectivity::vertex_connectivity(&g);
                        let diameter = traversal::diameter(&g)
                            .map(|d| d.to_string())
                            .unwrap_or_else(|| if csv { "inf".into() } else { "∞".into() });
                        if csv {
                            writeln!(
                                out,
                                "{family},{},{},{kappa},{diameter}",
                                g.node_count(),
                                g.edge_count()
                            )
                            .expect("writing to String cannot fail");
                        } else {
                            writeln!(
                                out,
                                "{:<22} {:>6} {:>6} {:>9} {:>9}",
                                family,
                                g.node_count(),
                                g.edge_count(),
                                kappa,
                                diameter
                            )
                            .expect("writing to String cannot fail");
                        }
                    }
                    Err(e) if csv => {
                        // CSV stays machine-readable: unconstructible
                        // families are simply omitted (stderr is for humans).
                        eprintln!("[families] {family} not constructible: {e}");
                    }
                    Err(e) => {
                        writeln!(out, "{family:<22} (not constructible: {e})")
                            .expect("writing to String cannot fail");
                    }
                }
            }
            Ok(out)
        }
        Command::Node(args) => {
            // Two sources for the fleet-wide scenario: a shared scenario
            // file (`--scenario`, the preferred path) or the deprecated
            // per-process flag list. Both lower onto the same socket setup.
            let (scenario, transport, sock_dir, base_port, config) = match &args.scenario {
                Some(file) => node_setup_from_scenario(file, args.node)?,
                None => {
                    let graph = build_topology(&args.topology, args.k, args.n, args.seed)?;
                    for (node, _) in &args.byzantine {
                        if *node >= args.n {
                            return Err(format!(
                                "byzantine node {node} out of range (n = {})",
                                args.n
                            ));
                        }
                    }
                    let mut scenario = Scenario::new(graph, args.t).with_key_seed(args.seed);
                    for (node, behavior) in &args.byzantine {
                        scenario = scenario.with_byzantine(*node, behavior.clone());
                    }
                    let config = ConnectConfig {
                        connect_timeout: std::time::Duration::from_millis(args.connect_timeout_ms),
                        recv_timeout: std::time::Duration::from_millis(args.recv_timeout_ms),
                        ..ConnectConfig::default()
                    };
                    (
                        scenario,
                        args.transport.clone(),
                        args.sock_dir.clone(),
                        args.base_port,
                        config,
                    )
                }
            };
            let report = match transport.as_str() {
                "tcp" => {
                    let addr = |i: usize| -> Result<std::net::SocketAddr, String> {
                        let port = base_port as usize + i;
                        let port = u16::try_from(port).map_err(|_| {
                            format!("base port {base_port} + node {i} overflows a port")
                        })?;
                        Ok(std::net::SocketAddr::from(([127, 0, 0, 1], port)))
                    };
                    let peers = scenario
                        .topology()
                        .neighborhood(args.node)
                        .into_iter()
                        .map(|p| Ok((p, addr(p)?)))
                        .collect::<Result<Vec<_>, String>>()?;
                    let transport =
                        SocketTransport::tcp(args.node, addr(args.node)?, &peers, &config)
                            .map_err(|e| format!("node {}: {e}", args.node))?;
                    run_scenario_node(&scenario, args.node, transport)
                        .map_err(|e| format!("node {}: {e}", args.node))?
                }
                _ => run_node_uds(args.node, &sock_dir, &scenario, &config)?,
            };
            Ok(report.to_text())
        }
        Command::Run { file } => {
            let compiled = load_scenario(&file)?;
            match compiled.transport {
                TransportKind::Sync => {
                    let report = compiled.run_report();
                    if let Some(path) = &compiled.report {
                        report
                            .save_json(path)
                            .map_err(|e| format!("writing report {path}: {e}"))?;
                    }
                    if let Some(path) = &compiled.csv {
                        std::fs::write(path, report.to_csv())
                            .map_err(|e| format!("writing CSV {path}: {e}"))?;
                    }
                    Ok(render_scenario_text(&file, &compiled, &report))
                }
                TransportKind::Loopback => {
                    let (decisions, metrics, _log) =
                        compiled.run_loopback().map_err(|e| format!("{file}: {e}"))?;
                    Ok(render_scenario_loopback(&file, &compiled, &decisions, &metrics))
                }
                TransportKind::Uds | TransportKind::Tcp => Err(format!(
                    "scenario {file} declares a socket fleet (transport {}); launch one \
                     process per node instead: `nectar-cli node --scenario {file} --node <I>`",
                    compiled.transport.name()
                )),
            }
        }
        Command::Matrix(args) => {
            let spec = MatrixSpec {
                families: args
                    .families
                    .iter()
                    .map(|f| FamilySpec::parse(f))
                    .collect::<Result<_, _>>()?,
                sizes: args.sizes.clone(),
                casts: args.casts.iter().map(|c| CastSpec::parse(c)).collect::<Result<_, _>>()?,
                t: args.t,
                trials: args.trials,
                base_seed: args.seed,
                runtime: args.runtime,
            };
            let report = spec.run()?;
            if let Some(path) = &args.out {
                report.save_json(path).map_err(|e| format!("writing report {path}: {e}"))?;
            }
            if let Some(path) = &args.out_csv {
                std::fs::write(path, report.to_csv())
                    .map_err(|e| format!("writing CSV {path}: {e}"))?;
            }
            if args.json {
                Ok(report.to_json())
            } else if args.csv {
                Ok(report.to_csv())
            } else {
                Ok(report.to_string())
            }
        }
        Command::Detect(args) => {
            let graph = build_topology(&args.topology, args.k, args.n, args.seed)?;
            let kappa = connectivity::vertex_connectivity(&graph);
            for (node, _) in &args.byzantine {
                if *node >= args.n {
                    return Err(format!("byzantine node {node} out of range (n = {})", args.n));
                }
            }
            let schedule = match &args.schedule {
                Some(spec) => Some(load_schedule(spec, &graph)?),
                None => None,
            };
            let mut scenario = Scenario::new(graph, args.t).with_key_seed(args.seed);
            for (node, behavior) in &args.byzantine {
                scenario = scenario.with_byzantine(*node, behavior.clone());
            }
            // One session runs all epochs: the builder re-seeds the keys
            // per epoch and shares one oracle, so epochs after the first
            // decide from cache. Per-node rows are not read back off the
            // report — they stream live through the observer hooks.
            let mut stream = PerNodeStream::default();
            let mut sim = scenario.sim().runtime(args.runtime).epochs(args.epochs);
            if let Some(schedule) = schedule {
                sim = sim.schedule(schedule);
            }
            if args.profile {
                sim = sim.profile();
            }
            if args.per_node {
                sim = sim.observe(&mut stream);
            }
            let report = sim.run();
            if let Some(path) = &args.report {
                report.save_json(path).map_err(|e| format!("writing report {path}: {e}"))?;
            }
            if args.per_node {
                Ok(render_per_node(&args, kappa, &stream.rows))
            } else if args.json {
                Ok(render_detect_json(&args, kappa, &report.epochs))
            } else if args.csv {
                Ok(render_detect_csv(&report.epochs))
            } else {
                Ok(render_detect_text(&args, kappa, &report.epochs))
            }
        }
    }
}

/// Loads and compiles a scenario file; parse and compile errors already
/// carry `file:line` context in their Display form.
fn load_scenario(file: &str) -> Result<CompiledScenario, String> {
    let spec = ScenarioSpec::load(std::path::Path::new(file)).map_err(|e| e.to_string())?;
    spec.compile().map_err(|e| e.to_string())
}

/// The `--scenario` source of the `node` command: everything but the node
/// id comes out of the compiled scenario, so every fleet process shares
/// one file instead of re-deriving seeded state from flags.
fn node_setup_from_scenario(
    file: &str,
    node: usize,
) -> Result<(Scenario, String, String, u16, ConnectConfig), String> {
    let compiled = load_scenario(file)?;
    let transport = match compiled.transport {
        TransportKind::Uds => "uds".to_string(),
        TransportKind::Tcp => "tcp".to_string(),
        other => {
            return Err(format!(
                "scenario {file} declares transport {}; `node` hosts one process of a \
                 socket fleet — use `nectar-cli run {file}` for in-process transports",
                other.name()
            ));
        }
    };
    let n = compiled.graph.node_count();
    if node >= n {
        return Err(format!("--node {node} out of range (n = {n})"));
    }
    let config = ConnectConfig {
        connect_timeout: std::time::Duration::from_millis(compiled.connect_timeout_ms),
        recv_timeout: std::time::Duration::from_millis(compiled.recv_timeout_ms),
        ..ConnectConfig::default()
    };
    Ok((
        compiled.scenario(),
        transport,
        compiled.sock_dir.clone().unwrap_or_default(),
        compiled.base_port,
        config,
    ))
}

/// The `--transport uds` body of the `node` command: socket files follow
/// the `<sock-dir>/node-<id>.sock` convention, so the fleet only has to
/// agree on the directory.
#[cfg(unix)]
fn run_node_uds(
    node: usize,
    sock_dir: &str,
    scenario: &Scenario,
    config: &ConnectConfig,
) -> Result<NodeReport, String> {
    let dir = if sock_dir.is_empty() {
        std::env::temp_dir().join("nectar-fleet")
    } else {
        std::path::PathBuf::from(sock_dir)
    };
    std::fs::create_dir_all(&dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let sock = |i: usize| dir.join(format!("node-{i}.sock"));
    let peers: Vec<_> =
        scenario.topology().neighborhood(node).into_iter().map(|p| (p, sock(p))).collect();
    let transport = SocketTransport::uds(node, &sock(node), &peers, config)
        .map_err(|e| format!("node {node}: {e}"))?;
    run_scenario_node(scenario, node, transport).map_err(|e| format!("node {node}: {e}"))
}

#[cfg(not(unix))]
fn run_node_uds(
    node: usize,
    _sock_dir: &str,
    _scenario: &Scenario,
    _config: &ConnectConfig,
) -> Result<NodeReport, String> {
    let _ = node;
    Err("--transport uds needs a Unix platform; use --transport tcp".into())
}

/// Human-readable `run` report for the sync transport: scenario
/// provenance, topology facts, the last epoch's verdict and traffic.
fn render_scenario_text(file: &str, compiled: &CompiledScenario, report: &RunReport) -> String {
    let kappa = connectivity::vertex_connectivity(&compiled.graph);
    let outcome = report.epochs.last().expect("at least one epoch runs");
    let mut out = String::new();
    let name = if compiled.name.is_empty() { file } else { &compiled.name };
    writeln!(out, "scenario: {name} ({file})").expect("writing to String cannot fail");
    writeln!(
        out,
        "topology: n = {} (κ = {kappa}), t = {}, runtime {}",
        compiled.graph.node_count(),
        compiled.t,
        compiled.runtime
    )
    .expect("writing to String cannot fail");
    if !compiled.cast.is_empty() {
        writeln!(out, "byzantine: {:?}", compiled.cast.iter().map(|(n, _)| *n).collect::<Vec<_>>())
            .expect("writing to String cannot fail");
    }
    if let Some(schedule) = &compiled.schedule {
        writeln!(out, "schedule: {} scripted line(s)", schedule.to_script().lines().count())
            .expect("writing to String cannot fail");
    }
    match outcome.unanimous_verdict() {
        Some(v) => {
            writeln!(out, "verdict:  {v} (confirmed partition: {})", outcome.any_confirmed())
                .expect("writing to String cannot fail");
        }
        None => {
            writeln!(out, "verdict:  DISAGREEMENT — this would falsify Lemma 2, please report")
                .expect("writing to String cannot fail");
        }
    }
    writeln!(
        out,
        "traffic:  {:.1} KB/node mean, {:.1} KB/node max",
        outcome.metrics.mean_bytes_sent_per_node() / 1024.0,
        outcome.metrics.max_bytes_sent_per_node() as f64 / 1024.0
    )
    .expect("writing to String cannot fail");
    if compiled.epochs > 1 {
        let hits: u64 = report.epochs.iter().map(|o| o.oracle.cache_hits).sum();
        let queries: u64 = report.epochs.iter().map(|o| o.oracle.queries).sum();
        writeln!(
            out,
            "epochs:   {} — oracle served {hits}/{queries} decisions from cache",
            compiled.epochs
        )
        .expect("writing to String cannot fail");
    }
    if let Some(p) = outcome.profile {
        writeln!(
            out,
            "profile:  disseminate {}µs | classify {}µs | derive {}µs | \
             materialize {}µs | decide {}µs (last epoch, wall clock)",
            p.disseminate_micros,
            p.classify_micros,
            p.derive_micros,
            p.materialize_micros,
            p.decide_micros
        )
        .expect("writing to String cannot fail");
    }
    out
}

/// Human-readable `run` report for the loopback transport: one row per
/// node (real message-passing has no epoch loop), then the traffic line.
fn render_scenario_loopback(
    file: &str,
    compiled: &CompiledScenario,
    decisions: &std::collections::BTreeMap<usize, Decision>,
    metrics: &nectar_net::Metrics,
) -> String {
    let mut out = String::new();
    let name = if compiled.name.is_empty() { file } else { &compiled.name };
    writeln!(out, "scenario: {name} ({file}) over loopback channels")
        .expect("writing to String cannot fail");
    writeln!(
        out,
        "{:>5} {:<18} {:>9} {:>9} {:>12}",
        "node", "verdict", "confirmed", "reachable", "connectivity"
    )
    .expect("writing to String cannot fail");
    for (node, d) in decisions {
        writeln!(
            out,
            "{node:>5} {:<18} {:>9} {:>9} {:>12}",
            d.verdict.to_string(),
            d.confirmed,
            d.reachable,
            d.connectivity
        )
        .expect("writing to String cannot fail");
    }
    writeln!(
        out,
        "traffic:  {:.1} KB/node mean, {:.1} KB/node max",
        metrics.mean_bytes_sent_per_node() / 1024.0,
        metrics.max_bytes_sent_per_node() as f64 / 1024.0
    )
    .expect("writing to String cannot fail");
    out
}

/// Resolves a `--schedule` value into a validated [`TopologySchedule`]:
/// the value is read as a file when one exists at that path, otherwise it
/// is the script itself with `;` accepted as a line separator. The script
/// is compiled against the topology here so an inconsistent schedule is a
/// CLI error, not a panic inside the simulation.
fn load_schedule(spec: &str, graph: &Graph) -> Result<TopologySchedule, String> {
    let text = match std::fs::read_to_string(spec) {
        Ok(contents) => contents,
        Err(_) => spec.replace(';', "\n"),
    };
    let schedule = TopologySchedule::parse(&text).map_err(|e| format!("--schedule: {e}"))?;
    schedule.compile(graph).map_err(|e| format!("--schedule: {e}"))?;
    Ok(schedule)
}

/// Collects the per-node verdict stream from the run's observer hooks —
/// the `detect --per-node` data source (closing the "no machine-readable
/// per-node decisions" gap).
#[derive(Debug, Default)]
struct PerNodeStream {
    rows: Vec<(usize, usize, Decision)>,
}

impl RunObserver for PerNodeStream {
    fn node_decided(&mut self, epoch: usize, node: usize, decision: &Decision) {
        self.rows.push((epoch, node, *decision));
    }
}

/// Renders the streamed per-node verdicts: CSV or JSON when requested,
/// an aligned table otherwise. CSV rows come from the same formatter as
/// `RunReport::to_csv`, so the stream stays parseable by
/// `RunReport::decisions_from_csv`.
fn render_per_node(args: &DetectArgs, kappa: usize, rows: &[(usize, usize, Decision)]) -> String {
    let mut out = String::new();
    if args.csv {
        out.push_str(nectar_protocol::DECISIONS_CSV_HEADER);
        out.push('\n');
        for (epoch, node, d) in rows {
            writeln!(out, "{}", nectar_protocol::decision_csv_row(*epoch, *node, d))
                .expect("writing to String cannot fail");
        }
    } else if args.json {
        writeln!(out, "{{").expect("writing to String cannot fail");
        writeln!(
            out,
            "  \"topology\": \"{}\", \"n\": {}, \"t\": {}, \"kappa\": {kappa},",
            args.topology, args.n, args.t
        )
        .expect("writing to String cannot fail");
        writeln!(out, "  \"per_node\": [").expect("writing to String cannot fail");
        for (i, (epoch, node, d)) in rows.iter().enumerate() {
            let sep = if i + 1 == rows.len() { "" } else { "," };
            writeln!(
                out,
                "    {{\"epoch\": {epoch}, \"node\": {node}, \"verdict\": \"{}\", \
                 \"confirmed\": {}, \"reachable\": {}, \"connectivity\": {}}}{sep}",
                d.verdict, d.confirmed, d.reachable, d.connectivity
            )
            .expect("writing to String cannot fail");
        }
        writeln!(out, "  ]").expect("writing to String cannot fail");
        writeln!(out, "}}").expect("writing to String cannot fail");
    } else {
        writeln!(
            out,
            "{:>5} {:>5} {:<18} {:>9} {:>9} {:>12}",
            "epoch", "node", "verdict", "confirmed", "reachable", "connectivity"
        )
        .expect("writing to String cannot fail");
        for (epoch, node, d) in rows {
            writeln!(
                out,
                "{epoch:>5} {node:>5} {:<18} {:>9} {:>9} {:>12}",
                d.verdict.to_string(),
                d.confirmed,
                d.reachable,
                d.connectivity
            )
            .expect("writing to String cannot fail");
        }
    }
    out
}

/// Human-readable `detect` report (epoch summaries after the first when
/// `--epochs` exceeds 1).
fn render_detect_text(args: &DetectArgs, kappa: usize, outcomes: &[EpochOutcome]) -> String {
    let outcome = outcomes.last().expect("at least one epoch runs");
    let mut out = String::new();
    writeln!(out, "topology: {} (n = {}, κ = {kappa}), t = {}", args.topology, args.n, args.t)
        .expect("writing to String cannot fail");
    if !args.byzantine.is_empty() {
        writeln!(
            out,
            "byzantine: {:?}",
            args.byzantine.iter().map(|(n, _)| *n).collect::<Vec<_>>()
        )
        .expect("writing to String cannot fail");
    }
    match outcome.unanimous_verdict() {
        Some(v) => {
            let confirmed = outcome.any_confirmed();
            writeln!(out, "verdict:  {v} (confirmed partition: {confirmed})")
                .expect("writing to String cannot fail");
            if v == Verdict::Partitionable && kappa > args.t {
                writeln!(out, "note:     perceived connectivity dropped to ≤ t; real κ = {kappa}")
                    .expect("writing to String cannot fail");
            }
        }
        None => {
            writeln!(out, "verdict:  DISAGREEMENT — this would falsify Lemma 2, please report")
                .expect("writing to String cannot fail");
        }
    }
    writeln!(
        out,
        "traffic:  {:.1} KB/node mean, {:.1} KB/node max",
        outcome.metrics.mean_bytes_sent_per_node() / 1024.0,
        outcome.metrics.max_bytes_sent_per_node() as f64 / 1024.0
    )
    .expect("writing to String cannot fail");
    if args.epochs > 1 {
        writeln!(out, "epochs:   {} (identical topology, fresh keys per epoch)", args.epochs)
            .expect("writing to String cannot fail");
        let hits: u64 = outcomes.iter().map(|o| o.oracle.cache_hits).sum();
        let queries: u64 = outcomes.iter().map(|o| o.oracle.queries).sum();
        writeln!(out, "oracle:   {hits}/{queries} decisions served from cache")
            .expect("writing to String cannot fail");
    }
    if let Some(p) = outcome.profile {
        writeln!(
            out,
            "profile:  disseminate {}µs | classify {}µs | derive {}µs | \
             materialize {}µs | decide {}µs (last epoch, wall clock)",
            p.disseminate_micros,
            p.classify_micros,
            p.derive_micros,
            p.materialize_micros,
            p.decide_micros
        )
        .expect("writing to String cannot fail");
    }
    out
}

/// CSV `detect` report: one row per epoch, columns documented in [`USAGE`].
fn render_detect_csv(outcomes: &[EpochOutcome]) -> String {
    let mut out = String::from(
        "epoch,verdict,confirmed,agreement,mean_kb_per_node,oracle_queries,oracle_cache_hits\n",
    );
    for (epoch, outcome) in outcomes.iter().enumerate() {
        let verdict = match outcome.unanimous_verdict() {
            Some(v) => v.to_string(),
            None => "DISAGREEMENT".into(),
        };
        let confirmed = outcome.any_confirmed();
        writeln!(
            out,
            "{epoch},{verdict},{confirmed},{},{:.3},{},{}",
            outcome.agreement(),
            outcome.metrics.mean_bytes_sent_per_node() / 1024.0,
            outcome.oracle.queries,
            outcome.oracle.cache_hits,
        )
        .expect("writing to String cannot fail");
    }
    out
}

/// Machine-readable `detect` report: run parameters, per-epoch verdicts and
/// the per-epoch connectivity-oracle counters.
fn render_detect_json(args: &DetectArgs, kappa: usize, outcomes: &[EpochOutcome]) -> String {
    let mut out = String::new();
    let byz: Vec<String> = args.byzantine.iter().map(|(n, _)| n.to_string()).collect();
    writeln!(out, "{{").expect("writing to String cannot fail");
    writeln!(
        out,
        "  \"topology\": \"{}\", \"n\": {}, \"k\": {}, \"t\": {}, \"seed\": {}, \"kappa\": {kappa},",
        args.topology, args.n, args.k, args.t, args.seed
    )
    .expect("writing to String cannot fail");
    writeln!(out, "  \"byzantine\": [{}],", byz.join(", ")).expect("writing to String cannot fail");
    writeln!(out, "  \"epochs\": [").expect("writing to String cannot fail");
    for (epoch, outcome) in outcomes.iter().enumerate() {
        let verdict = match outcome.unanimous_verdict() {
            Some(v) => format!("\"{v}\""),
            None => "null".into(),
        };
        let confirmed = outcome.any_confirmed();
        let s = &outcome.oracle;
        let sep = if epoch + 1 == outcomes.len() { "" } else { "," };
        writeln!(
            out,
            "    {{\"epoch\": {epoch}, \"verdict\": {verdict}, \"confirmed\": {confirmed}, \
             \"agreement\": {}, \"mean_kb_per_node\": {:.3}, \"oracle\": {{\"queries\": {}, \
             \"cache_hits\": {}, \"structure_shortcuts\": {}, \"min_degree_shortcuts\": {}, \
             \"bounded_flows\": {}, \"early_exits\": {}}}}}{sep}",
            outcome.agreement(),
            outcome.metrics.mean_bytes_sent_per_node() / 1024.0,
            s.queries,
            s.cache_hits,
            s.structure_shortcuts,
            s.min_degree_shortcuts,
            s.bounded_flows,
            s.early_exits,
        )
        .expect("writing to String cannot fail");
    }
    writeln!(out, "  ]").expect("writing to String cannot fail");
    writeln!(out, "}}").expect("writing to String cannot fail");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn empty_args_yield_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&strs(&["help"])).unwrap(), Command::Help);
    }

    #[test]
    fn detect_args_are_parsed() {
        let cmd = parse(&strs(&[
            "detect",
            "--topology",
            "cycle",
            "--n",
            "8",
            "--t",
            "2",
            "--byz",
            "3:silent",
            "--threaded",
        ]))
        .unwrap();
        match cmd {
            Command::Detect(args) => {
                assert_eq!(args.topology, "cycle");
                assert_eq!(args.n, 8);
                assert_eq!(args.t, 2);
                assert_eq!(args.runtime, Runtime::Threaded);
                assert_eq!(args.byzantine, vec![(3, ByzantineBehavior::Silent)]);
            }
            other => panic!("expected detect, got {other:?}"),
        }
    }

    #[test]
    fn runtime_flag_selects_the_engine() {
        for (value, expected) in [
            ("sync", Runtime::Sync),
            ("threaded", Runtime::Threaded),
            ("event", Runtime::Event),
            ("parallel", Runtime::parallel()),
        ] {
            match parse(&strs(&["detect", "--runtime", value])).unwrap() {
                Command::Detect(args) => assert_eq!(args.runtime, expected),
                other => panic!("expected detect, got {other:?}"),
            }
        }
        // Default is the deterministic engine; bad names error out.
        match parse(&strs(&["detect"])).unwrap() {
            Command::Detect(args) => assert_eq!(args.runtime, Runtime::Sync),
            other => panic!("expected detect, got {other:?}"),
        }
        assert!(parse(&strs(&["detect", "--runtime", "warp"])).is_err());
    }

    #[test]
    fn workers_flag_sizes_the_parallel_pool() {
        // --workers binds to the parallel runtime in either flag order.
        for args in [
            ["detect", "--runtime", "parallel", "--workers", "4"],
            ["detect", "--workers", "4", "--runtime", "parallel"],
        ] {
            match parse(&strs(&args)).unwrap() {
                Command::Detect(a) => assert_eq!(a.runtime, Runtime::Parallel { workers: 4 }),
                other => panic!("expected detect, got {other:?}"),
            }
        }
        // Without --workers the pool matches the machine (workers: 0).
        match parse(&strs(&["detect", "--runtime", "parallel"])).unwrap() {
            Command::Detect(a) => assert_eq!(a.runtime, Runtime::Parallel { workers: 0 }),
            other => panic!("expected detect, got {other:?}"),
        }
        // --workers without the parallel runtime is a user error.
        assert!(parse(&strs(&["detect", "--workers", "4"])).is_err());
        assert!(parse(&strs(&["detect", "--runtime", "event", "--workers", "4"])).is_err());
        assert!(parse(&strs(&["detect", "--runtime", "parallel", "--workers", "x"])).is_err());
    }

    #[test]
    fn detect_on_the_event_runtime_matches_sync_output() {
        let run_with = |rt: &str| {
            run(parse(&strs(&["detect", "--topology", "cycle", "--n", "8", "--runtime", rt]))
                .unwrap())
            .unwrap()
        };
        assert_eq!(run_with("sync"), run_with("event"));
        assert_eq!(run_with("sync"), run_with("parallel"));
    }

    #[test]
    fn detect_csv_emits_one_row_per_epoch() {
        let cmd =
            parse(&strs(&["detect", "--topology", "cycle", "--n", "6", "--epochs", "2", "--csv"]))
                .unwrap();
        let out = run(cmd).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "epoch,verdict,confirmed,agreement,mean_kb_per_node,oracle_queries,oracle_cache_hits"
        );
        assert!(lines[1].starts_with("0,NOT_PARTITIONABLE,false,true,"), "{}", lines[1]);
        // The second epoch decides entirely from the shared oracle's cache.
        assert!(lines[2].ends_with(",6,6"), "{}", lines[2]);
    }

    #[test]
    fn json_and_csv_are_mutually_exclusive() {
        assert!(parse(&strs(&["detect", "--json", "--csv"])).is_err());
    }

    #[test]
    fn per_node_csv_streams_one_row_per_correct_node() {
        let cmd = parse(&strs(&[
            "detect",
            "--topology",
            "star",
            "--n",
            "8",
            "--t",
            "1",
            "--byz",
            "0:silent",
            "--per-node",
            "--csv",
        ]))
        .unwrap();
        let out = run(cmd).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "epoch,node,verdict,confirmed,reachable,connectivity");
        // 7 correct nodes (the hub is Byzantine), one epoch.
        assert_eq!(lines.len(), 1 + 7);
        // The silent hub leaves each leaf with only its own hub edge:
        // r = 2 (itself + the hub it can prove), confirmed.
        assert_eq!(lines[1], "0,1,PARTITIONABLE,true,2,0");
        // Rows arrive in (epoch, node) order — the canonical decision order.
        let nodes: Vec<usize> =
            lines[1..].iter().map(|l| l.split(',').nth(1).unwrap().parse().unwrap()).collect();
        assert_eq!(nodes, (1..8).collect::<Vec<_>>());
    }

    #[test]
    fn per_node_json_and_text_cover_all_epochs() {
        let base = ["detect", "--topology", "cycle", "--n", "6", "--epochs", "2", "--per-node"];
        let mut json_args = base.to_vec();
        json_args.push("--json");
        let json = run(parse(&strs(&json_args)).unwrap()).unwrap();
        assert!(json.contains("\"per_node\": ["), "{json}");
        assert_eq!(json.matches("\"verdict\": \"NOT_PARTITIONABLE\"").count(), 12, "{json}");
        assert!(json.contains("\"epoch\": 1, \"node\": 5"), "{json}");
        let text = run(parse(&strs(&base)).unwrap()).unwrap();
        assert!(text.lines().next().unwrap().contains("verdict"), "{text}");
        assert_eq!(text.lines().count(), 1 + 12, "{text}");
    }

    #[test]
    fn report_flag_persists_the_full_run_report() {
        let path = std::env::temp_dir().join("nectar-cli-report-test.json");
        let path_str = path.to_str().unwrap().to_string();
        let cmd = parse(&strs(&[
            "detect",
            "--topology",
            "cycle",
            "--n",
            "6",
            "--epochs",
            "2",
            "--report",
            &path_str,
        ]))
        .unwrap();
        let _ = run(cmd).unwrap();
        let report = nectar_protocol::RunReport::load_json(&path).expect("persisted report loads");
        std::fs::remove_file(&path).ok();
        assert_eq!(report.n, 6);
        assert_eq!(report.epochs.len(), 2);
        assert_eq!(report.unanimous_verdict(), Some(Verdict::NotPartitionable));
        assert_eq!(report.topology.edge_count(), 6);
    }

    #[test]
    fn schedule_flag_runs_detection_on_a_dynamic_network() {
        // Cutting (0,1) and (3,4) from round 1 splits cycle-6 into two
        // 3-node arcs; with t = 1 both sides must report PARTITIONABLE.
        let cmd = parse(&strs(&[
            "detect",
            "--topology",
            "cycle",
            "--n",
            "6",
            "--t",
            "1",
            "--schedule",
            "drop 1 0 1; drop 1 3 4",
        ]))
        .unwrap();
        match &cmd {
            Command::Detect(args) => {
                assert_eq!(args.schedule.as_deref(), Some("drop 1 0 1; drop 1 3 4"));
            }
            other => panic!("expected detect, got {other:?}"),
        }
        let out = run(cmd).unwrap();
        assert!(out.contains("verdict:  PARTITIONABLE (confirmed partition: true)"), "{out}");
        // The same script healed before the decision round leaves the
        // static verdict intact.
        let healed = run(parse(&strs(&[
            "detect",
            "--topology",
            "cycle",
            "--n",
            "6",
            "--t",
            "1",
            "--schedule",
            "drop 1 0 1; drop 1 3 4; heal 2 0 1; heal 2 3 4",
        ]))
        .unwrap())
        .unwrap();
        assert!(healed.contains("NOT_PARTITIONABLE"), "{healed}");
    }

    #[test]
    fn schedule_flag_reads_a_file_and_lands_in_the_report() {
        let dir = std::env::temp_dir();
        let sched_path = dir.join("nectar-cli-schedule-test.txt");
        let report_path = dir.join("nectar-cli-schedule-report-test.json");
        std::fs::write(&sched_path, "# split the ring\ndrop 1 0 1\ndrop 1 3 4\n").unwrap();
        let cmd = parse(&strs(&[
            "detect",
            "--topology",
            "cycle",
            "--n",
            "6",
            "--t",
            "1",
            "--schedule",
            sched_path.to_str().unwrap(),
            "--report",
            report_path.to_str().unwrap(),
        ]))
        .unwrap();
        let out = run(cmd).unwrap();
        assert!(out.contains("PARTITIONABLE"), "{out}");
        let report = nectar_protocol::RunReport::load_json(&report_path).unwrap();
        std::fs::remove_file(&sched_path).ok();
        std::fs::remove_file(&report_path).ok();
        let record = report.schedule.expect("report records the applied schedule");
        assert!(record.script.contains("drop 1 0 1"), "{}", record.script);
        assert_eq!(record.transitions, vec![(1, 0, 1, false), (1, 3, 4, false)]);
    }

    #[test]
    fn bad_schedules_are_cli_errors_not_panics() {
        let run_sched = |script: &str| {
            run(parse(&strs(&["detect", "--topology", "cycle", "--n", "6", "--schedule", script]))
                .unwrap())
        };
        // Malformed syntax, an edge the topology does not have, and a heal
        // without a matching drop all surface as messages.
        assert!(run_sched("drop one zero").unwrap_err().contains("--schedule"));
        assert!(run_sched("drop 1 0 3").unwrap_err().contains("--schedule"));
        assert!(run_sched("heal 2 0 1").unwrap_err().contains("--schedule"));
    }

    #[test]
    fn matrix_args_are_parsed_with_reduced_defaults() {
        match parse(&strs(&["matrix"])).unwrap() {
            Command::Matrix(args) => {
                assert_eq!(args.families.len(), 3);
                assert_eq!(args.sizes, vec![12, 16]);
                assert_eq!(args.casts.len(), 3);
                assert_eq!(args.t, 2);
                assert_eq!(args.trials, 100);
                assert_eq!(args.runtime, Runtime::Sync);
            }
            other => panic!("expected matrix, got {other:?}"),
        }
        match parse(&strs(&[
            "matrix",
            "--families",
            "harary-k4,grid",
            "--sizes",
            "8,12",
            "--casts",
            "honest,silent-cut",
            "--t",
            "1",
            "--trials",
            "5",
            "--runtime",
            "parallel",
            "--workers",
            "3",
        ]))
        .unwrap()
        {
            Command::Matrix(args) => {
                assert_eq!(args.families, vec!["harary-k4", "grid"]);
                assert_eq!(args.sizes, vec![8, 12]);
                assert_eq!(args.casts, vec!["honest", "silent-cut"]);
                assert_eq!(args.t, 1);
                assert_eq!(args.trials, 5);
                assert_eq!(args.runtime, Runtime::Parallel { workers: 3 });
            }
            other => panic!("expected matrix, got {other:?}"),
        }
        assert!(parse(&strs(&["matrix", "--trials", "0"])).is_err());
        assert!(parse(&strs(&["matrix", "--json", "--csv"])).is_err());
        assert!(parse(&strs(&["matrix", "--workers", "4"])).is_err());
        assert!(parse(&strs(&["matrix", "--sizes", "x"])).is_err());
        assert!(parse(&strs(&["matrix", "--wat", "1"])).is_err());
    }

    #[test]
    fn matrix_end_to_end_emits_table_json_and_csv() {
        let base = [
            "matrix",
            "--families",
            "harary-k4,grid",
            "--sizes",
            "9",
            "--casts",
            "honest,silent-cut",
            "--t",
            "1",
            "--trials",
            "2",
            "--seed",
            "7",
        ];
        let table = run(parse(&strs(&base)).unwrap()).unwrap();
        assert!(table.contains("matrix: 4 cells × 2 trials"), "{table}");
        assert!(table.contains("harary-k4"), "{table}");
        let mut json_args = base.to_vec();
        json_args.push("--json");
        let json = run(parse(&strs(&json_args)).unwrap()).unwrap();
        let report = nectar_experiments::MatrixReport::from_json(&json).expect("parses back");
        assert_eq!(report.cells.len(), 4);
        assert_eq!(report.trials, 2);
        let mut csv_args = base.to_vec();
        csv_args.push("--csv");
        let csv = run(parse(&strs(&csv_args)).unwrap()).unwrap();
        let cells = nectar_experiments::MatrixReport::cells_from_csv(&csv).expect("parses back");
        assert_eq!(cells, report.cells);
        // Unknown family and cast names surface as messages, not panics.
        assert!(run(
            parse(&strs(&["matrix", "--families", "klein-bottle", "--trials", "1"])).unwrap()
        )
        .is_err());
        assert!(run(parse(&strs(&["matrix", "--casts", "gaslight", "--trials", "1"])).unwrap())
            .is_err());
    }

    #[test]
    fn matrix_out_flags_persist_both_forms() {
        let dir = std::env::temp_dir();
        let json_path = dir.join("nectar-cli-matrix-test.json");
        let csv_path = dir.join("nectar-cli-matrix-test.csv");
        let cmd = parse(&strs(&[
            "matrix",
            "--families",
            "harary-k4",
            "--sizes",
            "8",
            "--casts",
            "honest",
            "--t",
            "1",
            "--trials",
            "2",
            "--out",
            json_path.to_str().unwrap(),
            "--out-csv",
            csv_path.to_str().unwrap(),
        ]))
        .unwrap();
        let _ = run(cmd).unwrap();
        let report =
            nectar_experiments::MatrixReport::load_json(&json_path).expect("persisted JSON loads");
        let csv = std::fs::read_to_string(&csv_path).unwrap();
        std::fs::remove_file(&json_path).ok();
        std::fs::remove_file(&csv_path).ok();
        assert_eq!(report.cells.len(), 1);
        assert_eq!(
            nectar_experiments::MatrixReport::cells_from_csv(&csv).expect("persisted CSV parses"),
            report.cells
        );
    }

    #[test]
    fn byz_specs_cover_all_behaviors() {
        assert_eq!(parse_byz("3:silent").unwrap().1, ByzantineBehavior::Silent);
        assert_eq!(parse_byz("1:crash@2").unwrap().1, ByzantineBehavior::CrashAfter { round: 2 });
        assert_eq!(
            parse_byz("0:two-faced@4-6").unwrap().1,
            ByzantineBehavior::TwoFaced { silent_toward: [4, 5, 6].into() }
        );
        assert_eq!(
            parse_byz("0:hide@1-2").unwrap().1,
            ByzantineBehavior::HideEdges { toward: [1, 2].into() }
        );
        assert!(parse_byz("nonsense").is_err());
        assert!(parse_byz("0:warp@1-2").is_err());
        assert!(parse_byz("0:two-faced@6-4").is_err());
    }

    #[test]
    fn node_args_are_parsed() {
        let cmd = parse(&strs(&[
            "node",
            "--node",
            "2",
            "--topology",
            "harary",
            "--k",
            "2",
            "--n",
            "6",
            "--t",
            "2",
            "--byz",
            "1:silent",
            "--seed",
            "9",
            "--sock-dir",
            "/tmp/fleet",
            "--connect-timeout-ms",
            "5000",
        ]))
        .unwrap();
        match cmd {
            Command::Node(args) => {
                assert_eq!(args.node, 2);
                assert_eq!(args.topology, "harary");
                assert_eq!((args.k, args.n, args.t), (2, 6, 2));
                assert_eq!(args.byzantine, vec![(1, ByzantineBehavior::Silent)]);
                assert_eq!(args.seed, 9);
                assert_eq!(args.transport, "uds");
                assert_eq!(args.sock_dir, "/tmp/fleet");
                assert_eq!(args.connect_timeout_ms, 5000);
                assert_eq!(args.recv_timeout_ms, 30_000);
            }
            other => panic!("expected node, got {other:?}"),
        }
        match parse(&strs(&["node", "--node", "0", "--transport", "tcp", "--base-port", "4700"]))
            .unwrap()
        {
            Command::Node(args) => {
                assert_eq!(args.transport, "tcp");
                assert_eq!(args.base_port, 4700);
            }
            other => panic!("expected node, got {other:?}"),
        }
        // --node is mandatory, must be in range, and the transport name
        // is validated at parse time.
        assert!(parse(&strs(&["node"])).is_err());
        assert!(parse(&strs(&["node", "--node", "6", "--n", "6"])).is_err());
        assert!(parse(&strs(&["node", "--node", "0", "--transport", "carrier-pigeon"])).is_err());
        assert!(parse(&strs(&["node", "--node", "0", "--wat", "1"])).is_err());
    }

    #[test]
    fn unknown_flags_and_commands_error() {
        assert!(parse(&strs(&["detect", "--wat", "1"])).is_err());
        assert!(parse(&strs(&["frobnicate"])).is_err());
        assert!(parse(&strs(&["detect", "--n"])).is_err());
        assert!(parse(&strs(&["detect", "--epochs", "0"])).is_err());
    }

    #[test]
    fn json_and_epochs_flags_are_parsed() {
        let cmd =
            parse(&strs(&["detect", "--topology", "cycle", "--n", "6", "--json", "--epochs", "3"]))
                .unwrap();
        match cmd {
            Command::Detect(args) => {
                assert!(args.json);
                assert_eq!(args.epochs, 3);
            }
            other => panic!("expected detect, got {other:?}"),
        }
        // Defaults: plain text, one epoch.
        match parse(&strs(&["detect"])).unwrap() {
            Command::Detect(args) => {
                assert!(!args.json);
                assert_eq!(args.epochs, 1);
            }
            other => panic!("expected detect, got {other:?}"),
        }
    }

    #[test]
    fn detect_json_reports_verdict_and_oracle_stats() {
        let cmd = parse(&strs(&[
            "detect",
            "--topology",
            "cycle",
            "--n",
            "8",
            "--t",
            "1",
            "--epochs",
            "2",
            "--json",
        ]))
        .unwrap();
        let out = run(cmd).unwrap();
        assert!(out.contains("\"verdict\": \"NOT_PARTITIONABLE\""), "{out}");
        assert!(out.contains("\"kappa\": 2"), "{out}");
        assert!(out.contains("\"cache_hits\""), "{out}");
        assert!(out.contains("\"early_exits\""), "{out}");
        assert!(out.contains("\"epoch\": 1"), "{out}");
        // Epoch 1 re-runs the same topology: every query is a cache hit,
        // visible as queries == cache_hits == n in the second epoch object.
        let epoch1 = out.lines().find(|l| l.contains("\"epoch\": 1")).unwrap();
        assert!(epoch1.contains("\"queries\": 8, \"cache_hits\": 8"), "{epoch1}");
    }

    #[test]
    fn profile_flag_prints_the_phase_breakdown_and_persists_it() {
        let path = std::env::temp_dir().join("nectar-cli-profile-test.json");
        let path_str = path.to_str().unwrap().to_string();
        let cmd = parse(&strs(&[
            "detect",
            "--topology",
            "cycle",
            "--n",
            "8",
            "--profile",
            "--report",
            &path_str,
        ]))
        .unwrap();
        match &cmd {
            Command::Detect(args) => assert!(args.profile),
            other => panic!("expected detect, got {other:?}"),
        }
        let out = run(cmd).unwrap();
        assert!(out.contains("profile:  disseminate"), "{out}");
        assert!(out.contains("decide"), "{out}");
        let report = nectar_protocol::RunReport::load_json(&path).expect("persisted report loads");
        std::fs::remove_file(&path).ok();
        assert!(report.epochs[0].profile.is_some(), "profile lands in the RunReport JSON");
        // Without the flag nothing is recorded.
        let plain =
            run(parse(&strs(&["detect", "--topology", "cycle", "--n", "8"])).unwrap()).unwrap();
        assert!(!plain.contains("profile:"), "{plain}");
    }

    #[test]
    fn detect_text_summarizes_multi_epoch_cache_use() {
        let cmd =
            parse(&strs(&["detect", "--topology", "cycle", "--n", "6", "--epochs", "3"])).unwrap();
        let out = run(cmd).unwrap();
        assert!(out.contains("epochs:   3"), "{out}");
        assert!(out.contains("17/18 decisions served from cache"), "{out}");
    }

    #[test]
    fn build_topology_knows_all_families() {
        for family in [
            "harary",
            "random-regular",
            "pasted-tree",
            "diamond",
            "wheel",
            "multipartite-wheel",
            "cycle",
            "path",
            "star",
            "complete",
            "drone",
            "torus",
            "small-world",
            "scale-free",
            "cliques",
        ] {
            assert!(build_topology(family, 4, 20, 1).is_ok(), "{family}");
        }
        assert!(build_topology("klein-bottle", 4, 20, 1).is_err());
        // cliques must not silently truncate or degenerate to 0 nodes.
        assert!(build_topology("cliques", 4, 10, 1).is_err());
        assert!(build_topology("cliques", 4, 3, 1).is_err());
        assert!(build_topology("cliques", 4, 0, 1).is_err());
    }

    #[test]
    fn detect_end_to_end_reports_verdict() {
        let cmd = parse(&strs(&["detect", "--topology", "cycle", "--n", "8", "--t", "1"])).unwrap();
        let out = run(cmd).unwrap();
        assert!(out.contains("NOT_PARTITIONABLE"), "{out}");
        assert!(out.contains("KB/node"));
    }

    #[test]
    fn detect_with_byzantine_star_hub() {
        let cmd = parse(&strs(&[
            "detect",
            "--topology",
            "star",
            "--n",
            "8",
            "--t",
            "1",
            "--byz",
            "0:silent",
        ]))
        .unwrap();
        let out = run(cmd).unwrap();
        assert!(out.contains("PARTITIONABLE"), "{out}");
    }

    #[test]
    fn families_table_lists_structural_facts() {
        let out = run(Command::Families { k: 4, n: 24, csv: false }).unwrap();
        assert!(out.contains("harary"));
        assert!(out.contains("wheel"));
        // κ column contains the Harary guarantee.
        assert!(out.lines().any(|l| l.starts_with("harary") && l.contains(" 4")));
    }

    #[test]
    fn families_csv_is_machine_readable() {
        let cmd = parse(&strs(&["families", "--k", "4", "--n", "24", "--csv"])).unwrap();
        assert_eq!(cmd, Command::Families { k: 4, n: 24, csv: true });
        let out = run(cmd).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "family,nodes,edges,kappa,diameter");
        assert!(lines[1..].iter().all(|l| l.split(',').count() == 5), "{out}");
        assert!(lines.iter().any(|l| l.starts_with("harary,24,48,4,")), "{out}");
    }

    #[test]
    fn out_of_range_byzantine_node_errors() {
        let cmd = parse(&strs(&["detect", "--topology", "cycle", "--n", "5", "--byz", "9:silent"]))
            .unwrap();
        assert!(run(cmd).is_err());
    }

    #[test]
    fn run_command_takes_exactly_one_scenario_file() {
        assert_eq!(
            parse(&strs(&["run", "scenarios/demo.scn"])).unwrap(),
            Command::Run { file: "scenarios/demo.scn".into() }
        );
        assert!(parse(&strs(&["run"])).unwrap_err().contains("scenario file"));
        assert!(parse(&strs(&["run", "a.scn", "b.scn"])).is_err());
        assert!(parse(&strs(&["run", "--json"])).is_err());
    }

    #[test]
    fn node_scenario_flag_excludes_the_deprecated_flags() {
        match parse(&strs(&["node", "--scenario", "fleet.scn", "--node", "2"])).unwrap() {
            Command::Node(args) => {
                assert_eq!(args.scenario.as_deref(), Some("fleet.scn"));
                assert_eq!(args.node, 2);
            }
            other => panic!("expected node, got {other:?}"),
        }
        // Node 9 would be out of range for the flag-path default n = 6,
        // but with --scenario the range check waits for the file's n.
        assert!(parse(&strs(&["node", "--scenario", "fleet.scn", "--node", "9"])).is_ok());
        let err = parse(&strs(&["node", "--scenario", "fleet.scn", "--node", "0", "--t", "2"]))
            .unwrap_err();
        assert!(err.contains("--scenario replaces"), "{err}");
        assert!(err.contains("--t"), "{err}");
    }

    #[test]
    fn run_executes_a_scenario_file_end_to_end() {
        let dir = std::env::temp_dir().join("nectar-cli-run-e2e");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("cut.scn");
        let report_path = dir.join("cut-report.json");
        std::fs::write(
            &file,
            format!(
                "name harary cut demo\n\
                 topology harary-k2 10\n\
                 t 2\n\
                 seed 5\n\
                 cast silent-cut\n\
                 report {}\n",
                report_path.display()
            ),
        )
        .unwrap();
        let out = run(Command::Run { file: file.to_string_lossy().into_owned() }).unwrap();
        assert!(out.contains("scenario: harary cut demo"), "{out}");
        assert!(out.contains("verdict:"), "{out}");
        // The report sink persisted a round-trippable RunReport.
        let json = std::fs::read_to_string(&report_path).unwrap();
        let report = RunReport::from_json(&json).unwrap();
        assert_eq!(report.n, 10);
        // The same file drives the same run as the equivalent hand-built
        // simulation — the bit-identity the conformance suite pins.
        let compiled = load_scenario(&file.to_string_lossy()).unwrap();
        assert_eq!(compiled.run_report(), report);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_reports_scenario_errors_with_file_and_line() {
        let dir = std::env::temp_dir().join("nectar-cli-run-errors");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("bad.scn");
        std::fs::write(&file, "topology harary-k2 10\nruntime warp\n").unwrap();
        let err = run(Command::Run { file: file.to_string_lossy().into_owned() }).unwrap_err();
        assert!(err.contains("bad.scn:2"), "{err}");
        assert!(err.contains("unknown runtime warp"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_refuses_socket_scenarios_and_points_at_node() {
        let dir = std::env::temp_dir().join("nectar-cli-run-socket");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("fleet.scn");
        std::fs::write(&file, "topology harary-k2 6\ntransport uds\n").unwrap();
        let err = run(Command::Run { file: file.to_string_lossy().into_owned() }).unwrap_err();
        assert!(err.contains("node --scenario"), "{err}");
        // And the converse: `node` refuses in-process scenarios.
        std::fs::write(&file, "topology harary-k2 6\n").unwrap();
        let err = run(Command::Node(NodeArgs {
            node: 0,
            scenario: Some(file.to_string_lossy().into_owned()),
            topology: "harary".into(),
            k: 2,
            n: 6,
            t: 1,
            byzantine: Vec::new(),
            seed: 42,
            transport: "uds".into(),
            sock_dir: String::new(),
            base_port: 4600,
            connect_timeout_ms: 30_000,
            recv_timeout_ms: 30_000,
        }))
        .unwrap_err();
        assert!(err.contains("transport sync"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_loopback_scenarios_report_per_node_decisions() {
        let dir = std::env::temp_dir().join("nectar-cli-run-loopback");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("loop.scn");
        std::fs::write(&file, "topology harary-k2 6\nt 1\ntransport loopback\n").unwrap();
        let out = run(Command::Run { file: file.to_string_lossy().into_owned() }).unwrap();
        assert!(out.contains("over loopback channels"), "{out}");
        // One row per node, all healthy.
        for node in 0..6 {
            assert!(out.lines().any(|l| l.trim_start().starts_with(&format!("{node} "))), "{out}");
        }
        assert!(out.contains("NOT_PARTITIONABLE"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn usage_documents_the_scenario_front_door() {
        assert!(USAGE.contains("nectar-cli run <scenario-file>"));
        assert!(USAGE.contains("node --scenario"));
        assert!(USAGE.contains("mobility waypoint"));
    }
}
