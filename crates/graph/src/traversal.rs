//! Breadth-first traversal: reachability, components, distances, diameter.
//!
//! These routines back two parts of the paper: the decision phase of
//! Algorithm 1 (`DetectReachableNode`, which counts how many nodes a correct
//! process sees as reachable in its discovered graph) and the evaluation's
//! discussion of how NECTAR's cost scales with the network diameter (§IV-E,
//! §V-C).

use std::collections::VecDeque;

use crate::graph::Graph;

/// Marks every node reachable from `start` (including `start` itself).
///
/// # Panics
///
/// Panics if `start >= n`.
pub fn reachable_from(g: &Graph, start: usize) -> Vec<bool> {
    assert!(start < g.node_count(), "start node {start} out of range");
    let mut seen = vec![false; g.node_count()];
    let mut queue = VecDeque::new();
    seen[start] = true;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        for v in g.neighbors(u) {
            if !seen[v] {
                seen[v] = true;
                queue.push_back(v);
            }
        }
    }
    seen
}

/// Number of nodes reachable from `start`, including `start`.
///
/// This is the paper's `DetectReachableNode(G_i)` evaluated at the node
/// running the decision phase (Alg. 1 l. 16).
pub fn reachable_count(g: &Graph, start: usize) -> usize {
    reachable_from(g, start).iter().filter(|&&b| b).count()
}

/// Assigns a component id to every node and returns `(ids, component_count)`.
pub fn connected_components(g: &Graph) -> (Vec<usize>, usize) {
    let n = g.node_count();
    let mut ids = vec![usize::MAX; n];
    let mut next = 0;
    for s in 0..n {
        if ids[s] != usize::MAX {
            continue;
        }
        let mut queue = VecDeque::new();
        ids[s] = next;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for v in g.neighbors(u) {
                if ids[v] == usize::MAX {
                    ids[v] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    (ids, next)
}

/// Whether the graph is connected. The empty graph and singletons are
/// considered connected.
pub fn is_connected(g: &Graph) -> bool {
    let (_, count) = connected_components(g);
    count <= 1
}

/// Whether the graph is partitioned per the paper's Definition 1, i.e. its
/// vertex set splits into two or more mutually unreachable parts.
pub fn is_partitioned(g: &Graph) -> bool {
    !is_connected(g)
}

/// Whether the subgraph induced by `V \ removed` is partitioned
/// (Theorem 1's condition with `removed = V_b`).
///
/// Nodes listed in `removed` are skipped entirely; if fewer than two nodes
/// remain the induced subgraph cannot be partitioned and `false` is returned.
pub fn is_partitioned_without(g: &Graph, removed: &[usize]) -> bool {
    let n = g.node_count();
    let mut excluded = vec![false; n];
    for &r in removed {
        if r < n {
            excluded[r] = true;
        }
    }
    let remaining: Vec<usize> = (0..n).filter(|&u| !excluded[u]).collect();
    if remaining.len() < 2 {
        return false;
    }
    let start = remaining[0];
    let mut seen = vec![false; n];
    let mut queue = VecDeque::new();
    seen[start] = true;
    queue.push_back(start);
    let mut reached = 1;
    while let Some(u) = queue.pop_front() {
        for v in g.neighbors(u) {
            if !seen[v] && !excluded[v] {
                seen[v] = true;
                reached += 1;
                queue.push_back(v);
            }
        }
    }
    reached < remaining.len()
}

/// BFS distances from `start`; `None` for unreachable nodes.
///
/// # Panics
///
/// Panics if `start >= n`.
pub fn bfs_distances(g: &Graph, start: usize) -> Vec<Option<usize>> {
    assert!(start < g.node_count(), "start node {start} out of range");
    let mut dist = vec![None; g.node_count()];
    let mut queue = VecDeque::new();
    dist[start] = Some(0);
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        let du = dist[u].expect("queued nodes have a distance");
        for v in g.neighbors(u) {
            if dist[v].is_none() {
                dist[v] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Eccentricity of `start` (greatest BFS distance); `None` if some node is
/// unreachable from `start`.
pub fn eccentricity(g: &Graph, start: usize) -> Option<usize> {
    let dist = bfs_distances(g, start);
    dist.into_iter().try_fold(0usize, |acc, d| d.map(|d| acc.max(d)))
}

/// Diameter of the graph; `None` if the graph is disconnected or empty.
///
/// The number of propagation rounds after which NECTAR's edge dissemination
/// goes silent is exactly this quantity (§IV-B, "no node will learn a new
/// edge after the round that corresponds to the graph diameter").
pub fn diameter(g: &Graph) -> Option<usize> {
    if g.node_count() == 0 {
        return None;
    }
    (0..g.node_count()).map(|u| eccentricity(g, u)).try_fold(0usize, |acc, e| e.map(|e| acc.max(e)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn path4() -> Graph {
        Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn reachability_on_a_path() {
        let g = path4();
        assert_eq!(reachable_count(&g, 0), 4);
        assert!(reachable_from(&g, 3)[0]);
    }

    #[test]
    fn reachability_on_disconnected_graph() {
        let g = Graph::from_edges(5, [(0, 1), (2, 3)]).unwrap();
        assert_eq!(reachable_count(&g, 0), 2);
        assert_eq!(reachable_count(&g, 2), 2);
        assert_eq!(reachable_count(&g, 4), 1);
    }

    #[test]
    fn components_are_counted() {
        let g = Graph::from_edges(6, [(0, 1), (2, 3), (3, 4)]).unwrap();
        let (ids, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(ids[0], ids[1]);
        assert_eq!(ids[2], ids[3]);
        assert_eq!(ids[3], ids[4]);
        assert_ne!(ids[0], ids[2]);
        assert_ne!(ids[0], ids[5]);
    }

    #[test]
    fn connectivity_predicates() {
        assert!(is_connected(&path4()));
        assert!(!is_partitioned(&path4()));
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert!(is_partitioned(&g));
        assert!(is_connected(&Graph::empty(0)));
        assert!(is_connected(&Graph::empty(1)));
        assert!(!is_connected(&Graph::empty(2)));
    }

    #[test]
    fn partition_after_removal_detects_cut_vertices() {
        // Star: removing the hub partitions the leaves (Fig. 1b).
        let star = crate::gen::star(5);
        assert!(!is_partitioned(&star));
        assert!(is_partitioned_without(&star, &[0]));
        // Removing a leaf does not partition the rest.
        assert!(!is_partitioned_without(&star, &[1]));
    }

    #[test]
    fn partition_after_removal_with_too_few_remaining_nodes() {
        let g = path4();
        assert!(!is_partitioned_without(&g, &[0, 1, 2]));
        assert!(!is_partitioned_without(&g, &[0, 1, 2, 3]));
    }

    #[test]
    fn removal_list_tolerates_duplicates_and_out_of_range() {
        let g = path4();
        assert!(is_partitioned_without(&g, &[1, 1, 99]));
    }

    #[test]
    fn distances_and_diameter_on_a_path() {
        let g = path4();
        assert_eq!(bfs_distances(&g, 0), vec![Some(0), Some(1), Some(2), Some(3)]);
        assert_eq!(eccentricity(&g, 1), Some(2));
        assert_eq!(diameter(&g), Some(3));
    }

    #[test]
    fn diameter_of_disconnected_graph_is_none() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert_eq!(diameter(&g), None);
        assert_eq!(eccentricity(&g, 0), None);
    }

    #[test]
    fn diameter_of_complete_graph_is_one() {
        let g = crate::gen::complete(5);
        assert_eq!(diameter(&g), Some(1));
        assert_eq!(diameter(&Graph::empty(1)), Some(0));
        assert_eq!(diameter(&Graph::empty(0)), None);
    }
}
