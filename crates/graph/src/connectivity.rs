//! Vertex connectivity, minimum vertex cuts, and t-Byzantine partitionability.
//!
//! The paper's Corollary 1 states that a network `G` is *t-Byzantine
//! partitionable* iff its vertex connectivity `κ(G)` is at most `t`; NECTAR's
//! decision phase (Alg. 1 l. 17) therefore reduces partition detection to a
//! connectivity computation on each node's discovered graph.
//!
//! Pairwise connectivity `κ(s, t)` is computed via Menger's theorem as a
//! maximum flow on the vertex-split digraph; global connectivity uses the
//! classic reduction to `O(deg)` pairwise computations around a
//! minimum-degree vertex (Even's algorithm).

use crate::flow::{FlowNetwork, INF};
use crate::graph::Graph;
use crate::traversal::{is_connected, is_partitioned_without};

/// Builds the vertex-split flow network for `g`.
///
/// Node `v` becomes `v_in = 2v` and `v_out = 2v + 1` joined by a capacity-1
/// arc (capacity ∞ for the `exempt` endpoints, which must not be counted in
/// a cut); each undirected edge `(u, v)` becomes `u_out → v_in` and
/// `v_out → u_in` with capacity ∞.
fn split_network(g: &Graph, exempt: [usize; 2]) -> FlowNetwork {
    let n = g.node_count();
    let mut net = FlowNetwork::new(2 * n);
    for v in 0..n {
        let cap = if exempt.contains(&v) { INF } else { 1 };
        net.add_arc(2 * v, 2 * v + 1, cap);
    }
    for (u, v) in g.edges() {
        net.add_arc(2 * u + 1, 2 * v, INF);
        net.add_arc(2 * v + 1, 2 * u, INF);
    }
    net
}

/// Maximum number of internally vertex-disjoint paths between `s` and `t`
/// (`κ(s, t)` in Menger's theorem).
///
/// For adjacent `s, t` the direct edge contributes one path and the remainder
/// is computed on `G − (s, t)`.
///
/// # Panics
///
/// Panics if `s == t` or an endpoint is out of range.
pub fn local_vertex_connectivity(g: &Graph, s: usize, t: usize) -> usize {
    local_vertex_connectivity_bounded(g, s, t, usize::MAX)
}

/// [`local_vertex_connectivity`] with an early exit: the result is exact
/// when it is `< cap`, while any result `>= cap` only certifies
/// `κ(s, t) ≥ cap`.
///
/// Direct `s`–`t` edges are stripped in a single clone up front (each one
/// contributes exactly one disjoint path; a simple [`Graph`] holds at most
/// one, but the loop stays correct should parallel edges ever appear), so
/// the flow computation runs once instead of once per recursion step.
///
/// # Panics
///
/// Panics if `s == t` or an endpoint is out of range.
pub fn local_vertex_connectivity_bounded(g: &Graph, s: usize, t: usize, cap: usize) -> usize {
    assert!(s != t, "local connectivity requires two distinct nodes");
    assert!(s < g.node_count() && t < g.node_count(), "node out of range");
    let mut stripped;
    let (h, direct) = if g.has_edge(s, t) {
        stripped = g.clone();
        let mut direct = 0;
        while stripped.remove_edge(s, t) {
            direct += 1;
        }
        (&stripped, direct)
    } else {
        (g, 0)
    };
    if direct >= cap {
        return direct;
    }
    let mut net = split_network(h, [s, t]);
    let limit = (cap - direct) as u64;
    let flow = net.max_flow_bounded(2 * s + 1, 2 * t, limit);
    direct + usize::try_from(flow).expect("vertex-disjoint path count bounded by n")
}

/// Reusable vertex-split network for scanning many `s`–`t` pairs of one
/// graph: the adjacency structure is built once and capacities are reset
/// between pairs, so each pair costs an O(n + m) sweep plus the (bounded)
/// flow itself instead of a full network reconstruction. This is what makes
/// the [`ConnectivityOracle`](crate::oracle::ConnectivityOracle)'s Even scan
/// cheap — the scanned pairs are always non-adjacent, so no edge stripping
/// is ever needed.
#[derive(Debug)]
pub(crate) struct PairScanner {
    net: FlowNetwork,
}

impl PairScanner {
    /// Builds the split network of `g` with every vertex arc at capacity 1.
    pub(crate) fn new(g: &Graph) -> Self {
        // No endpoints are exempted at construction; the per-pair overrides
        // below lift the current pair's vertex arcs to INF instead.
        let net = split_network(g, [usize::MAX, usize::MAX]);
        PairScanner { net }
    }

    /// `κ(s, t)` for non-adjacent `s ≠ t`, computed with the flow capped at
    /// `cap` (exact when the result is `< cap`, see
    /// [`local_vertex_connectivity_bounded`]).
    pub(crate) fn bounded_pair_connectivity(&mut self, s: usize, t: usize, cap: usize) -> usize {
        self.net.reset();
        for endpoint in [s, t] {
            // split_network inserts each vertex arc v_in → v_out before any
            // edge arc touches v_in, so it sits at index 0.
            debug_assert_eq!(self.net.arc_head(2 * endpoint, 0), 2 * endpoint + 1);
            self.net.override_arc_capacity(2 * endpoint, 0, INF);
        }
        let flow = self.net.max_flow_bounded(2 * s + 1, 2 * t, cap as u64);
        usize::try_from(flow).expect("vertex-disjoint path count bounded by n")
    }
}

/// A minimum `s`–`t` vertex separator for non-adjacent `s, t`, together with
/// its size (`κ(s, t)`).
///
/// # Panics
///
/// Panics if `s == t`, if `(s, t)` is an edge (adjacent nodes admit no
/// separator), or if an endpoint is out of range.
pub fn local_min_vertex_cut(g: &Graph, s: usize, t: usize) -> Vec<usize> {
    assert!(s != t, "local cut requires two distinct nodes");
    assert!(!g.has_edge(s, t), "adjacent nodes cannot be separated by a vertex cut");
    let mut net = split_network(g, [s, t]);
    net.max_flow(2 * s + 1, 2 * t);
    let reach = net.residual_reachable(2 * s + 1);
    (0..g.node_count()).filter(|&v| v != s && v != t && reach[2 * v] && !reach[2 * v + 1]).collect()
}

/// Global vertex connectivity `κ(G)`.
///
/// Conventions: `κ` of the empty graph, a singleton, or any disconnected
/// graph is 0; `κ(K_n) = n − 1`.
pub fn vertex_connectivity(g: &Graph) -> usize {
    let n = g.node_count();
    if n <= 1 {
        return 0;
    }
    if g.is_complete() {
        return n - 1;
    }
    if !is_connected(g) {
        return 0;
    }
    let v = g.min_degree_node().expect("non-empty graph has a min-degree node");
    let mut best = g.degree(v);
    for w in g.non_neighbors(v) {
        best = best.min(local_vertex_connectivity(g, v, w));
        if best == 0 {
            return 0;
        }
    }
    let nbrs = g.neighborhood(v);
    for (i, &x) in nbrs.iter().enumerate() {
        for &y in &nbrs[i + 1..] {
            if !g.has_edge(x, y) {
                best = best.min(local_vertex_connectivity(g, x, y));
            }
        }
    }
    best
}

/// A minimum vertex cut of `G`, i.e. a set of `κ(G)` nodes whose removal
/// partitions the graph.
///
/// Returns `None` for complete graphs (no separator exists) and for graphs
/// with fewer than two nodes. For a disconnected graph the empty cut is
/// returned. This is how the experiment harness places Byzantine nodes at
/// the paper's "key positions" (§V-D).
pub fn min_vertex_cut(g: &Graph) -> Option<Vec<usize>> {
    let n = g.node_count();
    if n <= 1 || g.is_complete() {
        return None;
    }
    if !is_connected(g) {
        return Some(Vec::new());
    }
    let v = g.min_degree_node().expect("non-empty graph has a min-degree node");
    let mut best: Option<(usize, usize)> = None; // minimizing pair
    let mut best_k = g.degree(v) + 1;
    for w in g.non_neighbors(v) {
        let k = local_vertex_connectivity(g, v, w);
        if k < best_k {
            best_k = k;
            best = Some((v, w));
        }
    }
    let nbrs = g.neighborhood(v);
    for (i, &x) in nbrs.iter().enumerate() {
        for &y in &nbrs[i + 1..] {
            if !g.has_edge(x, y) {
                let k = local_vertex_connectivity(g, x, y);
                if k < best_k {
                    best_k = k;
                    best = Some((x, y));
                }
            }
        }
    }
    match best {
        Some((s, t)) => Some(local_min_vertex_cut(g, s, t)),
        // Every candidate pair was adjacent yet the graph is not complete:
        // κ(G) = deg(v) and Γ(v) is a cut isolating v.
        None => Some(g.neighborhood(v)),
    }
}

/// Whether removing `cut` partitions the graph (i.e. `cut` is a vertex cut).
pub fn is_vertex_cut(g: &Graph, cut: &[usize]) -> bool {
    is_partitioned_without(g, cut)
}

/// Whether `G` is *t-Byzantine partitionable* (Definition 2): per
/// Corollary 1, iff `κ(G) ≤ t`.
///
/// In a graph with `κ > t` the subgraph of correct nodes remains connected no
/// matter where the `t` Byzantine nodes sit; with `κ ≤ t` at least one
/// placement lets them disconnect correct nodes.
pub fn is_t_byzantine_partitionable(g: &Graph, t: usize) -> bool {
    vertex_connectivity(g) <= t
}

/// All articulation points (cut vertices) of `g`, in ascending order: the
/// nodes whose removal increases the number of connected components.
///
/// These are exactly the size-1 vertex cuts, so on tree-like and bridged
/// topologies they are the "key positions" a Byzantine placement strategy
/// wants (a liar on an articulation point controls every path between the
/// components it separates). Computed with Tarjan's low-link DFS, run
/// iteratively so deep path-shaped graphs cannot overflow the stack;
/// `O(n + m)`, deterministic (roots and neighbors are visited in ascending
/// id order).
pub fn articulation_points(g: &Graph) -> Vec<usize> {
    let n = g.node_count();
    let adj: Vec<Vec<usize>> = (0..n).map(|v| g.neighbors(v).collect()).collect();
    let mut disc = vec![usize::MAX; n]; // discovery time, MAX = unvisited
    let mut low = vec![usize::MAX; n];
    let mut is_cut = vec![false; n];
    let mut time = 0usize;
    // Explicit DFS frames: (node, parent, index into the node's adjacency).
    let mut stack: Vec<(usize, usize, usize)> = Vec::new();
    for root in 0..n {
        if disc[root] != usize::MAX {
            continue;
        }
        disc[root] = time;
        low[root] = time;
        time += 1;
        let mut root_children = 0usize;
        stack.push((root, usize::MAX, 0));
        while let Some(&mut (v, parent, ref mut next)) = stack.last_mut() {
            if *next < adj[v].len() {
                let w = adj[v][*next];
                *next += 1;
                if disc[w] == usize::MAX {
                    disc[w] = time;
                    low[w] = time;
                    time += 1;
                    if v == root {
                        root_children += 1;
                    }
                    stack.push((w, v, 0));
                } else if w != parent {
                    low[v] = low[v].min(disc[w]);
                }
            } else {
                stack.pop();
                if let Some(&mut (p, _, _)) = stack.last_mut() {
                    low[p] = low[p].min(low[v]);
                    if p != root && low[v] >= disc[p] {
                        is_cut[p] = true;
                    }
                }
            }
        }
        // The root is a cut vertex iff its DFS tree has several children.
        is_cut[root] = root_children >= 2;
    }
    (0..n).filter(|&v| is_cut[v]).collect()
}

/// Brute-force vertex connectivity by exhaustive cut enumeration.
///
/// Intended as a test oracle for small graphs (exponential in `n`).
///
/// # Panics
///
/// Panics if `n > 20` to guard against accidental blow-up.
pub fn vertex_connectivity_brute(g: &Graph) -> usize {
    let n = g.node_count();
    assert!(n <= 20, "brute-force connectivity is a small-graph test oracle");
    if n <= 1 {
        return 0;
    }
    if g.is_complete() {
        return n - 1;
    }
    for size in 0..n.saturating_sub(1) {
        let mut found = false;
        enumerate_subsets(n, size, &mut |subset| {
            if is_partitioned_without(g, subset) {
                found = true;
            }
        });
        if found {
            return size;
        }
    }
    n - 1
}

fn enumerate_subsets(n: usize, size: usize, visit: &mut impl FnMut(&[usize])) {
    fn rec(
        n: usize,
        size: usize,
        start: usize,
        cur: &mut Vec<usize>,
        visit: &mut impl FnMut(&[usize]),
    ) {
        if cur.len() == size {
            visit(cur);
            return;
        }
        let remaining = size - cur.len();
        for v in start..=n.saturating_sub(remaining) {
            cur.push(v);
            rec(n, size, v + 1, cur, visit);
            cur.pop();
        }
    }
    let mut cur = Vec::with_capacity(size);
    rec(n, size, 0, &mut cur, visit);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn petersen() -> Graph {
        // Outer 5-cycle, inner 5-star (pentagram), spokes.
        let edges = [
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 0),
            (5, 7),
            (7, 9),
            (9, 6),
            (6, 8),
            (8, 5),
            (0, 5),
            (1, 6),
            (2, 7),
            (3, 8),
            (4, 9),
        ];
        Graph::from_edges(10, edges).unwrap()
    }

    #[test]
    fn connectivity_of_classic_graphs() {
        assert_eq!(vertex_connectivity(&gen::path(5)), 1);
        assert_eq!(vertex_connectivity(&gen::cycle(5)), 2);
        assert_eq!(vertex_connectivity(&gen::star(6)), 1);
        assert_eq!(vertex_connectivity(&gen::complete(6)), 5);
        assert_eq!(vertex_connectivity(&petersen()), 3);
    }

    #[test]
    fn connectivity_degenerate_cases() {
        assert_eq!(vertex_connectivity(&Graph::empty(0)), 0);
        assert_eq!(vertex_connectivity(&Graph::empty(1)), 0);
        assert_eq!(vertex_connectivity(&Graph::empty(2)), 0);
        let disconnected = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert_eq!(vertex_connectivity(&disconnected), 0);
        // K2 is complete: κ = 1.
        assert_eq!(vertex_connectivity(&gen::complete(2)), 1);
    }

    #[test]
    fn local_connectivity_on_cycle() {
        let g = gen::cycle(6);
        assert_eq!(local_vertex_connectivity(&g, 0, 3), 2);
        // Adjacent pair: the direct edge plus the long way around.
        assert_eq!(local_vertex_connectivity(&g, 0, 1), 2);
    }

    #[test]
    fn local_connectivity_counts_disjoint_paths() {
        // Two node-disjoint paths 0-1-5 and 0-2-5 plus a shared-vertex pair
        // of paths through 3: κ(0,5) = 3 requires 3 disjoint interiors.
        let g =
            Graph::from_edges(6, [(0, 1), (1, 5), (0, 2), (2, 5), (0, 3), (3, 5), (0, 4), (4, 3)])
                .unwrap();
        assert_eq!(local_vertex_connectivity(&g, 0, 5), 3);
    }

    #[test]
    fn local_connectivity_bounded_is_exact_below_the_cap() {
        let g = petersen();
        for (s, t) in [(0usize, 7usize), (1, 9), (0, 2)] {
            if g.has_edge(s, t) {
                continue;
            }
            let exact = local_vertex_connectivity(&g, s, t);
            assert_eq!(local_vertex_connectivity_bounded(&g, s, t, exact + 1), exact);
            assert!(local_vertex_connectivity_bounded(&g, s, t, exact) >= exact);
            assert_eq!(local_vertex_connectivity_bounded(&g, s, t, 1), 1);
        }
        // Adjacent pair on a cycle: direct edge + the long way, bounded.
        let ring = gen::cycle(6);
        assert_eq!(local_vertex_connectivity_bounded(&ring, 0, 1, 10), 2);
        assert_eq!(local_vertex_connectivity_bounded(&ring, 0, 1, 1), 1);
    }

    #[test]
    fn pair_scanner_matches_per_pair_networks() {
        // One scanner, many pairs: results must equal the fresh-network
        // reference for every non-adjacent pair, in any query order.
        for g in [petersen(), gen::harary(4, 11).unwrap(), gen::star(7)] {
            let mut scanner = PairScanner::new(&g);
            let n = g.node_count();
            for s in 0..n {
                for t in 0..n {
                    if s == t || g.has_edge(s, t) {
                        continue;
                    }
                    assert_eq!(
                        scanner.bounded_pair_connectivity(s, t, usize::MAX),
                        local_vertex_connectivity(&g, s, t),
                        "pair ({s}, {t})"
                    );
                    // Bounded queries interleaved with exact ones must not
                    // poison later resets (all pairs here are connected).
                    assert_eq!(scanner.bounded_pair_connectivity(s, t, 1), 1);
                }
            }
        }
    }

    #[test]
    fn local_min_cut_separates() {
        let g = gen::star(6);
        let cut = local_min_vertex_cut(&g, 1, 2);
        assert_eq!(cut, vec![0]);
        assert!(is_vertex_cut(&g, &cut));
    }

    #[test]
    fn min_cut_of_star_is_hub() {
        let cut = min_vertex_cut(&gen::star(8)).unwrap();
        assert_eq!(cut, vec![0]);
    }

    #[test]
    fn min_cut_has_connectivity_size_and_separates() {
        for g in [gen::path(7), gen::cycle(7), petersen(), gen::harary(4, 11).unwrap()] {
            let k = vertex_connectivity(&g);
            let cut = min_vertex_cut(&g).unwrap();
            assert_eq!(cut.len(), k, "cut size must equal κ");
            assert!(is_vertex_cut(&g, &cut), "min cut must separate the graph");
        }
    }

    #[test]
    fn min_cut_none_for_complete_and_empty_for_disconnected() {
        assert_eq!(min_vertex_cut(&gen::complete(5)), None);
        assert_eq!(min_vertex_cut(&Graph::empty(1)), None);
        let disconnected = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert_eq!(min_vertex_cut(&disconnected), Some(Vec::new()));
    }

    #[test]
    fn byzantine_partitionability_matches_figure_1() {
        // Fig. 1a: a 2-connected graph is not 1-Byzantine partitionable.
        let ring = gen::cycle(8);
        assert!(!is_t_byzantine_partitionable(&ring, 1));
        assert!(is_t_byzantine_partitionable(&ring, 2));
        // Fig. 1b: the star is 1-Byzantine partitionable (hub placement).
        let star = gen::star(8);
        assert!(is_t_byzantine_partitionable(&star, 1));
    }

    /// Reference articulation test: removing `v` must increase the number
    /// of connected components among the remaining nodes.
    fn is_articulation_brute(g: &Graph, v: usize) -> bool {
        use crate::traversal::connected_components;
        let (_, before) = connected_components(g);
        let (_, after) = connected_components(&g.without_nodes(&[v]));
        // `without_nodes` keeps `v` as an isolated vertex; discount it.
        after - 1 > before
    }

    #[test]
    fn articulation_points_of_classic_graphs() {
        assert_eq!(articulation_points(&gen::path(5)), vec![1, 2, 3]);
        assert_eq!(articulation_points(&gen::cycle(6)), Vec::<usize>::new());
        assert_eq!(articulation_points(&gen::star(7)), vec![0]);
        assert_eq!(articulation_points(&gen::complete(5)), Vec::<usize>::new());
        // Two triangles sharing vertex 2: the shared vertex is the cut.
        let bowtie =
            Graph::from_edges(5, [(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)]).unwrap();
        assert_eq!(articulation_points(&bowtie), vec![2]);
    }

    #[test]
    fn articulation_points_cover_disconnected_graphs() {
        // Component {0,1,2} is a path (1 is a cut); {3,4} is an edge.
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (3, 4)]).unwrap();
        assert_eq!(articulation_points(&g), vec![1]);
        assert_eq!(articulation_points(&Graph::empty(4)), Vec::<usize>::new());
    }

    #[test]
    fn articulation_points_match_the_component_count_reference() {
        for g in [
            gen::path(8),
            gen::cycle(8),
            gen::star(8),
            petersen(),
            gen::k_pasted_tree(2, 10).unwrap(),
            Graph::from_edges(7, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3), (5, 6)])
                .unwrap(),
        ] {
            let points = articulation_points(&g);
            for v in 0..g.node_count() {
                assert_eq!(points.contains(&v), is_articulation_brute(&g, v), "node {v} of {g:?}");
            }
        }
    }

    #[test]
    fn brute_force_agrees_on_small_classics() {
        for g in [
            gen::path(6),
            gen::cycle(6),
            gen::star(6),
            gen::complete(5),
            Graph::from_edges(5, [(0, 1), (2, 3)]).unwrap(),
        ] {
            assert_eq!(vertex_connectivity(&g), vertex_connectivity_brute(&g), "graph: {g:?}");
        }
    }

    #[test]
    fn wheel_graph_connectivity_is_three() {
        // Hub 0 + 6-cycle: the standard wheel, κ = 3.
        let mut g = gen::cycle(6);
        let mut w = Graph::empty(7);
        for (u, v) in g.edges() {
            w.add_edge(u + 1, v + 1).unwrap();
        }
        for v in 1..7 {
            w.add_edge(0, v).unwrap();
        }
        g = w;
        assert_eq!(vertex_connectivity(&g), 3);
        let cut = min_vertex_cut(&g).unwrap();
        assert_eq!(cut.len(), 3);
        assert!(is_vertex_cut(&g, &cut));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
        (2..=max_n).prop_flat_map(|n| {
            let pairs: Vec<(usize, usize)> =
                (0..n).flat_map(|u| (u + 1..n).map(move |v| (u, v))).collect();
            proptest::collection::vec(proptest::bool::ANY, pairs.len()).prop_map(move |mask| {
                let edges = pairs.iter().zip(&mask).filter_map(|(&e, &keep)| keep.then_some(e));
                Graph::from_edges(n, edges).expect("generated edges are in range")
            })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn flow_connectivity_matches_brute_force(g in arb_graph(8)) {
            prop_assert_eq!(vertex_connectivity(&g), vertex_connectivity_brute(&g));
        }

        #[test]
        fn min_cut_is_a_minimum_separator(g in arb_graph(8)) {
            let k = vertex_connectivity(&g);
            match min_vertex_cut(&g) {
                None => prop_assert!(g.is_complete() || g.node_count() <= 1),
                Some(cut) => {
                    prop_assert_eq!(cut.len(), k);
                    if g.node_count() - cut.len() >= 2 {
                        prop_assert!(is_vertex_cut(&g, &cut) || k == 0 && !crate::traversal::is_connected(&g));
                    }
                }
            }
        }

        #[test]
        fn connectivity_is_monotone_under_edge_addition(g in arb_graph(7)) {
            let k = vertex_connectivity(&g);
            let n = g.node_count();
            let mut h = g.clone();
            'outer: for u in 0..n {
                for v in u + 1..n {
                    if !h.has_edge(u, v) {
                        h.add_edge(u, v).expect("in range");
                        break 'outer;
                    }
                }
            }
            prop_assert!(vertex_connectivity(&h) >= k);
        }

        #[test]
        fn partitionability_threshold_is_monotone(g in arb_graph(8), t in 0usize..8) {
            if is_t_byzantine_partitionable(&g, t) {
                prop_assert!(is_t_byzantine_partitionable(&g, t + 1));
            }
        }
    }
}
