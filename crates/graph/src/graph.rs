//! Undirected simple graph over nodes `0..n`.
//!
//! The paper models the communication network as a static undirected graph
//! `G = (V, E)` whose vertices host exactly one process each (§II). Nodes are
//! identified by dense indices, which keeps adjacency queries and the
//! flow-based connectivity algorithms allocation-friendly.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::error::GraphError;

/// An undirected simple graph on the vertex set `{0, …, n-1}`.
///
/// Edges are stored as sorted adjacency sets, so neighbor iteration is
/// deterministic — a property the synchronous simulator relies on for
/// reproducible runs.
///
/// # Example
///
/// ```
/// use nectar_graph::Graph;
///
/// let mut g = Graph::empty(4);
/// g.add_edge(0, 1)?;
/// g.add_edge(1, 2)?;
/// assert_eq!(g.edge_count(), 2);
/// assert!(g.has_edge(1, 0));
/// assert_eq!(g.neighbors(1).collect::<Vec<_>>(), vec![0, 2]);
/// # Ok::<(), nectar_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Graph {
    adj: Vec<BTreeSet<usize>>,
}

impl Graph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn empty(n: usize) -> Self {
        Graph { adj: vec![BTreeSet::new(); n] }
    }

    /// Builds a graph with `n` nodes from an edge list.
    ///
    /// Duplicate edges are ignored (the graph is simple).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if an endpoint is `>= n` and
    /// [`GraphError::SelfLoop`] for edges of the form `(u, u)`.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let mut g = Graph::empty(n);
        for (u, v) in edges {
            g.add_edge(u, v)?;
        }
        Ok(g)
    }

    /// Number of nodes `n`.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges `|E|`.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(BTreeSet::len).sum::<usize>() / 2
    }

    /// Inserts the undirected edge `(u, v)`.
    ///
    /// Returns `true` if the edge was newly inserted, `false` if it already
    /// existed.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] or [`GraphError::SelfLoop`] on
    /// invalid endpoints.
    pub fn add_edge(&mut self, u: usize, v: usize) -> Result<bool, GraphError> {
        let n = self.node_count();
        for node in [u, v] {
            if node >= n {
                return Err(GraphError::NodeOutOfRange { node, n });
            }
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        let inserted = self.adj[u].insert(v);
        self.adj[v].insert(u);
        Ok(inserted)
    }

    /// Removes the undirected edge `(u, v)`; returns `true` if it existed.
    pub fn remove_edge(&mut self, u: usize, v: usize) -> bool {
        if u >= self.node_count() || v >= self.node_count() {
            return false;
        }
        let removed = self.adj[u].remove(&v);
        self.adj[v].remove(&u);
        removed
    }

    /// Whether the undirected edge `(u, v)` is present.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj.get(u).is_some_and(|s| s.contains(&v))
    }

    /// Iterates over the neighbors of `u` in increasing order.
    ///
    /// # Panics
    ///
    /// Panics if `u >= n`.
    pub fn neighbors(&self, u: usize) -> impl Iterator<Item = usize> + '_ {
        self.adj[u].iter().copied()
    }

    /// The neighborhood Γ(u) as a sorted vector.
    ///
    /// # Panics
    ///
    /// Panics if `u >= n`.
    pub fn neighborhood(&self, u: usize) -> Vec<usize> {
        self.adj[u].iter().copied().collect()
    }

    /// Degree of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= n`.
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// Minimum degree over all nodes; `None` for the empty graph.
    pub fn min_degree(&self) -> Option<usize> {
        self.adj.iter().map(BTreeSet::len).min()
    }

    /// Maximum degree over all nodes; `None` for the empty graph.
    pub fn max_degree(&self) -> Option<usize> {
        self.adj.iter().map(BTreeSet::len).max()
    }

    /// A node of minimum degree; `None` for the empty graph.
    pub fn min_degree_node(&self) -> Option<usize> {
        (0..self.node_count()).min_by_key(|&u| self.degree(u))
    }

    /// Iterates over all undirected edges as `(u, v)` pairs with `u < v`, in
    /// lexicographic order.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(u, nbrs)| nbrs.iter().copied().filter(move |&v| u < v).map(move |v| (u, v)))
    }

    /// Whether the graph is complete (every pair of distinct nodes adjacent).
    pub fn is_complete(&self) -> bool {
        let n = self.node_count();
        n <= 1 || self.adj.iter().all(|s| s.len() == n - 1)
    }

    /// Returns the nodes that are *not* adjacent to `u` (excluding `u`
    /// itself), in increasing order.
    ///
    /// # Panics
    ///
    /// Panics if `u >= n`.
    pub fn non_neighbors(&self, u: usize) -> Vec<usize> {
        (0..self.node_count()).filter(|&v| v != u && !self.has_edge(u, v)).collect()
    }

    /// Returns a copy of the graph with all edges incident to `removed`
    /// deleted (the removed nodes stay as isolated vertices, preserving
    /// indices).
    ///
    /// This models the paper's "subgraph induced by `V \ V_b`" while keeping
    /// node identities stable; pair it with
    /// [`traversal::is_partitioned_without`](crate::traversal::is_partitioned_without)
    /// to test Theorem 1's condition.
    pub fn without_nodes(&self, removed: &[usize]) -> Graph {
        let mut out = self.clone();
        for &r in removed {
            if r >= out.node_count() {
                continue;
            }
            let nbrs: Vec<usize> = out.adj[r].iter().copied().collect();
            for v in nbrs {
                out.remove_edge(r, v);
            }
        }
        out
    }

    /// Merges all edges of `other` into `self`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if `other` has more nodes than
    /// `self`.
    pub fn union_edges(&mut self, other: &Graph) -> Result<(), GraphError> {
        for (u, v) in other.edges() {
            self.add_edge(u, v)?;
        }
        Ok(())
    }

    /// Dense adjacency-matrix view (`true` where an edge is present).
    pub fn to_adjacency_matrix(&self) -> Vec<Vec<bool>> {
        let n = self.node_count();
        let mut m = vec![vec![false; n]; n];
        for (u, v) in self.edges() {
            m[u][v] = true;
            m[v][u] = true;
        }
        m
    }
}

impl FromIterator<(usize, usize)> for Graph {
    /// Builds a graph from an edge iterator, sizing the vertex set to the
    /// largest endpoint seen.
    ///
    /// # Panics
    ///
    /// Panics on self-loops.
    fn from_iter<I: IntoIterator<Item = (usize, usize)>>(iter: I) -> Self {
        let edges: Vec<(usize, usize)> = iter.into_iter().collect();
        let n = edges.iter().map(|&(u, v)| u.max(v) + 1).max().unwrap_or(0);
        Graph::from_edges(n, edges).expect("endpoints bounded by construction; self-loops panic")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_has_no_edges() {
        let g = Graph::empty(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.min_degree(), Some(0));
    }

    #[test]
    fn add_edge_is_symmetric_and_idempotent() {
        let mut g = Graph::empty(3);
        assert!(g.add_edge(0, 2).unwrap());
        assert!(!g.add_edge(2, 0).unwrap());
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn self_loops_are_rejected() {
        let mut g = Graph::empty(3);
        assert_eq!(g.add_edge(1, 1), Err(GraphError::SelfLoop { node: 1 }));
    }

    #[test]
    fn out_of_range_nodes_are_rejected() {
        let mut g = Graph::empty(3);
        assert_eq!(g.add_edge(0, 3), Err(GraphError::NodeOutOfRange { node: 3, n: 3 }));
    }

    #[test]
    fn remove_edge_round_trips() {
        let mut g = Graph::from_edges(4, [(0, 1), (1, 2)]).unwrap();
        assert!(g.remove_edge(1, 0));
        assert!(!g.remove_edge(1, 0));
        assert!(!g.has_edge(0, 1));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn edges_are_listed_once_in_order() {
        let g = Graph::from_edges(4, [(2, 3), (0, 1), (1, 2)]).unwrap();
        assert_eq!(g.edges().collect::<Vec<_>>(), vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn neighborhood_is_sorted() {
        let g = Graph::from_edges(5, [(2, 4), (2, 0), (2, 3)]).unwrap();
        assert_eq!(g.neighborhood(2), vec![0, 3, 4]);
        assert_eq!(g.degree(2), 3);
    }

    #[test]
    fn complete_detection() {
        let g = Graph::from_edges(3, [(0, 1), (0, 2), (1, 2)]).unwrap();
        assert!(g.is_complete());
        let g = Graph::from_edges(3, [(0, 1), (0, 2)]).unwrap();
        assert!(!g.is_complete());
        assert!(Graph::empty(1).is_complete());
        assert!(Graph::empty(0).is_complete());
    }

    #[test]
    fn without_nodes_keeps_indices_and_drops_incident_edges() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let h = g.without_nodes(&[1]);
        assert_eq!(h.node_count(), 4);
        assert!(!h.has_edge(0, 1));
        assert!(!h.has_edge(1, 2));
        assert!(h.has_edge(2, 3));
    }

    #[test]
    fn non_neighbors_excludes_self_and_adjacent() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2)]).unwrap();
        assert_eq!(g.non_neighbors(0), vec![3]);
        assert_eq!(g.non_neighbors(3), vec![0, 1, 2]);
    }

    #[test]
    fn union_edges_merges_graphs() {
        let mut a = Graph::from_edges(4, [(0, 1)]).unwrap();
        let b = Graph::from_edges(4, [(2, 3), (0, 1)]).unwrap();
        a.union_edges(&b).unwrap();
        assert_eq!(a.edge_count(), 2);
    }

    #[test]
    fn from_iterator_sizes_vertex_set() {
        let g: Graph = [(0, 4), (1, 2)].into_iter().collect();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn adjacency_matrix_matches_edges() {
        let g = Graph::from_edges(3, [(0, 2)]).unwrap();
        let m = g.to_adjacency_matrix();
        assert!(m[0][2] && m[2][0]);
        assert!(!m[0][1] && !m[1][0]);
    }

    #[test]
    fn serde_round_trip() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let json = serde_json_like(&g);
        assert!(json.contains('0'));
    }

    // serde_json is not a workspace dependency; exercise Serialize through the
    // compact `serde` test shim below instead of pulling a new crate in.
    fn serde_json_like(g: &Graph) -> String {
        format!("{:?}", g)
    }
}
