//! Graph substrate for the NECTAR reproduction.
//!
//! This crate implements every graph-theoretic ingredient used by the paper
//! *Partition Detection in Byzantine Networks* (ICDCS 2024):
//!
//! * an undirected simple [`Graph`] over nodes `0..n`,
//! * reachability, connected components and diameter ([`traversal`]),
//! * Dinic max-flow ([`flow`]) and vertex connectivity / minimum vertex cuts
//!   ([`connectivity`]), which link *t-Byzantine partitionability* to the
//!   vertex connectivity of the communication graph (Theorem 1 / Corollary 1),
//! * all topology families of the evaluation section ([`gen`]): Harary
//!   k-regular k-connected graphs, Steger–Wormald random regular graphs,
//!   Logarithmic-Harary-style k-diamond and k-pasted-tree graphs, generalized
//!   and multipartite wheels, and the two-barycenter random geometric graphs
//!   of the drone scenario.
//!
//! # Example
//!
//! ```
//! use nectar_graph::{Graph, connectivity};
//!
//! // The star graph of Fig. 1b is 1-Byzantine partitionable: its vertex
//! // connectivity is 1 (the hub is a cut vertex).
//! let star = nectar_graph::gen::star(6);
//! assert_eq!(connectivity::vertex_connectivity(&star), 1);
//! assert!(connectivity::is_t_byzantine_partitionable(&star, 1));
//!
//! // A cycle is 2-connected, hence not 1-Byzantine partitionable (Fig. 1a).
//! let ring = nectar_graph::gen::cycle(6);
//! assert_eq!(connectivity::vertex_connectivity(&ring), 2);
//! assert!(!connectivity::is_t_byzantine_partitionable(&ring, 1));
//! ```

#![forbid(unsafe_code)]

pub mod connectivity;
pub mod error;
pub mod flow;
pub mod gen;
pub mod graph;
pub mod traversal;

pub use error::GraphError;
pub use graph::Graph;
