//! Graph substrate for the NECTAR reproduction.
//!
//! **Place in the runtime stack:** the foundation layer. Everything above —
//! the runtimes (`nectar-net`, whose topologies are [`Graph`]s), the
//! protocol (`nectar-protocol`, whose decision phase is a connectivity
//! question), the experiments and the CLI — depends on this crate, which
//! depends on nothing but the offline shims.
//!
//! This crate implements every graph-theoretic ingredient used by the paper
//! *Partition Detection in Byzantine Networks* (ICDCS 2024):
//!
//! * an undirected simple [`Graph`] over nodes `0..n`,
//! * reachability, connected components and diameter ([`traversal`]),
//! * Dinic max-flow ([`flow`]) and vertex connectivity / minimum vertex cuts
//!   ([`connectivity`]), which link *t-Byzantine partitionability* to the
//!   vertex connectivity of the communication graph (Theorem 1 / Corollary 1),
//! * the [`oracle`] answering the partitionability *decision* question with
//!   bounds, early exit and caching,
//! * all topology families of the evaluation section ([`gen`]): Harary
//!   k-regular k-connected graphs, Steger–Wormald random regular graphs,
//!   Logarithmic-Harary-style k-diamond and k-pasted-tree graphs, generalized
//!   and multipartite wheels, and the two-barycenter random geometric graphs
//!   of the drone scenario.
//!
//! # Oracle vs exact connectivity
//!
//! Corollary 1 states that `G` is t-Byzantine partitionable iff
//! `κ(G) ≤ t` — a *decision* question, which is strictly cheaper than
//! computing `κ` itself. The crate therefore offers two tiers:
//!
//! * [`connectivity::vertex_connectivity`] / [`connectivity::min_vertex_cut`]
//!   compute exact values and witnesses via full max-flow runs. Use them
//!   when the number matters: ground-truth checks, reporting `κ` to a
//!   human, or placing Byzantine nodes on an actual minimum cut.
//! * [`oracle::ConnectivityOracle::is_t_partitionable`] decides `κ ≤ t`
//!   through layered shortcuts — O(n + m) structure checks, min-degree
//!   bounds, max-flows capped at `t + 1` augmentations, and a fingerprint
//!   cache for repeated queries on unchanged graphs. Use it on every hot
//!   path that re-runs the decision phase round after round (NECTAR's
//!   `decide`, epoch monitoring, the dolev detector, experiment sweeps).
//!
//! The oracle is property-tested against the exact routines across the full
//! generator zoo; its answers are identical, only its cost profile differs.
//!
//! # Example
//!
//! ```
//! use nectar_graph::{Graph, connectivity};
//!
//! // The star graph of Fig. 1b is 1-Byzantine partitionable: its vertex
//! // connectivity is 1 (the hub is a cut vertex).
//! let star = nectar_graph::gen::star(6);
//! assert_eq!(connectivity::vertex_connectivity(&star), 1);
//! assert!(connectivity::is_t_byzantine_partitionable(&star, 1));
//!
//! // A cycle is 2-connected, hence not 1-Byzantine partitionable (Fig. 1a).
//! let ring = nectar_graph::gen::cycle(6);
//! assert_eq!(connectivity::vertex_connectivity(&ring), 2);
//! assert!(!connectivity::is_t_byzantine_partitionable(&ring, 1));
//! ```

#![forbid(unsafe_code)]

pub mod connectivity;
pub mod error;
pub mod flow;
pub mod gen;
pub mod graph;
pub mod oracle;
pub mod traversal;

pub use error::GraphError;
pub use graph::Graph;
pub use oracle::{ConnectivityOracle, Fingerprint, OracleStats};
