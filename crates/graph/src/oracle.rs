//! The connectivity oracle: bounded, cached `κ(G) ≤ t` decisions.
//!
//! The paper's Corollary 1 reduces partition detection to the *decision*
//! question "is the discovered graph t-Byzantine partitionable", i.e.
//! `κ(G) ≤ t` — the exact value of `κ` is never needed by Algorithm 1's
//! decision phase. [`ConnectivityOracle`] exploits that with a layered fast
//! path in front of the exact [`connectivity`](crate::connectivity)
//! routines (which remain the reference implementation this module is
//! property-tested against):
//!
//! 1. **O(n + m) short-circuits.** A disconnected graph has `κ = 0 ≤ t`;
//!    a complete graph has `κ = n − 1`; and since `κ ≤ δ` (the minimum
//!    degree), `δ ≤ t` already proves partitionability — the neighborhood
//!    of a minimum-degree node is the candidate cut.
//! 2. **Bounded max-flow.** When `δ > t`, Even's pair scan runs with
//!    [`local_vertex_connectivity_bounded`] capped at `t + 1`: deciding
//!    `κ(s, t) ≤ t` never needs more than `t + 1` vertex-disjoint paths, so
//!    each flow computation exits `κ(s, t) − t` augmentations early. Any
//!    pair at `≤ t` answers YES immediately; if every pair reaches the cap,
//!    `κ ≥ t + 1` and the answer is NO. Pairs are probed low-degree-first
//!    (see the measured note in `decide`), so YES answers surface before
//!    the scan exhausts.
//! 3. **Fingerprint cache.** Verdicts are memoized under a cheap
//!    order-independent edge fingerprint, so repeated queries on unchanged
//!    graphs — the common case when every node of a NECTAR run converges to
//!    the same discovered view (Lemma 2), or across monitoring epochs whose
//!    topology did not move — cost O(n + m) hashing instead of max-flows.
//!    Merging a new edge changes the fingerprint, which invalidates the
//!    stale verdict by construction.

use std::collections::HashMap;

use crate::connectivity::PairScanner;
use crate::graph::Graph;
use crate::traversal::is_connected;

/// An order-independent 64-bit digest of a graph's node count and edge set.
///
/// Per-edge hashes are combined with XOR, so the fingerprint can be updated
/// incrementally in O(1) as a node merges a newly discovered edge (XOR is
/// self-inverse: toggling the same edge twice restores the fingerprint).
/// Distinct edge sets collide with probability ~2⁻⁶⁴ per pair — negligible
/// against the cache sizes involved, and the exact reference implementation
/// stays available for callers that cannot tolerate it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint {
    n: usize,
    acc: u64,
}

/// SplitMix64 finalizer: a cheap full-avalanche mix for edge words.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl Fingerprint {
    /// Digests `g` in O(n + m).
    pub fn of(g: &Graph) -> Self {
        Self::of_edges(g.node_count(), g.edges())
    }

    /// Digests an explicit edge list over an `n`-node universe, in O(m)
    /// with no graph in hand — [`empty`](Self::empty) plus one
    /// [`toggle_edge`](Self::toggle_edge) per edge, equal to
    /// [`Fingerprint::of`] of the graph those edges span. The one home for
    /// the fold every edge-list consumer (view classes, incremental
    /// per-node digests, equivalence tests) used to spell out by hand.
    pub fn of_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut fp = Fingerprint { n, acc: 0 };
        for (u, v) in edges {
            fp.toggle_edge(u, v);
        }
        fp
    }

    /// The digest of an `n`-node edgeless graph — the starting point for
    /// callers that fold in edges via [`toggle_edge`](Self::toggle_edge)
    /// from an edge list, in O(m) with no graph in hand. Equals
    /// [`Fingerprint::of`] of the same edge set over the same `n`.
    pub fn empty(n: usize) -> Self {
        Fingerprint { n, acc: 0 }
    }

    /// Folds the undirected edge `(u, v)` into the digest. XOR-based, hence
    /// self-inverse: call once to account for a merged edge, again to
    /// account for its removal.
    pub fn toggle_edge(&mut self, u: usize, v: usize) {
        let (a, b) = (u.min(v) as u64, u.max(v) as u64);
        self.acc ^= mix64((a << 32) | b);
    }
}

/// What the oracle learned about `κ(G)` while deciding `κ ≤ t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KappaBound {
    /// `κ` is known exactly (degenerate, disconnected or complete graphs).
    Exact(usize),
    /// `κ` is at most this value, which is `≤ t` (a partitionability
    /// witness: a min-degree neighborhood or a bounded pair cut).
    AtMost(usize),
    /// `κ` is at least this value, which is `t + 1` (every candidate pair
    /// reached the flow cap).
    AtLeast(usize),
}

impl KappaBound {
    /// The bound value, for reporting fields that want a single number
    /// (e.g. `Decision::connectivity`). Exactness is encoded in the variant.
    pub fn report(self) -> usize {
        match self {
            KappaBound::Exact(k) | KappaBound::AtMost(k) | KappaBound::AtLeast(k) => k,
        }
    }
}

/// One oracle verdict: the decision bit plus the `κ` knowledge behind it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleAnswer {
    /// Whether `G` is t-Byzantine partitionable, i.e. `κ(G) ≤ t`.
    pub partitionable: bool,
    /// The `κ` bound that justified the verdict.
    pub kappa: KappaBound,
}

/// Counters describing how the oracle answered its queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Total queries answered.
    pub queries: u64,
    /// Queries answered from the fingerprint cache.
    pub cache_hits: u64,
    /// Queries short-circuited by a disconnectedness / degeneracy /
    /// completeness check (`κ` known exactly, no flow run).
    pub structure_shortcuts: u64,
    /// Queries short-circuited by the `κ ≤ δ ≤ t` min-degree bound.
    pub min_degree_shortcuts: u64,
    /// Bounded pair max-flows run.
    pub bounded_flows: u64,
    /// Bounded pair max-flows that exited early at the `t + 1` cap.
    pub early_exits: u64,
}

impl OracleStats {
    /// Component-wise difference against an earlier snapshot — the per-run
    /// share of a shared oracle's cumulative counters.
    pub fn since(&self, earlier: &OracleStats) -> OracleStats {
        OracleStats {
            queries: self.queries.saturating_sub(earlier.queries),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            structure_shortcuts: self
                .structure_shortcuts
                .saturating_sub(earlier.structure_shortcuts),
            min_degree_shortcuts: self
                .min_degree_shortcuts
                .saturating_sub(earlier.min_degree_shortcuts),
            bounded_flows: self.bounded_flows.saturating_sub(earlier.bounded_flows),
            early_exits: self.early_exits.saturating_sub(earlier.early_exits),
        }
    }
}

/// Answers `κ(G) ≤ t` decision queries with bounds, early exit and caching.
///
/// # Example
///
/// ```
/// use nectar_graph::oracle::ConnectivityOracle;
///
/// let ring = nectar_graph::gen::cycle(8);
/// let mut oracle = ConnectivityOracle::new();
/// assert!(!oracle.is_t_partitionable(&ring, 1)); // κ = 2 > 1
/// assert!(oracle.is_t_partitionable(&ring, 2)); // κ = 2 ≤ 2
/// // The second query on an unchanged graph is a cache hit.
/// assert!(!oracle.is_t_partitionable(&ring, 1));
/// assert_eq!(oracle.stats().cache_hits, 1);
/// ```
#[derive(Debug, Clone)]
pub struct ConnectivityOracle {
    cache: HashMap<(Fingerprint, usize), OracleAnswer>,
    max_entries: usize,
    stats: OracleStats,
}

impl Default for ConnectivityOracle {
    fn default() -> Self {
        Self::new()
    }
}

impl ConnectivityOracle {
    /// An oracle with the default cache bound (4096 verdicts).
    pub fn new() -> Self {
        Self::with_capacity(4096)
    }

    /// An oracle holding at most `max_entries` cached verdicts. When the
    /// bound is hit the cache is flushed wholesale — the epoch workload is
    /// "same few graphs, queried often", where eviction finesse buys
    /// nothing. `max_entries == 0` disables caching.
    pub fn with_capacity(max_entries: usize) -> Self {
        ConnectivityOracle { cache: HashMap::new(), max_entries, stats: OracleStats::default() }
    }

    /// Whether `g` is *t-Byzantine partitionable* (Definition 2 via
    /// Corollary 1): `κ(g) ≤ t`.
    pub fn is_t_partitionable(&mut self, g: &Graph, t: usize) -> bool {
        self.answer(g, t).partitionable
    }

    /// Whether `κ(g) ≥ k` — the other direction of the same decision
    /// problem (used e.g. for the 2t-Sensitivity ground truth `κ ≥ 2t`).
    pub fn kappa_at_least(&mut self, g: &Graph, k: usize) -> bool {
        k == 0 || !self.is_t_partitionable(g, k - 1)
    }

    /// Full answer for `κ(g) ≤ t`, including the `κ` bound established.
    pub fn answer(&mut self, g: &Graph, t: usize) -> OracleAnswer {
        self.answer_fingerprinted(Fingerprint::of(g), g, t)
    }

    /// Inspects the verdict cache for `fp` at threshold `t` without
    /// recording anything: not a query, no counter moves. This is the
    /// planning probe batch consumers use to decide *which* view graphs to
    /// materialize (possibly in parallel) before replaying the real,
    /// counted queries via [`cached_answer`](Self::cached_answer) /
    /// [`answer_fingerprinted`](Self::answer_fingerprinted). Note the
    /// answer may still be gone by resolution time (the bounded cache
    /// flushes wholesale when full), so a `Some` here is a hint, not a
    /// promise.
    pub fn peek(&self, fp: Fingerprint, t: usize) -> Option<OracleAnswer> {
        self.cache.get(&(fp, t)).copied()
    }

    /// Probes the verdict cache for `fp` at threshold `t` *without the
    /// graph*. A hit is a served query (same counters as
    /// [`answer_fingerprinted`](Self::answer_fingerprinted)); a miss
    /// records nothing — materialize the graph and call
    /// [`answer_fingerprinted`](Self::answer_fingerprinted) to resolve it.
    /// Lets batch consumers (the scenario runner's view classes) skip even
    /// *constructing* a view graph whose verdict is already cached.
    pub fn cached_answer(&mut self, fp: Fingerprint, t: usize) -> Option<OracleAnswer> {
        let hit = self.cache.get(&(fp, t)).copied();
        if hit.is_some() {
            self.stats.queries += 1;
            self.stats.cache_hits += 1;
        }
        hit
    }

    /// [`answer`](Self::answer) for callers that maintain `g`'s fingerprint
    /// incrementally (via [`Fingerprint::toggle_edge`]) and can therefore
    /// skip the O(n + m) digest. `fp` must digest exactly `g`; a stale
    /// fingerprint yields stale verdicts.
    pub fn answer_fingerprinted(&mut self, fp: Fingerprint, g: &Graph, t: usize) -> OracleAnswer {
        self.stats.queries += 1;
        let key = (fp, t);
        if let Some(&hit) = self.cache.get(&key) {
            self.stats.cache_hits += 1;
            return hit;
        }
        let answer = self.decide(g, t);
        if self.max_entries > 0 {
            if self.cache.len() >= self.max_entries {
                self.cache.clear();
            }
            self.cache.insert(key, answer);
        }
        answer
    }

    /// Cumulative counters since construction (or the last [`reset_stats`]).
    ///
    /// [`reset_stats`]: Self::reset_stats
    pub fn stats(&self) -> &OracleStats {
        &self.stats
    }

    /// Zeroes the counters, keeping cached verdicts.
    pub fn reset_stats(&mut self) {
        self.stats = OracleStats::default();
    }

    /// Number of cached verdicts.
    pub fn cached_verdicts(&self) -> usize {
        self.cache.len()
    }

    /// Drops every cached verdict (counters are kept).
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// The uncached decision procedure.
    fn decide(&mut self, g: &Graph, t: usize) -> OracleAnswer {
        let n = g.node_count();
        // Layer 1: structural short-circuits, each O(n + m) or better.
        if n <= 1 {
            self.stats.structure_shortcuts += 1;
            return OracleAnswer { partitionable: true, kappa: KappaBound::Exact(0) };
        }
        if g.is_complete() {
            self.stats.structure_shortcuts += 1;
            return OracleAnswer { partitionable: n - 1 <= t, kappa: KappaBound::Exact(n - 1) };
        }
        if !is_connected(g) {
            self.stats.structure_shortcuts += 1;
            return OracleAnswer { partitionable: true, kappa: KappaBound::Exact(0) };
        }
        let v = g.min_degree_node().expect("non-empty graph has a min-degree node");
        let delta = g.degree(v);
        if delta <= t {
            // κ ≤ δ ≤ t: Γ(v) of the min-degree node is the candidate cut
            // (for a complete graph δ = n − 1 = κ, handled above).
            self.stats.min_degree_shortcuts += 1;
            return OracleAnswer { partitionable: true, kappa: KappaBound::AtMost(delta) };
        }
        // Layer 2: Even's pair scan with the max-flow capped at t + 1 on a
        // single reusable split network. The scanned pairs cover a minimum
        // vertex cut (every cut either separates v from a non-neighbor or
        // splits Γ(v)), so:
        //   * any pair with κ(s, t) ≤ t proves κ(G) ≤ t (for non-adjacent
        //     s, t, κ(G) ≤ κ(s, t));
        //   * all pairs at ≥ t + 1, together with δ > t, prove κ(G) > t.
        //
        // Pair *order* never affects the partitionable bit, only how fast
        // a YES surfaces — and which witness reports it: the scan stops at
        // the first pair below the cap, so reordering can return a
        // different (equally valid, still ≤ t) `AtMost` bound than the
        // ascending-id scan did, which is visible downstream wherever the
        // bound is reported (e.g. `Decision::connectivity`, documented as
        // a bound rather than exact κ). The scan probes low-degree
        // non-neighbors first — a vertex of small degree
        // is the cheapest to disconnect (κ(v, w) ≤ min(deg v, deg w)) and
        // in the geometric/LHG families the low-degree fringe is where cuts
        // live, so they surface before the scan exhausts. Measured over
        // every (graph, t) pair with κ ≤ t < δ in a 66-graph zoo sweep
        // (drone, Watts–Strogatz, Barabási–Albert, pasted-tree, diamond;
        // 141 flow-answered YES queries): total bounded flows fell from 146
        // to 141 and the worst single query from 2 flows to 1 — a small
        // effect, because the min-degree endpoint `v` already sits on the
        // cheap side of the cut in most of the zoo, and a free one: the
        // O(n log n) sort is noise next to one max-flow. κ > t queries,
        // which must exhaust the scan regardless of order, are unchanged.
        let cap = t + 1;
        let mut scanner = PairScanner::new(g);
        let mut scan = |s: usize, w: usize, stats: &mut OracleStats| -> Option<OracleAnswer> {
            stats.bounded_flows += 1;
            let c = scanner.bounded_pair_connectivity(s, w, cap);
            if c >= cap {
                stats.early_exits += 1;
                None
            } else {
                Some(OracleAnswer { partitionable: true, kappa: KappaBound::AtMost(c) })
            }
        };
        let mut non_nbrs = g.non_neighbors(v);
        non_nbrs.sort_by_key(|&w| (g.degree(w), w));
        for w in non_nbrs {
            if let Some(answer) = scan(v, w, &mut self.stats) {
                return answer;
            }
        }
        let mut nbrs = g.neighborhood(v);
        nbrs.sort_by_key(|&x| (g.degree(x), x));
        for (i, &x) in nbrs.iter().enumerate() {
            for &y in &nbrs[i + 1..] {
                if !g.has_edge(x, y) {
                    if let Some(answer) = scan(x, y, &mut self.stats) {
                        return answer;
                    }
                }
            }
        }
        OracleAnswer { partitionable: false, kappa: KappaBound::AtLeast(cap) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::vertex_connectivity;
    use crate::gen;

    fn exact(g: &Graph, t: usize) -> bool {
        vertex_connectivity(g) <= t
    }

    #[test]
    fn agrees_with_exact_on_classics() {
        let mut oracle = ConnectivityOracle::new();
        for g in [
            gen::path(6),
            gen::cycle(7),
            gen::star(6),
            gen::complete(5),
            gen::harary(4, 11).unwrap(),
            Graph::from_edges(5, [(0, 1), (2, 3)]).unwrap(),
            Graph::empty(0),
            Graph::empty(1),
        ] {
            let kappa = vertex_connectivity(&g);
            for t in 0..kappa + 3 {
                assert_eq!(oracle.is_t_partitionable(&g, t), exact(&g, t), "graph {g:?}, t = {t}");
            }
        }
    }

    #[test]
    fn bounds_bracket_the_true_connectivity() {
        let mut oracle = ConnectivityOracle::new();
        for g in [gen::cycle(8), gen::star(7), gen::harary(4, 10).unwrap(), gen::complete(4)] {
            let kappa = vertex_connectivity(&g);
            for t in 0..kappa + 2 {
                match oracle.answer(&g, t).kappa {
                    KappaBound::Exact(k) => assert_eq!(k, kappa),
                    KappaBound::AtMost(k) => {
                        assert!(kappa <= k && k <= t, "κ = {kappa}, bound {k}, t = {t}")
                    }
                    KappaBound::AtLeast(k) => {
                        assert_eq!(k, t + 1);
                        assert!(kappa >= k, "κ = {kappa}, bound {k}");
                    }
                }
            }
        }
    }

    #[test]
    fn unchanged_graphs_hit_the_cache() {
        let g = gen::harary(4, 12).unwrap();
        let mut oracle = ConnectivityOracle::new();
        assert!(!oracle.is_t_partitionable(&g, 2));
        let flows_after_first = oracle.stats().bounded_flows;
        assert!(flows_after_first > 0, "first query must run flows");
        for _ in 0..5 {
            assert!(!oracle.is_t_partitionable(&g, 2));
        }
        assert_eq!(oracle.stats().cache_hits, 5);
        assert_eq!(oracle.stats().bounded_flows, flows_after_first, "cache hits run no flows");
        // A different t is a different decision problem: miss, then hit.
        assert!(oracle.is_t_partitionable(&g, 4));
        assert!(oracle.is_t_partitionable(&g, 4));
        assert_eq!(oracle.stats().cache_hits, 6);
    }

    #[test]
    fn merging_an_edge_flushes_the_stale_verdict() {
        // A near-ring with one chord missing: κ = 1 until the chord closes
        // the cycle, then κ = 2. The cached t = 1 verdict must flip.
        let mut g = gen::path(6);
        let mut oracle = ConnectivityOracle::new();
        assert!(oracle.is_t_partitionable(&g, 1), "path: κ = 1 ≤ 1");
        g.add_edge(5, 0).unwrap();
        assert!(!oracle.is_t_partitionable(&g, 1), "ring: κ = 2 > 1, stale verdict would say yes");
        // And removal flips it back — a third distinct fingerprint.
        g.remove_edge(2, 3);
        assert!(oracle.is_t_partitionable(&g, 1));
        assert_eq!(oracle.stats().cache_hits, 0, "every mutation must miss the cache");
    }

    #[test]
    fn incremental_fingerprint_tracks_rebuilds() {
        let mut g = gen::cycle(5);
        let mut fp = Fingerprint::of(&g);
        g.add_edge(0, 2).unwrap();
        fp.toggle_edge(0, 2);
        assert_eq!(fp, Fingerprint::of(&g));
        g.remove_edge(0, 2);
        fp.toggle_edge(2, 0); // orientation must not matter
        assert_eq!(fp, Fingerprint::of(&g));
        // Same edges, different node count: distinct fingerprints.
        let padded = Graph::from_edges(6, g.edges().collect::<Vec<_>>()).unwrap();
        assert_ne!(Fingerprint::of(&padded), fp);
    }

    #[test]
    fn answer_fingerprinted_reuses_an_incremental_digest() {
        let mut g = gen::cycle(6);
        let mut fp = Fingerprint::of(&g);
        let mut oracle = ConnectivityOracle::new();
        assert!(!oracle.answer_fingerprinted(fp, &g, 1).partitionable);
        g.add_edge(0, 3).unwrap();
        fp.toggle_edge(0, 3);
        assert!(!oracle.answer_fingerprinted(fp, &g, 1).partitionable);
        assert_eq!(oracle.stats().cache_hits, 0);
        assert!(!oracle.answer_fingerprinted(fp, &g, 1).partitionable);
        assert_eq!(oracle.stats().cache_hits, 1);
    }

    #[test]
    fn early_exits_are_counted_when_kappa_exceeds_t() {
        let g = gen::harary(6, 14).unwrap(); // κ = 6
        let mut oracle = ConnectivityOracle::new();
        assert!(!oracle.is_t_partitionable(&g, 2));
        let s = oracle.stats();
        assert!(s.early_exits > 0, "κ > t must trip the flow cap");
        assert_eq!(s.early_exits, s.bounded_flows, "no pair sits below the cap");
    }

    #[test]
    fn shortcut_layers_are_attributed() {
        let mut oracle = ConnectivityOracle::new();
        let disconnected = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        oracle.is_t_partitionable(&disconnected, 0);
        assert_eq!(oracle.stats().structure_shortcuts, 1);
        oracle.is_t_partitionable(&gen::complete(4), 1);
        assert_eq!(oracle.stats().structure_shortcuts, 2);
        oracle.is_t_partitionable(&gen::star(6), 1); // δ = 1 ≤ t
        assert_eq!(oracle.stats().min_degree_shortcuts, 1);
        assert_eq!(oracle.stats().bounded_flows, 0, "no query needed a flow");
    }

    #[test]
    fn capacity_zero_disables_caching_and_bound_flushes() {
        let g = gen::cycle(5);
        let mut uncached = ConnectivityOracle::with_capacity(0);
        uncached.is_t_partitionable(&g, 1);
        uncached.is_t_partitionable(&g, 1);
        assert_eq!(uncached.stats().cache_hits, 0);
        assert_eq!(uncached.cached_verdicts(), 0);

        let mut tiny = ConnectivityOracle::with_capacity(2);
        for t in 0..5 {
            tiny.is_t_partitionable(&g, t);
        }
        assert!(tiny.cached_verdicts() <= 2);
    }

    #[test]
    fn peek_inspects_without_counting() {
        let g = gen::cycle(6);
        let fp = Fingerprint::of(&g);
        let mut oracle = ConnectivityOracle::new();
        assert_eq!(oracle.peek(fp, 1), None, "empty cache has nothing to peek");
        let answer = oracle.answer(&g, 1);
        let before = *oracle.stats();
        assert_eq!(oracle.peek(fp, 1), Some(answer));
        assert_eq!(oracle.peek(fp, 3), None, "different t is a different decision problem");
        assert_eq!(*oracle.stats(), before, "peek must not move any counter");
    }

    #[test]
    fn low_degree_pairs_are_probed_first() {
        // A κ = 2 drone placement whose min-degree vertex has both dense
        // (κ(v, w) > t) and fringe (κ(v, w) ≤ t) non-neighbors: the
        // low-degree-first order must answer YES with a single bounded flow.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(0);
        let g = gen::drone_scenario(24, 3.0, 2.2, &mut rng).unwrap().graph;
        let kappa = vertex_connectivity(&g);
        let delta = g.min_degree().unwrap();
        assert!(kappa < delta, "the scan only runs below the min degree");
        let mut oracle = ConnectivityOracle::with_capacity(0);
        assert!(oracle.is_t_partitionable(&g, kappa));
        assert_eq!(oracle.stats().bounded_flows, 1, "cut must surface on the first probe");
    }

    #[test]
    fn stats_since_reports_the_delta() {
        let g = gen::cycle(6);
        let mut oracle = ConnectivityOracle::new();
        oracle.is_t_partitionable(&g, 1);
        let snapshot = *oracle.stats();
        oracle.is_t_partitionable(&g, 1);
        oracle.is_t_partitionable(&g, 2);
        let delta = oracle.stats().since(&snapshot);
        assert_eq!(delta.queries, 2);
        assert_eq!(delta.cache_hits, 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::connectivity::vertex_connectivity;
    use crate::gen;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// One shared oracle across all cases also exercises cache keying: any
    /// fingerprint mix-up between the zoo's graphs would surface as a
    /// mismatch against the exact reference.
    fn check_against_exact(oracle: &mut ConnectivityOracle, g: &Graph) {
        let kappa = vertex_connectivity(g);
        for t in 0..kappa + 2 {
            let answer = oracle.answer(g, t);
            assert_eq!(
                answer.partitionable,
                kappa <= t,
                "oracle disagrees with exact κ = {kappa} at t = {t} on {g:?}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn matches_exact_on_harary(k in 2usize..6, extra in 0usize..12) {
            let n = k + 2 + extra;
            let mut oracle = ConnectivityOracle::new();
            check_against_exact(&mut oracle, &gen::harary(k, n).unwrap());
        }

        #[test]
        fn matches_exact_on_wheels(k in 3usize..6, extra in 0usize..10) {
            let n = (2 * k + 2 + extra).max(k + 3);
            let mut oracle = ConnectivityOracle::new();
            check_against_exact(&mut oracle, &gen::generalized_wheel(k, n).unwrap());
            let km = k.max(4); // multipartite wheels need k >= 4
            check_against_exact(&mut oracle, &gen::multipartite_wheel(km, n.max(km + 2), 2).unwrap());
        }

        #[test]
        fn matches_exact_on_lhg(k in 2usize..5, extra in 0usize..10) {
            let n = 2 * k + 4 + extra;
            let mut oracle = ConnectivityOracle::new();
            check_against_exact(&mut oracle, &gen::k_pasted_tree(k, n).unwrap());
            check_against_exact(&mut oracle, &gen::k_diamond(k, n).unwrap());
        }

        #[test]
        fn matches_exact_on_geometric(seed in 0u64..1000, d in 0usize..7) {
            let mut rng = StdRng::seed_from_u64(seed);
            let placement = gen::drone_scenario(12, d as f64, 2.0, &mut rng).unwrap();
            let mut oracle = ConnectivityOracle::new();
            check_against_exact(&mut oracle, &placement.graph);
        }

        #[test]
        fn matches_exact_on_random_regular(seed in 0u64..1000, k in 3usize..6) {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = if k % 2 == 1 { 12 } else { 13 };
            let g = gen::random_regular(k, n, &mut rng).unwrap();
            let mut oracle = ConnectivityOracle::new();
            check_against_exact(&mut oracle, &g);
        }

        #[test]
        fn matches_exact_on_dense_random(g in arb_graph(9)) {
            let mut oracle = ConnectivityOracle::new();
            check_against_exact(&mut oracle, &g);
        }

        #[test]
        fn shared_cache_never_corrupts_verdicts(graphs in proptest::collection::vec(arb_graph(7), 3)) {
            let mut oracle = ConnectivityOracle::new();
            // Interleave queries on several graphs twice over: second pass
            // must agree with exact despite cache hits from the first.
            for _ in 0..2 {
                for g in &graphs {
                    check_against_exact(&mut oracle, g);
                }
            }
        }
    }

    fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
        (2..=max_n).prop_flat_map(|n| {
            let pairs: Vec<(usize, usize)> =
                (0..n).flat_map(|u| (u + 1..n).map(move |v| (u, v))).collect();
            proptest::collection::vec(proptest::bool::ANY, pairs.len()).prop_map(move |mask| {
                let edges = pairs.iter().zip(&mask).filter_map(|(&e, &keep)| keep.then_some(e));
                Graph::from_edges(n, edges).expect("generated edges are in range")
            })
        })
    }
}
