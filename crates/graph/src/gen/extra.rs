//! Additional topology families beyond the paper's evaluation set: grids,
//! tori, Watts–Strogatz small-world and Barabási–Albert scale-free graphs.
//!
//! These are the stock topologies of the MANET/WSN literature the paper's
//! related work draws on (§VI-A); the library ships them so downstream
//! users can evaluate partition detection on their own deployment shapes.

use rand::{Rng, RngExt};

use crate::error::GraphError;
use crate::graph::Graph;

/// `rows × cols` grid graph (4-neighborhood).
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut g = Graph::empty(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                g.add_edge(v, v + 1).expect("indices in range");
            }
            if r + 1 < rows {
                g.add_edge(v, v + cols).expect("indices in range");
            }
        }
    }
    g
}

/// `rows × cols` torus: the grid with wrap-around edges, 4-regular and
/// 4-connected for `rows, cols ≥ 3`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] unless `rows, cols ≥ 3`.
pub fn torus(rows: usize, cols: usize) -> Result<Graph, GraphError> {
    if rows < 3 || cols < 3 {
        return Err(GraphError::InvalidParameters {
            reason: format!("torus requires rows, cols >= 3 (got {rows}x{cols})"),
        });
    }
    let mut g = Graph::empty(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            let right = r * cols + (c + 1) % cols;
            let down = ((r + 1) % rows) * cols + c;
            g.add_edge(v, right).expect("indices in range");
            g.add_edge(v, down).expect("indices in range");
        }
    }
    Ok(g)
}

/// Watts–Strogatz small-world graph: a ring lattice where each node links
/// to its `k/2` clockwise neighbors, with every edge rewired to a random
/// endpoint with probability `p`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] unless `k` is even,
/// `2 ≤ k < n`, and `p ∈ [0, 1]`.
pub fn watts_strogatz<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    p: f64,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    if k % 2 != 0 || k < 2 || k >= n {
        return Err(GraphError::InvalidParameters {
            reason: format!("Watts-Strogatz requires even 2 <= k < n (got k={k}, n={n})"),
        });
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidParameters {
            reason: format!("rewiring probability must be in [0, 1] (got {p})"),
        });
    }
    let mut g = Graph::empty(n);
    for v in 0..n {
        for j in 1..=k / 2 {
            let mut target = (v + j) % n;
            if rng.random::<f64>() < p {
                // Rewire to a uniform non-self, non-duplicate endpoint;
                // keep the lattice edge if no legal target exists.
                for _ in 0..2 * n {
                    let candidate = rng.random_range(0..n);
                    if candidate != v && !g.has_edge(v, candidate) {
                        target = candidate;
                        break;
                    }
                }
            }
            if target != v && !g.has_edge(v, target) {
                g.add_edge(v, target).expect("indices in range");
            }
        }
    }
    Ok(g)
}

/// Barabási–Albert preferential-attachment graph: starts from a clique of
/// `m` nodes; every subsequent node attaches to `m` distinct existing nodes
/// sampled proportionally to their degree.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] unless `1 ≤ m < n`.
pub fn barabasi_albert<R: Rng + ?Sized>(
    n: usize,
    m: usize,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    if m == 0 || m >= n {
        return Err(GraphError::InvalidParameters {
            reason: format!("Barabasi-Albert requires 1 <= m < n (got m={m}, n={n})"),
        });
    }
    let mut g = Graph::empty(n);
    for u in 0..m {
        for v in u + 1..m {
            g.add_edge(u, v).expect("indices in range");
        }
    }
    // Repeated-endpoints urn: sampling uniformly from this list is
    // sampling proportionally to degree.
    let mut urn: Vec<usize> = (0..m).flat_map(|v| std::iter::repeat_n(v, (m - 1).max(1))).collect();
    for v in m..n {
        let mut targets = std::collections::BTreeSet::new();
        let mut guard = 0;
        while targets.len() < m && guard < 100 * n {
            let pick = if urn.is_empty() { v - 1 } else { urn[rng.random_range(0..urn.len())] };
            targets.insert(pick);
            guard += 1;
        }
        for &t in &targets {
            g.add_edge(v, t).expect("indices in range");
            urn.push(t);
            urn.push(v);
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::vertex_connectivity;
    use crate::traversal::{diameter, is_connected};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4);
        assert!(is_connected(&g));
        // Corner degree 2, interior degree 4.
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(5), 4);
        assert_eq!(vertex_connectivity(&g), 2);
    }

    #[test]
    fn degenerate_grids() {
        assert_eq!(grid(1, 5).edge_count(), 4); // a path
        assert_eq!(grid(0, 5).node_count(), 0);
    }

    #[test]
    fn torus_is_four_regular_four_connected() {
        let g = torus(4, 5).unwrap();
        assert!((0..20).all(|v| g.degree(v) == 4));
        assert_eq!(vertex_connectivity(&g), 4);
        assert!(torus(2, 5).is_err());
    }

    #[test]
    fn watts_strogatz_zero_p_is_the_ring_lattice() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = watts_strogatz(12, 4, 0.0, &mut rng).unwrap();
        assert!((0..12).all(|v| g.degree(v) == 4));
        assert_eq!(vertex_connectivity(&g), 4);
    }

    #[test]
    fn watts_strogatz_rewiring_shrinks_the_diameter() {
        let mut rng = StdRng::seed_from_u64(2);
        let lattice = watts_strogatz(40, 4, 0.0, &mut rng).unwrap();
        let small_world = watts_strogatz(40, 4, 0.3, &mut rng).unwrap();
        if is_connected(&small_world) {
            assert!(diameter(&small_world).unwrap() < diameter(&lattice).unwrap());
        }
    }

    #[test]
    fn watts_strogatz_rejects_bad_parameters() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(watts_strogatz(10, 3, 0.1, &mut rng).is_err());
        assert!(watts_strogatz(10, 4, 1.5, &mut rng).is_err());
        assert!(watts_strogatz(4, 4, 0.1, &mut rng).is_err());
    }

    #[test]
    fn barabasi_albert_shape() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = barabasi_albert(30, 2, &mut rng).unwrap();
        assert_eq!(g.node_count(), 30);
        assert!(is_connected(&g));
        // Every latecomer attaches with m = 2 edges.
        assert!((2..30).all(|v| g.degree(v) >= 2));
        assert!(barabasi_albert(5, 0, &mut rng).is_err());
        assert!(barabasi_albert(5, 5, &mut rng).is_err());
    }

    #[test]
    fn barabasi_albert_has_hubs() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = barabasi_albert(60, 2, &mut rng).unwrap();
        let max_deg = g.max_degree().unwrap();
        assert!(max_deg >= 8, "preferential attachment should grow hubs (max degree {max_deg})");
    }

    #[test]
    fn generators_are_seeded_deterministic() {
        let a = watts_strogatz(20, 4, 0.2, &mut StdRng::seed_from_u64(9)).unwrap();
        let b = watts_strogatz(20, 4, 0.2, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(a, b);
        let a = barabasi_albert(20, 2, &mut StdRng::seed_from_u64(9)).unwrap();
        let b = barabasi_albert(20, 2, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(a, b);
    }
}
