//! Generalized and multipartite wheel graphs.
//!
//! These are the Byzantine worst-case topologies of Bonomi, Farina and
//! Tixeuil (§V-B): the central hub set can be occupied by a Byzantine
//! clique, while correct nodes are left with only the outer cycle's few
//! paths. Both graphs have vertex connectivity `k`.

use crate::error::GraphError;
use crate::graph::Graph;

/// Builds the generalized wheel `GW(k, n)`: a clique of `k − 2` central hub
/// nodes (indices `0..k-2`) plus an outer cycle of `n − (k − 2)` nodes, each
/// adjacent to both ring neighbors and to every hub.
///
/// The minimum vertex cut is the hub set plus the two ring neighbors of any
/// ring node, so `κ = k`. The standard wheel graph is recovered with
/// `k = 3` (one hub).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] unless `k ≥ 3` and the ring has
/// at least 4 nodes (`n ≥ k + 2`).
pub fn generalized_wheel(k: usize, n: usize) -> Result<Graph, GraphError> {
    if k < 3 || n < k + 2 {
        return Err(GraphError::InvalidParameters {
            reason: format!("generalized wheel requires k >= 3 and n >= k + 2 (got k={k}, n={n})"),
        });
    }
    let hubs = k - 2;
    let mut g = Graph::empty(n);
    for u in 0..hubs {
        for v in u + 1..hubs {
            g.add_edge(u, v).expect("indices in range");
        }
    }
    wire_ring_and_spokes(&mut g, hubs, n, |_, _| true);
    Ok(g)
}

/// Builds the multipartite wheel `MW(k, n, parts)`: as the generalized wheel
/// but with the `k − 2` central nodes arranged in `parts` groups forming a
/// complete multipartite graph (no edges inside a group).
///
/// Ring nodes keep degree `k`, so `κ = k`; the sparser center leaves fewer
/// correct-node paths when the hubs are Byzantine — the paper's "few
/// path(s)" worst case.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] unless `k ≥ 4`,
/// `2 ≤ parts ≤ k − 2`, and `n ≥ k + 2`.
pub fn multipartite_wheel(k: usize, n: usize, parts: usize) -> Result<Graph, GraphError> {
    if k < 4 || n < k + 2 || parts < 2 || parts > k - 2 {
        return Err(GraphError::InvalidParameters {
            reason: format!(
                "multipartite wheel requires k >= 4, 2 <= parts <= k - 2, n >= k + 2 (got k={k}, n={n}, parts={parts})"
            ),
        });
    }
    let hubs = k - 2;
    let mut g = Graph::empty(n);
    // Hubs u and v are joined iff they belong to different parts (round-robin
    // part assignment u % parts).
    for u in 0..hubs {
        for v in u + 1..hubs {
            if u % parts != v % parts {
                g.add_edge(u, v).expect("indices in range");
            }
        }
    }
    wire_ring_and_spokes(&mut g, hubs, n, |_, _| true);
    Ok(g)
}

/// Adds the outer ring over nodes `hubs..n` and connects each ring node to
/// every hub for which `spoke(ring_node, hub)` holds.
fn wire_ring_and_spokes(
    g: &mut Graph,
    hubs: usize,
    n: usize,
    spoke: impl Fn(usize, usize) -> bool,
) {
    let ring: Vec<usize> = (hubs..n).collect();
    for (i, &u) in ring.iter().enumerate() {
        let v = ring[(i + 1) % ring.len()];
        g.add_edge(u, v).expect("indices in range");
        for h in 0..hubs {
            if spoke(u, h) {
                g.add_edge(u, h).expect("indices in range");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::{is_vertex_cut, vertex_connectivity};
    use crate::traversal::{diameter, is_connected};

    #[test]
    fn rejects_invalid_parameters() {
        assert!(generalized_wheel(2, 10).is_err());
        assert!(generalized_wheel(5, 6).is_err());
        assert!(multipartite_wheel(3, 10, 2).is_err());
        assert!(multipartite_wheel(6, 10, 1).is_err());
        assert!(multipartite_wheel(6, 10, 5).is_err());
    }

    #[test]
    fn standard_wheel_is_three_connected() {
        let g = generalized_wheel(3, 8).unwrap();
        assert_eq!(vertex_connectivity(&g), 3);
        assert_eq!(g.degree(0), 7); // single hub sees the whole ring
    }

    #[test]
    fn generalized_wheel_connectivity_is_k() {
        for (k, n) in [(4, 10), (5, 12), (6, 15)] {
            let g = generalized_wheel(k, n).unwrap();
            assert_eq!(vertex_connectivity(&g), k, "GW({k},{n})");
        }
    }

    #[test]
    fn multipartite_wheel_connectivity_is_k() {
        for (k, n, p) in [(4, 10, 2), (5, 12, 3), (6, 15, 2)] {
            let g = multipartite_wheel(k, n, p).unwrap();
            assert_eq!(vertex_connectivity(&g), k, "MW({k},{n},{p})");
        }
    }

    #[test]
    fn hub_set_plus_ring_neighbors_is_a_cut() {
        let k = 5;
        let g = generalized_wheel(k, 12).unwrap();
        // Hubs 0..3 plus ring neighbors of ring node 4 (ring = 3..11).
        let hubs: Vec<usize> = (0..k - 2).collect();
        let mut cut = hubs;
        cut.push(12 - 1); // predecessor of ring node 3 in the cycle
        cut.push(4); // successor of ring node 3
        assert!(is_vertex_cut(&g, &cut));
    }

    #[test]
    fn wheels_have_tiny_diameter() {
        let g = generalized_wheel(6, 30).unwrap();
        assert!(is_connected(&g));
        assert!(diameter(&g).unwrap() <= 3);
        let g = multipartite_wheel(6, 30, 2).unwrap();
        assert!(diameter(&g).unwrap() <= 3);
    }

    #[test]
    fn multipartite_center_has_no_intra_part_edges() {
        let g = multipartite_wheel(6, 20, 2).unwrap();
        // Hubs 0..4, parts by parity: 0-2, 1-3 are intra-part pairs.
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(1, 3));
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(2, 3));
    }
}
