//! Random k-regular graphs via the Steger–Wormald pairing algorithm
//! (§V-B cites Steger and Wormald, *Generating Random Regular Graphs
//! Quickly*, 1999).

use rand::{Rng, RngExt};

use crate::error::GraphError;
use crate::graph::Graph;
use crate::traversal::is_connected;

/// Samples a random k-regular simple graph on `n` nodes with the
/// Steger–Wormald incremental pairing heuristic.
///
/// Stubs (`k` per node) are paired one at a time, always choosing a legal
/// pair (no self-loop, no duplicate edge) uniformly among the remaining
/// candidates; if the process wedges, it restarts.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if `k ≥ n` or `k·n` is odd.
pub fn random_regular<R: Rng + ?Sized>(
    k: usize,
    n: usize,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    if k >= n {
        return Err(GraphError::InvalidParameters {
            reason: format!("random regular graph requires k < n (got k={k}, n={n})"),
        });
    }
    if (k * n) % 2 != 0 {
        return Err(GraphError::InvalidParameters {
            reason: format!("k*n must be even (got k={k}, n={n})"),
        });
    }
    if k == 0 {
        return Ok(Graph::empty(n));
    }
    loop {
        if let Some(g) = try_pairing(k, n, rng) {
            return Ok(g);
        }
    }
}

/// Samples random k-regular graphs until one is connected (for `k ≥ 3` a
/// random regular graph is connected with high probability, so few attempts
/// are needed).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] on bad `(k, n)` (see
/// [`random_regular`]) or when `max_attempts` samples were all disconnected.
pub fn random_regular_connected<R: Rng + ?Sized>(
    k: usize,
    n: usize,
    rng: &mut R,
    max_attempts: usize,
) -> Result<Graph, GraphError> {
    for _ in 0..max_attempts {
        let g = random_regular(k, n, rng)?;
        if is_connected(&g) {
            return Ok(g);
        }
    }
    Err(GraphError::InvalidParameters {
        reason: format!(
            "no connected {k}-regular graph on {n} nodes found in {max_attempts} attempts"
        ),
    })
}

fn try_pairing<R: Rng + ?Sized>(k: usize, n: usize, rng: &mut R) -> Option<Graph> {
    let mut g = Graph::empty(n);
    // Remaining free stubs per node.
    let mut free: Vec<usize> = vec![k; n];
    let mut open: Vec<usize> = (0..n).collect();
    let mut remaining = k * n;
    while remaining > 0 {
        // Retry a bounded number of random picks before declaring a wedge.
        let mut placed = false;
        for _ in 0..50 {
            let a = open[rng.random_range(0..open.len())];
            let b = open[rng.random_range(0..open.len())];
            if a == b || g.has_edge(a, b) {
                continue;
            }
            g.add_edge(a, b).expect("indices in range");
            for node in [a, b] {
                free[node] -= 1;
                if free[node] == 0 {
                    let pos = open.iter().position(|&x| x == node).expect("open node present");
                    open.swap_remove(pos);
                }
            }
            remaining -= 2;
            placed = true;
            break;
        }
        if !placed {
            // Wedged: an exhaustive scan may still find a legal pair.
            let legal = find_legal_pair(&g, &open);
            match legal {
                Some((a, b)) => {
                    g.add_edge(a, b).expect("indices in range");
                    for node in [a, b] {
                        free[node] -= 1;
                        if free[node] == 0 {
                            let pos =
                                open.iter().position(|&x| x == node).expect("open node present");
                            open.swap_remove(pos);
                        }
                    }
                    remaining -= 2;
                }
                None => return None,
            }
        }
    }
    Some(g)
}

fn find_legal_pair(g: &Graph, open: &[usize]) -> Option<(usize, usize)> {
    for (i, &a) in open.iter().enumerate() {
        for &b in &open[i + 1..] {
            if !g.has_edge(a, b) {
                return Some((a, b));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::vertex_connectivity;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_invalid_parameters() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(random_regular(5, 5, &mut rng).is_err());
        assert!(random_regular(3, 5, &mut rng).is_err()); // odd k*n
    }

    #[test]
    fn zero_regular_graph_is_empty() {
        let mut rng = StdRng::seed_from_u64(0);
        let g = random_regular(0, 6, &mut rng).unwrap();
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn samples_are_k_regular_and_simple() {
        let mut rng = StdRng::seed_from_u64(3);
        for (k, n) in [(2, 10), (3, 10), (4, 15), (6, 20)] {
            let g = random_regular(k, n, &mut rng).unwrap();
            assert!((0..n).all(|v| g.degree(v) == k), "({k},{n})");
            assert_eq!(g.edge_count(), k * n / 2);
        }
    }

    #[test]
    fn connected_variant_is_connected_with_expected_connectivity() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = random_regular_connected(4, 20, &mut rng, 100).unwrap();
        assert!(is_connected(&g));
        // Random 4-regular graphs are 4-connected w.h.p.; at minimum 1.
        assert!(vertex_connectivity(&g) >= 1);
    }

    #[test]
    fn seeded_sampling_is_deterministic() {
        let g1 = random_regular(4, 16, &mut StdRng::seed_from_u64(11)).unwrap();
        let g2 = random_regular(4, 16, &mut StdRng::seed_from_u64(11)).unwrap();
        assert_eq!(g1, g2);
    }
}
