//! Topology generators for every graph family in the paper's evaluation
//! (§V-B) plus the classic graphs used throughout the text and tests.
//!
//! * [`harary`] / [`random_regular`]: k-regular k-connected graphs,
//! * [`k_diamond`] / [`k_pasted_tree`]: Logarithmic-Harary-style graphs
//!   (k-connected with low diameter; see DESIGN.md §4.1 for the documented
//!   approximation),
//! * [`generalized_wheel`] / [`multipartite_wheel`]: the Byzantine worst-case
//!   families of Bonomi, Farina and Tixeuil,
//! * [`drone_scenario`]: the two-barycenter random geometric graphs of
//!   Fig. 2,
//! * [`complete`], [`path`], [`cycle`], [`star`], [`erdos_renyi`]: classics.

mod classic;
mod extra;
mod geometric;
mod harary;
mod lhg;
mod random_regular;
mod wheel;

pub use classic::{complete, cycle, disjoint_cliques, erdos_renyi, path, star};
pub use extra::{barabasi_albert, grid, torus, watts_strogatz};
pub use geometric::{drone_scenario, two_cluster_geometric, DronePlacement};
pub use harary::harary;
pub use lhg::{k_diamond, k_pasted_tree};
pub use random_regular::{random_regular, random_regular_connected};
pub use wheel::{generalized_wheel, multipartite_wheel};
