//! Classic graph families: complete, path, cycle, star, Erdős–Rényi.
//!
//! These are the small motivating topologies of the paper's Fig. 1 (the
//! ring that is safe against one Byzantine node, the star whose hub is a
//! cut vertex) plus the standard families tests sweep over.

use rand::{Rng, RngExt};

use crate::graph::Graph;

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::empty(n);
    for u in 0..n {
        for v in u + 1..n {
            g.add_edge(u, v).expect("indices in range");
        }
    }
    g
}

/// Path (chain) graph `P_n`: `0 – 1 – … – n-1`.
///
/// The chain is the paper's worst case for the number of propagation rounds
/// (§IV-B), which motivates running NECTAR for `n − 1` rounds.
pub fn path(n: usize) -> Graph {
    let mut g = Graph::empty(n);
    for u in 1..n {
        g.add_edge(u - 1, u).expect("indices in range");
    }
    g
}

/// Cycle graph `C_n` (requires `n ≥ 3` to be a proper cycle; smaller values
/// degrade to a path).
pub fn cycle(n: usize) -> Graph {
    let mut g = path(n);
    if n >= 3 {
        g.add_edge(n - 1, 0).expect("indices in range");
    }
    g
}

/// Star graph: node 0 is the hub, nodes `1..n` are leaves (Fig. 1b's
/// 1-Byzantine-partitionable example).
pub fn star(n: usize) -> Graph {
    let mut g = Graph::empty(n);
    for v in 1..n {
        g.add_edge(0, v).expect("indices in range");
    }
    g
}

/// Disjoint union of `count` cliques of `size` nodes each (`count · size`
/// nodes total): a maximally partitioned fleet of tight clusters.
///
/// Every cluster floods internally and quiesces after ~`size` rounds while
/// the system-wide round horizon stays `n − 1`, which makes this the
/// canonical workload for the event-driven runtime's `O(active events)`
/// scheduling — and, protocol-wise, a ground-truth `confirmed` partition
/// for every correct node. Used by the 10 000-node scale tests and the
/// `runtime_scaling` bench.
pub fn disjoint_cliques(count: usize, size: usize) -> Graph {
    let mut g = Graph::empty(count * size);
    for c in 0..count {
        let base = c * size;
        for u in 0..size {
            for v in u + 1..size {
                g.add_edge(base + u, base + v).expect("indices in range");
            }
        }
    }
    g
}

/// Erdős–Rényi random graph `G(n, p)`: every pair becomes an edge
/// independently with probability `p`.
///
/// # Panics
///
/// Panics if `p` is not within `[0, 1]`.
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "edge probability must be in [0, 1]");
    let mut g = Graph::empty(n);
    for u in 0..n {
        for v in u + 1..n {
            if rng.random::<f64>() < p {
                g.add_edge(u, v).expect("indices in range");
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::{diameter, is_connected};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn complete_graph_shape() {
        let g = complete(6);
        assert_eq!(g.edge_count(), 15);
        assert_eq!(g.min_degree(), Some(5));
        assert!(g.is_complete());
    }

    #[test]
    fn path_and_cycle_shape() {
        assert_eq!(path(5).edge_count(), 4);
        assert_eq!(cycle(5).edge_count(), 5);
        assert_eq!(diameter(&path(5)), Some(4));
        assert_eq!(diameter(&cycle(5)), Some(2));
        // Degenerate sizes.
        assert_eq!(cycle(2).edge_count(), 1);
        assert_eq!(cycle(0).edge_count(), 0);
    }

    #[test]
    fn star_shape() {
        let g = star(7);
        assert_eq!(g.degree(0), 6);
        assert!((1..7).all(|v| g.degree(v) == 1));
    }

    #[test]
    fn disjoint_cliques_shape() {
        let g = disjoint_cliques(3, 4);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 3 * 6);
        assert!((0..12).all(|v| g.degree(v) == 3));
        assert!(!is_connected(&g));
        // No edge crosses a cluster boundary.
        assert!(!g.has_edge(3, 4));
        assert!(g.has_edge(4, 7));
        // Degenerate sizes are fine.
        assert_eq!(disjoint_cliques(0, 5).node_count(), 0);
        assert_eq!(disjoint_cliques(2, 1).edge_count(), 0);
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = StdRng::seed_from_u64(42);
        assert_eq!(erdos_renyi(8, 0.0, &mut rng).edge_count(), 0);
        assert!(erdos_renyi(8, 1.0, &mut rng).is_complete());
    }

    #[test]
    fn erdos_renyi_is_seeded_deterministic() {
        let g1 = erdos_renyi(20, 0.3, &mut StdRng::seed_from_u64(7));
        let g2 = erdos_renyi(20, 0.3, &mut StdRng::seed_from_u64(7));
        assert_eq!(g1, g2);
    }

    #[test]
    fn dense_er_graphs_are_usually_connected() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = erdos_renyi(30, 0.5, &mut rng);
        assert!(is_connected(&g));
    }
}
