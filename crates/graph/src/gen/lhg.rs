//! Logarithmic-Harary-style graphs: `k-pasted-tree` and `k-diamond`.
//!
//! The paper evaluates NECTAR on the k-pasted-tree and k-diamond Logarithmic
//! Harary Graphs of Baldoni et al. (2009), whose defining properties are
//! (a) vertex connectivity at least `k` and (b) logarithmic diameter, making
//! them well suited to flooding protocols. The exact constructions are not
//! reproduced in the paper; we implement documented cluster-based
//! approximations (DESIGN.md §4.1) that preserve exactly those two
//! properties, which are the ones the evaluation exercises (shorter
//! signature chains and earlier quiescence than k-regular graphs of the same
//! size and connectivity).
//!
//! * **k-pasted-tree**: a balanced binary tree of `⌈n/k⌉` clusters of `k`
//!   nodes, with a complete bipartite graph between each parent/child
//!   cluster pair. Any two nodes are joined by `k` "rails" through distinct
//!   cluster positions, so `κ ≥ k`; leaf-cluster nodes have degree exactly
//!   `k`, so `κ = k` when the tree has at least two clusters.
//! * **k-diamond**: two such trees sharing their leaf clusters (the classic
//!   diamond silhouette: one tree growing down from a top root, a mirrored
//!   tree growing up from a bottom root), which doubles path diversity at
//!   the leaves while keeping the diameter logarithmic.

use crate::error::GraphError;
use crate::graph::Graph;

/// Cluster layout: splits `0..n` into `⌈n/k⌉` chunks of size `k` (the last
/// one possibly smaller).
fn clusters(k: usize, n: usize) -> Vec<Vec<usize>> {
    (0..n).step_by(k).map(|start| (start..(start + k).min(n)).collect()).collect()
}

fn join_clusters(g: &mut Graph, a: &[usize], b: &[usize]) {
    for &u in a {
        for &v in b {
            g.add_edge(u, v).expect("indices in range");
        }
    }
}

/// Builds the k-pasted-tree graph on `n` nodes (see module docs).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] unless `1 ≤ k` and `n ≥ 2k`
/// (at least two clusters; for smaller `n` use a complete graph instead).
pub fn k_pasted_tree(k: usize, n: usize) -> Result<Graph, GraphError> {
    if k == 0 || n < 2 * k {
        return Err(GraphError::InvalidParameters {
            reason: format!("k-pasted-tree requires k >= 1 and n >= 2k (got k={k}, n={n})"),
        });
    }
    let cl = clusters(k, n);
    let mut g = Graph::empty(n);
    // Heap-indexed balanced binary tree over clusters.
    for c in 1..cl.len() {
        let parent = (c - 1) / 2;
        join_clusters(&mut g, &cl[parent], &cl[c]);
    }
    Ok(g)
}

/// Builds the k-diamond graph on `n` nodes (see module docs): a top tree and
/// a mirrored bottom tree pasted together at their leaf clusters.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] unless `1 ≤ k` and `n ≥ 3k`
/// (a top root, a bottom root, and at least one shared leaf cluster).
pub fn k_diamond(k: usize, n: usize) -> Result<Graph, GraphError> {
    if k == 0 || n < 3 * k {
        return Err(GraphError::InvalidParameters {
            reason: format!("k-diamond requires k >= 1 and n >= 3k (got k={k}, n={n})"),
        });
    }
    let cl = clusters(k, n);
    let m = cl.len();
    // Split clusters: the first `top` clusters form the top tree, the last
    // `bottom` clusters form the bottom tree, and the middle band is shared
    // as the leaves of both. We mirror by letting the bottom tree be a heap
    // over the reversed cluster list.
    let mut g = Graph::empty(n);
    let half = m.div_ceil(2);
    // Top tree over clusters [0, half) in heap order.
    for c in 1..half {
        let parent = (c - 1) / 2;
        join_clusters(&mut g, &cl[c], &cl[parent]);
    }
    // Bottom tree over clusters [half-1, m) reversed, so cluster m-1 is the
    // bottom root; its leaves overlap the top tree's leaves at the boundary.
    let bottom: Vec<usize> = (half.saturating_sub(1)..m).rev().collect();
    for idx in 1..bottom.len() {
        let parent = (idx - 1) / 2;
        join_clusters(&mut g, &cl[bottom[idx]], &cl[bottom[parent]]);
    }
    // Paste the deepest top-tree leaves onto the bottom tree (and vice
    // versa): connect every top leaf cluster to a bottom leaf cluster so
    // every node keeps degree >= k and the two trees share their frontier.
    let top_leaves: Vec<usize> = (0..half).filter(|&c| 2 * c + 1 >= half).collect();
    let bottom_leaf_clusters: Vec<usize> = bottom
        .iter()
        .enumerate()
        .filter(|&(idx, _)| 2 * idx + 1 >= bottom.len())
        .map(|(_, &c)| c)
        .collect();
    for (i, &tc) in top_leaves.iter().enumerate() {
        let bc = bottom_leaf_clusters[i % bottom_leaf_clusters.len()];
        if tc != bc {
            join_clusters(&mut g, &cl[tc], &cl[bc]);
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::vertex_connectivity;
    use crate::traversal::{diameter, is_connected};

    #[test]
    fn pasted_tree_rejects_small_n() {
        assert!(k_pasted_tree(4, 7).is_err());
        assert!(k_pasted_tree(0, 10).is_err());
    }

    #[test]
    fn diamond_rejects_small_n() {
        assert!(k_diamond(4, 11).is_err());
        assert!(k_diamond(0, 10).is_err());
    }

    #[test]
    fn pasted_tree_is_k_connected() {
        for (k, n) in [(2, 12), (3, 18), (4, 40), (2, 9)] {
            let g = k_pasted_tree(k, n).unwrap();
            assert!(is_connected(&g), "({k},{n})");
            assert!(vertex_connectivity(&g) >= k, "({k},{n})");
        }
    }

    #[test]
    fn diamond_is_k_connected() {
        for (k, n) in [(2, 12), (3, 18), (4, 40)] {
            let g = k_diamond(k, n).unwrap();
            assert!(is_connected(&g), "({k},{n})");
            assert!(vertex_connectivity(&g) >= k, "({k},{n})");
        }
    }

    #[test]
    fn lhg_diameter_is_smaller_than_harary_at_scale() {
        // The property the evaluation relies on: for the same (n, k), LHGs
        // have a much smaller diameter than the k-regular Harary graph.
        let (k, n) = (4, 64);
        let lhg = k_pasted_tree(k, n).unwrap();
        let reg = crate::gen::harary(k, n).unwrap();
        let d_lhg = diameter(&lhg).unwrap();
        let d_reg = diameter(&reg).unwrap();
        assert!(d_lhg < d_reg, "LHG diameter {d_lhg} should beat Harary {d_reg}");
    }

    #[test]
    fn every_node_present_with_positive_degree() {
        for g in [k_pasted_tree(3, 30).unwrap(), k_diamond(3, 30).unwrap()] {
            assert!(g.min_degree().unwrap() >= 3);
        }
    }
}
