//! Harary graphs `H_{k,n}`: k-connected graphs with the minimum possible
//! number of edges `⌈kn/2⌉`.
//!
//! The evaluation's "k-regular k-connected graphs" (§V-B, citing Steger and
//! Wormald for the randomized variant) are exactly this family when built
//! deterministically: `H_{k,n}` is k-regular for even `k`, and for odd `k`
//! with even `n`; the figure harness uses it so that runs are reproducible.

use crate::error::GraphError;
use crate::graph::Graph;

/// Builds the Harary graph `H_{k,n}`.
///
/// Construction (Harary 1962):
/// * `k = 2m`: a circulant graph where `i` is adjacent to `i ± 1, …, i ± m`
///   (mod `n`);
/// * `k = 2m + 1`, `n` even: `H_{2m,n}` plus the diagonals `i ↔ i + n/2`;
/// * `k = 2m + 1`, `n` odd: `H_{2m,n}` plus the near-diagonals
///   `i ↔ i + (n−1)/2` for `0 ≤ i ≤ (n−1)/2` (one node ends up with degree
///   `k + 1`).
///
/// The resulting graph has vertex connectivity exactly `k`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] unless `1 ≤ k < n`.
pub fn harary(k: usize, n: usize) -> Result<Graph, GraphError> {
    if k == 0 || k >= n {
        return Err(GraphError::InvalidParameters {
            reason: format!("Harary graph requires 1 <= k < n (got k={k}, n={n})"),
        });
    }
    if k == 1 {
        // The minimal 1-connected graph: a path (the circulant construction
        // below is only defined for k >= 2).
        return Ok(crate::gen::path(n));
    }
    let mut g = Graph::empty(n);
    let m = k / 2;
    for i in 0..n {
        for j in 1..=m {
            g.add_edge(i, (i + j) % n).expect("indices in range");
        }
    }
    if k % 2 == 1 {
        if n % 2 == 0 {
            for i in 0..n / 2 {
                g.add_edge(i, i + n / 2).expect("indices in range");
            }
        } else {
            let half = (n - 1) / 2;
            for i in 0..=half {
                g.add_edge(i, (i + half) % n).expect("indices in range");
            }
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::vertex_connectivity;
    use crate::traversal::is_connected;

    #[test]
    fn rejects_invalid_parameters() {
        assert!(harary(0, 5).is_err());
        assert!(harary(5, 5).is_err());
        assert!(harary(6, 5).is_err());
    }

    #[test]
    fn even_k_is_a_circulant_and_regular() {
        let g = harary(4, 9).unwrap();
        assert!((0..9).all(|v| g.degree(v) == 4));
        assert_eq!(g.edge_count(), 4 * 9 / 2);
    }

    #[test]
    fn odd_k_even_n_is_regular() {
        let g = harary(5, 10).unwrap();
        assert!((0..10).all(|v| g.degree(v) == 5));
        assert_eq!(g.edge_count(), 25);
    }

    #[test]
    fn odd_k_odd_n_has_one_heavier_node() {
        let g = harary(3, 9).unwrap();
        let mut degs: Vec<usize> = (0..9).map(|v| g.degree(v)).collect();
        degs.sort_unstable();
        assert_eq!(degs[0], 3);
        assert_eq!(degs[8], 4);
        assert_eq!(degs.iter().filter(|&&d| d == 4).count(), 1);
    }

    #[test]
    fn connectivity_is_exactly_k() {
        for (k, n) in [(1, 5), (2, 8), (3, 8), (3, 9), (4, 10), (5, 12), (6, 13)] {
            let g = harary(k, n).unwrap();
            assert!(is_connected(&g));
            assert_eq!(vertex_connectivity(&g), k, "H_{{{k},{n}}}");
        }
    }

    #[test]
    fn figure3_parameters_build() {
        // The Fig. 3 sweep: k in {2, 10, 18, 26, 34}, n up to 100.
        for k in [2usize, 10, 18, 26, 34] {
            let g = harary(k, 100).unwrap();
            assert_eq!(g.min_degree(), Some(k));
            assert!(is_connected(&g));
        }
    }
}
