//! Two-barycenter random geometric graphs: the paper's drone scenario
//! (Fig. 2).
//!
//! Two scatters of points are generated around two barycenters separated by
//! a distance `d`; an edge joins two drones whenever their Euclidean
//! distance is at most the communication scope `radius`. With `radius = 2.4`
//! and `d = 0` the graph is complete; `d = 6` yields a partitioned network
//! (§V-B).

use rand::{Rng, RngExt};

use crate::error::GraphError;
use crate::graph::Graph;

/// A drone placement: node coordinates plus the induced communication graph.
#[derive(Debug, Clone, PartialEq)]
pub struct DronePlacement {
    /// Position of each drone in the plane.
    pub positions: Vec<(f64, f64)>,
    /// Induced communication graph: `(i, j) ∈ E` iff
    /// `dist(positions[i], positions[j]) ≤ radius`.
    pub graph: Graph,
    /// Communication scope used to build the graph.
    pub radius: f64,
}

impl DronePlacement {
    /// Nodes belonging to the first scatter (around the origin barycenter).
    pub fn first_cluster(&self) -> std::ops::Range<usize> {
        0..self.positions.len() / 2
    }

    /// Nodes belonging to the second scatter.
    pub fn second_cluster(&self) -> std::ops::Range<usize> {
        self.positions.len() / 2..self.positions.len()
    }

    /// Recomputes the communication graph for a new scope without moving the
    /// drones.
    pub fn with_radius(&self, radius: f64) -> DronePlacement {
        DronePlacement {
            positions: self.positions.clone(),
            graph: graph_from_positions(&self.positions, radius),
            radius,
        }
    }

    /// Translates the second scatter by `dx` along the x axis (the two
    /// barycenters drifting apart) and recomputes the communication graph.
    pub fn with_second_cluster_shift(&self, dx: f64) -> DronePlacement {
        let mut positions = self.positions.clone();
        for i in self.second_cluster() {
            positions[i].0 += dx;
        }
        DronePlacement {
            graph: graph_from_positions(&positions, self.radius),
            positions,
            radius: self.radius,
        }
    }
}

/// Samples the paper's drone scenario: `⌈n/2⌉` drones uniform in the unit
/// disk around `(0, 0)` and `⌊n/2⌋` around `(d, 0)`, joined when within
/// `radius` of each other.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if `radius` or `d` is negative
/// or not finite.
pub fn drone_scenario<R: Rng + ?Sized>(
    n: usize,
    d: f64,
    radius: f64,
    rng: &mut R,
) -> Result<DronePlacement, GraphError> {
    two_cluster_geometric(n, d, radius, 1.0, rng)
}

/// Generalized two-cluster geometric sampler with a configurable scatter
/// (cluster) radius.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if any of `d`, `radius`,
/// `cluster_radius` is negative or not finite.
pub fn two_cluster_geometric<R: Rng + ?Sized>(
    n: usize,
    d: f64,
    radius: f64,
    cluster_radius: f64,
    rng: &mut R,
) -> Result<DronePlacement, GraphError> {
    for (name, v) in [("d", d), ("radius", radius), ("cluster_radius", cluster_radius)] {
        if !v.is_finite() || v < 0.0 {
            return Err(GraphError::InvalidParameters {
                reason: format!("{name} must be finite and non-negative (got {v})"),
            });
        }
    }
    let first = n / 2;
    let mut positions = Vec::with_capacity(n);
    for i in 0..n {
        let center_x = if i < first { 0.0 } else { d };
        positions.push(sample_in_disk(center_x, 0.0, cluster_radius, rng));
    }
    let graph = graph_from_positions(&positions, radius);
    Ok(DronePlacement { positions, graph, radius })
}

fn sample_in_disk<R: Rng + ?Sized>(cx: f64, cy: f64, disk_radius: f64, rng: &mut R) -> (f64, f64) {
    let r = disk_radius * rng.random::<f64>().sqrt();
    let theta = 2.0 * std::f64::consts::PI * rng.random::<f64>();
    (cx + r * theta.cos(), cy + r * theta.sin())
}

fn graph_from_positions(positions: &[(f64, f64)], radius: f64) -> Graph {
    let n = positions.len();
    let mut g = Graph::empty(n);
    for i in 0..n {
        for j in i + 1..n {
            let (xi, yi) = positions[i];
            let (xj, yj) = positions[j];
            let dist2 = (xi - xj).powi(2) + (yi - yj).powi(2);
            if dist2 <= radius * radius {
                g.add_edge(i, j).expect("indices in range");
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::{is_connected, is_partitioned};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(drone_scenario(10, -1.0, 1.0, &mut rng).is_err());
        assert!(drone_scenario(10, 0.0, f64::NAN, &mut rng).is_err());
        assert!(two_cluster_geometric(10, 0.0, 1.0, -2.0, &mut rng).is_err());
    }

    #[test]
    fn coincident_clusters_with_wide_scope_are_complete() {
        // d = 0, radius = 2.4: any two points in the unit disk are within 2.
        let mut rng = StdRng::seed_from_u64(1);
        let p = drone_scenario(20, 0.0, 2.4, &mut rng).unwrap();
        assert!(p.graph.is_complete());
    }

    #[test]
    fn distant_clusters_are_partitioned() {
        // d = 6, radius = 2.4: inter-cluster distance is at least 4.
        let mut rng = StdRng::seed_from_u64(2);
        let p = drone_scenario(20, 6.0, 2.4, &mut rng).unwrap();
        assert!(is_partitioned(&p.graph));
        // No edge crosses the two scatters.
        for i in p.first_cluster() {
            for j in p.second_cluster() {
                assert!(!p.graph.has_edge(i, j));
            }
        }
    }

    #[test]
    fn moderate_distance_usually_connects_clusters() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut connected = 0;
        for _ in 0..20 {
            let p = drone_scenario(20, 1.0, 2.4, &mut rng).unwrap();
            if is_connected(&p.graph) {
                connected += 1;
            }
        }
        assert!(connected >= 15, "d=1, radius=2.4 should usually be connected, got {connected}/20");
    }

    #[test]
    fn with_radius_recomputes_edges_in_place() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = drone_scenario(16, 0.0, 2.4, &mut rng).unwrap();
        let narrow = p.with_radius(0.05);
        assert_eq!(narrow.positions, p.positions);
        assert!(narrow.graph.edge_count() <= p.graph.edge_count());
    }

    #[test]
    fn sampling_is_seeded_deterministic() {
        let a = drone_scenario(12, 2.0, 1.2, &mut StdRng::seed_from_u64(7)).unwrap();
        let b = drone_scenario(12, 2.0, 1.2, &mut StdRng::seed_from_u64(7)).unwrap();
        assert_eq!(a.positions, b.positions);
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    fn points_stay_within_their_disk() {
        let mut rng = StdRng::seed_from_u64(8);
        let p = two_cluster_geometric(30, 5.0, 1.0, 1.0, &mut rng).unwrap();
        for i in p.first_cluster() {
            let (x, y) = p.positions[i];
            assert!(x * x + y * y <= 1.0 + 1e-9);
        }
        for j in p.second_cluster() {
            let (x, y) = p.positions[j];
            assert!((x - 5.0).powi(2) + y * y <= 1.0 + 1e-9);
        }
    }
}
