//! Error type for graph construction and generator parameter validation.
//!
//! The paper's model (§II) assumes simple undirected graphs, so self-loops
//! and out-of-range endpoints are construction errors rather than silently
//! normalized inputs; generator preconditions (e.g. Harary's `k < n`)
//! surface through the same type.

use std::error::Error;
use std::fmt;

/// Errors produced when building graphs or invoking topology generators with
/// invalid parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node index was `>= n`.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// The number of nodes in the graph.
        n: usize,
    },
    /// A self-loop `(u, u)` was requested; the graphs in the paper are simple.
    SelfLoop {
        /// The node for which a self-loop was requested.
        node: usize,
    },
    /// A generator was invoked with parameters for which the topology family
    /// is not defined (e.g. a Harary graph with `k >= n`).
    InvalidParameters {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for graph with {n} nodes")
            }
            GraphError::SelfLoop { node } => {
                write!(f, "self-loop on node {node} not allowed in a simple graph")
            }
            GraphError::InvalidParameters { reason } => {
                write!(f, "invalid generator parameters: {reason}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::NodeOutOfRange { node: 7, n: 5 };
        assert!(e.to_string().contains("node 7"));
        assert!(e.to_string().contains("5 nodes"));
        let e = GraphError::SelfLoop { node: 3 };
        assert!(e.to_string().contains("self-loop"));
        let e = GraphError::InvalidParameters { reason: "k >= n".into() };
        assert!(e.to_string().contains("k >= n"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
