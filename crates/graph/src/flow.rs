//! Dinic's maximum-flow algorithm on unit-capacity-style networks.
//!
//! Vertex connectivity reduces to max-flow through the classic vertex-split
//! construction (Menger's theorem, which the paper's Lemma 1 invokes): every
//! vertex `v` becomes an arc `v_in → v_out` of capacity 1, and every
//! undirected edge `(u, v)` becomes the arcs `u_out → v_in` and `v_out → u_in`
//! of effectively infinite capacity. The maximum `s_out → t_in` flow then
//! equals the maximum number of internally vertex-disjoint `s–t` paths.

/// Capacity value treated as infinite. Large enough that no simple graph on
/// `usize::MAX >> 2` nodes can saturate it.
pub const INF: u64 = u64::MAX / 4;

#[derive(Debug, Clone)]
struct Arc {
    to: usize,
    cap: u64,
    /// Construction-time capacity, restored by [`FlowNetwork::reset`].
    init: u64,
    /// Index of the reverse arc in `to`'s adjacency list.
    rev: usize,
}

/// A flow network with dense node indices, built incrementally.
///
/// # Example
///
/// ```
/// use nectar_graph::flow::FlowNetwork;
///
/// let mut net = FlowNetwork::new(4);
/// net.add_arc(0, 1, 2);
/// net.add_arc(0, 2, 2);
/// net.add_arc(1, 3, 1);
/// net.add_arc(2, 3, 3);
/// assert_eq!(net.max_flow(0, 3), 3);
/// ```
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    arcs: Vec<Vec<Arc>>,
    level: Vec<i32>,
    iter: Vec<usize>,
}

impl FlowNetwork {
    /// Creates a network with `n` nodes and no arcs.
    pub fn new(n: usize) -> Self {
        FlowNetwork { arcs: vec![Vec::new(); n], level: vec![0; n], iter: vec![0; n] }
    }

    /// Number of nodes in the network.
    pub fn node_count(&self) -> usize {
        self.arcs.len()
    }

    /// Adds a directed arc `from → to` with capacity `cap` (and the implicit
    /// residual reverse arc of capacity 0).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn add_arc(&mut self, from: usize, to: usize, cap: u64) {
        assert!(from < self.arcs.len() && to < self.arcs.len(), "arc endpoint out of range");
        let rev_from = self.arcs[to].len();
        let rev_to = self.arcs[from].len();
        self.arcs[from].push(Arc { to, cap, init: cap, rev: rev_from });
        self.arcs[to].push(Arc { to: from, cap: 0, init: 0, rev: rev_to });
    }

    /// Restores every arc to its construction-time capacity, undoing all
    /// flow (and any [`override_arc_capacity`] overrides).
    ///
    /// This turns one network into a reusable template: computing max-flows
    /// for many source/sink pairs of the same graph costs one construction
    /// plus an O(arcs) sweep per pair, instead of rebuilding the adjacency
    /// structure from scratch each time — the connectivity oracle's pair
    /// scan depends on this.
    ///
    /// [`override_arc_capacity`]: Self::override_arc_capacity
    pub fn reset(&mut self) {
        for arcs in &mut self.arcs {
            for arc in arcs {
                arc.cap = arc.init;
            }
        }
    }

    /// Overrides the *current* capacity of the `idx`-th arc out of `from`
    /// (reverse arcs included, in insertion order), leaving the value
    /// [`reset`](Self::reset) restores untouched. Pair scanners use this to
    /// mark the current endpoints' vertex arcs as uncuttable (capacity
    /// [`INF`]) for one computation.
    ///
    /// # Panics
    ///
    /// Panics if `from` or `idx` is out of range.
    pub fn override_arc_capacity(&mut self, from: usize, idx: usize, cap: u64) {
        self.arcs[from][idx].cap = cap;
    }

    /// The head of the `idx`-th arc out of `from` (for layout assertions in
    /// code that relies on insertion order).
    pub fn arc_head(&self, from: usize, idx: usize) -> usize {
        self.arcs[from][idx].to
    }

    fn bfs(&mut self, s: usize, t: usize) -> bool {
        self.level.iter_mut().for_each(|l| *l = -1);
        let mut queue = std::collections::VecDeque::new();
        self.level[s] = 0;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for arc in &self.arcs[u] {
                if arc.cap > 0 && self.level[arc.to] < 0 {
                    self.level[arc.to] = self.level[u] + 1;
                    queue.push_back(arc.to);
                }
            }
        }
        self.level[t] >= 0
    }

    fn dfs(&mut self, u: usize, t: usize, pushed: u64) -> u64 {
        if u == t {
            return pushed;
        }
        while self.iter[u] < self.arcs[u].len() {
            let i = self.iter[u];
            let (to, cap, rev) = {
                let a = &self.arcs[u][i];
                (a.to, a.cap, a.rev)
            };
            if cap > 0 && self.level[to] == self.level[u] + 1 {
                let d = self.dfs(to, t, pushed.min(cap));
                if d > 0 {
                    self.arcs[u][i].cap -= d;
                    self.arcs[to][rev].cap += d;
                    return d;
                }
            }
            self.iter[u] += 1;
        }
        0
    }

    /// Computes the maximum flow from `s` to `t`, consuming the capacities
    /// (the network afterwards holds the residual graph).
    ///
    /// # Panics
    ///
    /// Panics if `s == t` or either endpoint is out of range.
    pub fn max_flow(&mut self, s: usize, t: usize) -> u64 {
        self.max_flow_bounded(s, t, u64::MAX)
    }

    /// Computes the maximum flow from `s` to `t`, but stops augmenting as
    /// soon as the accumulated flow reaches `limit`.
    ///
    /// The return value is exact when it is `< limit`; a return value
    /// `>= limit` only certifies that the true maximum flow is at least
    /// `limit`. This is the decision-problem workhorse behind
    /// [`ConnectivityOracle`](crate::oracle::ConnectivityOracle): deciding
    /// `κ(s, t) ≤ t` never needs more than `t + 1` vertex-disjoint paths, so
    /// the flow computation can quit `κ − t` augmentations early.
    ///
    /// # Panics
    ///
    /// Panics if `s == t` or either endpoint is out of range.
    pub fn max_flow_bounded(&mut self, s: usize, t: usize, limit: u64) -> u64 {
        assert!(s != t, "source and sink must differ");
        assert!(s < self.arcs.len() && t < self.arcs.len(), "flow endpoint out of range");
        let mut flow = 0;
        if flow >= limit {
            return flow;
        }
        while self.bfs(s, t) {
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let f = self.dfs(s, t, INF);
                if f == 0 {
                    break;
                }
                flow += f;
                if flow >= limit {
                    return flow;
                }
            }
        }
        flow
    }

    /// After [`max_flow`](Self::max_flow), returns the set of nodes reachable
    /// from `s` in the residual graph — the source side of a minimum cut.
    pub fn residual_reachable(&self, s: usize) -> Vec<bool> {
        let mut seen = vec![false; self.arcs.len()];
        let mut queue = std::collections::VecDeque::new();
        seen[s] = true;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for arc in &self.arcs[u] {
                if arc.cap > 0 && !seen[arc.to] {
                    seen[arc.to] = true;
                    queue.push_back(arc.to);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_arc() {
        let mut net = FlowNetwork::new(2);
        net.add_arc(0, 1, 5);
        assert_eq!(net.max_flow(0, 1), 5);
    }

    #[test]
    fn bottleneck_is_respected() {
        // 0 -> 1 -> 2 with caps 7 and 3.
        let mut net = FlowNetwork::new(3);
        net.add_arc(0, 1, 7);
        net.add_arc(1, 2, 3);
        assert_eq!(net.max_flow(0, 2), 3);
    }

    #[test]
    fn parallel_paths_add_up() {
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 2);
        net.add_arc(1, 3, 2);
        net.add_arc(0, 2, 4);
        net.add_arc(2, 3, 1);
        assert_eq!(net.max_flow(0, 3), 3);
    }

    #[test]
    fn classic_augmenting_path_example() {
        // The textbook network where a naive greedy needs the residual arc.
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 1);
        net.add_arc(0, 2, 1);
        net.add_arc(1, 2, 1);
        net.add_arc(1, 3, 1);
        net.add_arc(2, 3, 1);
        assert_eq!(net.max_flow(0, 3), 2);
    }

    #[test]
    fn no_path_means_zero_flow() {
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 9);
        net.add_arc(2, 3, 9);
        assert_eq!(net.max_flow(0, 3), 0);
    }

    #[test]
    fn residual_reachability_identifies_min_cut_side() {
        // 0 ->(1) 1 ->(1) 2 : min cut saturates both arcs; from 0 only {0}
        // stays reachable after 0->1 saturates.
        let mut net = FlowNetwork::new(3);
        net.add_arc(0, 1, 1);
        net.add_arc(1, 2, 1);
        assert_eq!(net.max_flow(0, 2), 1);
        let seen = net.residual_reachable(0);
        assert!(seen[0]);
        assert!(!seen[1]);
        assert!(!seen[2]);
    }

    #[test]
    fn bounded_flow_stops_early_but_stays_exact_below_the_limit() {
        // Four parallel unit paths 0 -> i -> 5: max flow 4.
        let build = || {
            let mut net = FlowNetwork::new(6);
            for mid in 1..5 {
                net.add_arc(0, mid, 1);
                net.add_arc(mid, 5, 1);
            }
            net
        };
        // Unbounded (or generous limits) return the exact value.
        assert_eq!(build().max_flow(0, 5), 4);
        assert_eq!(build().max_flow_bounded(0, 5, u64::MAX), 4);
        assert_eq!(build().max_flow_bounded(0, 5, 5), 4);
        // At or below the true flow the result saturates at the limit.
        assert_eq!(build().max_flow_bounded(0, 5, 2), 2);
        assert_eq!(build().max_flow_bounded(0, 5, 0), 0);
    }

    #[test]
    fn reset_restores_capacities_and_overrides_are_transient() {
        let mut net = FlowNetwork::new(3);
        net.add_arc(0, 1, 1);
        net.add_arc(1, 2, 1);
        assert_eq!(net.max_flow(0, 2), 1);
        // Consumed: a second run on the residual finds nothing.
        assert_eq!(net.max_flow(0, 2), 0);
        net.reset();
        assert_eq!(net.max_flow(0, 2), 1);
        // An override widens the bottleneck for one computation only.
        net.reset();
        net.override_arc_capacity(0, 0, 7);
        assert_eq!(net.arc_head(0, 0), 1);
        assert_eq!(net.max_flow(0, 1), 7);
        net.reset();
        assert_eq!(net.max_flow(0, 1), 1);
    }

    #[test]
    fn bounded_flow_may_overshoot_on_fat_arcs() {
        // A single capacity-5 path pushes 5 in one augmentation: the bound
        // certifies "at least 2" without splitting the push.
        let mut net = FlowNetwork::new(2);
        net.add_arc(0, 1, 5);
        assert!(net.max_flow_bounded(0, 1, 2) >= 2);
    }

    #[test]
    #[should_panic(expected = "source and sink must differ")]
    fn same_source_and_sink_panics() {
        let mut net = FlowNetwork::new(2);
        net.add_arc(0, 1, 1);
        net.max_flow(1, 1);
    }
}
