//! Baseline decision type.

use serde::{Deserialize, Serialize};

/// What a (non-Byzantine-resilient) partition detector concludes.
///
/// Unlike NECTAR's `Verdict`, the baselines reason about the *current*
/// graph only: connected or partitioned, with no notion of potential
/// Byzantine cuts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BaselineVerdict {
    /// Every process appears reachable.
    Connected,
    /// Some process appears unreachable.
    Partitioned,
}

impl std::fmt::Display for BaselineVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineVerdict::Connected => f.write_str("CONNECTED"),
            BaselineVerdict::Partitioned => f.write_str("PARTITIONED"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(BaselineVerdict::Connected.to_string(), "CONNECTED");
        assert_eq!(BaselineVerdict::Partitioned.to_string(), "PARTITIONED");
    }
}
