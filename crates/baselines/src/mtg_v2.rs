//! MtGv2 — the paper's strengthened MindTheGap (§V-A).
//!
//! Bloom filters are replaced by lists of *signed* process IDs: a node
//! gossips `σ_id("alive" ‖ id)` attestations it has collected. Signatures
//! stop the all-ones poisoning (a Byzantine node cannot fabricate
//! attestations for others), and "to minimize the increased network cost …
//! nodes only send a given signed ID once to their neighbors per epoch".
//! The remaining weakness — exploited in Fig. 8 — is that Byzantine bridge
//! nodes can relay attestations to one side only, splitting correct nodes'
//! views.

use std::collections::{BTreeMap, BTreeSet};

use nectar_crypto::{wire, Signature, Signer, SignerId, Verifier};
use nectar_net::{NodeId, Outgoing, Process, WireSized};

use crate::verdict::BaselineVerdict;

/// The canonical "I am alive" statement signed by each process.
pub fn alive_statement(id: SignerId) -> Vec<u8> {
    let mut out = Vec::with_capacity(7);
    out.extend_from_slice(b"alive");
    out.extend_from_slice(&id.to_be_bytes());
    out
}

/// Gossip message: a batch of signed process IDs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignedIdsMsg {
    /// Attestations `(id, σ_id(alive ‖ id))`.
    pub entries: Vec<(SignerId, Signature)>,
}

/// Fixed per-message framing overhead.
pub const MTGV2_HEADER_BYTES: usize = 8;

impl WireSized for SignedIdsMsg {
    fn wire_bytes(&self) -> usize {
        MTGV2_HEADER_BYTES + self.entries.len() * wire::signature_entry_bytes()
    }
}

/// A correct MtGv2 node.
#[derive(Debug)]
pub struct MtgV2Node {
    id: NodeId,
    n: usize,
    neighbors: Vec<NodeId>,
    verifier: Verifier,
    /// Verified attestations collected so far.
    known: BTreeMap<SignerId, Signature>,
    /// Per-neighbor set of IDs already transmitted this epoch.
    sent: BTreeMap<NodeId, BTreeSet<SignerId>>,
}

impl MtgV2Node {
    /// Creates the node; it immediately self-attests with `signer`.
    ///
    /// # Panics
    ///
    /// Panics if `signer` does not match `id`.
    pub fn new(
        id: NodeId,
        n: usize,
        neighbors: Vec<NodeId>,
        signer: &Signer,
        verifier: Verifier,
    ) -> Self {
        assert_eq!(signer.id() as usize, id, "signer identity must match node id");
        let mut known = BTreeMap::new();
        known.insert(signer.id(), signer.sign(&alive_statement(signer.id())));
        let sent = neighbors.iter().map(|&nbr| (nbr, BTreeSet::new())).collect();
        MtgV2Node { id, n, neighbors, verifier, known, sent }
    }

    /// IDs this node believes reachable.
    pub fn known_ids(&self) -> Vec<SignerId> {
        self.known.keys().copied().collect()
    }

    /// End-of-epoch decision: partitioned iff some attestation is missing.
    pub fn decide(&self) -> BaselineVerdict {
        if self.known.len() == self.n {
            BaselineVerdict::Connected
        } else {
            BaselineVerdict::Partitioned
        }
    }
}

impl Process for MtgV2Node {
    type Msg = SignedIdsMsg;

    fn id(&self) -> NodeId {
        self.id
    }

    fn send(&mut self, _round: usize) -> Vec<Outgoing<SignedIdsMsg>> {
        let mut out = Vec::new();
        for &nbr in &self.neighbors {
            let sent = self.sent.entry(nbr).or_default();
            let fresh: Vec<(SignerId, Signature)> = self
                .known
                .iter()
                .filter(|(id, _)| !sent.contains(*id))
                .map(|(&id, sig)| (id, sig.clone()))
                .collect();
            if fresh.is_empty() {
                continue;
            }
            sent.extend(fresh.iter().map(|(id, _)| *id));
            out.push(Outgoing::new(nbr, SignedIdsMsg { entries: fresh }));
        }
        out
    }

    fn receive(&mut self, _round: usize, _from: NodeId, msg: SignedIdsMsg) {
        for (id, sig) in msg.entries {
            if self.known.contains_key(&id) {
                continue;
            }
            if sig.signer() != id || (id as usize) >= self.n {
                continue;
            }
            if !self.verifier.verify(&alive_statement(id), &sig) {
                continue;
            }
            self.known.insert(id, sig);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nectar_crypto::KeyStore;
    use nectar_graph::gen;
    use nectar_net::SyncNetwork;

    fn build(g: &nectar_graph::Graph) -> Vec<MtgV2Node> {
        let n = g.node_count();
        let ks = KeyStore::generate(n, 11);
        (0..n)
            .map(|i| MtgV2Node::new(i, n, g.neighborhood(i), &ks.signer(i as u16), ks.verifier()))
            .collect()
    }

    fn run(g: &nectar_graph::Graph, rounds: usize) -> Vec<MtgV2Node> {
        let mut net = SyncNetwork::new(build(g), g.clone());
        net.run_rounds(rounds);
        net.into_parts().0
    }

    #[test]
    fn connected_graph_is_reported_connected() {
        let g = gen::harary(3, 8).unwrap();
        for node in run(&g, 7) {
            assert_eq!(node.decide(), BaselineVerdict::Connected);
            assert_eq!(node.known_ids().len(), 8);
        }
    }

    #[test]
    fn partitioned_graph_is_reported_partitioned() {
        let g = nectar_graph::Graph::from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)]).unwrap();
        for node in run(&g, 5) {
            assert_eq!(node.decide(), BaselineVerdict::Partitioned);
            assert_eq!(node.known_ids().len(), 3);
        }
    }

    #[test]
    fn forged_attestations_are_rejected() {
        let g = gen::path(3);
        let n = g.node_count();
        let ks = KeyStore::generate(n, 11);
        let mut node = MtgV2Node::new(0, n, vec![1], &ks.signer(0), ks.verifier());
        // Forged: node 1's key signing node 2's identity.
        let fake = ks.signer(1).sign(&alive_statement(2));
        node.receive(1, 1, SignedIdsMsg { entries: vec![(2, fake)] });
        assert_eq!(node.known_ids(), vec![0]);
        // Honest attestation goes through.
        let honest = ks.signer(2).sign(&alive_statement(2));
        node.receive(1, 1, SignedIdsMsg { entries: vec![(2, honest)] });
        assert_eq!(node.known_ids(), vec![0, 2]);
    }

    #[test]
    fn each_id_sent_once_per_neighbor() {
        let g = gen::path(3);
        let mut net = SyncNetwork::new(build(&g), g.clone());
        net.run_rounds(6);
        // Middle node 1: sends its own id + relays 2 ids = 2 entries to each
        // of 2 neighbors... entries transmitted are bounded by n per link.
        let m = net.metrics();
        let per_entry = wire::signature_entry_bytes() as u64;
        // Link capacity bound: every directed link carries at most n entries.
        let max_total = (4 * 3) as u64 * per_entry + 100; // 4 directed links × n entries + headers
        assert!(m.total_bytes_sent() <= max_total, "duplicate transmissions detected");
    }

    #[test]
    fn out_of_range_ids_are_ignored() {
        let _g = gen::path(2);
        let ks = KeyStore::generate(5, 11);
        let mut node = MtgV2Node::new(0, 2, vec![1], &ks.signer(0), ks.verifier());
        let alien = ks.signer(4).sign(&alive_statement(4));
        node.receive(1, 1, SignedIdsMsg { entries: vec![(4, alien)] });
        assert_eq!(node.known_ids(), vec![0]);
    }
}
