//! MindTheGap (MtG) — Bouget et al., SRDS 2018 (§V-A baseline).
//!
//! Every node maintains a Bloom filter of the process IDs it believes
//! reachable (initially just itself) and gossips it to its neighbors; on
//! reception, filters are unioned. After the epoch, a node concludes the
//! network is *partitioned* iff some process ID is missing from its filter.
//!
//! MtG is cheap (a filter is a few dozen bytes) but unauthenticated: a
//! single Byzantine node sending an all-ones filter poisons every downstream
//! union — the attack reproduced in Fig. 8.

use nectar_net::{NodeId, Outgoing, Process, WireSized};

use crate::bloom::BloomFilter;
use crate::verdict::BaselineVerdict;

/// Gossip message: the sender's current reachability filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterMsg {
    /// The gossiped Bloom filter.
    pub filter: BloomFilter,
}

/// Fixed per-message framing overhead (sender + epoch counter).
pub const MTG_HEADER_BYTES: usize = 8;

impl WireSized for FilterMsg {
    fn wire_bytes(&self) -> usize {
        MTG_HEADER_BYTES + self.filter.wire_bytes()
    }
}

/// Parameters for MtG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MtgConfig {
    /// System size `n` (all process IDs are known, §II).
    pub n: usize,
    /// Bloom filter bits.
    pub filter_bits: usize,
    /// Bloom filter hash count.
    pub filter_hashes: usize,
}

impl MtgConfig {
    /// Defaults sized for systems of up to a few hundred nodes (~2.7% FPR
    /// at n = 100).
    pub fn new(n: usize) -> Self {
        MtgConfig { n, filter_bits: 1024, filter_hashes: 3 }
    }
}

/// A correct MtG node.
#[derive(Debug, Clone)]
pub struct MtgNode {
    id: NodeId,
    config: MtgConfig,
    neighbors: Vec<NodeId>,
    filter: BloomFilter,
    dirty: bool,
}

impl MtgNode {
    /// Creates the node with its neighbor list.
    pub fn new(id: NodeId, config: MtgConfig, neighbors: Vec<NodeId>) -> Self {
        let mut filter = BloomFilter::new(config.filter_bits, config.filter_hashes);
        filter.insert(id as u64);
        MtgNode { id, config, neighbors, filter, dirty: true }
    }

    /// The node's current filter.
    pub fn filter(&self) -> &BloomFilter {
        &self.filter
    }

    /// End-of-epoch decision: partitioned iff some process ID is missing.
    pub fn decide(&self) -> BaselineVerdict {
        let all_present = (0..self.config.n).all(|id| self.filter.contains(id as u64));
        if all_present {
            BaselineVerdict::Connected
        } else {
            BaselineVerdict::Partitioned
        }
    }
}

impl Process for MtgNode {
    type Msg = FilterMsg;

    fn id(&self) -> NodeId {
        self.id
    }

    fn send(&mut self, _round: usize) -> Vec<Outgoing<FilterMsg>> {
        // Gossip on change: re-sending an unchanged filter adds no
        // information, so a correct node stays silent once its view has
        // stabilized (this is what keeps MtG's cost flat in Fig. 4).
        if !self.dirty {
            return Vec::new();
        }
        self.dirty = false;
        self.neighbors
            .iter()
            .map(|&to| Outgoing::new(to, FilterMsg { filter: self.filter.clone() }))
            .collect()
    }

    fn receive(&mut self, _round: usize, _from: NodeId, msg: FilterMsg) {
        if msg.filter.geometry() != self.filter.geometry() {
            // Malformed gossip; a correct node ignores it.
            return;
        }
        let before = self.filter.count_ones();
        self.filter.union(&msg.filter);
        if self.filter.count_ones() != before {
            self.dirty = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nectar_graph::gen;
    use nectar_net::SyncNetwork;

    fn run(g: &nectar_graph::Graph, rounds: usize) -> Vec<MtgNode> {
        let n = g.node_count();
        let cfg = MtgConfig::new(n);
        let nodes = (0..n).map(|i| MtgNode::new(i, cfg, g.neighborhood(i))).collect();
        let mut net = SyncNetwork::new(nodes, g.clone());
        net.run_rounds(rounds);
        net.into_parts().0
    }

    #[test]
    fn connected_graph_is_reported_connected() {
        let g = gen::cycle(10);
        for node in run(&g, 9) {
            assert_eq!(node.decide(), BaselineVerdict::Connected);
        }
    }

    #[test]
    fn partitioned_graph_is_reported_partitioned() {
        let g =
            nectar_graph::Graph::from_edges(8, [(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7)])
                .unwrap();
        for node in run(&g, 7) {
            assert_eq!(node.decide(), BaselineVerdict::Partitioned);
        }
    }

    #[test]
    fn gossip_goes_quiet_after_convergence() {
        let g = gen::path(4);
        let n = g.node_count();
        let cfg = MtgConfig::new(n);
        let nodes: Vec<MtgNode> = (0..n).map(|i| MtgNode::new(i, cfg, g.neighborhood(i))).collect();
        let mut net = SyncNetwork::new(nodes, g.clone());
        net.run_rounds(10);
        let per_round = net.metrics().bytes_per_round();
        // Diameter 3: all filters converge well before round 10.
        assert!(per_round.len() <= 6, "gossip kept flowing: {per_round:?}");
    }

    #[test]
    fn malformed_filter_geometry_is_ignored() {
        let cfg = MtgConfig::new(4);
        let mut node = MtgNode::new(0, cfg, vec![1]);
        let alien = BloomFilter::new(64, 1);
        node.receive(1, 1, FilterMsg { filter: alien });
        assert_eq!(node.filter().geometry(), (1024, 3));
    }
}
