//! Byzantine behaviours against the baselines, and runners that execute a
//! full baseline scenario (mirroring `nectar_protocol::Scenario`).
//!
//! §V-D evaluates two attacks:
//! * against MtG: Byzantine nodes gossip **all-ones Bloom filters**, making
//!   every correct node downstream believe the system is connected;
//! * against MtGv2 (and NECTAR): Byzantine *bridge* nodes act correctly
//!   toward one part of the network and crashed toward the other.

use std::collections::{BTreeMap, BTreeSet};

use nectar_crypto::KeyStore;
use nectar_graph::Graph;
use nectar_net::{Crash, Faulty, Metrics, NodeId, Outgoing, Process, SyncNetwork, TwoFaced};

use crate::bloom::BloomFilter;
use crate::mtg::{FilterMsg, MtgConfig, MtgNode};
use crate::mtg_v2::MtgV2Node;
use crate::verdict::BaselineVerdict;

/// Byzantine strategies against MtG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MtgBehavior {
    /// Gossip an all-ones filter (the poisoning attack of §V-D).
    SaturateFilter,
    /// Crash from round 1.
    Silent,
    /// Bridge attack: silent toward the listed nodes.
    TwoFaced {
        /// Nodes toward which this node plays dead.
        silent_toward: BTreeSet<NodeId>,
    },
}

/// Byzantine strategies against MtGv2 (filters cannot be forged, so only
/// traffic-shaped attacks remain).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MtgV2Behavior {
    /// Crash from round 1.
    Silent,
    /// Bridge attack: silent toward the listed nodes.
    TwoFaced {
        /// Nodes toward which this node plays dead.
        silent_toward: BTreeSet<NodeId>,
    },
}

/// The all-ones-filter attacker.
#[derive(Debug)]
pub struct FilterSaturator {
    id: NodeId,
    neighbors: Vec<NodeId>,
    config: MtgConfig,
    fired: bool,
}

impl FilterSaturator {
    /// Creates the attacker.
    pub fn new(id: NodeId, config: MtgConfig, neighbors: Vec<NodeId>) -> Self {
        FilterSaturator { id, neighbors, config, fired: false }
    }
}

impl Process for FilterSaturator {
    type Msg = FilterMsg;

    fn id(&self) -> NodeId {
        self.id
    }

    fn send(&mut self, _round: usize) -> Vec<Outgoing<FilterMsg>> {
        // One poisoned filter per neighbor is enough: unions never forget.
        if self.fired {
            return Vec::new();
        }
        self.fired = true;
        let mut filter = BloomFilter::new(self.config.filter_bits, self.config.filter_hashes);
        filter.saturate();
        self.neighbors
            .iter()
            .map(|&to| Outgoing::new(to, FilterMsg { filter: filter.clone() }))
            .collect()
    }

    fn receive(&mut self, _round: usize, _from: NodeId, _msg: FilterMsg) {}
}

/// Heterogeneous MtG participant.
#[derive(Debug)]
pub enum MtgParticipant {
    /// Runs the unmodified protocol.
    Correct(MtgNode),
    /// All-ones-filter attacker.
    Saturator(FilterSaturator),
    /// Correct logic behind a traffic fault (silent / two-faced).
    TrafficFault(Faulty<MtgNode>),
}

impl Process for MtgParticipant {
    type Msg = FilterMsg;

    fn id(&self) -> NodeId {
        match self {
            MtgParticipant::Correct(n) => n.id(),
            MtgParticipant::Saturator(s) => s.id(),
            MtgParticipant::TrafficFault(f) => f.id(),
        }
    }

    fn send(&mut self, round: usize) -> Vec<Outgoing<FilterMsg>> {
        match self {
            MtgParticipant::Correct(n) => n.send(round),
            MtgParticipant::Saturator(s) => s.send(round),
            MtgParticipant::TrafficFault(f) => f.send(round),
        }
    }

    fn receive(&mut self, round: usize, from: NodeId, msg: FilterMsg) {
        match self {
            MtgParticipant::Correct(n) => n.receive(round, from, msg),
            MtgParticipant::Saturator(s) => s.receive(round, from, msg),
            MtgParticipant::TrafficFault(f) => f.receive(round, from, msg),
        }
    }
}

/// Heterogeneous MtGv2 participant.
#[derive(Debug)]
pub enum MtgV2Participant {
    /// Runs the unmodified protocol.
    Correct(MtgV2Node),
    /// Correct logic behind a traffic fault (silent / two-faced).
    TrafficFault(Faulty<MtgV2Node>),
}

impl Process for MtgV2Participant {
    type Msg = crate::mtg_v2::SignedIdsMsg;

    fn id(&self) -> NodeId {
        match self {
            MtgV2Participant::Correct(n) => n.id(),
            MtgV2Participant::TrafficFault(f) => f.id(),
        }
    }

    fn send(&mut self, round: usize) -> Vec<Outgoing<Self::Msg>> {
        match self {
            MtgV2Participant::Correct(n) => n.send(round),
            MtgV2Participant::TrafficFault(f) => f.send(round),
        }
    }

    fn receive(&mut self, round: usize, from: NodeId, msg: Self::Msg) {
        match self {
            MtgV2Participant::Correct(n) => n.receive(round, from, msg),
            MtgV2Participant::TrafficFault(f) => f.receive(round, from, msg),
        }
    }
}

/// Result of a baseline execution.
#[derive(Debug, Clone)]
pub struct BaselineOutcome {
    /// Every correct node's verdict.
    pub verdicts: BTreeMap<NodeId, BaselineVerdict>,
    /// Traffic counters.
    pub metrics: Metrics,
    /// Byzantine cast.
    pub byzantine: BTreeSet<NodeId>,
}

impl BaselineOutcome {
    /// Whether all correct nodes agree.
    pub fn agreement(&self) -> bool {
        let mut it = self.verdicts.values();
        match it.next() {
            None => true,
            Some(first) => it.all(|v| v == first),
        }
    }

    /// Fraction of correct nodes reaching `expected` — Fig. 8's decision
    /// success rate.
    pub fn success_rate(&self, expected: BaselineVerdict) -> f64 {
        if self.verdicts.is_empty() {
            return 1.0;
        }
        let ok = self.verdicts.values().filter(|&&v| v == expected).count();
        ok as f64 / self.verdicts.len() as f64
    }

    /// Mean bytes sent per node, in KB (Figs. 4–7).
    pub fn mean_kb_sent_per_node(&self) -> f64 {
        self.metrics.mean_bytes_sent_per_node() / 1024.0
    }
}

/// Runs MtG over `topology` for `rounds` (one epoch), with the given
/// Byzantine cast.
pub fn run_mtg(
    topology: &Graph,
    config: MtgConfig,
    byzantine: &BTreeMap<NodeId, MtgBehavior>,
    rounds: usize,
) -> BaselineOutcome {
    let n = topology.node_count();
    let participants: Vec<MtgParticipant> = (0..n)
        .map(|i| {
            let node = MtgNode::new(i, config, topology.neighborhood(i));
            match byzantine.get(&i) {
                None => MtgParticipant::Correct(node),
                Some(MtgBehavior::SaturateFilter) => MtgParticipant::Saturator(
                    FilterSaturator::new(i, config, topology.neighborhood(i)),
                ),
                Some(MtgBehavior::Silent) => MtgParticipant::TrafficFault(Faulty::new(
                    node,
                    Box::new(Crash { from_round: 1 }),
                )),
                Some(MtgBehavior::TwoFaced { silent_toward }) => MtgParticipant::TrafficFault(
                    Faulty::new(node, Box::new(TwoFaced::new(silent_toward.iter().copied()))),
                ),
            }
        })
        .collect();
    let mut net = SyncNetwork::new(participants, topology.clone());
    net.run_rounds(rounds);
    let (participants, metrics) = net.into_parts();
    let byz: BTreeSet<NodeId> = byzantine.keys().copied().collect();
    let verdicts = participants
        .iter()
        .filter_map(|p| match p {
            MtgParticipant::Correct(n) if !byz.contains(&n.id()) => Some((n.id(), n.decide())),
            _ => None,
        })
        .collect();
    BaselineOutcome { verdicts, metrics, byzantine: byz }
}

/// Runs MtGv2 over `topology` for `rounds` (one epoch), with the given
/// Byzantine cast.
pub fn run_mtg_v2(
    topology: &Graph,
    byzantine: &BTreeMap<NodeId, MtgV2Behavior>,
    rounds: usize,
    key_seed: u64,
) -> BaselineOutcome {
    let n = topology.node_count();
    let keys = KeyStore::generate(n, key_seed);
    let participants: Vec<MtgV2Participant> = (0..n)
        .map(|i| {
            let node = MtgV2Node::new(
                i,
                n,
                topology.neighborhood(i),
                &keys.signer(i as u16),
                keys.verifier(),
            );
            match byzantine.get(&i) {
                None => MtgV2Participant::Correct(node),
                Some(MtgV2Behavior::Silent) => MtgV2Participant::TrafficFault(Faulty::new(
                    node,
                    Box::new(Crash { from_round: 1 }),
                )),
                Some(MtgV2Behavior::TwoFaced { silent_toward }) => MtgV2Participant::TrafficFault(
                    Faulty::new(node, Box::new(TwoFaced::new(silent_toward.iter().copied()))),
                ),
            }
        })
        .collect();
    let mut net = SyncNetwork::new(participants, topology.clone());
    net.run_rounds(rounds);
    let (participants, metrics) = net.into_parts();
    let byz: BTreeSet<NodeId> = byzantine.keys().copied().collect();
    let verdicts = participants
        .iter()
        .filter_map(|p| match p {
            MtgV2Participant::Correct(n) if !byz.contains(&n.id()) => Some((n.id(), n.decide())),
            _ => None,
        })
        .collect();
    BaselineOutcome { verdicts, metrics, byzantine: byz }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nectar_graph::Graph;

    /// Two 4-cliques with no link between them: a clean partition.
    fn split_graph() -> Graph {
        let mut g = Graph::empty(8);
        for base in [0, 4] {
            for u in base..base + 4 {
                for v in u + 1..base + 4 {
                    g.add_edge(u, v).unwrap();
                }
            }
        }
        g
    }

    #[test]
    fn honest_mtg_detects_the_partition() {
        let g = split_graph();
        let out = run_mtg(&g, MtgConfig::new(8), &BTreeMap::new(), 7);
        assert!(out.agreement());
        assert_eq!(out.success_rate(BaselineVerdict::Partitioned), 1.0);
    }

    #[test]
    fn one_saturator_fools_half_the_nodes() {
        let g = split_graph();
        let byz = BTreeMap::from([(0, MtgBehavior::SaturateFilter)]);
        let out = run_mtg(&g, MtgConfig::new(8), &byz, 7);
        // Nodes 1–3 are poisoned (conclude Connected); 4–7 still detect.
        assert!(!out.agreement(), "a single Byzantine node breaks agreement");
        let rate = out.success_rate(BaselineVerdict::Partitioned);
        assert!((rate - 4.0 / 7.0).abs() < 1e-9, "rate = {rate}");
    }

    #[test]
    fn two_saturators_fool_everyone() {
        let g = split_graph();
        let byz =
            BTreeMap::from([(0, MtgBehavior::SaturateFilter), (4, MtgBehavior::SaturateFilter)]);
        let out = run_mtg(&g, MtgConfig::new(8), &byz, 7);
        assert_eq!(out.success_rate(BaselineVerdict::Partitioned), 0.0);
    }

    #[test]
    fn mtgv2_bridge_attack_splits_correct_views() {
        // Bridge topology: parts A = {0,1,2} and B = {4,5,6} joined only via
        // the Byzantine node 3, which acts correctly toward A and crashed
        // toward B (§V-D). The bridge keeps receiving B's attestations and
        // relays them to A: A concludes Connected (true of the raw graph),
        // while B, hearing nothing across, concludes Partitioned (true of
        // the correct subgraph). Half the correct nodes on each side — the
        // ~0.5 success plateau of Fig. 8.
        let mut g = Graph::empty(7);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (4, 5), (5, 6), (4, 6), (2, 3), (3, 4)] {
            g.add_edge(u, v).unwrap();
        }
        let byz =
            BTreeMap::from([(3, MtgV2Behavior::TwoFaced { silent_toward: [4, 5, 6].into() })]);
        let out = run_mtg_v2(&g, &byz, 6, 1);
        assert!(!out.agreement(), "one bridge suffices to break agreement");
        let rate = out.success_rate(BaselineVerdict::Partitioned);
        assert!((rate - 0.5).abs() < 1e-9, "rate = {rate}");
        for (&node, &v) in &out.verdicts {
            let expected =
                if node <= 2 { BaselineVerdict::Connected } else { BaselineVerdict::Partitioned };
            assert_eq!(v, expected, "node {node}");
        }
    }

    #[test]
    fn silent_byzantine_in_connected_graph_changes_nothing_for_others() {
        let g = nectar_graph::gen::harary(3, 8).unwrap();
        let byz = BTreeMap::from([(2, MtgV2Behavior::Silent)]);
        let out = run_mtg_v2(&g, &byz, 7, 1);
        // Node 2 never attests: correct nodes miss it and conclude
        // Partitioned — a false alarm inherent to crash-style silence.
        assert_eq!(out.success_rate(BaselineVerdict::Partitioned), 1.0);
    }
}
