//! Bloom filters, as used by MindTheGap to gossip reachable-node sets.
//!
//! MtG keeps its network cost low by representing the set of reachable
//! process IDs as a Bloom filter (§V-A). The flip side — and the crux of the
//! paper's Byzantine evaluation — is that a filter full of ones claims every
//! node is reachable, and nothing authenticates it (§V-D).

use serde::{Deserialize, Serialize};

/// A fixed-size Bloom filter over `u64` items with double hashing
/// (Kirsch–Mitzenmacher).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BloomFilter {
    bits: Vec<u64>,
    m_bits: usize,
    k_hashes: usize,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl BloomFilter {
    /// Creates an empty filter with `m_bits` bits and `k_hashes` hash
    /// functions.
    ///
    /// # Panics
    ///
    /// Panics if `m_bits` or `k_hashes` is zero.
    pub fn new(m_bits: usize, k_hashes: usize) -> Self {
        assert!(m_bits > 0, "filter needs at least one bit");
        assert!(k_hashes > 0, "filter needs at least one hash");
        BloomFilter { bits: vec![0; m_bits.div_ceil(64)], m_bits, k_hashes }
    }

    fn positions(&self, item: u64) -> impl Iterator<Item = usize> + '_ {
        let h1 = splitmix64(item);
        let h2 = splitmix64(h1) | 1; // odd stride
        (0..self.k_hashes as u64)
            .map(move |i| (h1.wrapping_add(i.wrapping_mul(h2)) % self.m_bits as u64) as usize)
    }

    /// Inserts an item.
    pub fn insert(&mut self, item: u64) {
        let positions: Vec<usize> = self.positions(item).collect();
        for pos in positions {
            self.bits[pos / 64] |= 1 << (pos % 64);
        }
    }

    /// Membership query (false positives possible, false negatives not).
    pub fn contains(&self, item: u64) -> bool {
        self.positions(item).all(|pos| self.bits[pos / 64] & (1 << (pos % 64)) != 0)
    }

    /// Unions another filter of identical geometry into this one.
    ///
    /// # Panics
    ///
    /// Panics if the geometries differ.
    pub fn union(&mut self, other: &BloomFilter) {
        assert_eq!(self.m_bits, other.m_bits, "filter geometry mismatch");
        assert_eq!(self.k_hashes, other.k_hashes, "filter geometry mismatch");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
    }

    /// Sets every bit — the Byzantine attack of §V-D ("Byzantine nodes can
    /// send filters full of 1 values to lead correct nodes to conclude that
    /// the system is connected").
    pub fn saturate(&mut self) {
        for word in &mut self.bits {
            *word = u64::MAX;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        let mut total: usize = self.bits.iter().map(|w| w.count_ones() as usize).sum();
        // Mask out bits beyond m_bits (only set by saturate()).
        let spare = self.bits.len() * 64 - self.m_bits;
        if spare > 0 {
            if let Some(last) = self.bits.last() {
                let overflow = (last >> (64 - spare)).count_ones() as usize;
                total -= overflow;
            }
        }
        total
    }

    /// Filter size on the wire (its bit array).
    pub fn wire_bytes(&self) -> usize {
        self.m_bits.div_ceil(8)
    }

    /// Filter geometry `(m_bits, k_hashes)`.
    pub fn geometry(&self) -> (usize, usize) {
        (self.m_bits, self.k_hashes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserted_items_are_found() {
        let mut f = BloomFilter::new(1024, 3);
        for id in 0..50u64 {
            f.insert(id);
        }
        assert!((0..50u64).all(|id| f.contains(id)));
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let f = BloomFilter::new(1024, 3);
        assert!((0..100u64).all(|id| !f.contains(id)));
        assert_eq!(f.count_ones(), 0);
    }

    #[test]
    fn false_positive_rate_is_reasonable() {
        // 100 inserts into 1024 bits / 3 hashes: theory predicts ~2.7% FPR.
        let mut f = BloomFilter::new(1024, 3);
        for id in 0..100u64 {
            f.insert(id);
        }
        let fps = (100..10_100u64).filter(|&x| f.contains(x)).count();
        assert!(fps < 700, "false positive rate unexpectedly high: {fps}/10000");
    }

    #[test]
    fn union_merges_membership() {
        let mut a = BloomFilter::new(256, 2);
        let mut b = BloomFilter::new(256, 2);
        a.insert(1);
        b.insert(2);
        a.union(&b);
        assert!(a.contains(1) && a.contains(2));
    }

    #[test]
    #[should_panic(expected = "geometry mismatch")]
    fn union_requires_same_geometry() {
        let mut a = BloomFilter::new(256, 2);
        let b = BloomFilter::new(512, 2);
        a.union(&b);
    }

    #[test]
    fn saturated_filter_claims_everything() {
        let mut f = BloomFilter::new(300, 3);
        f.saturate();
        assert!((0..1000u64).all(|id| f.contains(id)));
        assert_eq!(f.count_ones(), 300);
    }

    #[test]
    fn wire_size_is_bit_array_bytes() {
        assert_eq!(BloomFilter::new(1024, 3).wire_bytes(), 128);
        assert_eq!(BloomFilter::new(300, 3).wire_bytes(), 38);
    }
}
