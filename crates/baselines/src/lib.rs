//! Evaluation baselines for the NECTAR reproduction.
//!
//! **Place in the runtime stack:** a sibling protocol layer used only by
//! the evaluation. The baselines run their own epoch-gossip loops over
//! `nectar-graph` topologies (they pre-date the `Process` abstraction's
//! round model, matching the original gossip papers), and
//! `nectar-experiments` compares their cost and resilience against NECTAR
//! on identical graphs.
//!
//! The paper compares NECTAR against two non-Byzantine-resilient partition
//! detectors (§V-A):
//!
//! * [`mtg`]: **MindTheGap** (Bouget et al., SRDS 2018) — epoch gossip of
//!   Bloom-filter reachable sets ([`MtgNode`]),
//! * [`mtg_v2`]: **MtGv2** — the paper's strengthened variant where filters
//!   are replaced by signed process-ID lists, each sent at most once per
//!   neighbor per epoch ([`MtgV2Node`]),
//!
//! plus the Byzantine attacks used in §V-D ([`attacks`]): all-ones filter
//! poisoning against MtG and two-faced bridge nodes against MtGv2.
//!
//! # Example
//!
//! ```
//! use std::collections::BTreeMap;
//! use nectar_baselines::{run_mtg, BaselineVerdict, MtgBehavior, MtgConfig};
//!
//! // Two disconnected triangles: honest MtG detects the partition…
//! let g = nectar_graph::Graph::from_edges(
//!     6,
//!     [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)],
//! )?;
//! let honest = run_mtg(&g, MtgConfig::new(6), &BTreeMap::new(), 5);
//! assert_eq!(honest.success_rate(BaselineVerdict::Partitioned), 1.0);
//!
//! // …but one Byzantine node per side, gossiping all-ones filters, fools
//! // every correct node (Fig. 8's red curve).
//! let byz = BTreeMap::from([
//!     (0, MtgBehavior::SaturateFilter),
//!     (3, MtgBehavior::SaturateFilter),
//! ]);
//! let attacked = run_mtg(&g, MtgConfig::new(6), &byz, 5);
//! assert_eq!(attacked.success_rate(BaselineVerdict::Partitioned), 0.0);
//! # Ok::<(), nectar_graph::GraphError>(())
//! ```

#![forbid(unsafe_code)]

pub mod attacks;
pub mod bloom;
pub mod mtg;
pub mod mtg_v2;
pub mod verdict;

pub use attacks::{
    run_mtg, run_mtg_v2, BaselineOutcome, FilterSaturator, MtgBehavior, MtgParticipant,
    MtgV2Behavior, MtgV2Participant,
};
pub use bloom::BloomFilter;
pub use mtg::{FilterMsg, MtgConfig, MtgNode};
pub use mtg_v2::{MtgV2Node, SignedIdsMsg};
pub use verdict::BaselineVerdict;
